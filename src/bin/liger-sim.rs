//! `liger-sim` — command-line serving simulator.
//!
//! The Rust analog of the paper artifact's configurable `main.cu`: pick a
//! model, node, engine, arrival rate and workload, and get the serving
//! metrics. Runs entirely on the simulator; no GPU required.
//!
//! ```sh
//! liger-sim --model opt-30b --node v100 --engine liger --rate 20 --requests 500
//! liger-sim --model glm-130b --node a100 --engine all --rate 6 --batch 4
//! liger-sim --model opt-66b --node a100 --engine liger --decode --rate 30
//! ```

use liger::prelude::*;

struct Args {
    model: ModelConfig,
    node: &'static str,
    engines: Vec<&'static str>,
    world: usize,
    rate: f64,
    requests: usize,
    batch: u32,
    decode: bool,
    division: u32,
    slots: usize,
    adaptive: bool,
    seed: u64,
    slo_ms: Option<u64>,
}

fn arg(name: &str) -> Option<String> {
    let mut it = std::env::args();
    while let Some(a) = it.next() {
        if a == format!("--{name}") {
            return it.next();
        }
    }
    None
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

fn usage() -> ! {
    eprintln!(
        "liger-sim: simulate distributed LLM serving (Liger, PPoPP'24 reproduction)

USAGE:
  liger-sim [OPTIONS]

OPTIONS:
  --model <opt-30b|opt-66b|glm-130b|tiny>   model to serve        [opt-30b]
  --node <v100|a100>                        testbed               [v100]
  --engine <liger|intra|inter|inter-th|all> engine(s) to run      [liger]
  --world <N>                               devices / TP degree   [4]
  --rate <req/s>                            arrival rate          [20]
  --requests <N>                            jobs to serve         [500]
  --batch <N>                               batch size per job    [2]
  --decode                                  decode workload (batch 32, ctx 16)
  --division <F>                            decomposition factor  [8]
  --slots <N>                               processing-list size  [4]
  --adaptive                                adaptive contention factor
  --seed <N>                                trace seed            [42]
  --slo <ms>                                report SLO attainment/goodput
  --help                                    this text"
    );
    std::process::exit(2)
}

fn parse() -> Args {
    if flag("help") {
        usage();
    }
    let model = match arg("model").as_deref().unwrap_or("opt-30b") {
        "opt-30b" => ModelConfig::opt_30b(),
        "opt-66b" => ModelConfig::opt_66b(),
        "glm-130b" => ModelConfig::glm_130b(),
        "tiny" => ModelConfig::tiny_test(),
        other => {
            eprintln!("unknown model {other:?}");
            usage()
        }
    };
    let node = match arg("node").as_deref().unwrap_or("v100") {
        "v100" => "v100",
        "a100" => "a100",
        other => {
            eprintln!("unknown node {other:?}");
            usage()
        }
    };
    let engines: Vec<&'static str> = match arg("engine").as_deref().unwrap_or("liger") {
        "liger" => vec!["liger"],
        "intra" => vec!["intra"],
        "inter" => vec!["inter"],
        "inter-th" => vec!["inter-th"],
        "all" => vec!["liger", "intra", "inter", "inter-th"],
        other => {
            eprintln!("unknown engine {other:?}");
            usage()
        }
    };
    let parse_num = |name: &str, default: f64| -> f64 {
        arg(name)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --{name}");
                    usage()
                })
            })
            .unwrap_or(default)
    };
    Args {
        model,
        node,
        engines,
        world: (parse_num("world", 4.0) as usize).max(1),
        rate: parse_num("rate", 20.0),
        requests: parse_num("requests", 500.0) as usize,
        batch: parse_num("batch", 2.0) as u32,
        decode: flag("decode"),
        division: parse_num("division", 8.0) as u32,
        slots: parse_num("slots", 4.0) as usize,
        adaptive: flag("adaptive"),
        seed: parse_num("seed", 42.0) as u64,
        slo_ms: arg("slo").map(|v| v.parse().unwrap_or_else(|_| usage())),
    }
}

fn main() {
    let args = parse();
    let (device, cost) = match args.node {
        "v100" => (DeviceSpec::v100_16gb(), CostModel::v100_node()),
        _ => (DeviceSpec::a100_80gb(), CostModel::a100_node()),
    };
    let trace: Vec<Request> = if args.decode {
        DecodeTraceConfig {
            count: args.requests,
            batch: 32,
            context: 16,
            arrivals: ArrivalProcess::Constant { rate: args.rate },
        }
        .generate()
    } else {
        PrefillTraceConfig::paper(args.requests, args.batch, args.rate, args.seed).generate()
    };

    // Deployment pre-check: refuse models whose weight shards cannot fit
    // the node before spinning up a simulation that would panic mid-run.
    let shard = args.model.weight_bytes() / args.world as u64;
    if shard > device.mem_capacity {
        eprintln!(
            "error: {} needs {:.0} GB of weights per device at {}-way partitioning, but {} has {:.0} GB",
            args.model.name,
            shard as f64 / 1e9,
            args.world,
            device.name,
            device.mem_capacity as f64 / 1e9
        );
        std::process::exit(1);
    }

    println!(
        "serving {} on {} x{} | {} jobs at {:.1} req/s | workload: {}",
        args.model.name,
        device.name,
        args.world,
        args.requests,
        args.rate,
        if args.decode {
            "decode (batch 32, ctx 16)".to_string()
        } else {
            format!("prefill batch {} seq 16-128", args.batch)
        }
    );

    for engine_name in &args.engines {
        let mut sim = {
            let mut b = Simulation::builder().devices(device.clone(), args.world);
            for r in 0..args.world {
                b = b.host(liger::sim::HostSpec::mpi_rank(r));
            }
            b.build().expect("valid node")
        };
        let metrics = match *engine_name {
            "liger" => {
                let factor = profile_contention(&device, &NcclConfig::liger_tuned()).factor();
                let config = LigerConfig {
                    division_factor: args.division,
                    processing_slots: args.slots,
                    adaptive_factor: args.adaptive,
                    ..LigerConfig::default().with_contention_factor(factor)
                };
                let mut e =
                    match LigerEngine::new(args.model.clone(), cost.clone(), args.world, config) {
                        Ok(e) => e,
                        Err(err) => {
                            eprintln!("cannot build Liger engine: {err}");
                            std::process::exit(1);
                        }
                    };
                serve(&mut sim, &mut e, trace.clone())
            }
            "intra" => {
                let mut e = IntraOpEngine::new(args.model.clone(), cost.clone(), args.world)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot build Intra-Op engine: {e}");
                        std::process::exit(1);
                    });
                serve(&mut sim, &mut e, trace.clone())
            }
            flavor @ ("inter" | "inter-th") => {
                let pf = if flavor == "inter" {
                    PipelineFlavor::Measured
                } else {
                    PipelineFlavor::Theoretical
                };
                let mut e = InterOpEngine::new(args.model.clone(), cost.clone(), args.world, pf)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot build pipeline engine: {e}");
                        std::process::exit(1);
                    });
                serve(&mut sim, &mut e, trace.clone())
            }
            _ => unreachable!(),
        };
        print!(
            "  {:<9} served {:>5} | avg {:>10} | p50 {:>10} | p99 {:>10} | {:>7.1} req/s",
            engine_name,
            metrics.completed(),
            metrics.avg_latency().to_string(),
            metrics.latency_percentile(50.0).to_string(),
            metrics.latency_percentile(99.0).to_string(),
            metrics.throughput(),
        );
        if let Some(slo) = args.slo_ms {
            let d = liger::sim::SimDuration::from_millis(slo);
            print!(
                " | SLO({slo}ms): {:.1}% attained, goodput {:.1}/s",
                metrics.slo_attainment(d) * 100.0,
                metrics.goodput(d)
            );
        }
        println!();
    }
}
