//! # Liger — interleaved parallelism for distributed large-model inference
//!
//! A production-quality Rust reproduction of *Liger: Interleaving Intra- and
//! Inter-Operator Parallelism for Distributed Large Model Inference*
//! (PPoPP '24), built on a deterministic discrete-event simulator of a
//! multi-GPU node (no CUDA required).
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `liger-gpu-sim` | discrete-event multi-GPU simulator: streams, hardware launch queues, events, hosts, contention, collective rendezvous |
//! | [`collectives`] | `liger-collectives` | interconnect topology + NCCL-like collective cost model and planning |
//! | [`model`] | `liger-model` | transformer model zoo (Table 1), kernel sequences, roofline cost model, decomposition, memory accounting, offline profiling |
//! | [`kvcache`] | `liger-kvcache` | paged KV-cache block pool: block tables, ref-counted blocks, typed exhaustion |
//! | [`parallelism`] | `liger-parallelism` | the Intra-Op / Inter-Op / Inter-Th baseline engines |
//! | [`serving`] | `liger-serving` | requests, arrival processes, metrics, the serving runner, continuous batching |
//! | [`runtime`] | `liger-core` | the Liger runtime: function assembly, Algorithm 1, hybrid synchronization, contention anticipation, runtime decomposition |
//!
//! ## Quickstart
//!
//! ```
//! use liger::prelude::*;
//!
//! // The paper's V100 node: 4 GPUs, NVLink, one MPI rank per GPU.
//! let node_cost = CostModel::v100_node();
//! let mut sim = Simulation::builder()
//!     .devices(DeviceSpec::v100_16gb(), 4)
//!     .build()
//!     .unwrap();
//!
//! // Liger with the offline-profiled contention factor.
//! let factor = profile_contention(&DeviceSpec::v100_16gb(), &NcclConfig::liger_tuned()).factor();
//! let config = LigerConfig::default().with_contention_factor(factor);
//! let mut engine = LigerEngine::new(ModelConfig::opt_30b(), node_cost, 4, config).unwrap();
//!
//! // Serve a small random trace (batch 2, seq 16-128) at 20 jobs/s.
//! let trace = PrefillTraceConfig::paper(20, 2, 20.0, 42).generate();
//! let metrics = serve(&mut sim, &mut engine, trace);
//! assert_eq!(metrics.completed(), 20);
//! println!("avg latency {} at {:.1} req/s", metrics.avg_latency(), metrics.throughput());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// The discrete-event multi-GPU simulator (`liger-gpu-sim`).
pub use liger_gpu_sim as sim;

/// Interconnect topology and collectives (`liger-collectives`).
pub use liger_collectives as collectives;

/// Transformer workload model (`liger-model`).
pub use liger_model as model;

/// Paged KV-cache block pool (`liger-kvcache`).
pub use liger_kvcache as kvcache;

/// Baseline parallelism engines (`liger-parallelism`).
pub use liger_parallelism as parallelism;

/// Serving layer (`liger-serving`).
pub use liger_serving as serving;

/// The Liger runtime (`liger-core`).
pub use liger_core as runtime;

/// One-stop imports for applications.
pub mod prelude {
    pub use liger_collectives::{CollectiveKind, CollectivePlan, NcclConfig, Topology};
    pub use liger_core::{LigerConfig, LigerEngine, SyncMode};
    pub use liger_gpu_sim::prelude::*;
    pub use liger_kvcache::{BlockPool, BlockPoolConfig, OutOfBlocks};
    pub use liger_model::{
        assemble, class_totals, profile_contention, BatchShape, CostModel, ModelConfig, Phase,
        RecoveryPolicy,
    };
    pub use liger_parallelism::{InterOpEngine, IntraOpEngine, PipelineFlavor};
    pub use liger_serving::{
        serve, serve_continuous, serve_with_policy, serve_with_recovery, AdmissionConfig,
        ArrivalProcess, DecodeTraceConfig, FaultCounters, HealthConfig, InferenceEngine,
        PrefillTraceConfig, RecoveryConfig, Request, RetryPolicy, SchedulerConfig, ServingMetrics,
    };
}
