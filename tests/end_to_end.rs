//! Cross-crate integration tests: the paper's qualitative results on a
//! layer-reduced OPT-30B (geometry intact, faster to simulate).

use liger::prelude::*;

fn model() -> ModelConfig {
    ModelConfig::opt_30b().with_layers(8)
}

fn v100_sim(world: usize, trace: bool) -> Simulation {
    Simulation::builder()
        .devices(DeviceSpec::v100_16gb(), world)
        .capture_trace(trace)
        .build()
        .unwrap()
}

fn factor() -> f64 {
    profile_contention(&DeviceSpec::v100_16gb(), &NcclConfig::liger_tuned()).factor()
}

fn run_engine(kind: &str, rate: f64, count: usize) -> ServingMetrics {
    let cfg = model();
    let cost = CostModel::v100_node();
    let trace = PrefillTraceConfig::paper(count, 2, rate, 42).generate();
    let mut sim = v100_sim(4, false);
    match kind {
        "liger" => {
            let mut e = LigerEngine::new(
                cfg,
                cost,
                4,
                LigerConfig::default().with_contention_factor(factor()),
            )
            .unwrap();
            serve(&mut sim, &mut e, trace)
        }
        "intra" => {
            let mut e = IntraOpEngine::new(cfg, cost, 4).unwrap();
            serve(&mut sim, &mut e, trace)
        }
        "inter" => {
            let mut e = InterOpEngine::new(cfg, cost, 4, PipelineFlavor::Measured).unwrap();
            serve(&mut sim, &mut e, trace)
        }
        "inter_th" => {
            let mut e = InterOpEngine::new(cfg, cost, 4, PipelineFlavor::Theoretical).unwrap();
            serve(&mut sim, &mut e, trace)
        }
        other => panic!("unknown engine {other}"),
    }
}

/// The capacity of the intra-op baseline for this reduced model, used to
/// position load points.
fn intra_cap() -> f64 {
    let cm = CostModel::v100_node();
    let ops = assemble(&cm, &model(), BatchShape::prefill(2, 72), 4);
    let (compute, comm) = class_totals(&ops);
    1.0 / (compute + comm).as_secs_f64()
}

#[test]
fn every_engine_serves_the_whole_trace() {
    let rate = intra_cap() * 0.8;
    for kind in ["liger", "intra", "inter", "inter_th"] {
        let m = run_engine(kind, rate, 40);
        assert_eq!(m.completed(), 40, "{kind} lost requests");
        assert!(m.avg_latency() > SimDuration::ZERO);
    }
}

#[test]
fn liger_matches_intra_latency_at_low_rate() {
    let rate = intra_cap() * 0.3;
    let l = run_engine("liger", rate, 20).avg_latency().as_secs_f64();
    let i = run_engine("intra", rate, 20).avg_latency().as_secs_f64();
    assert!((l - i).abs() / i < 0.05, "liger {l:.4}s vs intra {i:.4}s");
}

#[test]
fn liger_beats_intra_throughput_and_inter_latency_under_load() {
    let rate = intra_cap() * 1.5;
    let liger = run_engine("liger", rate, 60);
    let intra = run_engine("intra", rate, 60);
    let inter = run_engine("inter", rate, 60);
    assert!(
        liger.throughput() > intra.throughput() * 1.05,
        "liger {:.1}/s vs intra {:.1}/s",
        liger.throughput(),
        intra.throughput()
    );
    assert!(
        liger.avg_latency() < inter.avg_latency(),
        "liger {} vs inter {}",
        liger.avg_latency(),
        inter.avg_latency()
    );
}

#[test]
fn pipeline_latency_is_full_model_latency() {
    // At a trickle, inter-op latency ≈ single-device full-model time, which
    // is roughly world× the intra-op latency minus communication effects.
    let rate = intra_cap() * 0.2;
    let intra = run_engine("intra", rate, 10).avg_latency().as_secs_f64();
    let inter = run_engine("inter", rate, 10).avg_latency().as_secs_f64();
    let ratio = inter / intra;
    assert!((2.0..5.0).contains(&ratio), "inter/intra latency ratio {ratio:.2}");
}

#[test]
fn serving_metrics_are_deterministic_across_runs() {
    let rate = intra_cap();
    for kind in ["liger", "intra", "inter"] {
        let a = run_engine(kind, rate, 25);
        let b = run_engine(kind, rate, 25);
        assert_eq!(a.avg_latency(), b.avg_latency(), "{kind} latency nondeterministic");
        assert_eq!(a.throughput(), b.throughput(), "{kind} throughput nondeterministic");
    }
}

#[test]
fn liger_trace_has_no_lost_kernels_and_synchronous_collectives() {
    let cfg = model();
    let cost = CostModel::v100_node();
    let mut sim = v100_sim(4, true);
    let mut e =
        LigerEngine::new(cfg, cost, 4, LigerConfig::default().with_contention_factor(factor()))
            .unwrap();
    let trace_in = PrefillTraceConfig::paper(12, 2, 1e4, 7).generate();
    let m = serve(&mut sim, &mut e, trace_in);
    assert_eq!(m.completed(), 12);
    assert_eq!(sim.kernels_launched(), sim.kernels_completed());

    let trace = sim.take_trace().unwrap();
    // The happens-before sanitizer must find nothing: no FIFO violations,
    // no collective skew, no data hazards, no allocation misuse.
    let diags = liger_verify::sanitize(&trace);
    assert!(diags.is_empty(), "sanitizer diagnostics on a healthy serving trace: {diags:?}");
    // Collectives: kernels sharing (name, start) across devices end together.
    use std::collections::HashMap;
    let mut groups: HashMap<(u64, SimTime), Vec<SimTime>> = HashMap::new();
    for e in trace.of_class(KernelClass::Comm) {
        groups.entry((e.tag, e.started_at)).or_default().push(e.ended_at);
    }
    for ((tag, start), ends) in groups {
        for e in &ends {
            assert_eq!(*e, ends[0], "collective of batch {tag} starting {start} ended raggedly");
        }
    }
}

#[test]
fn liger_first_batch_keeps_priority_under_burst() {
    // Principle 1 at the integration level: a burst of 8 batches arriving
    // together may slow batch 0 only by cross-class contention.
    let solo = {
        let m = run_engine("liger", 1.0, 1);
        m.avg_latency().as_secs_f64()
    };
    let cfg = model();
    let cost = CostModel::v100_node();
    let mut sim = v100_sim(4, false);
    let mut e =
        LigerEngine::new(cfg, cost, 4, LigerConfig::default().with_contention_factor(factor()))
            .unwrap();
    let trace = PrefillTraceConfig::paper(8, 2, 1e6, 42).generate();
    let m = serve(&mut sim, &mut e, trace);
    let first = m.completions().iter().find(|c| c.id == 0).unwrap().latency().as_secs_f64();
    assert!(first / solo < 1.35, "burst slowed the first batch x{:.2}", first / solo);
}
