//! Differential test for cross-request prefix caching and speculative
//! decoding: the same seeded shared-prefix trace served through the real
//! Liger engine with caching/speculation off, caching on, and caching plus
//! speculation must emit **identical per-job token streams** (the
//! deterministic oracle makes outputs a pure function of job identity), all
//! traces must pass the happens-before sanitizer with zero diagnostics and
//! zero double frees — healthy and under a mid-serve permanent device loss
//! — and a parallel event core must replay the cached configuration
//! byte-identically to the sequential one.

use liger::prelude::*;
use liger::serving::{
    output_token, serve_continuous, serve_continuous_on, ContinuousReport, GenerationJob,
    PrefixTag, SchedulerConfig, SpecDecodeConfig,
};

const WORLD: usize = 4;

fn model() -> ModelConfig {
    ModelConfig::opt_30b().with_layers(8)
}

fn engine() -> LigerEngine {
    let factor = profile_contention(&DeviceSpec::v100_16gb(), &NcclConfig::liger_tuned()).factor();
    LigerEngine::new(
        model(),
        CostModel::v100_node(),
        WORLD,
        LigerConfig::default().with_contention_factor(factor),
    )
    .unwrap()
}

/// A shared-prefix workload: three prompt classes, each with a 48-token
/// common prefix and a 16/32-token unique tail, single-row (only single-row
/// sequences may adopt a cached chain), arrivals spaced so earlier prompts
/// publish before later ones admit.
fn jobs(n: u64) -> Vec<GenerationJob> {
    (0..n)
        .map(|i| GenerationJob {
            id: i,
            batch: 1,
            prompt_len: 48 + 16 * (1 + (i % 2) as u32),
            output_tokens: if i % 3 == 0 { 8 } else { 3 },
            arrival: SimTime::from_secs_f64(i as f64 / 400.0),
            prefix: PrefixTag::shared(i % 3, 48),
        })
        .collect()
}

/// The three configurations under test.
#[derive(Clone, Copy)]
enum Mode {
    Baseline,
    Cached,
    CachedSpeculative,
}

fn config(mode: Mode, health: bool) -> SchedulerConfig {
    let m = model();
    let cap = DeviceSpec::v100_16gb().mem_capacity;
    let mut c = match mode {
        Mode::Baseline => SchedulerConfig::sized_for(&m, WORLD as u32, cap),
        Mode::Cached | Mode::CachedSpeculative => {
            SchedulerConfig::sized_for_shared(&m, WORLD as u32, cap, 256)
        }
    };
    if matches!(mode, Mode::CachedSpeculative) {
        c.spec = Some(SpecDecodeConfig::for_target(&m, 3, 0.8));
    }
    if health {
        c.health = Some(HealthConfig {
            interval: SimDuration::from_millis(1),
            suspicion_threshold: 3,
            probe_stream: 3,
            ..HealthConfig::default()
        });
    }
    c
}

fn serve(mode: Mode, faults: FaultSpec, n: u64, health: bool) -> (ContinuousReport, Trace, u64) {
    let mut sim = Simulation::builder()
        .devices(DeviceSpec::v100_16gb(), WORLD)
        .faults(faults)
        .capture_trace(true)
        .build()
        .unwrap();
    let mut e = engine();
    let m = model();
    let cost = CostModel::v100_node();
    let report = serve_continuous(&mut sim, &mut e, jobs(n), &m, &cost, config(mode, health));
    let double_frees = sim.memory_double_frees();
    (report, sim.take_trace().expect("trace capture was enabled"), double_frees)
}

/// Every recorded stream must be the oracle's: `output_tokens` values, each
/// a pure function of the job and the step index.
fn assert_oracle_streams(report: &ContinuousReport, all: &[GenerationJob]) {
    for r in report.generation.results() {
        let job = all[r.id as usize];
        let stream = &report.outputs[&job.id];
        assert_eq!(stream.len(), job.output_tokens.max(1) as usize, "job {}", job.id);
        for (t, &tok) in stream.iter().enumerate() {
            assert_eq!(tok, output_token(&job, t as u32), "job {} token {t}", job.id);
        }
    }
}

#[test]
fn caching_and_speculation_never_change_the_tokens_healthy() {
    let n = 9;
    let (base, base_trace, base_df) = serve(Mode::Baseline, FaultSpec::new(7), n, false);
    let (cached, cached_trace, cached_df) = serve(Mode::Cached, FaultSpec::new(7), n, false);
    let (spec, spec_trace, spec_df) = serve(Mode::CachedSpeculative, FaultSpec::new(7), n, false);

    for (label, r) in [("baseline", &base), ("cached", &cached), ("cached+spec", &spec)] {
        assert_eq!(r.generation.completed(), n as usize, "{label}: all jobs complete");
        assert_oracle_streams(r, &jobs(n));
    }
    assert_eq!(base.outputs, cached.outputs, "caching changed an output stream");
    assert_eq!(base.outputs, spec.outputs, "speculation changed an output stream");

    // The cache actually did something: warm admissions adopted blocks.
    assert!(cached.serving.prefix().hits > 0, "shared prompts must hit the cache");
    assert!(cached.serving.prefix().cached_tokens > 0);
    assert!(spec.serving.spec().rounds > 0, "speculative rounds must run");

    for (label, trace, df) in [
        ("baseline", &base_trace, base_df),
        ("cached", &cached_trace, cached_df),
        ("cached+spec", &spec_trace, spec_df),
    ] {
        assert_eq!(df, 0, "{label}: double frees");
        let diags = liger_verify::sanitize(trace);
        assert_eq!(diags.len(), 0, "{label}: sanitizer diagnostics: {diags:?}");
    }
}

#[test]
fn caching_and_speculation_survive_a_device_loss_sanitizer_clean() {
    let n = 10;
    let faults = || FaultSpec::new(7).device_down(DeviceId(2), SimTime::from_millis(2));
    for (label, mode) in [("cached", Mode::Cached), ("cached+spec", Mode::CachedSpeculative)] {
        let (report, trace, df) = serve(mode, faults(), n, true);
        let rec = report.serving.recovery();
        assert_eq!(rec.losses, 1, "{label}: the watchdog must confirm the loss");
        assert_eq!(
            report.generation.completed() + rec.shed_requests() as usize,
            n as usize,
            "{label}: every job completes or is shed with a reason"
        );
        assert!(report.generation.completed() > 0, "{label}: survivors keep serving");
        // Whatever completed still carries the oracle's exact stream: the
        // flush-on-loss rebuilt state without corrupting any output.
        assert_oracle_streams(&report, &jobs(n));
        assert_eq!(df, 0, "{label}: double frees");
        let diags = liger_verify::sanitize(&trace);
        assert_eq!(diags.len(), 0, "{label}: sanitizer diagnostics: {diags:?}");
    }
}

#[test]
fn cached_speculative_serving_replays_byte_identically_across_cores() {
    let n = 8;
    let run = |core: CoreSelect| {
        let mut sim = Simulation::builder()
            .devices(DeviceSpec::v100_16gb(), WORLD)
            .faults(FaultSpec::new(7))
            .capture_trace(true)
            .build()
            .unwrap();
        let mut e = engine();
        let m = model();
        let cost = CostModel::v100_node();
        let report = serve_continuous_on(
            core,
            &mut sim,
            &mut e,
            jobs(n),
            &m,
            &cost,
            config(Mode::CachedSpeculative, false),
        );
        (report, sim.take_trace().expect("trace capture was enabled"))
    };
    let (seq_report, seq_trace) = run(CoreSelect::Seq);
    let seq_json = seq_trace.to_chrome_json();
    for workers in [1usize, 2, 4] {
        let (par_report, par_trace) = run(CoreSelect::Par { workers });
        assert_eq!(
            par_report.outputs, seq_report.outputs,
            "par{workers}: output streams diverged from the sequential core"
        );
        assert_eq!(
            par_trace.to_chrome_json(),
            seq_json,
            "par{workers}: trace bytes diverged from the sequential core"
        );
        let diags = liger_verify::sanitize(&par_trace);
        assert_eq!(diags.len(), 0, "par{workers}: sanitizer diagnostics: {diags:?}");
    }
}
