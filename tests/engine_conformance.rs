//! Cross-engine conformance: every engine serves the same seeded trace
//! completely, and same-seed runs are byte-identical (determinism survives
//! the internal PRNG).

use liger::prelude::*;
use liger_gpu_sim::ToJson;
use liger_parallelism::PipelineFlavor;

fn tiny() -> ModelConfig {
    ModelConfig {
        name: "Conf-Tiny".into(),
        layers: 3,
        heads: 8,
        hidden: 1024,
        vocab: 2048,
        dtype_bytes: 2,
    }
}

fn trace(seed: u64) -> Vec<Request> {
    PrefillTraceConfig {
        count: 24,
        batch: 2,
        seq_min: 16,
        seq_max: 96,
        arrivals: ArrivalProcess::Poisson { rate: 400.0 },
        seed,
    }
    .generate()
}

fn engines(world: usize) -> Vec<(&'static str, Box<dyn InferenceEngine>)> {
    let cfg = tiny();
    let cost = CostModel::v100_node();
    vec![
        (
            "intra-op",
            Box::new(IntraOpEngine::new(cfg.clone(), cost.clone(), world).unwrap())
                as Box<dyn InferenceEngine>,
        ),
        (
            "inter-op",
            Box::new(
                InterOpEngine::new(cfg.clone(), cost.clone(), world, PipelineFlavor::Measured)
                    .unwrap(),
            ),
        ),
        (
            "inter-th",
            Box::new(
                InterOpEngine::new(cfg.clone(), cost.clone(), world, PipelineFlavor::Theoretical)
                    .unwrap(),
            ),
        ),
        ("liger", Box::new(LigerEngine::new(cfg, cost, world, LigerConfig::default()).unwrap())),
    ]
}

fn run_once(name: &str, engine: &mut dyn InferenceEngine, seed: u64) -> ServingMetrics {
    let mut sim = Simulation::builder().devices(DeviceSpec::v100_16gb(), 2).build().unwrap();
    let requests = trace(seed);
    let submitted = requests.len();
    let metrics = serve(&mut sim, engine, requests);
    assert_eq!(
        metrics.completed(),
        submitted,
        "{name} completed fewer requests than were submitted"
    );
    metrics
}

#[test]
fn every_engine_completes_the_shared_trace() {
    for (name, mut engine) in engines(2) {
        run_once(name, engine.as_mut(), 0xc0ffee);
    }
}

#[test]
fn same_seed_runs_are_byte_identical() {
    for seed in [0xc0ffee_u64, 42] {
        for (name, _) in engines(2) {
            // Fresh engine per run: determinism must come from the seed, not
            // from shared mutable state.
            let first = engines(2)
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, mut e)| run_once(name, e.as_mut(), seed))
                .unwrap();
            let second = engines(2)
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, mut e)| run_once(name, e.as_mut(), seed))
                .unwrap();
            assert_eq!(
                first.to_json(),
                second.to_json(),
                "{name} diverged across same-seed runs (seed {seed:#x})"
            );
            // The full completion log must match, not just the summary.
            assert_eq!(first.completions(), second.completions(), "{name} completion log diverged");
        }
    }
}

#[test]
fn different_seeds_change_the_trace() {
    // Sanity check that the seed actually drives the workload: otherwise the
    // byte-identical assertion above would be vacuous.
    let a = trace(1);
    let b = trace(2);
    assert_ne!(
        a.iter().map(|r| r.arrival).collect::<Vec<_>>(),
        b.iter().map(|r| r.arrival).collect::<Vec<_>>()
    );
}
