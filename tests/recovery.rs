//! Elastic-recovery integration tier: permanent device loss under the full
//! Liger engine.
//!
//! * Under the **replicate** policy a mid-trace `DeviceDown` loses nothing:
//!   the watchdog confirms the loss within its bound, the engine drains,
//!   replans 4 → 3, rebuilds the lost KV shards, and every request completes.
//! * Under the **recompute** policy with a tight admission watermark the only
//!   requests that go missing are the ones the admission controller shed —
//!   each with a recorded reason; `completed + shed == submitted` always.
//! * Same-seed recovery runs are **byte-identical**, Chrome trace included:
//!   detection, drain barriers and KV-recovery kernels are all deterministic.

use liger::prelude::*;
use liger_gpu_sim::{FaultSpec, ToJson, Trace};

fn chunky() -> ModelConfig {
    ModelConfig {
        name: "Recovery-Test".into(),
        layers: 4,
        heads: 8,
        hidden: 4096,
        vocab: 4096,
        dtype_bytes: 2,
    }
}

fn trace(count: usize, rate: f64) -> Vec<Request> {
    PrefillTraceConfig {
        count,
        batch: 2,
        seq_min: 64,
        seq_max: 64,
        arrivals: ArrivalProcess::Constant { rate },
        seed: 0,
    }
    .generate()
}

/// The probe stream shares a hardware queue with the Liger engine's
/// secondary stream (device `connections = 2`), so the watchdog needs slack
/// for normal kernel queueing: 1 ms probes, three strikes, 4 ms bound.
fn config(policy: RecoveryPolicy, watermark: usize) -> RecoveryConfig {
    RecoveryConfig {
        health: HealthConfig {
            interval: SimDuration::from_millis(1),
            suspicion_threshold: 3,
            probe_stream: 3,
            ..HealthConfig::default()
        },
        policy,
        admission: AdmissionConfig { queue_watermark: watermark },
    }
}

/// Serve `requests` on a 4-way Liger engine with device 3 dying at `loss`.
/// Returns the metrics, the surviving world size and (when `capture`) the
/// exported Chrome trace.
fn run_with_loss(
    requests: Vec<Request>,
    loss: SimTime,
    config: RecoveryConfig,
    capture: bool,
) -> (ServingMetrics, usize, Option<String>) {
    let mut b = Simulation::builder()
        .devices(DeviceSpec::v100_16gb(), 4)
        .capture_trace(capture)
        .faults(FaultSpec::new(9).device_down(DeviceId(3), loss));
    for r in 0..4 {
        b = b.host(HostSpec::mpi_rank(r));
    }
    let mut sim = b.build().unwrap();
    let model = chunky();
    let cost = CostModel::v100_node();
    let mut engine =
        LigerEngine::new(model.clone(), cost.clone(), 4, LigerConfig::default()).unwrap();
    let metrics = serve_with_recovery(&mut sim, &mut engine, requests, &model, &cost, config);
    let json = if capture { Some(sim.take_trace().unwrap().to_chrome_json()) } else { None };
    (metrics, engine.world(), json)
}

#[test]
fn replicate_recovery_completes_every_request() {
    let requests = trace(24, 400.0);
    let submitted = requests.len();
    let config = config(RecoveryPolicy::Replicate, 64);
    let (m, world, _) = run_with_loss(requests, SimTime::from_millis(10), config, false);
    assert_eq!(m.recovery().losses, 1, "exactly one confirmed loss");
    assert_eq!(m.completed(), submitted, "replicate recovery must lose nothing");
    assert!(m.recovery().shed.is_empty(), "no shedding at a generous watermark");
    assert_eq!(world, 3, "engine replanned over the three survivors");
    let labels: Vec<&str> = m.recovery_timeline().iter().map(|&(l, _)| l).collect();
    assert_eq!(labels, vec!["draining", "recovering", "degraded"]);
}

#[test]
fn recompute_recovery_sheds_only_with_recorded_reasons() {
    // A hot trace and a tight watermark: arrivals pile up behind the drain +
    // prefill replay, and the admission controller sheds the overflow on
    // entry to degraded mode. Nothing may go missing silently.
    let requests = trace(48, 3000.0);
    let submitted = requests.len();
    let config = config(RecoveryPolicy::Recompute, 4);
    let (m, _, _) = run_with_loss(requests, SimTime::from_millis(4), config, false);
    let shed = m.recovery().shed_requests() as usize;
    assert!(shed > 0, "the tight watermark should shed under this burst");
    assert_eq!(
        m.completed() + shed,
        submitted,
        "every request either completes or is shed — no silent drops"
    );
    for record in &m.recovery().shed {
        assert!(!record.reason.name().is_empty(), "shed #{} has no reason", record.id);
    }
    assert!(m.recovery().recompute_tokens > 0, "recompute must replay prefill tokens");
}

#[test]
fn detection_latency_stays_within_the_watchdog_bound() {
    for policy in [RecoveryPolicy::Replicate, RecoveryPolicy::Recompute] {
        let config = config(policy, 64);
        let (m, _, _) = run_with_loss(trace(24, 400.0), SimTime::from_millis(10), config, false);
        assert_eq!(m.recovery().losses, 1);
        assert!(
            m.recovery().detection_latency <= config.health.detection_bound(),
            "{}: detection {} beyond bound {}",
            policy.name(),
            m.recovery().detection_latency,
            config.health.detection_bound()
        );
        assert!(
            m.recovery().detection_latency > SimDuration::ZERO,
            "{}: detection latency must be observable",
            policy.name()
        );
    }
}

#[test]
fn same_seed_recovery_runs_export_identical_chrome_traces() {
    let run = || {
        let config = config(RecoveryPolicy::Recompute, 64);
        let (m, _, json) = run_with_loss(trace(24, 400.0), SimTime::from_millis(10), config, true);
        assert_eq!(m.recovery().losses, 1, "the loss must be part of the traced run");
        (json.unwrap(), m.to_json())
    };
    let (trace_a, metrics_a) = run();
    let (trace_b, metrics_b) = run();
    assert_eq!(trace_a, trace_b, "same-seed recovery runs must export byte-identical traces");
    assert_eq!(metrics_a, metrics_b, "same-seed recovery runs must report identical metrics");
    assert!(
        trace_a.contains("kv-recover"),
        "the Chrome trace must include the KV-recovery kernels"
    );
    // The recovery path — drain barrier, replan, KV rebuild — must leave a
    // trace the happens-before sanitizer accepts without diagnostics.
    let parsed = Trace::parse_chrome_json(&trace_a).expect("exported trace must re-parse");
    let diags = liger_verify::sanitize_parsed(&parsed);
    assert!(diags.is_empty(), "sanitizer diagnostics on the recovery trace: {diags:?}");
}
