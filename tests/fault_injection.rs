//! Fault-injection integration tier: deterministic fault schedules and
//! degraded-mode serving across every engine.
//!
//! * Same-seed fault runs must be **byte-identical** — the fault layer is a
//!   pure function of `(seed, sim-time, id)`, so two runs of the same
//!   seeded trace under the same schedule export the same Chrome trace.
//! * Every serving engine completes a seeded trace through a mid-run
//!   straggler window: no hangs, no lost requests, and the completion log
//!   drains in non-decreasing finish order.

use liger::prelude::*;
use liger_gpu_sim::{FaultSpec, KernelFaultParams, ToJson, Trace};
use liger_parallelism::PipelineFlavor;
use liger_serving::{serve_with_policy, RetryPolicy};

fn tiny() -> ModelConfig {
    ModelConfig {
        name: "Fault-Tiny".into(),
        layers: 3,
        heads: 8,
        hidden: 1024,
        vocab: 2048,
        dtype_bytes: 2,
    }
}

fn trace(seed: u64) -> Vec<Request> {
    PrefillTraceConfig {
        count: 24,
        batch: 2,
        seq_min: 16,
        seq_max: 96,
        arrivals: ArrivalProcess::Poisson { rate: 400.0 },
        seed,
    }
    .generate()
}

/// Device 0 runs 2.5× slow in a window placed mid-run for the trace above
/// (arrivals span roughly the first 60 ms at 400 req/s).
fn mid_run_straggler(seed: u64) -> FaultSpec {
    FaultSpec::new(seed).straggler(
        DeviceId(0),
        SimTime::from_millis(5),
        SimTime::from_millis(40),
        2.5,
    )
}

fn engines(world: usize) -> Vec<(&'static str, Box<dyn InferenceEngine>)> {
    let cfg = tiny();
    let cost = CostModel::v100_node();
    vec![
        (
            "intra-op",
            Box::new(IntraOpEngine::new(cfg.clone(), cost.clone(), world).unwrap())
                as Box<dyn InferenceEngine>,
        ),
        (
            "inter-op",
            Box::new(
                InterOpEngine::new(cfg.clone(), cost.clone(), world, PipelineFlavor::Measured)
                    .unwrap(),
            ),
        ),
        (
            "inter-th",
            Box::new(
                InterOpEngine::new(cfg.clone(), cost.clone(), world, PipelineFlavor::Theoretical)
                    .unwrap(),
            ),
        ),
        ("liger", Box::new(LigerEngine::new(cfg, cost, world, LigerConfig::default()).unwrap())),
    ]
}

fn faulty_sim(faults: FaultSpec, capture: bool) -> Simulation {
    Simulation::builder()
        .devices(DeviceSpec::v100_16gb(), 2)
        .capture_trace(capture)
        .faults(faults)
        .build()
        .unwrap()
}

#[test]
fn same_seed_fault_schedules_export_identical_chrome_traces() {
    let run = || {
        let mut sim = faulty_sim(
            mid_run_straggler(0xfa01).kernel_failures(KernelFaultParams {
                prob: 0.05,
                fraction: 0.5,
                from: SimTime::ZERO,
                until: SimTime::from_millis(60),
            }),
            true,
        );
        let mut engine = engines(2).pop().unwrap().1; // liger
        let metrics =
            serve_with_policy(&mut sim, engine.as_mut(), trace(7), RetryPolicy::default());
        (sim.take_trace().unwrap().to_chrome_json(), metrics.to_json())
    };
    let (trace_a, metrics_a) = run();
    let (trace_b, metrics_b) = run();
    assert_eq!(trace_a, trace_b, "same-seed fault runs must export byte-identical traces");
    assert_eq!(metrics_a, metrics_b, "same-seed fault runs must report identical metrics");
    assert!(!trace_a.is_empty());
    // Even under stragglers and kernel failures the trace must sanitize
    // clean: failed kernels are retried through host-ordered relaunches,
    // never through racy double-submission.
    let parsed = Trace::parse_chrome_json(&trace_a).expect("exported trace must re-parse");
    let diags = liger_verify::sanitize_parsed(&parsed);
    assert!(diags.is_empty(), "sanitizer diagnostics on the fault-run trace: {diags:?}");
}

#[test]
fn different_fault_seeds_change_kernel_failures() {
    // The failure coin must actually depend on the schedule seed, otherwise
    // the byte-identical assertion above is vacuous.
    let run = |seed: u64| {
        let mut sim = faulty_sim(
            FaultSpec::new(seed).kernel_failures(KernelFaultParams {
                prob: 0.3,
                fraction: 0.5,
                from: SimTime::ZERO,
                until: SimTime::from_millis(60),
            }),
            false,
        );
        let mut engine = engines(2).pop().unwrap().1;
        let m = serve_with_policy(&mut sim, engine.as_mut(), trace(7), RetryPolicy::default());
        m.faults().kernel_failures
    };
    let counts: Vec<u64> = (0..8).map(run).collect();
    assert!(
        counts.iter().any(|&c| c != counts[0]),
        "kernel-failure counts identical across 8 seeds: {counts:?}"
    );
}

#[test]
fn every_engine_survives_a_mid_run_straggler() {
    for (name, mut engine) in engines(2) {
        let mut sim = faulty_sim(mid_run_straggler(3), false);
        let requests = trace(11);
        let submitted = requests.len();
        let metrics =
            serve_with_policy(&mut sim, engine.as_mut(), requests, RetryPolicy::default());
        assert_eq!(metrics.completed(), submitted, "{name} lost requests under a straggler");
        // The serving loop records completions as they drain, so the log's
        // finish times must be non-decreasing — a request finishing "before"
        // an already-drained one would mean causality broke under the fault.
        let finishes: Vec<SimTime> = metrics.completions().iter().map(|c| c.finished).collect();
        assert!(
            finishes.windows(2).all(|w| w[0] <= w[1]),
            "{name} completion log is not monotone: {finishes:?}"
        );
        for c in metrics.completions() {
            assert!(c.finished >= c.arrival, "{name} finished a request before it arrived");
        }
    }
}

#[test]
fn straggler_slows_but_does_not_stall_serving() {
    // Healthy and degraded runs of the same trace: the degraded run must be
    // slower (the window covers the bulk of the work) yet still finite.
    let serve_run = |faults: Option<FaultSpec>| {
        let mut b = Simulation::builder().devices(DeviceSpec::v100_16gb(), 2);
        if let Some(f) = faults {
            b = b.faults(f);
        }
        let mut sim = b.build().unwrap();
        let mut engine = engines(2).pop().unwrap().1;
        serve_with_policy(&mut sim, engine.as_mut(), trace(11), RetryPolicy::default())
    };
    let healthy = serve_run(None);
    let degraded = serve_run(Some(mid_run_straggler(3)));
    assert_eq!(healthy.completed(), degraded.completed());
    assert!(
        degraded.avg_latency() > healthy.avg_latency(),
        "straggler window should raise average latency ({:?} vs {:?})",
        degraded.avg_latency(),
        healthy.avg_latency()
    );
}
