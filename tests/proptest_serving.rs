//! Property tests across the whole stack: any sane workload is served
//! completely, deterministically and with physically consistent metrics by
//! every engine.

use liger::prelude::*;
use proptest::prelude::*;

fn tiny() -> ModelConfig {
    ModelConfig {
        name: "PT-Tiny".into(),
        layers: 3,
        heads: 8,
        hidden: 1024,
        vocab: 2048,
        dtype_bytes: 2,
    }
}

#[derive(Debug, Clone)]
struct Workload {
    count: usize,
    batch: u32,
    rate: f64,
    seed: u64,
    poisson: bool,
}

fn workload() -> impl Strategy<Value = Workload> {
    (2usize..25, 1u32..9, 10.0f64..5000.0, any::<u64>(), any::<bool>()).prop_map(
        |(count, batch, rate, seed, poisson)| Workload { count, batch, rate, seed, poisson },
    )
}

fn trace_of(w: &Workload) -> Vec<Request> {
    PrefillTraceConfig {
        count: w.count,
        batch: w.batch,
        seq_min: 16,
        seq_max: 128,
        arrivals: if w.poisson {
            ArrivalProcess::Poisson { rate: w.rate }
        } else {
            ArrivalProcess::Constant { rate: w.rate }
        },
        seed: w.seed,
    }
    .generate()
}

fn engines(world: usize) -> Vec<(&'static str, Box<dyn InferenceEngine>)> {
    let cfg = tiny();
    let cost = CostModel::v100_node();
    vec![
        (
            "liger",
            Box::new(
                LigerEngine::new(cfg.clone(), cost.clone(), world, LigerConfig::default()).unwrap(),
            ) as Box<dyn InferenceEngine>,
        ),
        ("intra", Box::new(IntraOpEngine::new(cfg.clone(), cost.clone(), world).unwrap())),
        (
            "inter",
            Box::new(InterOpEngine::new(cfg, cost, world, PipelineFlavor::Measured).unwrap()),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_engine_serves_any_workload(w in workload()) {
        for (name, mut engine) in engines(2) {
            let mut sim = Simulation::builder()
                .devices(DeviceSpec::v100_16gb(), 2)
                .build()
                .unwrap();
            let m = serve(&mut sim, engine.as_mut(), trace_of(&w));
            prop_assert_eq!(m.completed(), w.count, "{} lost requests on {:?}", name, w);
            // Physical consistency: completion after arrival; latency at
            // least one kernel's worth; throughput bounded by arrival+1 job.
            for c in m.completions() {
                prop_assert!(c.finished > c.arrival);
            }
            prop_assert!(m.max_latency() >= m.latency_percentile(50.0));
            prop_assert!(m.avg_latency() <= m.max_latency());
        }
    }

    #[test]
    fn liger_sync_modes_all_complete(w in workload()) {
        for mode in [SyncMode::Hybrid, SyncMode::CpuGpu, SyncMode::InterStream] {
            let mut sim = Simulation::builder()
                .devices(DeviceSpec::v100_16gb(), 2)
                .build()
                .unwrap();
            let mut e = LigerEngine::new(
                tiny(),
                CostModel::v100_node(),
                2,
                LigerConfig::default().with_sync_mode(mode),
            )
            .unwrap();
            let m = serve(&mut sim, &mut e, trace_of(&w));
            prop_assert_eq!(m.completed(), w.count, "{:?} lost requests on {:?}", mode, w);
        }
    }

    #[test]
    fn division_factors_preserve_completeness(w in workload(), df in 1u32..20) {
        let mut sim = Simulation::builder()
            .devices(DeviceSpec::v100_16gb(), 2)
            .build()
            .unwrap();
        let mut e = LigerEngine::new(
            tiny(),
            CostModel::v100_node(),
            2,
            LigerConfig::default().with_division_factor(df),
        )
        .unwrap();
        let m = serve(&mut sim, &mut e, trace_of(&w));
        prop_assert_eq!(m.completed(), w.count);
    }
}
