//! Property tests across the whole stack: any sane workload is served
//! completely, deterministically and with physically consistent metrics by
//! every engine.
//!
//! Runs on the internal [`liger_gpu_sim::testkit`] harness; rerun a failing
//! case with the `LIGER_PROP_SEED` it prints.

use liger::prelude::*;
use liger_gpu_sim::testkit::{check, Gen};

fn tiny() -> ModelConfig {
    ModelConfig {
        name: "PT-Tiny".into(),
        layers: 3,
        heads: 8,
        hidden: 1024,
        vocab: 2048,
        dtype_bytes: 2,
    }
}

#[derive(Debug, Clone)]
struct Workload {
    count: usize,
    batch: u32,
    rate: f64,
    seed: u64,
    poisson: bool,
}

fn gen_workload(g: &mut Gen) -> Workload {
    Workload {
        count: g.usize_in(2, 25),
        batch: g.u32_in(1, 9),
        rate: g.f64_in(10.0, 5000.0),
        seed: g.any_u64(),
        poisson: g.bool(),
    }
}

fn trace_of(w: &Workload) -> Vec<Request> {
    PrefillTraceConfig {
        count: w.count,
        batch: w.batch,
        seq_min: 16,
        seq_max: 128,
        arrivals: if w.poisson {
            ArrivalProcess::Poisson { rate: w.rate }
        } else {
            ArrivalProcess::Constant { rate: w.rate }
        },
        seed: w.seed,
    }
    .generate()
}

fn engines(world: usize) -> Vec<(&'static str, Box<dyn InferenceEngine>)> {
    let cfg = tiny();
    let cost = CostModel::v100_node();
    vec![
        (
            "liger",
            Box::new(
                LigerEngine::new(cfg.clone(), cost.clone(), world, LigerConfig::default()).unwrap(),
            ) as Box<dyn InferenceEngine>,
        ),
        ("intra", Box::new(IntraOpEngine::new(cfg.clone(), cost.clone(), world).unwrap())),
        (
            "inter",
            Box::new(InterOpEngine::new(cfg, cost, world, PipelineFlavor::Measured).unwrap()),
        ),
    ]
}

#[test]
fn every_engine_serves_any_workload() {
    check("every_engine_serves_any_workload", 24, |g| {
        let w = gen_workload(g);
        for (name, mut engine) in engines(2) {
            let mut sim =
                Simulation::builder().devices(DeviceSpec::v100_16gb(), 2).build().unwrap();
            let m = serve(&mut sim, engine.as_mut(), trace_of(&w));
            assert_eq!(m.completed(), w.count, "{} lost requests on {:?}", name, w);
            // Physical consistency: completion after arrival; latency at
            // least one kernel's worth; throughput bounded by arrival+1 job.
            for c in m.completions() {
                assert!(c.finished > c.arrival);
            }
            assert!(m.max_latency() >= m.latency_percentile(50.0));
            assert!(m.avg_latency() <= m.max_latency());
        }
    });
}

#[test]
fn liger_sync_modes_all_complete() {
    check("liger_sync_modes_all_complete", 24, |g| {
        let w = gen_workload(g);
        for mode in [SyncMode::Hybrid, SyncMode::CpuGpu, SyncMode::InterStream] {
            let mut sim =
                Simulation::builder().devices(DeviceSpec::v100_16gb(), 2).build().unwrap();
            let mut e = LigerEngine::new(
                tiny(),
                CostModel::v100_node(),
                2,
                LigerConfig::default().with_sync_mode(mode),
            )
            .unwrap();
            let m = serve(&mut sim, &mut e, trace_of(&w));
            assert_eq!(m.completed(), w.count, "{:?} lost requests on {:?}", mode, w);
        }
    });
}

#[test]
fn division_factors_preserve_completeness() {
    check("division_factors_preserve_completeness", 24, |g| {
        let w = gen_workload(g);
        let df = g.u32_in(1, 20);
        let mut sim = Simulation::builder().devices(DeviceSpec::v100_16gb(), 2).build().unwrap();
        let mut e = LigerEngine::new(
            tiny(),
            CostModel::v100_node(),
            2,
            LigerConfig::default().with_division_factor(df),
        )
        .unwrap();
        let m = serve(&mut sim, &mut e, trace_of(&w));
        assert_eq!(m.completed(), w.count);
    });
}
