//! Full-generation serving through the real Liger engine: prefill and
//! decode iterations of concurrent conversations interleave inside the
//! runtime, mixing both phases in the processing list — a workload shape
//! the paper's per-phase benchmarks never exercise together.

use liger::prelude::*;
use liger::serving::{serve_generations, GenerationJob, PrefixTag};

fn jobs(n: u64, rate: f64, tokens: u32) -> Vec<GenerationJob> {
    (0..n)
        .map(|i| GenerationJob {
            id: i,
            batch: 4,
            prompt_len: 64,
            output_tokens: tokens,
            arrival: SimTime::from_secs_f64(i as f64 / rate),
            prefix: PrefixTag::NONE,
        })
        .collect()
}

fn engine(world: usize) -> LigerEngine {
    let cfg = ModelConfig::opt_30b().with_layers(8);
    let factor = profile_contention(&DeviceSpec::v100_16gb(), &NcclConfig::liger_tuned()).factor();
    LigerEngine::new(
        cfg,
        CostModel::v100_node(),
        world,
        LigerConfig::default().with_contention_factor(factor),
    )
    .unwrap()
}

fn sim(world: usize) -> Simulation {
    Simulation::builder().devices(DeviceSpec::v100_16gb(), world).build().unwrap()
}

#[test]
fn concurrent_generations_complete_with_sane_metrics() {
    let mut e = engine(4);
    let m = serve_generations(&mut sim(4), &mut e, jobs(8, 50.0, 6));
    assert_eq!(m.completed(), 8);
    for r in m.results() {
        assert!(r.first_token <= r.finished);
        assert!(r.ttft() > SimDuration::ZERO);
        assert!(r.tpot() > SimDuration::ZERO);
    }
    assert!(m.token_throughput() > 0.0);

    // Unloaded, a decode step is far cheaper than the prefill (under load
    // decode iterations queue behind other jobs' prefills, so the ordering
    // only holds for a solo generation).
    let mut e = engine(4);
    let solo = serve_generations(&mut sim(4), &mut e, jobs(1, 1.0, 6));
    let r = solo.results()[0];
    assert!(r.tpot() < r.ttft(), "solo: tpot {} >= ttft {}", r.tpot(), r.ttft());
}

#[test]
fn mixed_phase_interleaving_is_deterministic() {
    let run = || {
        let mut e = engine(2);
        let m = serve_generations(&mut sim(2), &mut e, jobs(5, 100.0, 4));
        let mut v: Vec<(u64, SimTime)> = m.results().iter().map(|r| (r.id, r.finished)).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(run(), run());
}

#[test]
fn generation_latency_scales_with_output_length() {
    let total = |tokens: u32| {
        let mut e = engine(2);
        let m = serve_generations(&mut sim(2), &mut e, jobs(1, 1.0, tokens));
        m.avg_total().as_secs_f64()
    };
    let short = total(2);
    let long = total(12);
    assert!(
        long > short * 2.0,
        "12 tokens ({long:.4}s) should cost well over 2x 2 tokens ({short:.4}s)"
    );
}
