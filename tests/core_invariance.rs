//! Serving-level cross-core invariance: every serving entry point, run on
//! the parallel event core, must reproduce the sequential core's metrics
//! and trace byte-for-byte — including under kernel faults, retries, and a
//! mid-serve permanent device loss — and the parallel core's traces must be
//! clean under the happens-before sanitizer.
//!
//! The sim-level properties (`crates/gpu-sim/tests/core_props.rs`) prove
//! the cores agree on raw workloads; this suite proves the agreement
//! survives the full serving stack: reactive drivers, retry policies,
//! continuous batching over the paged KV pool, and drain-and-replan
//! recovery.

use liger::prelude::*;
use liger::serving::{
    serve_continuous_on, serve_on, serve_with_policy_on, serve_with_recovery_on, GenerationJob,
    PrefixTag, RecoveryConfig, RetryPolicy, SchedulerConfig,
};
use liger_gpu_sim::ToJson;

const WORLD: usize = 4;

fn model() -> ModelConfig {
    ModelConfig::opt_30b().with_layers(8)
}

fn engine() -> LigerEngine {
    let factor = profile_contention(&DeviceSpec::v100_16gb(), &NcclConfig::liger_tuned()).factor();
    LigerEngine::new(
        model(),
        CostModel::v100_node(),
        WORLD,
        LigerConfig::default().with_contention_factor(factor),
    )
    .unwrap()
}

fn sim(faults: FaultSpec) -> Simulation {
    Simulation::builder()
        .devices(DeviceSpec::v100_16gb(), WORLD)
        .faults(faults)
        .capture_trace(true)
        .build()
        .unwrap()
}

fn requests(n: usize, rate: f64) -> Vec<liger::serving::Request> {
    PrefillTraceConfig::paper(n, 2, rate, 42).generate()
}

fn jobs(n: u64, rate: f64) -> Vec<GenerationJob> {
    (0..n)
        .map(|i| GenerationJob {
            id: i,
            batch: 2,
            prompt_len: 48 + 16 * (i % 3) as u32,
            output_tokens: if i % 4 == 0 { 12 } else { 3 },
            arrival: SimTime::from_secs_f64(i as f64 / rate),
            prefix: PrefixTag::NONE,
        })
        .collect()
}

/// The three parallel configurations every scenario is checked at.
const PAR: [CoreSelect; 3] = [
    CoreSelect::Par { workers: 1 },
    CoreSelect::Par { workers: 2 },
    CoreSelect::Par { workers: 4 },
];

/// Runs `scenario` once per core and asserts the serialized metrics and the
/// exported Chrome trace are byte-identical to the sequential oracle's; the
/// parallel traces additionally pass the happens-before sanitizer.
fn assert_invariant(scenario: impl Fn(CoreSelect) -> (String, Trace)) {
    let (oracle_metrics, oracle_trace) = scenario(CoreSelect::Seq);
    let oracle_trace = oracle_trace.to_chrome_json();
    for core in PAR {
        let (metrics, trace) = scenario(core);
        let diags = liger_verify::sanitize(&trace);
        assert_eq!(diags.len(), 0, "sanitizer diagnostics on core {core}: {diags:?}");
        assert_eq!(metrics, oracle_metrics, "metrics diverged on core {core}");
        assert_eq!(trace.to_chrome_json(), oracle_trace, "trace bytes diverged on core {core}");
    }
}

#[test]
fn plain_serving_is_core_invariant() {
    assert_invariant(|core| {
        let mut sim = sim(FaultSpec::none());
        let mut e = engine();
        let m = serve_on(core, &mut sim, &mut e, requests(40, 20.0));
        (m.to_json(), sim.take_trace().unwrap())
    });
}

#[test]
fn faulted_retry_serving_is_core_invariant() {
    let faults = FaultSpec::new(7)
        .straggler(DeviceId(1), SimTime::from_millis(5), SimTime::from_millis(60), 3.0)
        .kernel_failures(KernelFaultParams {
            prob: 0.25,
            fraction: 0.5,
            from: SimTime::from_millis(2),
            until: SimTime::from_millis(80),
        });
    assert_invariant(move |core| {
        let mut sim = sim(faults.clone());
        let mut e = engine();
        let m = serve_with_policy_on(
            core,
            &mut sim,
            &mut e,
            requests(30, 25.0),
            RetryPolicy::default(),
        );
        (m.to_json(), sim.take_trace().unwrap())
    });
}

#[test]
fn continuous_batching_is_core_invariant() {
    assert_invariant(|core| {
        let mut sim = sim(FaultSpec::new(1));
        let mut e = engine();
        let cfg = model();
        let cost = CostModel::v100_node();
        let sched =
            SchedulerConfig::sized_for(&cfg, WORLD as u32, DeviceSpec::v100_16gb().mem_capacity);
        let report =
            serve_continuous_on(core, &mut sim, &mut e, jobs(8, 100.0), &cfg, &cost, sched);
        (report.serving.to_json(), sim.take_trace().unwrap())
    });
}

#[test]
fn device_loss_recovery_is_core_invariant() {
    let faults = FaultSpec::new(1).device_down(DeviceId(2), SimTime::from_millis(2));
    assert_invariant(move |core| {
        let mut sim = sim(faults.clone());
        let mut e = engine();
        let cfg = model();
        let cost = CostModel::v100_node();
        let m = serve_with_recovery_on(
            core,
            &mut sim,
            &mut e,
            requests(20, 200.0),
            &cfg,
            &cost,
            RecoveryConfig::default(),
        );
        (m.to_json(), sim.take_trace().unwrap())
    });
}
