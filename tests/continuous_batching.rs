//! Continuous batching through the real Liger engine: iteration-level
//! scheduling over the paged KV pool, with every run's trace put through the
//! happens-before sanitizer — healthy and with a mid-serve permanent device
//! loss. The block pool allocates through the simulator's memory tracker, so
//! a leaked or double-freed KV block fails these tests twice: once in the
//! scheduler's own accounting and once in the sanitizer.

use liger::prelude::*;
use liger::serving::{serve_continuous, ContinuousReport, GenerationJob, PrefixTag};

fn jobs(n: u64, rate: f64) -> Vec<GenerationJob> {
    // Skewed output lengths: most short, some long — the workload shape
    // where iteration-level scheduling matters.
    (0..n)
        .map(|i| GenerationJob {
            id: i,
            batch: 2,
            prompt_len: 48 + 16 * (i % 3) as u32,
            output_tokens: if i % 4 == 0 { 12 } else { 3 },
            arrival: SimTime::from_secs_f64(i as f64 / rate),
            prefix: PrefixTag::NONE,
        })
        .collect()
}

fn engine(world: usize) -> LigerEngine {
    let cfg = ModelConfig::opt_30b().with_layers(8);
    let factor = profile_contention(&DeviceSpec::v100_16gb(), &NcclConfig::liger_tuned()).factor();
    LigerEngine::new(
        cfg,
        CostModel::v100_node(),
        world,
        LigerConfig::default().with_contention_factor(factor),
    )
    .unwrap()
}

fn config(world: u32, health: bool) -> SchedulerConfig {
    let mut c = SchedulerConfig::sized_for(
        &ModelConfig::opt_30b().with_layers(8),
        world,
        DeviceSpec::v100_16gb().mem_capacity,
    );
    if health {
        // The probe stream shares a hardware queue with the engine's
        // secondary stream, so the watchdog needs slack for normal kernel
        // queueing: 1 ms probes, three strikes (as the recovery tier does).
        c.health = Some(HealthConfig {
            interval: SimDuration::from_millis(1),
            suspicion_threshold: 3,
            probe_stream: 3,
            ..HealthConfig::default()
        });
    }
    c
}

fn serve(
    world: usize,
    faults: FaultSpec,
    n: u64,
    rate: f64,
    health: bool,
) -> (ContinuousReport, Trace) {
    let mut sim = Simulation::builder()
        .devices(DeviceSpec::v100_16gb(), world)
        .faults(faults)
        .capture_trace(true)
        .build()
        .unwrap();
    let mut e = engine(world);
    let model = ModelConfig::opt_30b().with_layers(8);
    let cost = CostModel::v100_node();
    let report = serve_continuous(
        &mut sim,
        &mut e,
        jobs(n, rate),
        &model,
        &cost,
        config(world as u32, health),
    );
    (report, sim.take_trace().expect("trace capture was enabled"))
}

#[test]
fn healthy_continuous_serve_completes_and_sanitizes_clean() {
    let (report, trace) = serve(4, FaultSpec::new(1), 8, 100.0, false);
    assert_eq!(report.generation.completed(), 8);
    assert_eq!(report.serving.completed(), 8);
    assert!(report.generation.token_throughput() > 0.0);
    for r in report.generation.results() {
        assert!(r.first_token <= r.finished);
        assert!(r.finished > r.arrival);
    }
    let b = report.serving.batching();
    assert!(b.batches > 0, "decode steps must be recorded");
    assert!(b.avg_occupancy() > 0.0);

    let diags = liger_verify::sanitize(&trace);
    assert_eq!(diags.len(), 0, "sanitizer diagnostics on healthy serve: {diags:?}");
}

#[test]
fn device_loss_mid_serve_recovers_and_sanitizes_clean() {
    let faults = FaultSpec::new(1).device_down(DeviceId(2), SimTime::from_millis(2));
    let (report, trace) = serve(4, faults, 10, 200.0, true);
    let rec = report.serving.recovery();
    assert_eq!(rec.losses, 1, "the watchdog must confirm the loss");
    assert_eq!(
        report.generation.completed() + rec.shed_requests() as usize,
        10,
        "every job completes or is shed with a reason"
    );
    assert!(report.generation.completed() > 0, "survivors keep serving");
    let labels: Vec<&str> = report.serving.recovery_timeline().iter().map(|&(l, _)| l).collect();
    assert!(labels.contains(&"draining"), "timeline {labels:?}");
    assert!(labels.contains(&"degraded"), "timeline {labels:?}");

    let diags = liger_verify::sanitize(&trace);
    assert_eq!(diags.len(), 0, "sanitizer diagnostics on loss serve: {diags:?}");
}

#[test]
fn continuous_serving_is_deterministic() {
    let run = || {
        let (report, _) = serve(2, FaultSpec::new(1), 6, 150.0, false);
        let mut v: Vec<(u64, SimTime)> =
            report.generation.results().iter().map(|r| (r.id, r.finished)).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(run(), run());
}
