//! Validation of the simulation stack against classic queueing theory.
//!
//! The Intra-Op engine is a FIFO single-server queue whose service times
//! are the per-batch iteration times, so its simulated latencies must agree
//! with M/G/1 (Poisson arrivals, Pollaczek–Khinchine) and approach pure
//! service time under constant arrivals below capacity. This pins the whole
//! stack — cost model, launch plumbing, rendezvous, metrics — to an
//! independent analytic oracle.

use liger::prelude::*;
use liger::serving::{mg1_latency, service_moments, utilization};

fn model() -> ModelConfig {
    ModelConfig::opt_30b().with_layers(8)
}

fn run_intra(arrivals: ArrivalProcess, count: usize) -> ServingMetrics {
    let cfg = model();
    let cost = CostModel::v100_node();
    let mut sim = Simulation::builder().devices(DeviceSpec::v100_16gb(), 4).build().unwrap();
    let mut engine = IntraOpEngine::new(cfg, cost, 4).unwrap();
    let trace =
        PrefillTraceConfig { count, batch: 2, seq_min: 16, seq_max: 128, arrivals, seed: 11 }
            .generate();
    serve(&mut sim, &mut engine, trace)
}

#[test]
fn poisson_latency_matches_pollaczek_khinchine() {
    let cm = CostModel::v100_node();
    let (mean, second) = service_moments(&cm, &model(), 2, 16, 128, 4);
    // Drive at 60% utilization.
    let lambda = 0.6 / mean;
    assert!(utilization(lambda, mean) < 0.7);
    let predicted = mg1_latency(lambda, mean, second);

    let metrics = run_intra(ArrivalProcess::Poisson { rate: lambda }, 1500);
    let simulated = metrics.avg_latency().as_secs_f64();
    let err = (simulated - predicted).abs() / predicted;
    assert!(
        err < 0.15,
        "M/G/1 mismatch: simulated {simulated:.4}s vs predicted {predicted:.4}s ({:.1}% off)",
        err * 100.0
    );
}

#[test]
fn constant_arrivals_below_capacity_carry_little_wait() {
    let cm = CostModel::v100_node();
    let (mean, _) = service_moments(&cm, &model(), 2, 16, 128, 4);
    let lambda = 0.5 / mean;
    let metrics = run_intra(ArrivalProcess::Constant { rate: lambda }, 400);
    let simulated = metrics.avg_latency().as_secs_f64();
    // Mostly pure service: within 2x of E[S] (occasional long-seq pileups).
    assert!(
        simulated < 2.0 * mean,
        "D/G/1 at rho=0.5 should sit near E[S]={mean:.4}s, got {simulated:.4}s"
    );
    assert!(simulated >= 0.9 * mean, "latency cannot undercut the mean service time");
}

#[test]
fn saturation_matches_service_rate() {
    let cm = CostModel::v100_node();
    let (mean, _) = service_moments(&cm, &model(), 2, 16, 128, 4);
    let metrics = run_intra(ArrivalProcess::Constant { rate: 3.0 / mean }, 400);
    let thr = metrics.throughput();
    let capacity = 1.0 / mean;
    let err = (thr - capacity).abs() / capacity;
    assert!(err < 0.08, "saturated throughput {thr:.2}/s should match 1/E[S] = {capacity:.2}/s");
}
