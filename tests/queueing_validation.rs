//! Validation of the simulation stack against classic queueing theory.
//!
//! The Intra-Op engine is a FIFO single-server queue whose service times
//! are the per-batch iteration times, so its simulated latencies must agree
//! with M/G/1 (Poisson arrivals, Pollaczek–Khinchine) and approach pure
//! service time under constant arrivals below capacity. This pins the whole
//! stack — cost model, launch plumbing, rendezvous, metrics — to an
//! independent analytic oracle.
//!
//! Tolerances are **confidence intervals computed from the samples**
//! ([`Summary`] from `gpu-sim::stats`), not hard-coded fractions: each
//! assertion bounds `|simulated − predicted|` by a z·stderr half-width at
//! 99.9 % (z = 3.29), inflated for the serial autocorrelation of queueing
//! latencies (consecutive jobs share queue state, so the effective sample
//! size is far below the raw count; we budget n_eff = n/10, i.e. ×√10 on
//! the half-width). A genuine modeling regression shifts the mean by a
//! latency-scale amount and still lands far outside these bounds.

use liger::prelude::*;
use liger::serving::{dg1_wait, mg1_latency, service_moments, utilization};
use liger::sim::Summary;

fn model() -> ModelConfig {
    ModelConfig::opt_30b().with_layers(8)
}

fn run_intra(arrivals: ArrivalProcess, count: usize) -> ServingMetrics {
    let cfg = model();
    let cost = CostModel::v100_node();
    let mut sim = Simulation::builder().devices(DeviceSpec::v100_16gb(), 4).build().unwrap();
    let mut engine = IntraOpEngine::new(cfg, cost, 4).unwrap();
    let trace =
        PrefillTraceConfig { count, batch: 2, seq_min: 16, seq_max: 128, arrivals, seed: 11 }
            .generate();
    serve(&mut sim, &mut engine, trace)
}

/// Per-completion latency samples as a [`Summary`].
fn latency_summary(metrics: &ServingMetrics) -> Summary {
    Summary::from_samples(metrics.completions().iter().map(|c| c.latency().as_secs_f64()))
}

/// 99.9 % half-width inflated ×√10 for queueing autocorrelation.
fn ci_bound(s: &Summary) -> f64 {
    s.ci_halfwidth(3.29) * 10f64.sqrt()
}

#[test]
fn poisson_latency_matches_pollaczek_khinchine() {
    let cm = CostModel::v100_node();
    let (mean, second) = service_moments(&cm, &model(), 2, 16, 128, 4);
    // Drive at 60% utilization.
    let lambda = 0.6 / mean;
    assert!(utilization(lambda, mean) < 0.7);
    let predicted = mg1_latency(lambda, mean, second);

    let metrics = run_intra(ArrivalProcess::Poisson { rate: lambda }, 1500);
    let lat = latency_summary(&metrics);
    let bound = ci_bound(&lat);
    let err = (lat.mean() - predicted).abs();
    assert!(
        err <= bound,
        "M/G/1 mismatch: simulated {:.4}s vs predicted {predicted:.4}s \
         (|diff| {err:.4}s > CI bound {bound:.4}s at n={})",
        lat.mean(),
        lat.count()
    );
}

#[test]
fn constant_arrivals_below_capacity_carry_little_wait() {
    let cm = CostModel::v100_node();
    let (mean, second) = service_moments(&cm, &model(), 2, 16, 128, 4);
    let lambda = 0.5 / mean;
    let metrics = run_intra(ArrivalProcess::Constant { rate: lambda }, 400);
    let lat = latency_summary(&metrics);
    let bound = ci_bound(&lat);
    // Constant arrivals at rho=0.5: latency = E[S] + the (small) D/G/1 wait.
    let predicted = mean + dg1_wait(lambda, mean, second);
    let err = (lat.mean() - predicted).abs();
    assert!(
        err <= bound,
        "D/G/1 at rho=0.5: simulated {:.4}s vs predicted {predicted:.4}s \
         (|diff| {err:.4}s > CI bound {bound:.4}s at n={})",
        lat.mean(),
        lat.count()
    );
    // And in no sample universe can mean latency undercut mean service by
    // more than sampling noise on the service mix itself.
    assert!(
        lat.mean() >= mean - bound,
        "latency {:.4}s undercuts mean service {mean:.4}s beyond the CI bound {bound:.4}s",
        lat.mean()
    );
}

#[test]
fn saturation_matches_service_rate() {
    let cm = CostModel::v100_node();
    let (mean, _) = service_moments(&cm, &model(), 2, 16, 128, 4);
    let metrics = run_intra(ArrivalProcess::Constant { rate: 3.0 / mean }, 400);
    let thr = metrics.throughput();
    let capacity = 1.0 / mean;
    // Saturated throughput is 1/mean(service of the jobs actually served);
    // its sampling noise follows from the service-time spread via the delta
    // method: sd(thr) ≈ sd(S)/mean(S)² · 1/√n, with the same z and
    // autocorrelation inflation as the latency bounds.
    let (_, second) = service_moments(&cm, &model(), 2, 16, 128, 4);
    let sd_service = (second - mean * mean).max(0.0).sqrt();
    let n = metrics.completed() as f64;
    let bound = 3.29 * (sd_service / (mean * mean)) / n.sqrt() * 10f64.sqrt();
    let err = (thr - capacity).abs();
    assert!(
        err <= bound,
        "saturated throughput {thr:.3}/s should match 1/E[S] = {capacity:.3}/s \
         (|diff| {err:.4} > CI bound {bound:.4} at n={})",
        metrics.completed()
    );
}
