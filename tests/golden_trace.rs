//! Golden-file regression test for the Chrome-trace exporter.
//!
//! A small fixed scenario — two devices, plain kernels, one collective, a
//! straggler window and one certain kernel failure — is exported to JSON
//! and compared byte-for-byte against `tests/golden/chrome_trace.json`.
//! Any change to the exporter's field set, ordering, or escaping shows up
//! as a diff here rather than silently breaking downstream trace viewers.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! LIGER_GOLDEN_REGEN=1 cargo test --test golden_trace
//! ```
//!
//! then review the diff and commit the new golden file.

use liger::prelude::*;
use liger_gpu_sim::{FaultSpec, KernelFaultParams, Trace};

const GOLDEN: &str = include_str!("golden/chrome_trace.json");

struct Script;

impl Driver for Script {
    fn start(&mut self, sim: &mut Simulation) {
        // Two plain kernels back-to-back on device 0, stream 0; the second
        // fails (certain-failure window covers only its start time range).
        sim.launch(
            HostId(0),
            StreamId::new(DeviceId(0), 0),
            KernelSpec::compute("gemm_a", SimDuration::from_micros(100)).with_tag(1),
        );
        sim.launch(
            HostId(0),
            StreamId::new(DeviceId(0), 0),
            KernelSpec::comm("send_b", SimDuration::from_micros(40)).with_tag(2),
        );
        // A kernel on device 1 inside the straggler window: stretched 2x.
        sim.launch(
            HostId(1),
            StreamId::new(DeviceId(1), 0),
            KernelSpec::compute("gemm_c", SimDuration::from_micros(50)).with_tag(3),
        );
        // An all-reduce across both devices.
        let c = sim.new_collective(2);
        for d in 0..2 {
            sim.launch(
                HostId(d),
                StreamId::new(DeviceId(d), 1),
                KernelSpec::comm("allreduce", SimDuration::from_micros(30))
                    .with_collective(c)
                    .with_tag(4),
            );
        }
    }

    fn on_wake(&mut self, _: Wake, _: &mut Simulation) {}
}

fn render() -> String {
    let faults = FaultSpec::new(0x601d)
        .straggler(DeviceId(1), SimTime::ZERO, SimTime::from_micros(80), 2.0)
        .kernel_failures(KernelFaultParams {
            prob: 1.0,
            fraction: 0.5,
            from: SimTime::from_micros(90),
            until: SimTime::from_micros(110),
        });
    let mut sim = Simulation::builder()
        .devices(DeviceSpec::test_device(), 2)
        .capture_trace(true)
        .faults(faults)
        .build()
        .unwrap();
    sim.run_to_completion(&mut Script);
    let mut json = sim.take_trace().unwrap().to_chrome_json();
    json.push('\n');
    json
}

#[test]
fn chrome_trace_matches_golden_file() {
    let rendered = render();
    if std::env::var_os("LIGER_GOLDEN_REGEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_trace.json");
        std::fs::write(path, &rendered).expect("write golden file");
        eprintln!("regenerated {path}");
        return;
    }
    assert_eq!(
        rendered, GOLDEN,
        "Chrome-trace export drifted from tests/golden/chrome_trace.json; if the \
         format change is intentional, regenerate with LIGER_GOLDEN_REGEN=1 and \
         commit the diff"
    );
}

#[test]
fn golden_trace_sanitizes_clean() {
    // The committed golden trace must stay acceptable to the happens-before
    // sanitizer — the same gate CI applies via `liger-verify`.
    let parsed = Trace::parse_chrome_json(GOLDEN).expect("golden trace must parse");
    let diags = liger_verify::sanitize_parsed(&parsed);
    assert!(diags.is_empty(), "sanitizer diagnostics on the golden trace: {diags:?}");
}

#[test]
fn golden_file_has_the_fault_fields() {
    // The golden scenario must keep exercising the fault-related schema:
    // one failed kernel and a stretched straggler kernel.
    assert!(GOLDEN.contains("\"failed\":true"), "golden trace lost its failed kernel");
    assert!(GOLDEN.contains("\"failed\":false"));
    assert!(GOLDEN.contains("allreduce"));
}
