//! Chaos tier: seeded random fault storms over continuous serving with
//! drain-and-replan recovery and elastic re-expansion.
//!
//! Each storm throws overlapping windowed outages, a possible permanent
//! loss, stragglers, kernel failures, launch spikes and a link flap at the
//! real Liger engine, and asserts the full robustness contract for every
//! seed:
//!
//! * the run terminates (a livelock here hangs the test);
//! * every admitted job finishes or is shed with a typed reason;
//! * the trace is clean under the happens-before sanitizer — no TS-UAF,
//!   TS-DOUBLE-FREE or TS-LEAK through any loss, rejoin or re-expansion;
//! * the sequential and parallel event cores produce byte-identical
//!   metrics and traces;
//! * every surviving job's output stream is identical to the fault-free
//!   oracle's — faults may slow or shed work, never corrupt it.
//!
//! Device 0 is kept outage-free so the scheduler always has a surviving
//! device to shrink onto. Rerun a failing storm with the `LIGER_PROP_SEED`
//! the harness prints.

use std::collections::BTreeMap;

use liger::prelude::*;
use liger::serving::{serve_continuous_on, ContinuousReport, GenerationJob, PrefixTag};
use liger_gpu_sim::testkit::{check, Gen};
use liger_gpu_sim::ToJson;

fn model() -> ModelConfig {
    ModelConfig::opt_30b().with_layers(4)
}

fn engine(world: usize) -> LigerEngine {
    let factor = profile_contention(&DeviceSpec::v100_16gb(), &NcclConfig::liger_tuned()).factor();
    LigerEngine::new(
        model(),
        CostModel::v100_node(),
        world,
        LigerConfig::default().with_contention_factor(factor),
    )
    .unwrap()
}

fn config(world: u32) -> SchedulerConfig {
    let mut c = SchedulerConfig::sized_for(&model(), world, DeviceSpec::v100_16gb().mem_capacity);
    // The probe stream shares a hardware queue with the engine's secondary
    // stream, so the watchdog needs slack for normal kernel queueing (the
    // recovery tier's sizing).
    c.health = Some(HealthConfig {
        interval: SimDuration::from_millis(1),
        suspicion_threshold: 3,
        probe_stream: 3,
        ..HealthConfig::default()
    });
    c
}

#[derive(Debug, Clone)]
struct Storm {
    world: usize,
    jobs: Vec<GenerationJob>,
    faults: FaultSpec,
}

fn gen_storm(g: &mut Gen) -> Storm {
    // The initial tensor-parallel degree must divide the model's 56 heads;
    // degraded worlds after a loss handle the remainder internally.
    let world = if g.usize_in(0, 4) == 0 { 2 } else { 4 };
    let n = g.u64_in(6, 12);
    let rate = g.f64_in(100.0, 400.0);
    let jobs = (0..n)
        .map(|i| GenerationJob {
            id: i,
            batch: 2,
            prompt_len: 48 + 16 * (i % 3) as u32,
            output_tokens: if i % 4 == 0 { 12 } else { 3 + (i % 3) as u32 },
            arrival: SimTime::from_secs_f64(i as f64 / rate),
            prefix: PrefixTag::NONE,
        })
        .collect();

    let mut faults = FaultSpec::new(g.any_u64());
    // Windowed outages and at most one permanent loss, never on device 0:
    // the storm may shrink the world, not empty it. One window per device —
    // the builder rejects overlapping downs for the same device.
    let mut hit_permanent = false;
    for dev in 1..world {
        match g.usize_in(0, 4) {
            0 => {
                let from = g.u64_in(1, 20);
                faults = faults.device_outage(
                    DeviceId(dev),
                    SimTime::from_millis(from),
                    SimTime::from_millis(from + g.u64_in(2, 30)),
                );
            }
            1 if !hit_permanent => {
                hit_permanent = true;
                faults = faults.device_down(DeviceId(dev), SimTime::from_millis(g.u64_in(1, 30)));
            }
            _ => {}
        }
    }
    for _ in 0..g.usize_in(0, 3) {
        let from = g.u64_in(0, 20);
        faults = faults.straggler(
            DeviceId(g.usize_in(0, world)),
            SimTime::from_millis(from),
            SimTime::from_millis(from + g.u64_in(1, 30)),
            g.f64_in(1.5, 4.0),
        );
    }
    if g.bool() {
        faults = faults.kernel_failures(KernelFaultParams {
            prob: g.f64_in(0.02, 0.2),
            fraction: g.f64_in(0.1, 0.9),
            from: SimTime::from_millis(g.u64_in(0, 5)),
            until: SimTime::from_millis(g.u64_in(10, 60)),
        });
    }
    if g.bool() {
        faults = faults.launch_spikes(LaunchSpikeParams {
            prob: g.f64_in(0.05, 0.3),
            extra: SimDuration::from_micros(g.u64_in(5, 100)),
            from: SimTime::ZERO,
            until: SimTime::from_millis(g.u64_in(10, 60)),
        });
    }
    if g.bool() {
        let a = g.usize_in(0, world);
        let b = (a + 1 + g.usize_in(0, world - 1)) % world;
        let from = g.u64_in(0, 10);
        let len = g.u64_in(4, 20);
        faults = faults.link_flap(
            DeviceId(a),
            DeviceId(b),
            SimTime::from_millis(from),
            SimTime::from_millis(from + len),
            SimDuration::from_millis(g.u64_in(1, 4)),
        );
    }
    Storm { world, jobs, faults }
}

fn run(storm: &Storm, core: CoreSelect, faults: FaultSpec) -> (ContinuousReport, Trace) {
    let mut sim = Simulation::builder()
        .devices(DeviceSpec::v100_16gb(), storm.world)
        .faults(faults)
        .capture_trace(true)
        .build()
        .unwrap();
    let mut e = engine(storm.world);
    let cfg = model();
    let cost = CostModel::v100_node();
    let report = serve_continuous_on(
        core,
        &mut sim,
        &mut e,
        storm.jobs.clone(),
        &cfg,
        &cost,
        config(storm.world as u32),
    );
    (report, sim.take_trace().expect("trace capture was enabled"))
}

/// The full per-seed contract, asserted for at least 32 storms.
#[test]
fn seeded_storms_hold_the_robustness_contract() {
    check("chaos_storms", 32, |g| {
        let storm = gen_storm(g);
        let n = storm.jobs.len();

        // Fault-free oracle: the output streams faults must never corrupt.
        let (oracle, _) = run(&storm, CoreSelect::Seq, FaultSpec::none());
        assert_eq!(oracle.generation.completed(), n, "the oracle serves everything");

        // The storm, on the sequential core.
        let (seq, seq_trace) = run(&storm, CoreSelect::Seq, storm.faults.clone());

        // Accounting: every admitted job finishes or is shed with a reason.
        let rec = seq.serving.recovery();
        assert_eq!(
            seq.generation.completed() + rec.shed_requests() as usize,
            n,
            "jobs lost without a shed record under {}",
            storm.faults
        );

        // Sanitizer: clean through every loss, rejoin and re-expansion.
        let diags = liger_verify::sanitize(&seq_trace);
        assert_eq!(diags.len(), 0, "sanitizer diagnostics under {}: {diags:?}", storm.faults);

        // Outputs: identical to the fault-free oracle for every survivor.
        let oracle_outputs: &BTreeMap<u64, Vec<u64>> = &oracle.outputs;
        for (id, stream) in &seq.outputs {
            assert_eq!(
                stream, &oracle_outputs[id],
                "job {id} diverged from the fault-free oracle under {}",
                storm.faults
            );
        }

        // Core invariance: the parallel core reproduces metrics and trace
        // byte-for-byte.
        let (par, par_trace) = run(&storm, CoreSelect::Par { workers: 2 }, storm.faults.clone());
        assert_eq!(
            par.serving.to_json(),
            seq.serving.to_json(),
            "metrics diverged across cores under {}",
            storm.faults
        );
        assert_eq!(
            par_trace.to_chrome_json(),
            seq_trace.to_chrome_json(),
            "trace bytes diverged across cores under {}",
            storm.faults
        );
    });
}
