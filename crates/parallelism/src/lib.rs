//! # liger-parallelism
//!
//! The baseline parallelism engines the paper compares Liger against
//! (§4.1): **Intra-Op** (Megatron-LM tensor parallelism with two
//! all-reduces per layer, batches strictly serialized), **Inter-Op** (equal
//! pipeline stages with one point-to-point transfer per boundary) and
//! **Inter-Th** (the theoretical pipeline that runs intra-op's partitioned
//! kernels sequentially per stage). All three implement
//! [`liger_serving::InferenceEngine`] and run on the simulated multi-GPU
//! node.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod inter_op;
pub mod intra_op;
pub mod launch;
pub mod partition;

pub use inter_op::{InterOpEngine, PipelineFlavor};
pub use intra_op::IntraOpEngine;
pub use partition::{
    check_divisibility, check_divisibility_relaxed, inter_th_expand, stage_ranges,
    stage_ranges_uneven,
};
