//! Model partitioning helpers: pipeline stage ranges and the Inter-Th
//! kernel expansion.

use liger_model::{LayerOp, ModelConfig, PlacedOp};

/// Splits `layers` into `stages` contiguous, maximally balanced ranges.
/// Earlier stages take the remainder (matching GPipe-style equal staging).
pub fn stage_ranges(layers: u32, stages: u32) -> Vec<(u32, u32)> {
    assert!(stages >= 1, "need at least one stage");
    assert!(layers >= stages, "cannot spread {layers} layers over {stages} stages");
    let base = layers / stages;
    let extra = layers % stages;
    let mut out = Vec::with_capacity(stages as usize);
    let mut lo = 0;
    for s in 0..stages {
        let len = base + u32::from(s < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// [`stage_ranges`] with the degraded-mode fallback: when `stages` exceeds
/// `layers` the stage count is clamped so every emitted range is non-empty
/// (excess devices simply hold no stage), and `layers == 0` yields no
/// ranges at all. Replanning after a device loss uses this so an awkward
/// survivor count can never panic the recovery path.
pub fn stage_ranges_uneven(layers: u32, stages: u32) -> Vec<(u32, u32)> {
    assert!(stages >= 1, "need at least one stage");
    if layers == 0 {
        return Vec::new();
    }
    stage_ranges(layers, stages.min(layers))
}

/// Expands a stage op list into the *theoretical inter-operator* form
/// (the paper's Inter-Th baseline): every GEMM is replaced by the `parts`
/// partitioned kernels the intra-op approach would run — column-parallel
/// GEMMs split their output width, row-parallel GEMMs split their reduction
/// depth — executed sequentially on the stage's single device. Whether this
/// helps or hurts depends purely on the kernel implementation's shape
/// efficiency, which is exactly the effect the paper observes in
/// Fig. 10(j)(k).
pub fn inter_th_expand(ops: &[PlacedOp], parts: u32) -> Vec<PlacedOp> {
    assert!(parts >= 1);
    let mut out = Vec::with_capacity(ops.len() * parts as usize);
    for placed in ops {
        match placed.op {
            LayerOp::Gemm { m, k, n, kind } if parts > 1 => {
                for _ in 0..parts {
                    let op = if kind.column_parallel() {
                        LayerOp::Gemm { m, k, n: n / parts as u64, kind }
                    } else {
                        LayerOp::Gemm { m, k: k / parts as u64, n, kind }
                    };
                    out.push(PlacedOp { layer: placed.layer, op });
                }
            }
            _ => out.push(*placed),
        }
    }
    out
}

/// Sanity check that a model/engine combination is well-formed.
pub fn check_divisibility(cfg: &ModelConfig, tp: u32) -> Result<(), String> {
    cfg.validate()?;
    if tp == 0 {
        return Err("parallel degree must be >= 1".into());
    }
    if !cfg.heads.is_multiple_of(tp) {
        return Err(format!("{}: heads ({}) not divisible by degree {tp}", cfg.name, cfg.heads));
    }
    Ok(())
}

/// The degraded-mode relaxation of [`check_divisibility`]: after a device
/// loss the survivor count rarely divides the head count, so replanning
/// accepts any degree in `[1, heads]` and shards by ceil-division
/// ([`liger_model::layer_ops`] models the critical-path largest shard).
/// Plans built at start-up should keep using the strict check.
pub fn check_divisibility_relaxed(cfg: &ModelConfig, tp: u32) -> Result<(), String> {
    cfg.validate()?;
    if tp == 0 {
        return Err("parallel degree must be >= 1".into());
    }
    if tp > cfg.heads {
        return Err(format!(
            "{}: degree {tp} exceeds head count ({}) — some rank would hold no head",
            cfg.name, cfg.heads
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_model::{stage_ops, BatchShape, GemmKind};

    #[test]
    fn balanced_ranges() {
        assert_eq!(stage_ranges(48, 4), vec![(0, 12), (12, 24), (24, 36), (36, 48)]);
        assert_eq!(stage_ranges(70, 4), vec![(0, 18), (18, 36), (36, 53), (53, 70)]);
        assert_eq!(stage_ranges(5, 1), vec![(0, 5)]);
    }

    #[test]
    fn ranges_cover_exactly() {
        for (layers, stages) in [(48u32, 4u32), (64, 4), (70, 4), (7, 3), (12, 5)] {
            let ranges = stage_ranges(layers, stages);
            assert_eq!(ranges.len(), stages as usize);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, layers);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let (min, max) = ranges
                .iter()
                .map(|(lo, hi)| hi - lo)
                .fold((u32::MAX, 0), |(mn, mx), l| (mn.min(l), mx.max(l)));
            assert!(max - min <= 1, "balanced within one layer");
        }
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn too_many_stages_panics() {
        stage_ranges(2, 4);
    }

    #[test]
    fn uneven_layer_counts_stay_balanced_and_cover() {
        // Layer counts that do not divide the stage count: the uneven
        // fallback the recovery replan relies on (e.g. 48 layers over 3
        // survivors is even, but 7 over 3 and 10 over 4 are not).
        for (layers, stages) in [(7u32, 3u32), (10, 4), (48, 5), (3, 2), (5, 4)] {
            let ranges = stage_ranges_uneven(layers, stages);
            assert_eq!(ranges, stage_ranges(layers, stages), "within-capacity agrees");
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, layers);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let (min, max) = ranges
                .iter()
                .map(|(lo, hi)| hi - lo)
                .fold((u32::MAX, 0), |(mn, mx), l| (mn.min(l), mx.max(l)));
            assert!(max - min <= 1, "balanced within one layer");
            assert!(min >= 1, "no empty stage");
        }
    }

    #[test]
    fn uneven_fallback_clamps_excess_stages() {
        assert_eq!(stage_ranges_uneven(2, 4), vec![(0, 1), (1, 2)], "excess stages drop");
        assert_eq!(stage_ranges_uneven(1, 3), vec![(0, 1)]);
    }

    #[test]
    fn uneven_fallback_edge_cases() {
        // 0 layers: nothing to place, no panic.
        assert_eq!(stage_ranges_uneven(0, 1), Vec::<(u32, u32)>::new());
        assert_eq!(stage_ranges_uneven(0, 4), Vec::<(u32, u32)>::new());
        // 1 stage: the whole model.
        assert_eq!(stage_ranges_uneven(5, 1), vec![(0, 5)]);
        assert_eq!(stage_ranges_uneven(1, 1), vec![(0, 1)]);
    }

    #[test]
    fn relaxed_divisibility_accepts_degraded_degrees() {
        let cfg = ModelConfig::opt_30b(); // 56 heads
        assert!(check_divisibility(&cfg, 3).is_err(), "strict check still refuses");
        assert!(check_divisibility_relaxed(&cfg, 3).is_ok(), "survivors of 4->3");
        assert!(check_divisibility_relaxed(&cfg, 2).is_ok(), "survivors of 4->2");
        assert!(check_divisibility_relaxed(&cfg, 0).is_err());
        assert!(check_divisibility_relaxed(&cfg, 57).is_err(), "more ranks than heads");
    }

    #[test]
    fn inter_th_expansion_multiplies_gemms() {
        let cfg = ModelConfig::opt_30b();
        let ops = stage_ops(&cfg, BatchShape::prefill(2, 64), 0, 1);
        let gemms = ops.iter().filter(|p| matches!(p.op, LayerOp::Gemm { .. })).count();
        let expanded = inter_th_expand(&ops, 4);
        let egemms = expanded.iter().filter(|p| matches!(p.op, LayerOp::Gemm { .. })).count();
        assert_eq!(egemms, gemms * 4);
        assert_eq!(expanded.len(), ops.len() - gemms + gemms * 4, "non-GEMM ops are untouched");
    }

    #[test]
    fn inter_th_partitions_along_megatron_axes() {
        let ops = vec![
            PlacedOp {
                layer: 0,
                op: LayerOp::Gemm { m: 128, k: 7168, n: 21504, kind: GemmKind::Qkv },
            },
            PlacedOp {
                layer: 0,
                op: LayerOp::Gemm { m: 128, k: 28672, n: 7168, kind: GemmKind::Fc2 },
            },
        ];
        let out = inter_th_expand(&ops, 4);
        match out[0].op {
            LayerOp::Gemm { n, k, .. } => {
                assert_eq!(n, 21504 / 4, "column-parallel splits n");
                assert_eq!(k, 7168);
            }
            _ => panic!(),
        }
        match out[4].op {
            LayerOp::Gemm { n, k, .. } => {
                assert_eq!(k, 28672 / 4, "row-parallel splits k");
                assert_eq!(n, 7168);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn expansion_with_one_part_is_identity() {
        let cfg = ModelConfig::tiny_test();
        let ops = stage_ops(&cfg, BatchShape::prefill(2, 16), 0, 2);
        assert_eq!(inter_th_expand(&ops, 1), ops);
    }

    #[test]
    fn divisibility_check() {
        assert!(check_divisibility(&ModelConfig::opt_30b(), 4).is_ok());
        assert!(check_divisibility(&ModelConfig::opt_30b(), 0).is_err());
        assert!(check_divisibility(&ModelConfig::opt_30b(), 3).is_err(), "56 heads % 3 != 0");
    }
}
