//! Shared kernel-launch helpers for the engines.

use liger_collectives::NcclConfig;
use liger_gpu_sim::{DeviceId, HostId, KernelClass, KernelSpec, SimDuration, Simulation, StreamId};
use liger_model::PricedOp;

/// Builds the [`KernelSpec`] for a priced compute op.
pub fn compute_spec(op: &PricedOp, tag: u64) -> KernelSpec {
    debug_assert_eq!(op.class(), KernelClass::Compute);
    KernelSpec::compute(op.placed.op.name(), op.duration).with_tag(tag)
}

/// Builds the per-rank [`KernelSpec`]s of a priced communication op,
/// allocating its rendezvous group.
pub fn comm_specs(
    sim: &mut Simulation,
    op: &PricedOp,
    ranks: &[DeviceId],
    nccl: &NcclConfig,
    tag: u64,
) -> Vec<(DeviceId, KernelSpec)> {
    debug_assert_eq!(op.class(), KernelClass::Comm);
    let group = sim.new_collective(ranks.len());
    ranks
        .iter()
        .map(|&rank| {
            let spec = KernelSpec::comm(op.placed.op.name(), op.duration)
                .with_blocks(nccl.channels)
                .with_collective(group)
                .with_tag(tag);
            (rank, spec)
        })
        .collect()
}

/// Launches a tensor-parallel-symmetric op list across `devices`: every
/// compute op runs on each device's `stream`, every communication op becomes
/// one rendezvous-bound kernel per device on the same stream (serialized
/// with the compute — the Intra-Op baseline's behavior). Host `d` launches
/// for device `d`.
pub fn launch_symmetric(
    sim: &mut Simulation,
    ops: &[PricedOp],
    devices: &[DeviceId],
    stream: usize,
    nccl: &NcclConfig,
    tag: u64,
) {
    for op in ops {
        match op.class() {
            KernelClass::Compute => {
                for &d in devices {
                    sim.launch(HostId(d.0), StreamId::new(d, stream), compute_spec(op, tag));
                }
            }
            KernelClass::Comm => {
                // Degenerate single-device groups skip communication.
                if devices.len() < 2 {
                    continue;
                }
                for (d, spec) in comm_specs(sim, op, devices, nccl, tag) {
                    sim.launch(HostId(d.0), StreamId::new(d, stream), spec);
                }
            }
        }
    }
}

/// Launches a per-device op list (a pipeline stage) on one device's stream.
/// Communication ops are not allowed here — stage boundaries are handled by
/// the caller with explicit send/recv pairs.
pub fn launch_stage(
    sim: &mut Simulation,
    ops: &[PricedOp],
    device: DeviceId,
    stream: usize,
    tag: u64,
) {
    for op in ops {
        assert_eq!(
            op.class(),
            KernelClass::Compute,
            "stage op lists must be compute-only, got {:?}",
            op.placed.op
        );
        sim.launch(HostId(device.0), StreamId::new(device, stream), compute_spec(op, tag));
    }
}

/// Launches a point-to-point transfer of `duration` between two devices on
/// the given stream index of each: a rendezvous-paired send/recv.
pub fn launch_p2p(
    sim: &mut Simulation,
    duration: SimDuration,
    src: DeviceId,
    dst: DeviceId,
    stream: usize,
    nccl: &NcclConfig,
    tag: u64,
) {
    let group = sim.new_collective(2);
    for (d, name) in [(src, "p2p_send"), (dst, "p2p_recv")] {
        let spec = KernelSpec::comm(name, duration)
            .with_blocks(nccl.channels)
            .with_collective(group)
            .with_tag(tag);
        sim.launch(HostId(d.0), StreamId::new(d, stream), spec);
    }
}

/// The helper engines use to observe batch completion: records an event on
/// the stream and registers a driver callback carrying `token`.
pub fn notify_completion(sim: &mut Simulation, device: DeviceId, stream: usize, token: u64) {
    let ev = sim.record_event(HostId(device.0), StreamId::new(device, stream));
    sim.notify_on_event(ev, HostId(device.0), token);
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_model::{GemmKind, LayerOp, PlacedOp};

    fn priced(op: LayerOp, us: u64) -> PricedOp {
        PricedOp { placed: PlacedOp { layer: 0, op }, duration: SimDuration::from_micros(us) }
    }

    #[test]
    fn compute_spec_carries_duration_and_tag() {
        let op = priced(LayerOp::Gemm { m: 1, k: 1, n: 1, kind: GemmKind::Qkv }, 50);
        let spec = compute_spec(&op, 9);
        assert_eq!(spec.work, SimDuration::from_micros(50));
        assert_eq!(spec.tag, 9);
        assert_eq!(spec.class, KernelClass::Compute);
        assert_eq!(&*spec.name, "gemm_qkv");
    }

    #[test]
    fn comm_specs_share_a_collective() {
        let mut sim = Simulation::builder()
            .devices(liger_gpu_sim::DeviceSpec::test_device(), 3)
            .build()
            .unwrap();
        let op = priced(LayerOp::AllReduce { bytes: 1024, ranks: 3 }, 20);
        let devices: Vec<DeviceId> = (0..3).map(DeviceId).collect();
        let specs = comm_specs(&mut sim, &op, &devices, &NcclConfig::liger_tuned(), 1);
        assert_eq!(specs.len(), 3);
        let group = specs[0].1.collective.unwrap();
        for (_, s) in &specs {
            assert_eq!(s.collective, Some(group));
            assert_eq!(s.blocks, 3, "NCCL channel count becomes the block footprint");
            assert_eq!(s.class, KernelClass::Comm);
        }
    }

    #[test]
    #[should_panic(expected = "compute-only")]
    fn launch_stage_rejects_comm_ops() {
        let mut sim =
            Simulation::builder().device(liger_gpu_sim::DeviceSpec::test_device()).build().unwrap();
        let op = priced(LayerOp::AllReduce { bytes: 1, ranks: 2 }, 1);
        launch_stage(&mut sim, &[op], DeviceId(0), 0, 0);
    }
}

/// Device-memory bookkeeping shared by the engines: weight shards are
/// allocated once (on first submit), per-batch working sets (activations +
/// KV cache) live from submission to completion. Running out of device
/// memory is a deployment error — the engine reports it loudly instead of
/// silently serving a model that could not exist on the node.
#[derive(Debug, Default)]
pub struct EngineMemory {
    weights: Option<Vec<liger_gpu_sim::AllocationId>>,
    per_batch: std::collections::HashMap<u64, Vec<liger_gpu_sim::AllocationId>>,
}

impl EngineMemory {
    /// Fresh bookkeeping.
    pub fn new() -> EngineMemory {
        EngineMemory::default()
    }

    /// Allocates the per-device weight shards once.
    ///
    /// # Panics
    /// When the shard does not fit — the model cannot be deployed this way.
    pub fn ensure_weights(
        &mut self,
        sim: &mut Simulation,
        devices: &[DeviceId],
        bytes_per_device: u64,
    ) {
        if self.weights.is_some() {
            return;
        }
        let ids = devices
            .iter()
            .map(|&d| {
                sim.alloc_memory(d, bytes_per_device, "weights").unwrap_or_else(|e| {
                    panic!("model weights do not fit the node (partition further or use bigger devices): {e}")
                })
            })
            .collect();
        self.weights = Some(ids);
    }

    /// Allocates one batch's working set on every device.
    ///
    /// # Panics
    /// When the working set does not fit — admission control (processing
    /// slots / in-flight window) is sized wrongly for the device.
    pub fn batch_submitted(
        &mut self,
        sim: &mut Simulation,
        devices: &[DeviceId],
        batch: u64,
        bytes_per_device: u64,
    ) {
        let ids: Vec<_> = devices
            .iter()
            .map(|&d| {
                sim.alloc_memory(d, bytes_per_device, "batch working set").unwrap_or_else(|e| {
                    panic!("batch working set does not fit (reduce batch size or in-flight window): {e}")
                })
            })
            .collect();
        let prev = self.per_batch.insert(batch, ids);
        debug_assert!(prev.is_none(), "batch {batch} submitted twice");
    }

    /// Frees a completed batch's working set.
    pub fn batch_completed(&mut self, sim: &mut Simulation, batch: u64) {
        if let Some(ids) = self.per_batch.remove(&batch) {
            for id in ids {
                sim.free_memory(id);
            }
        }
    }

    /// Frees everything — weight shards and every live working set — so the
    /// engine can re-allocate over a new placement after a device loss.
    /// Batches are released in id order for deterministic traces.
    pub fn release_all(&mut self, sim: &mut Simulation) {
        if let Some(ids) = self.weights.take() {
            for id in ids {
                sim.free_memory(id);
            }
        }
        let mut batches: Vec<u64> = self.per_batch.keys().copied().collect();
        batches.sort_unstable();
        for b in batches {
            self.batch_completed(sim, b);
        }
    }
}

/// Per-device working-set bytes of one batch at `ways`-way partitioning
/// (weights excluded — those are resident). Decode iterations hold the KV
/// cache for their whole context; a pure prefill forward pass only keeps
/// per-layer transient state, so it is charged the activation workspace
/// alone.
pub fn batch_working_set_bytes(
    cfg: &liger_model::ModelConfig,
    shape: liger_model::BatchShape,
    ways: u32,
) -> u64 {
    let f = liger_model::device_footprint(cfg, ways, shape, shape.phase.kv_len(), 1);
    match shape.phase {
        liger_model::Phase::Prefill { .. } => f.activations,
        liger_model::Phase::Decode { .. } => f.kv_cache + f.activations,
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use liger_gpu_sim::{DeviceSpec, SimTime};
    use liger_model::{BatchShape, CostModel, ModelConfig};
    use liger_serving::{serve, Request};

    fn sim(n: usize, spec: DeviceSpec) -> Simulation {
        Simulation::builder().devices(spec, n).build().unwrap()
    }

    #[test]
    fn intra_op_tracks_weights_and_working_sets() {
        let cfg = ModelConfig::opt_30b();
        let mut engine = crate::IntraOpEngine::new(cfg.clone(), CostModel::v100_node(), 4).unwrap();
        let mut s = sim(4, DeviceSpec::v100_16gb());
        let reqs = vec![Request::new(0, BatchShape::prefill(2, 64), SimTime::ZERO)];
        let m = serve(&mut s, &mut engine, reqs);
        assert_eq!(m.completed(), 1);
        let weights_share = cfg.weight_bytes() / 4;
        // After completion, only the resident weights remain allocated.
        assert_eq!(s.memory_in_use(DeviceId(0)), weights_share);
        // The peak included the batch working set on top of the weights.
        assert!(s.memory_peak(DeviceId(0)) > weights_share);
        assert!(s.memory_peak(DeviceId(0)) <= DeviceSpec::v100_16gb().mem_capacity);
    }

    #[test]
    #[should_panic(expected = "model weights do not fit")]
    fn oversized_model_panics_loudly() {
        // OPT-30B's 60 GB of weights cannot fit a single 16 GB V100: the
        // engine must refuse at first submission, not serve a fiction.
        let cfg = ModelConfig::opt_30b();
        let mut engine = crate::IntraOpEngine::new(cfg, CostModel::v100_node(), 1).unwrap();
        let mut s = sim(1, DeviceSpec::v100_16gb());
        let reqs = vec![Request::new(0, BatchShape::prefill(2, 64), SimTime::ZERO)];
        let _ = serve(&mut s, &mut engine, reqs);
    }

    #[test]
    fn release_all_clears_weights_and_working_sets() {
        let mut mem = EngineMemory::new();
        let mut s = sim(2, DeviceSpec::v100_16gb());
        let devices = [DeviceId(0), DeviceId(1)];
        mem.ensure_weights(&mut s, &devices, 1 << 30);
        mem.batch_submitted(&mut s, &devices, 7, 1 << 20);
        mem.batch_submitted(&mut s, &devices, 3, 1 << 20);
        mem.release_all(&mut s);
        assert_eq!(s.memory_in_use(DeviceId(0)), 0);
        assert_eq!(s.memory_in_use(DeviceId(1)), 0);
        // A replan re-allocates from scratch over the new placement.
        mem.ensure_weights(&mut s, &[DeviceId(0)], 1 << 30);
        assert_eq!(s.memory_in_use(DeviceId(0)), 1 << 30);
    }

    #[test]
    fn pipeline_frees_working_sets_as_batches_drain() {
        let cfg = ModelConfig::opt_30b();
        let mut engine = crate::InterOpEngine::new(
            cfg.clone(),
            CostModel::v100_node(),
            4,
            crate::PipelineFlavor::Measured,
        )
        .unwrap();
        let mut s = sim(4, DeviceSpec::v100_16gb());
        let reqs: Vec<Request> = (0..6)
            .map(|i| Request::new(i, BatchShape::prefill(2, 64), SimTime::from_micros(10 * i)))
            .collect();
        let m = serve(&mut s, &mut engine, reqs);
        assert_eq!(m.completed(), 6);
        for d in 0..4 {
            assert_eq!(
                s.memory_in_use(DeviceId(d)),
                cfg.weight_bytes() / 4,
                "gpu{d} leaked batch working sets"
            );
        }
    }
}
