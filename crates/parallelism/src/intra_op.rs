//! The Intra-Op baseline: Megatron-LM tensor parallelism (§4.1).
//!
//! Every batch is partitioned across all devices; each transformer layer
//! performs two all-reduce synchronizations. Batches are processed strictly
//! one after another (all kernels of batch *i+1* queue behind batch *i* on
//! stream 0 of every device), so latency is minimized per batch but the
//! devices idle during every all-reduce — the throughput cost the paper's
//! dilemma describes.

use liger_collectives::NcclConfig;
use liger_gpu_sim::{DeviceId, SimTime, Simulation, Wake};
use liger_model::{assemble, CostModel, ModelConfig};
use liger_serving::{InferenceEngine, Request};

use crate::launch::{batch_working_set_bytes, launch_symmetric, notify_completion, EngineMemory};
use crate::partition::check_divisibility;

/// Megatron-style tensor-parallel serving engine.
///
/// Admission is bounded to a small in-flight window (4 batches): enough to
/// keep the stream fed across completion callbacks without materializing
/// working sets for the entire waiting queue — allocation happens at
/// admission, as on a real server.
pub struct IntraOpEngine {
    cfg: ModelConfig,
    cost: CostModel,
    devices: Vec<DeviceId>,
    nccl: NcclConfig,
    completed: Vec<(u64, SimTime)>,
    submitted: u64,
    memory: EngineMemory,
    waiting: std::collections::VecDeque<Request>,
    in_flight: usize,
}

const MAX_IN_FLIGHT: usize = 4;

impl IntraOpEngine {
    /// Creates the engine over devices `0..world`.
    pub fn new(cfg: ModelConfig, cost: CostModel, world: usize) -> Result<IntraOpEngine, String> {
        check_divisibility(&cfg, world as u32)?;
        let nccl = cost.nccl;
        Ok(IntraOpEngine {
            cfg,
            cost,
            devices: (0..world).map(DeviceId).collect(),
            nccl,
            completed: Vec::new(),
            submitted: 0,
            memory: EngineMemory::new(),
            waiting: std::collections::VecDeque::new(),
            in_flight: 0,
        })
    }

    /// Tensor-parallel degree.
    pub fn world(&self) -> usize {
        self.devices.len()
    }

    /// Admits waiting batches while the in-flight window has room.
    fn pump(&mut self, sim: &mut Simulation) {
        while self.in_flight < MAX_IN_FLIGHT {
            let Some(request) = self.waiting.pop_front() else { break };
            self.launch_batch(request, sim);
            self.in_flight += 1;
        }
    }

    fn launch_batch(&mut self, request: Request, sim: &mut Simulation) {
        let world = self.world() as u32;
        let devices = self.devices.clone();
        self.memory.ensure_weights(sim, &devices, self.cfg.weight_bytes() / world as u64);
        self.memory.batch_submitted(
            sim,
            &devices,
            request.id,
            batch_working_set_bytes(&self.cfg, request.shape, world),
        );
        let ops = assemble(&self.cost, &self.cfg, request.shape, world);
        launch_symmetric(sim, &ops, &self.devices, 0, &self.nccl, request.id);
        // Completion: the batch is done when rank 0's stream drains past it.
        // All ranks finish simultaneously (symmetric work + collectives).
        notify_completion(sim, self.devices[0], 0, request.id);
    }
}

impl InferenceEngine for IntraOpEngine {
    fn name(&self) -> &'static str {
        "Intra-Op"
    }

    fn submit(&mut self, request: Request, sim: &mut Simulation) {
        self.submitted += 1;
        self.waiting.push_back(request);
        self.pump(sim);
    }

    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
        if let Wake::EventFired { token, fired_at, .. } = wake {
            self.memory.batch_completed(sim, token);
            self.completed.push((token, fired_at));
            self.in_flight = self.in_flight.saturating_sub(1);
            self.pump(sim);
        }
    }

    fn drain_completions(&mut self) -> Vec<(u64, SimTime)> {
        std::mem::take(&mut self.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::{DeviceSpec, HostSpec, KernelClass, SimDuration};
    use liger_model::{class_totals, BatchShape};
    use liger_serving::{serve, ArrivalProcess, PrefillTraceConfig, Request};

    fn v100_sim(n: usize) -> Simulation {
        let mut b = Simulation::builder().devices(DeviceSpec::v100_16gb(), n).capture_trace(true);
        for r in 0..n {
            b = b.host(HostSpec::mpi_rank(r));
        }
        b.build().unwrap()
    }

    /// Zero host overheads: kernel timings dominate, so analytic capacity
    /// estimates are exact. Used by the calibration-style tests; the tiny
    /// test model's kernels are so short that realistic 5us launch overheads
    /// would otherwise dominate (which is realistic, but not what these
    /// tests measure).
    fn instant_sim(n: usize) -> Simulation {
        let mut b = Simulation::builder().devices(DeviceSpec::v100_16gb(), n).capture_trace(true);
        for _ in 0..n {
            b = b.host(HostSpec::instant());
        }
        b.build().unwrap()
    }

    #[test]
    fn engine_rejects_bad_world_size() {
        assert!(IntraOpEngine::new(ModelConfig::opt_30b(), CostModel::v100_node(), 3).is_err());
        assert!(IntraOpEngine::new(ModelConfig::opt_30b(), CostModel::v100_node(), 4).is_ok());
    }

    #[test]
    fn single_batch_latency_matches_sequential_sum() {
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        let shape = BatchShape::prefill(2, 32);
        let ops = assemble(&cost, &cfg, shape, 4);
        let (compute, comm) = class_totals(&ops);
        let expected = compute + comm;

        let mut engine = IntraOpEngine::new(cfg, cost, 4).unwrap();
        let mut sim = v100_sim(4);
        let reqs = vec![Request::new(0, shape, SimTime::ZERO)];
        let metrics = serve(&mut sim, &mut engine, reqs);
        assert_eq!(metrics.completed(), 1);
        let lat = metrics.avg_latency();
        // Everything serializes on stream 0; latency = sum of kernel works
        // plus launch/rendezvous overheads (small but positive).
        assert!(lat >= expected, "latency {lat} below kernel-sum floor {expected}");
        let overhead = lat - expected;
        assert!(
            overhead < SimDuration::from_millis(2),
            "overhead {overhead} implausibly large for a tiny model"
        );
    }

    #[test]
    fn batches_serialize_fifo() {
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        let mut engine = IntraOpEngine::new(cfg, cost, 2).unwrap();
        let mut sim = v100_sim(2);
        let shape = BatchShape::prefill(2, 32);
        // Both arrive at t=0: the second waits for the first.
        let reqs =
            vec![Request::new(0, shape, SimTime::ZERO), Request::new(1, shape, SimTime::ZERO)];
        let metrics = serve(&mut sim, &mut engine, reqs);
        assert_eq!(metrics.completed(), 2);
        let mut lats: Vec<_> = metrics.completions().to_vec();
        lats.sort_by_key(|c| c.id);
        // Second batch latency ≈ 2x first (pending behind it).
        let l0 = lats[0].latency().as_secs_f64();
        let l1 = lats[1].latency().as_secs_f64();
        assert!(l1 > 1.8 * l0, "no serialization: {l0} vs {l1}");
    }

    #[test]
    fn no_cross_class_overlap_within_a_single_batch() {
        // Intra-op leaves compute idle during all-reduces: no overlap at all
        // when a single batch runs alone.
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        let mut engine = IntraOpEngine::new(cfg, cost, 2).unwrap();
        let mut sim = v100_sim(2);
        let reqs = vec![Request::new(0, BatchShape::prefill(2, 32), SimTime::ZERO)];
        serve(&mut sim, &mut engine, reqs);
        let trace = sim.take_trace().unwrap();
        assert!(trace.of_class(KernelClass::Comm).count() > 0);
        assert_eq!(trace.overlap_time(DeviceId(0)), SimDuration::ZERO);
        assert_eq!(trace.overlap_time(DeviceId(1)), SimDuration::ZERO);
    }

    #[test]
    fn sweep_saturates_at_iteration_rate() {
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        let shape = BatchShape::prefill(2, 32);
        let ops = assemble(&cost, &cfg, shape, 2);
        let (compute, comm) = class_totals(&ops);
        let iter_s = (compute + comm).as_secs_f64();
        let capacity = 1.0 / iter_s;

        // Overdrive at 3x capacity: throughput should cap near capacity.
        let mut engine = IntraOpEngine::new(cfg, cost, 2).unwrap();
        let mut sim = instant_sim(2);
        let cfg_trace = PrefillTraceConfig {
            count: 40,
            batch: 2,
            seq_min: 32,
            seq_max: 32,
            arrivals: ArrivalProcess::Constant { rate: capacity * 3.0 },
            seed: 0,
        };
        let metrics = serve(&mut sim, &mut engine, cfg_trace.generate());
        assert_eq!(metrics.completed(), 40);
        let thr = metrics.throughput();
        assert!(
            (thr - capacity).abs() / capacity < 0.1,
            "throughput {thr:.1} should saturate near capacity {capacity:.1}"
        );
    }
}
