//! The Inter-Op and Inter-Th baselines: pipeline parallelism (§4.1).
//!
//! The model is partitioned into equal contiguous stages, one per device;
//! batches flow through the pipeline with a single point-to-point transfer
//! per stage boundary. Throughput scales with the device count (each device
//! works on a different batch), but latency is the *full* single-device
//! execution time plus transfer overheads — the other horn of the paper's
//! dilemma.
//!
//! **Inter-Th** (theoretical inter-op) is identical except each GEMM is
//! replaced by the partitioned kernels the intra-op approach would use (see
//! [`inter_th_expand`]); the paper introduces it because partitioned-kernel
//! durations can differ from the unsplit kernel's in either direction.

use liger_collectives::NcclConfig;
use liger_gpu_sim::{DeviceId, SimTime, Simulation, Wake};
use liger_model::{price_ops, stage_boundary_bytes, stage_ops, CostModel, LayerOp, ModelConfig};
use liger_serving::{InferenceEngine, Request};

use crate::launch::{
    batch_working_set_bytes, launch_p2p, launch_stage, notify_completion, EngineMemory,
};
use crate::partition::{check_divisibility, inter_th_expand, stage_ranges};

/// Pipeline flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineFlavor {
    /// Unsplit per-stage kernels (the practical Inter-Op baseline).
    Measured,
    /// Intra-op partitioned kernels run sequentially per stage (Inter-Th).
    Theoretical,
}

/// Pipeline-parallel serving engine.
///
/// Admission is bounded to `2 × stages` batches in flight: enough to keep
/// every stage busy with slack, without flooding the device launch queues
/// (a real serving system behaves the same way; unbounded enqueueing would
/// trigger the §2.3.1 communication-dispatch lag for the hand-off kernels).
pub struct InterOpEngine {
    cfg: ModelConfig,
    cost: CostModel,
    ranges: Vec<(u32, u32)>,
    nccl: NcclConfig,
    flavor: PipelineFlavor,
    completed: Vec<(u64, SimTime)>,
    waiting: std::collections::VecDeque<Request>,
    in_flight: usize,
    memory: EngineMemory,
}

impl InterOpEngine {
    /// Creates a pipeline over devices `0..world`.
    pub fn new(
        cfg: ModelConfig,
        cost: CostModel,
        world: usize,
        flavor: PipelineFlavor,
    ) -> Result<InterOpEngine, String> {
        check_divisibility(&cfg, world as u32)?;
        if cfg.layers < world as u32 {
            return Err(format!(
                "{}: {} layers cannot fill {world} pipeline stages",
                cfg.name, cfg.layers
            ));
        }
        let ranges = stage_ranges(cfg.layers, world as u32);
        let nccl = cost.nccl;
        Ok(InterOpEngine {
            cfg,
            cost,
            ranges,
            nccl,
            flavor,
            completed: Vec::new(),
            waiting: std::collections::VecDeque::new(),
            in_flight: 0,
            memory: EngineMemory::new(),
        })
    }

    /// Number of pipeline stages.
    pub fn stages(&self) -> usize {
        self.ranges.len()
    }

    fn max_in_flight(&self) -> usize {
        2 * self.stages()
    }

    /// Admits waiting batches while the in-flight window has room.
    fn pump(&mut self, sim: &mut Simulation) {
        while self.in_flight < self.max_in_flight() {
            let Some(request) = self.waiting.pop_front() else { break };
            self.launch_batch(request, sim);
            self.in_flight += 1;
        }
    }
}

impl InferenceEngine for InterOpEngine {
    fn name(&self) -> &'static str {
        match self.flavor {
            PipelineFlavor::Measured => "Inter-Op",
            PipelineFlavor::Theoretical => "Inter-Th",
        }
    }

    fn submit(&mut self, request: Request, sim: &mut Simulation) {
        self.waiting.push_back(request);
        self.pump(sim);
    }

    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
        if let Wake::EventFired { token, fired_at, .. } = wake {
            self.memory.batch_completed(sim, token);
            self.completed.push((token, fired_at));
            self.in_flight = self.in_flight.saturating_sub(1);
            self.pump(sim);
        }
    }

    fn drain_completions(&mut self) -> Vec<(u64, SimTime)> {
        std::mem::take(&mut self.completed)
    }
}

impl InterOpEngine {
    /// Launches one admitted batch through every pipeline stage.
    fn launch_batch(&mut self, request: Request, sim: &mut Simulation) {
        let world = self.stages() as u32;
        let devices: Vec<DeviceId> = (0..self.stages()).map(DeviceId).collect();
        self.memory.ensure_weights(sim, &devices, self.cfg.weight_bytes() / world as u64);
        // A pipelined batch only materializes its working set on one stage
        // at a time, but we account the whole-model share conservatively.
        self.memory.batch_submitted(
            sim,
            &devices,
            request.id,
            batch_working_set_bytes(&self.cfg, request.shape, world),
        );
        let boundary = stage_boundary_bytes(&self.cfg, request.shape);
        let p2p_time = self.cost.op_time(&LayerOp::P2p { bytes: boundary });
        // Buffered pipeline: stage compute runs on stream 0, activations
        // move on stream 1 (send gated by an event after the stage, stage
        // gated by an event after the recv). The compute stream is never
        // blocked by a pending hand-off, so a stage can start the next
        // batch while the previous batch's activations are still in flight.
        let mut recv_ready: Option<liger_gpu_sim::EventId> = None;
        for (s, &(lo, hi)) in self.ranges.iter().enumerate() {
            let device = DeviceId(s);
            let host = liger_gpu_sim::HostId(s);
            let compute = liger_gpu_sim::StreamId::new(device, 0);
            let comm = liger_gpu_sim::StreamId::new(device, 1);
            if let Some(ev) = recv_ready.take() {
                sim.stream_wait(host, compute, ev);
            }
            let mut ops = stage_ops(&self.cfg, request.shape, lo, hi);
            if self.flavor == PipelineFlavor::Theoretical {
                ops = inter_th_expand(&ops, world);
            }
            let priced = price_ops(&self.cost, &ops);
            launch_stage(sim, &priced, device, 0, request.id);
            if s + 1 < self.stages() {
                let done = sim.record_event(host, compute);
                sim.stream_wait(host, comm, done);
                launch_p2p(sim, p2p_time, device, DeviceId(s + 1), 1, &self.nccl, request.id);
                let next_host = liger_gpu_sim::HostId(s + 1);
                let next_comm = liger_gpu_sim::StreamId::new(DeviceId(s + 1), 1);
                recv_ready = Some(sim.record_event(next_host, next_comm));
            }
        }
        notify_completion(sim, DeviceId(self.stages() - 1), 0, request.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::{DeviceSpec, HostSpec};
    use liger_serving::{serve, ArrivalProcess, PrefillTraceConfig};

    fn v100_sim(n: usize) -> Simulation {
        let mut b = Simulation::builder().devices(DeviceSpec::v100_16gb(), n);
        for r in 0..n {
            b = b.host(HostSpec::mpi_rank(r));
        }
        b.build().unwrap()
    }

    /// Zero host overheads (see intra_op tests): the tiny model's kernels
    /// are launch-bound under realistic 5us overheads, which inverts the
    /// large-model latency ordering these tests verify.
    fn instant_sim(n: usize) -> Simulation {
        let mut b = Simulation::builder().devices(DeviceSpec::v100_16gb(), n);
        for _ in 0..n {
            b = b.host(HostSpec::instant());
        }
        b.build().unwrap()
    }

    fn fixed_trace(count: usize, rate: f64) -> Vec<liger_serving::Request> {
        PrefillTraceConfig {
            count,
            batch: 2,
            seq_min: 32,
            seq_max: 32,
            arrivals: ArrivalProcess::Constant { rate },
            seed: 0,
        }
        .generate()
    }

    #[test]
    fn construction_checks() {
        let c = CostModel::v100_node();
        assert!(InterOpEngine::new(
            ModelConfig::tiny_test(),
            c.clone(),
            8,
            PipelineFlavor::Measured
        )
        .is_err());
        let e =
            InterOpEngine::new(ModelConfig::tiny_test(), c, 4, PipelineFlavor::Measured).unwrap();
        assert_eq!(e.stages(), 4);
        assert_eq!(e.name(), "Inter-Op");
    }

    #[test]
    fn pipeline_throughput_exceeds_intra_and_latency_is_worse() {
        use crate::intra_op::IntraOpEngine;
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        // Effectively instantaneous arrivals: both engines run saturated.
        let trace = fixed_trace(60, 1e6);

        let mut inter =
            InterOpEngine::new(cfg.clone(), cost.clone(), 4, PipelineFlavor::Measured).unwrap();
        let im = serve(&mut instant_sim(4), &mut inter, trace.clone());

        let mut intra = IntraOpEngine::new(cfg, cost, 4).unwrap();
        let tm = serve(&mut instant_sim(4), &mut intra, trace);

        assert!(
            im.throughput() > tm.throughput(),
            "pipeline throughput {:.1} should beat intra-op {:.1} under load",
            im.throughput(),
            tm.throughput()
        );
        // At saturation both latencies blow up with pending time, so compare
        // single-job latency instead at a trickle rate.
        let trickle = fixed_trace(3, 1.0);
        let mut inter = InterOpEngine::new(
            ModelConfig::tiny_test(),
            CostModel::v100_node(),
            4,
            PipelineFlavor::Measured,
        )
        .unwrap();
        let il = serve(&mut instant_sim(4), &mut inter, trickle.clone()).avg_latency();
        let mut intra =
            IntraOpEngine::new(ModelConfig::tiny_test(), CostModel::v100_node(), 4).unwrap();
        let tl = serve(&mut instant_sim(4), &mut intra, trickle).avg_latency();
        assert!(il > tl, "inter-op latency {il} should exceed intra-op {tl}");
    }

    #[test]
    fn all_jobs_complete_in_order_preserving_pipeline() {
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        let mut engine = InterOpEngine::new(cfg, cost, 2, PipelineFlavor::Measured).unwrap();
        let metrics = serve(&mut v100_sim(2), &mut engine, fixed_trace(20, 500.0));
        assert_eq!(metrics.completed(), 20);
        let mut comps: Vec<_> = metrics.completions().to_vec();
        comps.sort_by_key(|c| c.id);
        for w in comps.windows(2) {
            assert!(w[1].finished >= w[0].finished, "pipeline preserves FIFO completion order");
        }
    }

    #[test]
    fn theoretical_flavor_differs_from_measured() {
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        let trace = fixed_trace(5, 10.0);
        let mut m =
            InterOpEngine::new(cfg.clone(), cost.clone(), 4, PipelineFlavor::Measured).unwrap();
        let mm = serve(&mut v100_sim(4), &mut m, trace.clone());
        let mut t = InterOpEngine::new(cfg, cost, 4, PipelineFlavor::Theoretical).unwrap();
        assert_eq!(t.name(), "Inter-Th");
        let tt = serve(&mut v100_sim(4), &mut t, trace);
        assert_ne!(mm.avg_latency(), tt.avg_latency(), "kernel partitioning must change timing");
    }

    #[test]
    fn single_stage_pipeline_degenerates_to_plain_serial_execution() {
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        let mut e = InterOpEngine::new(cfg, cost, 1, PipelineFlavor::Measured).unwrap();
        let metrics = serve(&mut v100_sim(1), &mut e, fixed_trace(3, 100.0));
        assert_eq!(metrics.completed(), 3);
    }
}
