//! Deterministic, seeded fault injection for the simulated node.
//!
//! Real fleets see stragglers, flaky links and transient kernel failures;
//! this module lets the simulator reproduce them **deterministically** so
//! scheduling and serving policies can be validated under degradation.
//!
//! # Determinism contract
//!
//! Every fault decision is a pure function of `(seed, sim-time, device or
//! link id)` — there is no wall-clock, no hidden RNG stream and no state
//! mutated by queries. Two runs with the same seed, schedule and workload
//! produce byte-identical traces; changing the seed changes only the
//! hash-driven decisions (kernel failures, launch spikes), never the
//! windowed faults, which are fixed intervals.
//!
//! # Fault classes
//!
//! * **Device straggler** ([`FaultSpec::straggler`]): every kernel on a
//!   device progresses slower by a factor over a time window — the SM
//!   clock / HBM bandwidth degradation of a thermally throttled or
//!   misbehaving GPU.
//! * **Link degradation / partition** ([`FaultSpec::degrade_link`],
//!   [`FaultSpec::partition_link`]): collectives whose member set spans the
//!   link stretch by a factor over a window. A partition is modelled as a
//!   very large finite factor so collectives still complete (after the
//!   window ends a boundary reprice restores the healthy rate) instead of
//!   hanging the simulation.
//! * **Kernel failure** ([`FaultSpec::kernel_failures`]): a launched kernel
//!   occupies its device for a configurable fraction of its runtime, then
//!   fails. The failed kernel still pops from its hardware queue (stream
//!   FIFO order and event semantics are preserved — no hangs), but the
//!   driver is woken with [`Wake::KernelFailed`](crate::Wake::KernelFailed)
//!   so the serving layer can retry.
//! * **Launch-overhead spike** ([`FaultSpec::launch_spikes`]): a host
//!   kernel launch occasionally pays an extra overhead, modelling driver
//!   jitter and lock contention on the submitting CPU.
//! * **Device outage** ([`FaultSpec::device_down`],
//!   [`FaultSpec::device_outage`]): a device stops executing work at a
//!   trigger instant. An open-ended outage is the permanent ECC/XID-class
//!   failure that takes a GPU out of the fleet; a windowed outage
//!   (`down:dev:t0..t1`) models the transient loss — a driver reset, a
//!   host reboot, a fabric hiccup — after which the device rejoins. The
//!   simulator fails the device's running and queued kernels in FIFO
//!   order, aborts collectives that counted on it, and wakes the driver
//!   with [`Wake::DeviceDown`](crate::Wake::DeviceDown); at the window end
//!   it marks the device alive again and wakes the driver with
//!   [`Wake::DeviceRejoined`](crate::Wake::DeviceRejoined). Several
//!   disjoint windows on the same device model a flapping GPU.
//! * **Link flap** ([`FaultSpec::link_flap`]): sugar that expands into
//!   alternating link-partition windows, modelling a flapping NIC or
//!   switch port that oscillates between partitioned and healthy.
//! * **Node-scoped faults** ([`FaultSpec::node_down`],
//!   [`FaultSpec::node_outage`], [`FaultSpec::nic_link`]): sugar over a
//!   node geometry (`devices_per_node` consecutive devices per node, the
//!   same flat numbering the cluster topology uses). A node down/outage
//!   expands to one device down per member; a NIC-link degradation expands
//!   to a degraded link on every cross-node device pair, so collectives and
//!   KV streams spanning the two nodes stretch by the factor. Like
//!   `link_flap`, the expansion is primitive — `Display` renders the
//!   expanded forms and the round trip holds by equality.

use crate::ids::{DeviceId, HostId};
use crate::time::{SimDuration, SimTime};

/// Slowdown factor used by [`FaultSpec::partition_link`]: large enough that
/// a partitioned collective makes essentially no progress inside the
/// window, finite so it never hangs the event loop.
pub const PARTITION_FACTOR: f64 = 1e6;

/// A device straggler window: kernels on `device` run `factor`× slower
/// during `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSlowdown {
    /// Affected device.
    pub device: DeviceId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Slowdown factor (≥ 1).
    pub factor: f64,
}

/// A degraded inter-device link: collectives spanning `{a, b}` stretch by
/// `factor` during `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// One endpoint.
    pub a: DeviceId,
    /// The other endpoint.
    pub b: DeviceId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Stretch factor (≥ 1); [`PARTITION_FACTOR`] models a partition.
    pub factor: f64,
}

/// Seeded kernel-failure injection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelFaultParams {
    /// Probability that a kernel beginning inside the window fails.
    pub prob: f64,
    /// Fraction of the kernel's nominal runtime consumed before the
    /// failure manifests (in `[0, 1]`).
    pub fraction: f64,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// Seeded host launch-overhead spike parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchSpikeParams {
    /// Probability that one kernel launch pays the extra overhead.
    pub prob: f64,
    /// The extra overhead paid.
    pub extra: SimDuration,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// A device outage: `device` stops executing work at `at`. When `until` is
/// `None` the outage is open-ended (the device never recovers — permanent
/// loss); otherwise the device rejoins at `until` and the simulator wakes
/// the driver with [`Wake::DeviceRejoined`](crate::Wake::DeviceRejoined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceDown {
    /// The lost device.
    pub device: DeviceId,
    /// The instant the device dies (window start, inclusive).
    pub at: SimTime,
    /// The instant the device rejoins (window end, exclusive); `None`
    /// means the loss is permanent.
    pub until: Option<SimTime>,
}

impl DeviceDown {
    /// Whether the outage covers instant `t`.
    pub fn covers(&self, t: SimTime) -> bool {
        self.at <= t && self.until.is_none_or(|u| t < u)
    }
}

/// A declarative, seeded fault schedule for one simulation run.
///
/// Constructed with the builder methods and handed to
/// [`SimulationBuilder::faults`](crate::SimulationBuilder::faults), or
/// parsed from the bench harness's `--faults` spec string with
/// [`FaultSpec::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    seed: u64,
    slowdowns: Vec<DeviceSlowdown>,
    links: Vec<LinkFault>,
    kernel_faults: Option<KernelFaultParams>,
    launch_spikes: Option<LaunchSpikeParams>,
    downs: Vec<DeviceDown>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

impl FaultSpec {
    /// An empty schedule (no faults ever fire).
    pub fn none() -> FaultSpec {
        FaultSpec::new(0)
    }

    /// An empty schedule with the given decision seed.
    pub fn new(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            slowdowns: Vec::new(),
            links: Vec::new(),
            kernel_faults: None,
            launch_spikes: None,
            downs: Vec::new(),
        }
    }

    /// The decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no fault of any class is configured.
    pub fn is_empty(&self) -> bool {
        self.slowdowns.is_empty()
            && self.links.is_empty()
            && self.kernel_faults.is_none()
            && self.launch_spikes.is_none()
            && self.downs.is_empty()
    }

    /// Adds a device straggler window (`factor` ≥ 1).
    pub fn straggler(
        mut self,
        device: DeviceId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> FaultSpec {
        assert!(factor >= 1.0, "straggler factor must be >= 1, got {factor}");
        assert!(from < until, "straggler window is empty");
        self.slowdowns.push(DeviceSlowdown { device, from, until, factor });
        self
    }

    /// Adds a degraded-link window (`factor` ≥ 1).
    pub fn degrade_link(
        mut self,
        a: DeviceId,
        b: DeviceId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> FaultSpec {
        assert!(factor >= 1.0, "link factor must be >= 1, got {factor}");
        assert!(from < until, "link window is empty");
        self.links.push(LinkFault { a, b, from, until, factor });
        self
    }

    /// Adds a link partition window ([`PARTITION_FACTOR`] stretch).
    pub fn partition_link(
        self,
        a: DeviceId,
        b: DeviceId,
        from: SimTime,
        until: SimTime,
    ) -> FaultSpec {
        self.degrade_link(a, b, from, until, PARTITION_FACTOR)
    }

    /// Enables seeded kernel failures.
    pub fn kernel_failures(mut self, params: KernelFaultParams) -> FaultSpec {
        assert!((0.0..=1.0).contains(&params.prob), "failure prob out of [0,1]");
        assert!((0.0..=1.0).contains(&params.fraction), "failure fraction out of [0,1]");
        self.kernel_faults = Some(params);
        self
    }

    /// Enables seeded host launch-overhead spikes.
    pub fn launch_spikes(mut self, params: LaunchSpikeParams) -> FaultSpec {
        assert!((0.0..=1.0).contains(&params.prob), "spike prob out of [0,1]");
        self.launch_spikes = Some(params);
        self
    }

    /// Marks `device` as permanently lost from `at` onward.
    pub fn device_down(self, device: DeviceId, at: SimTime) -> FaultSpec {
        self.push_down(DeviceDown { device, at, until: None })
    }

    /// Marks `device` as down over the window `[from, until)`: it dies at
    /// `from` and rejoins at `until`. Several disjoint windows on the same
    /// device model a flapping GPU.
    pub fn device_outage(self, device: DeviceId, from: SimTime, until: SimTime) -> FaultSpec {
        assert!(from < until, "outage window is empty: {from:?}..{until:?}");
        self.push_down(DeviceDown { device, at: from, until: Some(until) })
    }

    fn push_down(mut self, down: DeviceDown) -> FaultSpec {
        // Windows on one device must not overlap or even touch: a rejoin
        // and a death at the same instant would be order-ambiguous.
        let conflict = self.downs.iter().any(|d| {
            d.device == down.device
                && d.at <= down.until.unwrap_or(SimTime::MAX)
                && down.at <= d.until.unwrap_or(SimTime::MAX)
        });
        assert!(!conflict, "overlapping down windows for device {:?}", down.device);
        self.downs.push(down);
        self
    }

    /// Alternating partition windows on the link `{a, b}`: partitioned for
    /// `period` starting at `from`, healthy for `period`, and so on until
    /// `until` — a flapping NIC or switch port.
    pub fn link_flap(
        mut self,
        a: DeviceId,
        b: DeviceId,
        from: SimTime,
        until: SimTime,
        period: SimDuration,
    ) -> FaultSpec {
        assert!(from < until, "flap window is empty");
        assert!(!period.is_zero(), "flap period must be positive");
        let mut start = from;
        while start < until {
            let end = (start + period).min(until);
            self = self.partition_link(a, b, start, end);
            start = end + period;
        }
        self
    }

    /// Takes every device of node `node` down permanently at `at` — a
    /// whole-host loss (kernel panic, power supply, fabric isolation).
    /// Nodes are `devices_per_node` consecutive devices: node `n` owns
    /// devices `[n·k, (n+1)·k)`.
    pub fn node_down(mut self, devices_per_node: usize, node: usize, at: SimTime) -> FaultSpec {
        for d in Self::node_devices(devices_per_node, node) {
            self = self.device_down(DeviceId(d), at);
        }
        self
    }

    /// Takes every device of node `node` down over `[from, until)` — a host
    /// reboot after which the whole node rejoins.
    pub fn node_outage(
        mut self,
        devices_per_node: usize,
        node: usize,
        from: SimTime,
        until: SimTime,
    ) -> FaultSpec {
        for d in Self::node_devices(devices_per_node, node) {
            self = self.device_outage(DeviceId(d), from, until);
        }
        self
    }

    /// Degrades the inter-node NIC link between nodes `node_a` and `node_b`
    /// by `factor` over `[from, until)`: every cross-node device pair gets a
    /// degraded link, so collectives and KV streams spanning the two nodes
    /// stretch while intra-node traffic is untouched.
    pub fn nic_link(
        mut self,
        devices_per_node: usize,
        node_a: usize,
        node_b: usize,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> FaultSpec {
        assert!(node_a != node_b, "niclink endpoints must be distinct nodes, got {node_a}");
        for da in Self::node_devices(devices_per_node, node_a) {
            for db in Self::node_devices(devices_per_node, node_b) {
                self = self.degrade_link(DeviceId(da), DeviceId(db), from, until, factor);
            }
        }
        self
    }

    fn node_devices(devices_per_node: usize, node: usize) -> std::ops::Range<usize> {
        assert!(devices_per_node >= 1, "node geometry needs at least one device per node");
        node * devices_per_node..(node + 1) * devices_per_node
    }

    /// The configured device outages (permanent and windowed).
    pub fn device_downs(&self) -> &[DeviceDown] {
        &self.downs
    }

    /// When `device` first dies, if any outage is scheduled for it.
    pub fn device_down_at(&self, device: DeviceId) -> Option<SimTime> {
        self.downs.iter().filter(|d| d.device == device).map(|d| d.at).min()
    }

    /// Whether `device` is dead at instant `at` (inside any outage window).
    pub fn is_device_down(&self, device: DeviceId, at: SimTime) -> bool {
        self.downs.iter().any(|d| d.device == device && d.covers(at))
    }

    /// The configured straggler windows.
    pub fn stragglers(&self) -> &[DeviceSlowdown] {
        &self.slowdowns
    }

    /// The configured link fault windows.
    pub fn link_faults(&self) -> &[LinkFault] {
        &self.links
    }

    /// Every window edge at which rates change — the simulator schedules a
    /// settle + reprice at each so piecewise rates are exact.
    pub fn boundaries(&self) -> Vec<SimTime> {
        let mut out: Vec<SimTime> = Vec::new();
        for s in &self.slowdowns {
            out.push(s.from);
            out.push(s.until);
        }
        for l in &self.links {
            out.push(l.from);
            out.push(l.until);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Combined straggler factor on `device` at `at` (product of active
    /// windows; 1.0 when healthy).
    pub fn device_factor(&self, device: DeviceId, at: SimTime) -> f64 {
        let mut f = 1.0;
        for s in &self.slowdowns {
            if s.device == device && s.from <= at && at < s.until {
                f *= s.factor;
            }
        }
        f
    }

    /// Combined stretch factor of the link `{a, b}` at `at` (symmetric in
    /// the endpoints; 1.0 when healthy).
    pub fn link_factor(&self, a: DeviceId, b: DeviceId, at: SimTime) -> f64 {
        let mut f = 1.0;
        for l in &self.links {
            let hit = (l.a == a && l.b == b) || (l.a == b && l.b == a);
            if hit && l.from <= at && at < l.until {
                f *= l.factor;
            }
        }
        f
    }

    /// Worst pairwise link stretch over a collective's member devices at
    /// `at` — the collective progresses at the rate of its slowest link.
    pub fn collective_link_factor(
        &self,
        members: impl Iterator<Item = DeviceId> + Clone,
        at: SimTime,
    ) -> f64 {
        if self.links.is_empty() {
            return 1.0;
        }
        let mut worst = 1.0f64;
        let mut outer = members.clone();
        while let Some(a) = outer.next() {
            for b in outer.clone() {
                worst = worst.max(self.link_factor(a, b, at));
            }
        }
        worst
    }

    /// Whether *any* kernel starting in `[from, until)` could fail. A
    /// conservative window check used by the parallel core to keep
    /// fault-prone intervals on the coordinator, where failure wakes can be
    /// delivered to the driver in canonical order.
    pub(crate) fn kernel_failure_possible(&self, from: SimTime, until: SimTime) -> bool {
        match self.kernel_faults {
            Some(kf) => kf.prob > 0.0 && from < kf.until && kf.from < until,
            None => false,
        }
    }

    /// Whether a kernel beginning on `device` at `at` fails, and if so the
    /// fraction of its runtime it consumes first. Pure function of
    /// `(seed, at, device)`.
    pub fn kernel_failure(&self, device: DeviceId, at: SimTime) -> Option<f64> {
        let kf = self.kernel_faults?;
        if !(kf.from <= at && at < kf.until) {
            return None;
        }
        let u = unit_hash(self.seed, 0x4b46_4149_4c00_0001, device.0 as u64, at.as_nanos());
        (u < kf.prob).then_some(kf.fraction)
    }

    /// Extra launch overhead host `host` pays for a kernel launched at
    /// `at`. Pure function of `(seed, at, host)`.
    pub fn launch_spike(&self, host: HostId, at: SimTime) -> SimDuration {
        let Some(sp) = self.launch_spikes else { return SimDuration::ZERO };
        if !(sp.from <= at && at < sp.until) {
            return SimDuration::ZERO;
        }
        let u = unit_hash(self.seed, 0x5350_494b_4500_0001, host.0 as u64, at.as_nanos());
        if u < sp.prob {
            sp.extra
        } else {
            SimDuration::ZERO
        }
    }

    /// Parses a `--faults` spec string. Segments are `;`-separated; fields
    /// within a segment are `:`-separated and positional:
    ///
    /// * `seed=<u64>` — decision seed (default 0)
    /// * `slow:<dev>:<from_ms>:<until_ms>:<factor>` — device straggler
    /// * `link:<a>:<b>:<from_ms>:<until_ms>:<factor>` — link degradation
    /// * `part:<a>:<b>:<from_ms>:<until_ms>` — link partition
    /// * `kfail:<prob>:<fraction>[:<from_ms>:<until_ms>]` — kernel failures
    ///   (whole run when the window is omitted)
    /// * `spike:<prob>:<extra_us>[:<from_ms>:<until_ms>]` — launch spikes
    /// * `down:<dev>:<at_ms>` — permanent device loss
    /// * `down:<dev>:<from_ms>..<until_ms>` — windowed outage (the device
    ///   rejoins at `until`); repeat the segment for a flapping device
    /// * `flap:<a>:<b>:<from_ms>:<until_ms>:<period_ms>` — link flap
    ///   (alternating partition windows of length `period`)
    /// * `nodes=<devices_per_node>` — node geometry for the node-scoped
    ///   segments that follow it (must precede them)
    /// * `node-down:<n>:<at_ms>` / `node-down:<n>:<from_ms>..<until_ms>` —
    ///   whole-node loss or outage (expands to one `down:` per device)
    /// * `niclink:<a>-<b>:<from_ms>:<until_ms>:<factor>` — inter-node NIC
    ///   degradation (expands to `link:` on every cross-node device pair)
    ///
    /// Example: `seed=7;slow:0:10:30:1.5;kfail:0.01:0.5;down:3:40..80` or
    /// `nodes=4;node-down:1:40..80;niclink:0-1:10:30:8`.
    ///
    /// Errors carry the byte offset of the offending field so a bad
    /// `--faults` flag fails with a pointer into the spec string.
    pub fn parse(spec: &str) -> Result<FaultSpec, ParseError> {
        fn ms(s: &str, off: usize) -> Result<SimTime, ParseError> {
            s.parse::<u64>()
                .map(SimTime::from_millis)
                .map_err(|_| ParseError::at(off, format!("a millisecond count, got {s:?}")))
        }
        fn num<T: std::str::FromStr>(s: &str, off: usize, what: &str) -> Result<T, ParseError> {
            s.parse::<T>().map_err(|_| ParseError::at(off, format!("{what}, got {s:?}")))
        }
        let mut out = FaultSpec::none();
        // Node geometry for `node-down:` / `niclink:` segments; set by a
        // preceding `nodes=<k>` segment and never stored on the spec — the
        // node forms expand to device-granular primitives at parse time.
        let mut devices_per_node: Option<usize> = None;
        let mut cursor = 0usize;
        for raw in spec.split(';') {
            let seg_start = cursor + (raw.len() - raw.trim_start().len());
            cursor += raw.len() + 1;
            let seg = raw.trim();
            if seg.is_empty() {
                continue;
            }
            if let Some(seed) = seg.strip_prefix("seed=") {
                out.seed = num::<u64>(seed, seg_start + "seed=".len(), "a u64 seed")?;
                continue;
            }
            if let Some(k) = seg.strip_prefix("nodes=") {
                let off = seg_start + "nodes=".len();
                let k = num::<usize>(k, off, "a devices-per-node count")?;
                if k == 0 {
                    return Err(ParseError::at(
                        off,
                        "a positive devices-per-node count, got \"0\"".to_string(),
                    ));
                }
                devices_per_node = Some(k);
                continue;
            }
            // Fields paired with their byte offset into `spec`.
            let fields: Vec<(&str, usize)> = {
                let mut fo = seg_start;
                seg.split(':')
                    .map(|f| {
                        let at = fo;
                        fo += f.len() + 1;
                        (f, at)
                    })
                    .collect()
            };
            match fields.as_slice() {
                [("slow", _), dev, from, until, factor] => {
                    out = out.straggler(
                        DeviceId(num::<usize>(dev.0, dev.1, "a device index")?),
                        ms(from.0, from.1)?,
                        ms(until.0, until.1)?,
                        num::<f64>(factor.0, factor.1, "a slowdown factor")?,
                    );
                }
                [("link", _), a, b, from, until, factor] => {
                    out = out.degrade_link(
                        DeviceId(num::<usize>(a.0, a.1, "a device index")?),
                        DeviceId(num::<usize>(b.0, b.1, "a device index")?),
                        ms(from.0, from.1)?,
                        ms(until.0, until.1)?,
                        num::<f64>(factor.0, factor.1, "a stretch factor")?,
                    );
                }
                [("part", _), a, b, from, until] => {
                    out = out.partition_link(
                        DeviceId(num::<usize>(a.0, a.1, "a device index")?),
                        DeviceId(num::<usize>(b.0, b.1, "a device index")?),
                        ms(from.0, from.1)?,
                        ms(until.0, until.1)?,
                    );
                }
                [("kfail", at), prob, fraction, rest @ ..] => {
                    let (from, until) = match rest {
                        [] => (SimTime::ZERO, SimTime::MAX),
                        [f, u] => (ms(f.0, f.1)?, ms(u.0, u.1)?),
                        _ => {
                            return Err(ParseError::at(
                                *at,
                                format!("kfail with 3 or 5 fields, got {seg:?}"),
                            ))
                        }
                    };
                    out = out.kernel_failures(KernelFaultParams {
                        prob: num::<f64>(prob.0, prob.1, "a failure probability")?,
                        fraction: num::<f64>(fraction.0, fraction.1, "a runtime fraction")?,
                        from,
                        until,
                    });
                }
                [("spike", at), prob, extra_us, rest @ ..] => {
                    let (from, until) = match rest {
                        [] => (SimTime::ZERO, SimTime::MAX),
                        [f, u] => (ms(f.0, f.1)?, ms(u.0, u.1)?),
                        _ => {
                            return Err(ParseError::at(
                                *at,
                                format!("spike with 3 or 5 fields, got {seg:?}"),
                            ))
                        }
                    };
                    out = out.launch_spikes(LaunchSpikeParams {
                        prob: num::<f64>(prob.0, prob.1, "a spike probability")?,
                        extra: SimDuration::from_micros(num::<u64>(
                            extra_us.0,
                            extra_us.1,
                            "extra micros",
                        )?),
                        from,
                        until,
                    });
                }
                [("down", _), dev, window] => {
                    let device = DeviceId(num::<usize>(dev.0, dev.1, "a device index")?);
                    match window.0.split_once("..") {
                        None => out = out.device_down(device, ms(window.0, window.1)?),
                        Some((from, until)) => {
                            let from_t = ms(from, window.1)?;
                            let until_off = window.1 + from.len() + 2;
                            let until_t = ms(until, until_off)?;
                            if until_t <= from_t {
                                return Err(ParseError::at(
                                    window.1,
                                    format!(
                                        "a non-empty outage window (start < end), got {:?}",
                                        window.0
                                    ),
                                ));
                            }
                            out = out.device_outage(device, from_t, until_t);
                        }
                    }
                }
                [("flap", _), a, b, from, until, period] => {
                    let from_t = ms(from.0, from.1)?;
                    let until_t = ms(until.0, until.1)?;
                    if until_t <= from_t {
                        return Err(ParseError::at(
                            from.1,
                            format!("a non-empty flap window (start < end), got {seg:?}"),
                        ));
                    }
                    let period_ms = num::<u64>(period.0, period.1, "a flap period in ms")?;
                    if period_ms == 0 {
                        return Err(ParseError::at(
                            period.1,
                            "a positive flap period in ms, got \"0\"".to_string(),
                        ));
                    }
                    out = out.link_flap(
                        DeviceId(num::<usize>(a.0, a.1, "a device index")?),
                        DeviceId(num::<usize>(b.0, b.1, "a device index")?),
                        from_t,
                        until_t,
                        SimDuration::from_millis(period_ms),
                    );
                }
                [("node-down", at), node, window] => {
                    let Some(k) = devices_per_node else {
                        return Err(ParseError::at(
                            *at,
                            format!("nodes=<devices_per_node> before node-scoped faults: {seg:?}"),
                        ));
                    };
                    let n = num::<usize>(node.0, node.1, "a node index")?;
                    match window.0.split_once("..") {
                        None => out = out.node_down(k, n, ms(window.0, window.1)?),
                        Some((from, until)) => {
                            let from_t = ms(from, window.1)?;
                            let until_t = ms(until, window.1 + from.len() + 2)?;
                            if until_t <= from_t {
                                return Err(ParseError::at(
                                    window.1,
                                    format!(
                                        "a non-empty outage window (start < end), got {:?}",
                                        window.0
                                    ),
                                ));
                            }
                            out = out.node_outage(k, n, from_t, until_t);
                        }
                    }
                }
                [("niclink", at), pair, from, until, factor] => {
                    let Some(k) = devices_per_node else {
                        return Err(ParseError::at(
                            *at,
                            format!("nodes=<devices_per_node> before node-scoped faults: {seg:?}"),
                        ));
                    };
                    let Some((a, b)) = pair.0.split_once('-') else {
                        return Err(ParseError::at(
                            pair.1,
                            format!("a node pair <a>-<b>, got {:?}", pair.0),
                        ));
                    };
                    let na = num::<usize>(a, pair.1, "a node index")?;
                    let nb = num::<usize>(b, pair.1 + a.len() + 1, "a node index")?;
                    if na == nb {
                        return Err(ParseError::at(
                            pair.1,
                            format!("distinct niclink endpoint nodes, got {:?}", pair.0),
                        ));
                    }
                    out = out.nic_link(
                        k,
                        na,
                        nb,
                        ms(from.0, from.1)?,
                        ms(until.0, until.1)?,
                        num::<f64>(factor.0, factor.1, "a stretch factor")?,
                    );
                }
                _ => {
                    return Err(ParseError::at(
                        seg_start,
                        format!(
                            "a fault segment (seed=/nodes=/slow/link/part/kfail/spike/down/\
                             flap/node-down/niclink), got {seg:?}"
                        ),
                    ))
                }
            }
        }
        Ok(out)
    }
}

/// Renders the schedule in the exact grammar [`FaultSpec::parse`] accepts,
/// so `parse(spec.to_string())` reconstructs an equal spec. Window edges
/// are rendered as whole milliseconds — the grammar's granularity — so the
/// round trip is exact for any spec that `parse` itself can produce.
/// Partition windows (including [`FaultSpec::link_flap`] expansions)
/// render as `part:` segments, other link faults as `link:`.
impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn ms(t: SimTime) -> u64 {
            t.as_nanos() / 1_000_000
        }
        let mut segs: Vec<String> = Vec::new();
        if self.seed != 0 {
            segs.push(format!("seed={}", self.seed));
        }
        for s in &self.slowdowns {
            segs.push(format!("slow:{}:{}:{}:{}", s.device.0, ms(s.from), ms(s.until), s.factor));
        }
        for l in &self.links {
            if l.factor == PARTITION_FACTOR {
                segs.push(format!("part:{}:{}:{}:{}", l.a.0, l.b.0, ms(l.from), ms(l.until)));
            } else {
                segs.push(format!(
                    "link:{}:{}:{}:{}:{}",
                    l.a.0,
                    l.b.0,
                    ms(l.from),
                    ms(l.until),
                    l.factor
                ));
            }
        }
        if let Some(kf) = self.kernel_faults {
            if kf.from == SimTime::ZERO && kf.until == SimTime::MAX {
                segs.push(format!("kfail:{}:{}", kf.prob, kf.fraction));
            } else {
                segs.push(format!(
                    "kfail:{}:{}:{}:{}",
                    kf.prob,
                    kf.fraction,
                    ms(kf.from),
                    ms(kf.until)
                ));
            }
        }
        if let Some(sp) = self.launch_spikes {
            let extra_us = sp.extra.as_nanos() / 1_000;
            if sp.from == SimTime::ZERO && sp.until == SimTime::MAX {
                segs.push(format!("spike:{}:{}", sp.prob, extra_us));
            } else {
                segs.push(format!(
                    "spike:{}:{}:{}:{}",
                    sp.prob,
                    extra_us,
                    ms(sp.from),
                    ms(sp.until)
                ));
            }
        }
        for d in &self.downs {
            match d.until {
                None => segs.push(format!("down:{}:{}", d.device.0, ms(d.at))),
                Some(u) => segs.push(format!("down:{}:{}..{}", d.device.0, ms(d.at), ms(u))),
            }
        }
        write!(f, "{}", segs.join(";"))
    }
}

/// Error from [`FaultSpec::parse`]: the byte offset of the offending field
/// inside the spec string plus what the parser expected to find there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the spec string where parsing failed.
    pub offset: usize,
    /// Human-readable description of the expected token.
    pub expected: String,
}

impl ParseError {
    fn at(offset: usize, expected: String) -> ParseError {
        ParseError { offset, expected }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault spec error at byte {}: expected {}", self.offset, self.expected)
    }
}

impl std::error::Error for ParseError {}

/// SplitMix64-style avalanche of `(seed, salt, id, time)` to a uniform
/// `f64` in `[0, 1)` — the pure decision function behind kernel failures
/// and launch spikes.
fn unit_hash(seed: u64, salt: u64, id: u64, time_ns: u64) -> f64 {
    let mut z = seed ^ salt;
    for word in [id, time_ns] {
        z = z.wrapping_add(word).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_spec_is_transparent() {
        let f = FaultSpec::none();
        assert!(f.is_empty());
        assert_eq!(f.device_factor(DeviceId(0), t(5)), 1.0);
        assert_eq!(f.link_factor(DeviceId(0), DeviceId(1), t(5)), 1.0);
        assert_eq!(f.kernel_failure(DeviceId(0), t(5)), None);
        assert_eq!(f.launch_spike(HostId(0), t(5)), SimDuration::ZERO);
        assert!(f.boundaries().is_empty());
    }

    #[test]
    fn straggler_window_is_half_open() {
        let f = FaultSpec::new(1).straggler(DeviceId(0), t(10), t(20), 2.0);
        assert_eq!(f.device_factor(DeviceId(0), t(9)), 1.0);
        assert_eq!(f.device_factor(DeviceId(0), t(10)), 2.0);
        assert_eq!(f.device_factor(DeviceId(0), t(19)), 2.0);
        assert_eq!(f.device_factor(DeviceId(0), t(20)), 1.0);
        assert_eq!(f.device_factor(DeviceId(1), t(15)), 1.0, "other devices healthy");
        assert_eq!(f.boundaries(), vec![t(10), t(20)]);
    }

    #[test]
    fn overlapping_windows_compound() {
        let f = FaultSpec::new(1).straggler(DeviceId(0), t(0), t(20), 2.0).straggler(
            DeviceId(0),
            t(10),
            t(30),
            3.0,
        );
        assert_eq!(f.device_factor(DeviceId(0), t(5)), 2.0);
        assert_eq!(f.device_factor(DeviceId(0), t(15)), 6.0);
        assert_eq!(f.device_factor(DeviceId(0), t(25)), 3.0);
    }

    #[test]
    fn link_factor_is_symmetric_and_collective_takes_worst() {
        let f = FaultSpec::new(1)
            .degrade_link(DeviceId(0), DeviceId(1), t(0), t(10), 4.0)
            .degrade_link(DeviceId(1), DeviceId(2), t(0), t(10), 2.0);
        assert_eq!(f.link_factor(DeviceId(1), DeviceId(0), t(5)), 4.0);
        let members = [DeviceId(0), DeviceId(1), DeviceId(2)];
        assert_eq!(f.collective_link_factor(members.iter().copied(), t(5)), 4.0);
        assert_eq!(f.collective_link_factor(members.iter().copied(), t(15)), 1.0);
        let tail = [DeviceId(1), DeviceId(2)];
        assert_eq!(f.collective_link_factor(tail.iter().copied(), t(5)), 2.0);
        let unlinked = [DeviceId(2), DeviceId(3)];
        assert_eq!(f.collective_link_factor(unlinked.iter().copied(), t(5)), 1.0);
    }

    #[test]
    fn partition_uses_the_large_factor() {
        let f = FaultSpec::new(1).partition_link(DeviceId(0), DeviceId(1), t(0), t(1));
        assert_eq!(f.link_factor(DeviceId(0), DeviceId(1), SimTime::ZERO), PARTITION_FACTOR);
    }

    #[test]
    fn kernel_failure_is_deterministic_and_seed_sensitive() {
        let params = KernelFaultParams { prob: 0.5, fraction: 0.25, from: t(0), until: t(100) };
        let a = FaultSpec::new(7).kernel_failures(params);
        let b = FaultSpec::new(7).kernel_failures(params);
        let c = FaultSpec::new(8).kernel_failures(params);
        let mut diverged = false;
        for i in 0..200u64 {
            let at = SimTime::from_micros(i * 13);
            assert_eq!(a.kernel_failure(DeviceId(0), at), b.kernel_failure(DeviceId(0), at));
            if a.kernel_failure(DeviceId(0), at) != c.kernel_failure(DeviceId(0), at) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds should disagree somewhere");
    }

    #[test]
    fn failure_probability_is_roughly_honored() {
        let params =
            KernelFaultParams { prob: 0.3, fraction: 0.5, from: t(0), until: SimTime::MAX };
        let f = FaultSpec::new(42).kernel_failures(params);
        let hits = (0..10_000u64)
            .filter(|&i| {
                f.kernel_failure(DeviceId(i as usize % 4), SimTime::from_nanos(i * 997)).is_some()
            })
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "empirical failure rate {rate}");
    }

    #[test]
    fn launch_spike_pays_the_extra() {
        let f = FaultSpec::new(3).launch_spikes(LaunchSpikeParams {
            prob: 1.0,
            extra: SimDuration::from_micros(50),
            from: t(0),
            until: t(10),
        });
        assert_eq!(f.launch_spike(HostId(0), t(5)), SimDuration::from_micros(50));
        assert_eq!(f.launch_spike(HostId(0), t(15)), SimDuration::ZERO, "outside the window");
    }

    #[test]
    fn parse_round_trips_the_documented_example() {
        let f = FaultSpec::parse("seed=7;slow:0:10:30:1.5;kfail:0.01:0.5").unwrap();
        assert_eq!(f.seed(), 7);
        assert_eq!(f.device_factor(DeviceId(0), t(20)), 1.5);
        assert_eq!(f.device_factor(DeviceId(0), t(31)), 1.0);
        assert!(f.kernel_faults.is_some());
        let g = FaultSpec::parse("link:0:1:5:15:3.0;part:2:3:0:5;spike:0.1:25:0:100").unwrap();
        assert_eq!(g.link_factor(DeviceId(0), DeviceId(1), t(10)), 3.0);
        assert_eq!(g.link_factor(DeviceId(2), DeviceId(3), t(1)), PARTITION_FACTOR);
        assert!(g.launch_spikes.is_some());
    }

    #[test]
    fn parse_rejects_malformed_segments() {
        assert!(FaultSpec::parse("slow:0:10:30").is_err());
        assert!(FaultSpec::parse("wobble:1").is_err());
        assert!(FaultSpec::parse("slow:x:10:30:1.5").is_err());
        assert!(FaultSpec::parse("kfail:0.1:0.5:1:2:3").is_err());
        assert!(FaultSpec::parse("seed=banana").is_err());
        assert!(FaultSpec::parse("").map(|f| f.is_empty()).unwrap_or(false));
    }

    #[test]
    fn parse_errors_point_at_the_offending_field() {
        let e = FaultSpec::parse("slow:x:10:30:1.5").unwrap_err();
        assert_eq!(e.offset, "slow:".len());
        assert!(e.expected.contains("device index"), "{e}");
        let e = FaultSpec::parse("seed=7;slow:0:10:zz:1.5").unwrap_err();
        assert_eq!(e.offset, "seed=7;slow:0:10:".len());
        assert!(e.expected.contains("millisecond"), "{e}");
        let e = FaultSpec::parse("seed=7; wobble:1").unwrap_err();
        assert_eq!(e.offset, "seed=7; ".len());
        let e = FaultSpec::parse("seed=banana").unwrap_err();
        assert_eq!(e.offset, "seed=".len());
        let shown = format!("{e}");
        assert!(shown.contains("at byte 5"), "{shown}");
        assert!(shown.contains("u64 seed"), "{shown}");
    }

    #[test]
    fn device_down_is_permanent_and_parseable() {
        let f = FaultSpec::new(1).device_down(DeviceId(2), t(40));
        assert!(!f.is_empty());
        assert_eq!(f.device_down_at(DeviceId(2)), Some(t(40)));
        assert_eq!(f.device_down_at(DeviceId(0)), None);
        assert!(!f.is_device_down(DeviceId(2), t(39)));
        assert!(f.is_device_down(DeviceId(2), t(40)));
        assert!(f.is_device_down(DeviceId(2), SimTime::MAX), "death is permanent");
        assert!(!f.is_device_down(DeviceId(0), SimTime::MAX));

        let p = FaultSpec::parse("down:2:40").unwrap();
        assert_eq!(p.device_downs(), f.device_downs());
        assert!(FaultSpec::parse("down:2").is_err());
        assert!(FaultSpec::parse("down:2:x").is_err());
    }

    #[test]
    #[should_panic(expected = "overlapping down windows")]
    fn duplicate_device_down_panics() {
        let _ = FaultSpec::new(1).device_down(DeviceId(0), t(1)).device_down(DeviceId(0), t(2));
    }

    #[test]
    #[should_panic(expected = "overlapping down windows")]
    fn outage_overlapping_a_permanent_down_panics() {
        let _ = FaultSpec::new(1).device_down(DeviceId(0), t(50)).device_outage(
            DeviceId(0),
            t(40),
            t(60),
        );
    }

    #[test]
    fn windowed_outage_ends_and_windows_may_repeat() {
        let f = FaultSpec::new(1).device_outage(DeviceId(1), t(10), t(20)).device_outage(
            DeviceId(1),
            t(30),
            t(40),
        );
        assert!(!f.is_device_down(DeviceId(1), t(9)));
        assert!(f.is_device_down(DeviceId(1), t(10)));
        assert!(f.is_device_down(DeviceId(1), t(19)));
        assert!(!f.is_device_down(DeviceId(1), t(20)), "rejoined at the window end");
        assert!(f.is_device_down(DeviceId(1), t(35)), "second flap window");
        assert!(!f.is_device_down(DeviceId(1), SimTime::MAX));
        assert_eq!(f.device_down_at(DeviceId(1)), Some(t(10)), "first death instant");

        let p = FaultSpec::parse("down:1:10..20;down:1:30..40").unwrap();
        assert_eq!(p.device_downs(), f.device_downs());
    }

    #[test]
    fn disjoint_outages_on_distinct_devices_coexist() {
        let f = FaultSpec::new(1)
            .device_outage(DeviceId(0), t(10), t(20))
            .device_down(DeviceId(1), t(15));
        assert!(f.is_device_down(DeviceId(0), t(15)));
        assert!(f.is_device_down(DeviceId(1), t(15)));
        assert!(!f.is_device_down(DeviceId(0), t(25)));
        assert!(f.is_device_down(DeviceId(1), t(25)), "permanent loss persists");
    }

    #[test]
    fn link_flap_expands_to_alternating_partitions() {
        let f = FaultSpec::new(1).link_flap(
            DeviceId(0),
            DeviceId(1),
            t(10),
            t(50),
            SimDuration::from_millis(10),
        );
        // Partitioned [10,20) and [30,40); healthy in between and after.
        assert_eq!(f.link_factor(DeviceId(0), DeviceId(1), t(15)), PARTITION_FACTOR);
        assert_eq!(f.link_factor(DeviceId(0), DeviceId(1), t(25)), 1.0);
        assert_eq!(f.link_factor(DeviceId(0), DeviceId(1), t(35)), PARTITION_FACTOR);
        assert_eq!(f.link_factor(DeviceId(0), DeviceId(1), t(45)), 1.0);
        let p = FaultSpec::parse("flap:0:1:10:50:10").unwrap();
        assert_eq!(p.link_faults(), f.link_faults());
    }

    #[test]
    fn parse_rejects_malformed_windows() {
        let e = FaultSpec::parse("down:2:10..").unwrap_err();
        assert!(e.expected.contains("millisecond"), "{e}");
        let e = FaultSpec::parse("down:2:..10").unwrap_err();
        assert!(e.expected.contains("millisecond"), "{e}");
        let e = FaultSpec::parse("down:2:20..10").unwrap_err();
        assert_eq!(e.offset, "down:2:".len());
        assert!(e.expected.contains("non-empty outage window"), "{e}");
        let e = FaultSpec::parse("down:2:10..10").unwrap_err();
        assert!(e.expected.contains("start < end"), "{e}");
        let e = FaultSpec::parse("flap:0:1:50:10:5").unwrap_err();
        assert!(e.expected.contains("non-empty flap window"), "{e}");
        let e = FaultSpec::parse("flap:0:1:10:50:0").unwrap_err();
        assert_eq!(e.offset, "flap:0:1:10:50:".len());
        assert!(e.expected.contains("positive flap period"), "{e}");
        let e = FaultSpec::parse("down:2:a..b").unwrap_err();
        assert_eq!(e.offset, "down:2:".len());
    }

    #[test]
    fn node_down_expands_to_every_member_device() {
        let f = FaultSpec::new(1).node_down(4, 1, t(40));
        for d in 4..8 {
            assert!(f.is_device_down(DeviceId(d), t(40)), "device {d} should be down");
            assert!(!f.is_device_down(DeviceId(d), t(39)));
        }
        assert!(!f.is_device_down(DeviceId(0), SimTime::MAX), "node 0 untouched");
        let p = FaultSpec::parse("nodes=4;node-down:1:40").unwrap();
        assert_eq!(p.device_downs(), f.device_downs());
    }

    #[test]
    fn node_outage_rejoins_the_whole_node() {
        let f = FaultSpec::new(1).node_outage(2, 0, t(10), t(20));
        assert!(f.is_device_down(DeviceId(0), t(15)));
        assert!(f.is_device_down(DeviceId(1), t(15)));
        assert!(!f.is_device_down(DeviceId(0), t(20)), "rejoined at the window end");
        assert!(!f.is_device_down(DeviceId(2), t(15)), "next node untouched");
        let p = FaultSpec::parse("nodes=2;node-down:0:10..20").unwrap();
        assert_eq!(p.device_downs(), f.device_downs());
    }

    #[test]
    fn nic_link_degrades_every_cross_node_pair() {
        let f = FaultSpec::new(1).nic_link(2, 0, 1, t(10), t(30), 8.0);
        // All four cross pairs stretch, both directions.
        for a in 0..2usize {
            for b in 2..4usize {
                assert_eq!(f.link_factor(DeviceId(a), DeviceId(b), t(20)), 8.0);
                assert_eq!(f.link_factor(DeviceId(b), DeviceId(a), t(20)), 8.0);
                assert_eq!(f.link_factor(DeviceId(a), DeviceId(b), t(30)), 1.0);
            }
        }
        // Intra-node links are untouched.
        assert_eq!(f.link_factor(DeviceId(0), DeviceId(1), t(20)), 1.0);
        assert_eq!(f.link_factor(DeviceId(2), DeviceId(3), t(20)), 1.0);
        // A collective spanning the nodes pays the NIC stretch.
        let members = [DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)];
        assert_eq!(f.collective_link_factor(members.iter().copied(), t(20)), 8.0);
        let p = FaultSpec::parse("nodes=2;niclink:0-1:10:30:8").unwrap();
        assert_eq!(p.link_faults(), f.link_faults());
    }

    #[test]
    fn node_forms_require_geometry_and_reject_nonsense() {
        let e = FaultSpec::parse("node-down:0:10").unwrap_err();
        assert!(e.expected.contains("nodes=<devices_per_node>"), "{e}");
        let e = FaultSpec::parse("niclink:0-1:10:30:8").unwrap_err();
        assert!(e.expected.contains("nodes=<devices_per_node>"), "{e}");
        let e = FaultSpec::parse("nodes=0;node-down:0:10").unwrap_err();
        assert_eq!(e.offset, "nodes=".len());
        assert!(e.expected.contains("positive devices-per-node"), "{e}");
        let e = FaultSpec::parse("nodes=4;niclink:0:10:30:8").unwrap_err();
        assert!(e.expected.contains("node pair"), "{e}");
        let e = FaultSpec::parse("nodes=4;niclink:1-1:10:30:8").unwrap_err();
        assert!(e.expected.contains("distinct niclink endpoint"), "{e}");
        let e = FaultSpec::parse("nodes=4;niclink:0-x:10:30:8").unwrap_err();
        assert_eq!(e.offset, "nodes=4;niclink:0-".len());
        let e = FaultSpec::parse("nodes=4;node-down:0:20..10").unwrap_err();
        assert!(e.expected.contains("non-empty outage window"), "{e}");
        assert!(FaultSpec::parse("nodes=x;node-down:0:10").is_err());
    }

    #[test]
    fn node_sugar_round_trips_through_display_as_primitives() {
        let f =
            FaultSpec::new(5).node_outage(2, 1, t(10), t(20)).nic_link(2, 0, 1, t(5), t(25), 4.0);
        let rendered = f.to_string();
        assert!(rendered.contains("down:2:10..20"), "{rendered}");
        assert!(rendered.contains("link:0:2:5:25:4"), "{rendered}");
        assert!(!rendered.contains("node-down"), "display renders primitives: {rendered}");
        assert_eq!(FaultSpec::parse(&rendered).unwrap(), f);
    }

    #[test]
    fn display_round_trips_through_parse() {
        let spec = "seed=9;slow:0:10:30:1.5;link:0:1:5:15:3;part:2:3:0:5;\
                    kfail:0.01:0.5;spike:0.1:25:0:100;down:3:40;down:2:10..20";
        let f = FaultSpec::parse(spec).unwrap();
        assert_eq!(format!("{f}"), spec, "display is the canonical grammar");
        assert_eq!(FaultSpec::parse(&format!("{f}")).unwrap(), f);
        assert_eq!(format!("{}", FaultSpec::none()), "", "empty spec displays empty");
        let flap = FaultSpec::new(1).link_flap(
            DeviceId(0),
            DeviceId(1),
            t(0),
            t(30),
            SimDuration::from_millis(10),
        );
        assert_eq!(FaultSpec::parse(&format!("{flap}")).unwrap(), flap);
    }

    #[test]
    fn unit_hash_is_uniform_enough() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| unit_hash(1, 2, i, i * 31)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "hash mean {mean}");
    }
}
