//! Device memory tracking.
//!
//! A bump-count allocator per device: engines register their weight shards
//! once and per-batch working sets (activations, KV cache) for each job in
//! flight. The tracker enforces the device's capacity — mirroring the very
//! constraint that forces multi-GPU deployment in the first place (OPT-30B's
//! 60 GB of FP16 weights vs. a 16 GB V100) — and records the peak footprint
//! for capacity-planning reports.

use std::fmt;

use crate::ids::DeviceId;

/// Handle to a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocationId(pub u64);

/// Why an allocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Device that ran out.
    pub device: DeviceId,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently in use.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
    /// Allocation label (for diagnostics).
    pub label: &'static str,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: out of memory allocating {} bytes for {:?} ({} of {} bytes in use)",
            self.device, self.requested, self.label, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

#[derive(Debug, Clone)]
struct Allocation {
    device: usize,
    bytes: u64,
    label: &'static str,
    live: bool,
}

/// Tracks allocations across the node's devices.
///
/// All accounting — in-use, peak, and the double-free bug counter — is kept
/// strictly per device, so a sharded event core whose workers each own one
/// device never has two shards contending on (or racing to increment) a
/// shared counter.
#[derive(Debug, Default, Clone)]
pub struct MemoryTracker {
    capacities: Vec<u64>,
    in_use: Vec<u64>,
    peak: Vec<u64>,
    allocations: Vec<Allocation>,
    double_frees: Vec<u64>,
}

impl MemoryTracker {
    /// Creates a tracker for devices with the given capacities (bytes).
    pub fn new(capacities: Vec<u64>) -> MemoryTracker {
        let n = capacities.len();
        MemoryTracker {
            capacities,
            in_use: vec![0; n],
            peak: vec![0; n],
            allocations: Vec::new(),
            double_frees: vec![0; n],
        }
    }

    /// Allocates `bytes` on `device`; fails when capacity would be exceeded.
    pub fn alloc(
        &mut self,
        device: DeviceId,
        bytes: u64,
        label: &'static str,
    ) -> Result<AllocationId, OutOfMemory> {
        let d = device.0;
        assert!(d < self.capacities.len(), "unknown device {device}");
        let in_use = self.in_use[d];
        if in_use.saturating_add(bytes) > self.capacities[d] {
            return Err(OutOfMemory {
                device,
                requested: bytes,
                in_use,
                capacity: self.capacities[d],
                label,
            });
        }
        self.in_use[d] += bytes;
        self.peak[d] = self.peak[d].max(self.in_use[d]);
        let id = AllocationId(self.allocations.len() as u64);
        self.allocations.push(Allocation { device: d, bytes, label, live: true });
        Ok(id)
    }

    /// Frees an allocation. Accounting is idempotent — freeing twice never
    /// corrupts the in-use totals — but a second free is an allocator bug:
    /// it bumps the [`double_frees`](Self::double_frees) counter and fires a
    /// debug assertion so the bug is observable at the tracker level, not
    /// only via trace sanitization.
    pub fn free(&mut self, id: AllocationId) {
        let a = &mut self.allocations[id.0 as usize];
        if a.live {
            a.live = false;
            self.in_use[a.device] -= a.bytes;
        } else {
            let (device, label) = (a.device, a.label);
            self.double_frees[device] += 1;
            debug_assert!(
                false,
                "double free of allocation {} ({label:?} on device {device})",
                id.0
            );
        }
    }

    /// Double frees observed so far across all devices (each also fires a
    /// debug assertion).
    pub fn double_frees(&self) -> u64 {
        self.double_frees.iter().sum()
    }

    /// Double frees charged against `device` specifically. The counter lives
    /// with the device's other accounting so per-device shards never share a
    /// write target.
    pub fn double_frees_on(&self, device: DeviceId) -> u64 {
        self.double_frees[device.0]
    }

    /// Bytes currently allocated on `device`.
    pub fn in_use(&self, device: DeviceId) -> u64 {
        self.in_use[device.0]
    }

    /// Peak bytes ever allocated on `device`.
    pub fn peak(&self, device: DeviceId) -> u64 {
        self.peak[device.0]
    }

    /// Capacity of `device`.
    pub fn capacity(&self, device: DeviceId) -> u64 {
        self.capacities[device.0]
    }

    /// Live allocations on `device`, as `(label, bytes)`.
    pub fn live_allocations(&self, device: DeviceId) -> Vec<(&'static str, u64)> {
        self.allocations
            .iter()
            .filter(|a| a.live && a.device == device.0)
            .map(|a| (a.label, a.bytes))
            .collect()
    }

    /// Device, size, label and liveness of an allocation, if `id` was ever
    /// handed out by this tracker.
    pub fn info(&self, id: AllocationId) -> Option<(DeviceId, u64, &'static str, bool)> {
        self.allocations.get(id.0 as usize).map(|a| (DeviceId(a.device), a.bytes, a.label, a.live))
    }
}

impl crate::json::ToJson for AllocationId {
    fn write_json(&self, out: &mut String) {
        self.0.write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> MemoryTracker {
        MemoryTracker::new(vec![1000, 2000])
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut t = tracker();
        let a = t.alloc(DeviceId(0), 600, "weights").unwrap();
        assert_eq!(t.in_use(DeviceId(0)), 600);
        assert_eq!(t.in_use(DeviceId(1)), 0);
        t.free(a);
        assert_eq!(t.in_use(DeviceId(0)), 0);
        assert_eq!(t.peak(DeviceId(0)), 600, "peak survives the free");
    }

    #[test]
    fn oom_is_reported_not_clamped() {
        let mut t = tracker();
        t.alloc(DeviceId(0), 900, "weights").unwrap();
        let err = t.alloc(DeviceId(0), 200, "kv").unwrap_err();
        assert_eq!(err.in_use, 900);
        assert_eq!(err.requested, 200);
        assert_eq!(err.capacity, 1000);
        assert_eq!(err.label, "kv");
        assert!(err.to_string().contains("out of memory"));
        // The failed allocation must not leak accounting.
        assert_eq!(t.in_use(DeviceId(0)), 900);
    }

    #[test]
    fn double_free_is_counted_and_accounting_stays_idempotent() {
        let mut t = tracker();
        let a = t.alloc(DeviceId(1), 500, "act").unwrap();
        t.free(a);
        assert_eq!(t.double_frees(), 0);
        // In debug builds the second free additionally fires an assertion;
        // silence the default hook so the expected panic doesn't spam stderr.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.free(a)));
        std::panic::set_hook(prev);
        assert_eq!(hit.is_err(), cfg!(debug_assertions));
        assert_eq!(t.double_frees(), 1);
        assert_eq!(t.in_use(DeviceId(1)), 0);
    }

    #[test]
    fn double_frees_are_charged_to_the_owning_device() {
        // Regression test for the shard-safety refactor: the double-free
        // counter is per-device state, and the total is a derived sum — a
        // parallel core's shards must never share one counter cell.
        let mut t = tracker();
        let a = t.alloc(DeviceId(0), 10, "a").unwrap();
        let b = t.alloc(DeviceId(1), 20, "b").unwrap();
        t.free(a);
        t.free(b);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for id in [a, b, b] {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.free(id)));
        }
        std::panic::set_hook(prev);
        assert_eq!(t.double_frees_on(DeviceId(0)), 1);
        assert_eq!(t.double_frees_on(DeviceId(1)), 2);
        assert_eq!(t.double_frees(), 3, "total is the sum of per-device counters");
        assert_eq!(t.in_use(DeviceId(0)), 0, "accounting stays idempotent");
        assert_eq!(t.in_use(DeviceId(1)), 0);
    }

    #[test]
    fn peak_tracks_high_watermark() {
        let mut t = tracker();
        let a = t.alloc(DeviceId(0), 400, "a").unwrap();
        let b = t.alloc(DeviceId(0), 500, "b").unwrap();
        t.free(a);
        let _c = t.alloc(DeviceId(0), 100, "c").unwrap();
        assert_eq!(t.peak(DeviceId(0)), 900);
        assert_eq!(t.in_use(DeviceId(0)), 600);
        t.free(b);
        assert_eq!(t.in_use(DeviceId(0)), 100);
    }

    #[test]
    fn live_allocation_listing() {
        let mut t = tracker();
        let a = t.alloc(DeviceId(0), 100, "weights").unwrap();
        let _b = t.alloc(DeviceId(0), 50, "kv").unwrap();
        t.free(a);
        assert_eq!(t.live_allocations(DeviceId(0)), vec![("kv", 50)]);
        assert!(t.live_allocations(DeviceId(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn unknown_device_panics() {
        let mut t = tracker();
        let _ = t.alloc(DeviceId(7), 1, "x");
    }

    #[test]
    fn info_reports_device_and_liveness() {
        let mut t = tracker();
        let a = t.alloc(DeviceId(1), 64, "kv").unwrap();
        assert_eq!(t.info(a), Some((DeviceId(1), 64, "kv", true)));
        t.free(a);
        assert_eq!(t.info(a), Some((DeviceId(1), 64, "kv", false)));
        assert_eq!(t.info(AllocationId(99)), None);
    }
}
