//! Kernel descriptions.
//!
//! A [`KernelSpec`] is everything the device scheduler needs to execute one
//! kernel: its class (computation vs. communication, the distinction the
//! whole Liger design revolves around), its no-load execution time ("work"),
//! its SM footprint, and optionally the collective (rendezvous group) it
//! belongs to.

use std::sync::Arc;

use crate::ids::CollectiveId;
use crate::time::SimDuration;

/// The two kernel classes whose interleaving Liger orchestrates.
///
/// The paper's §3.1 splits a device's resources into a *computation* part
/// (SMs running GEMMs, layernorms, …) and a *communication* part (copy
/// engines / NCCL channels driving the interconnect). Kernels of the same
/// class contend for the same resource and serialize or slow down badly when
/// overlapped; kernels of different classes overlap with only a mild
/// contention penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Computation kernel (GEMM, layernorm, softmax, GELU, attention, …).
    Compute,
    /// Communication kernel (all-reduce, send/recv, all-gather, …).
    Comm,
}

impl KernelClass {
    /// The other class.
    #[inline]
    pub const fn opposite(self) -> KernelClass {
        match self {
            KernelClass::Compute => KernelClass::Comm,
            KernelClass::Comm => KernelClass::Compute,
        }
    }

    /// Short label used in traces.
    #[inline]
    pub const fn label(self) -> &'static str {
        match self {
            KernelClass::Compute => "compute",
            KernelClass::Comm => "comm",
        }
    }
}

/// Description of a kernel to be launched on a simulated device.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Human-readable kernel name (e.g. `"gemm_qkv"`, `"allreduce_attn"`).
    pub name: Arc<str>,
    /// Computation or communication.
    pub class: KernelClass,
    /// No-load execution time of the kernel. Contention stretches this at
    /// runtime; the value here is what offline profiling would report.
    pub work: SimDuration,
    /// Number of CUDA blocks (≈ SMs) the kernel occupies. For communication
    /// kernels this is the NCCL channel count; reducing it is the paper's
    /// §3.5 contention mitigation.
    pub blocks: u32,
    /// Rendezvous group for collectives: the kernel only makes progress once
    /// every member of the collective has reached the head of its stream on
    /// its own device, and all members complete at the same instant.
    pub collective: Option<CollectiveId>,
    /// Free-form correlation tag (batch id, request id, layer index, …).
    pub tag: u64,
}

impl KernelSpec {
    /// Starts building a compute kernel with the given name and work.
    pub fn compute(name: impl Into<Arc<str>>, work: SimDuration) -> KernelSpec {
        KernelSpec {
            name: name.into(),
            class: KernelClass::Compute,
            work: work.max(SimDuration::from_nanos(1)),
            blocks: u32::MAX, // compute kernels saturate the device by default
            collective: None,
            tag: 0,
        }
    }

    /// Starts building a communication kernel with the given name and work.
    pub fn comm(name: impl Into<Arc<str>>, work: SimDuration) -> KernelSpec {
        KernelSpec {
            name: name.into(),
            class: KernelClass::Comm,
            work: work.max(SimDuration::from_nanos(1)),
            blocks: 2, // NCCL-style: a couple of channels by default
            collective: None,
            tag: 0,
        }
    }

    /// Sets the SM/block footprint.
    pub fn with_blocks(mut self, blocks: u32) -> Self {
        self.blocks = blocks.max(1);
        self
    }

    /// Attaches the kernel to a collective rendezvous group.
    pub fn with_collective(mut self, collective: CollectiveId) -> Self {
        self.collective = Some(collective);
        self
    }

    /// Sets the correlation tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// True when this kernel participates in a collective.
    #[inline]
    pub fn is_collective(&self) -> bool {
        self.collective.is_some()
    }
}

/// Kernel classes serialize as their trace labels (`"compute"` / `"comm"`).
impl crate::json::ToJson for KernelClass {
    fn write_json(&self, out: &mut String) {
        self.label().write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_class() {
        assert_eq!(KernelClass::Compute.opposite(), KernelClass::Comm);
        assert_eq!(KernelClass::Comm.opposite(), KernelClass::Compute);
        assert_eq!(KernelClass::Compute.label(), "compute");
        assert_eq!(KernelClass::Comm.label(), "comm");
    }

    #[test]
    fn builders_set_fields() {
        let k =
            KernelSpec::compute("gemm", SimDuration::from_micros(100)).with_blocks(80).with_tag(42);
        assert_eq!(k.class, KernelClass::Compute);
        assert_eq!(k.work, SimDuration::from_micros(100));
        assert_eq!(k.blocks, 80);
        assert_eq!(k.tag, 42);
        assert!(!k.is_collective());

        let c = KernelSpec::comm("allreduce", SimDuration::from_micros(50))
            .with_collective(CollectiveId(3));
        assert_eq!(c.class, KernelClass::Comm);
        assert!(c.is_collective());
        assert_eq!(c.collective, Some(CollectiveId(3)));
    }

    #[test]
    fn zero_work_is_clamped() {
        let k = KernelSpec::compute("noop", SimDuration::ZERO);
        assert_eq!(k.work, SimDuration::from_nanos(1));
    }

    #[test]
    fn zero_blocks_is_clamped() {
        let k = KernelSpec::comm("ar", SimDuration::from_nanos(10)).with_blocks(0);
        assert_eq!(k.blocks, 1);
    }
}
