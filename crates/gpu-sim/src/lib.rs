//! # liger-gpu-sim
//!
//! A deterministic discrete-event simulator of a multi-GPU node, built as
//! the hardware substrate for the Rust reproduction of *Liger: Interleaving
//! Intra- and Inter-Operator Parallelism for Distributed Large Model
//! Inference* (PPoPP '24).
//!
//! The simulator models exactly the mechanisms Liger's scheduler exploits
//! and fights on real hardware:
//!
//! * CUDA-like **streams** multiplexed onto a bounded number of **hardware
//!   launch queues** (`CUDA_DEVICE_MAX_CONNECTIONS`), with strictly serial
//!   execution within a queue;
//! * **events** with both inter-stream (`cudaStreamWaitEvent`) and blocking
//!   CPU–GPU (`cudaEventSynchronize`) semantics;
//! * per-command **host launch overhead** and per-rank wake jitter;
//! * **rate-sharing contention** between concurrently running kernels
//!   (compute vs. communication);
//! * **collective rendezvous**: an all-reduce starts only when every rank
//!   has launched it and completes simultaneously everywhere;
//! * a **communication dispatch lag** under deep kernel backlogs, modeling
//!   the left-over scheduling policy of §2.3.1.
//!
//! Scheduling policy lives entirely outside the simulator, in [`Driver`]
//! implementations (Liger itself, and the intra-/inter-operator baselines).
//!
//! ## Example
//!
//! ```
//! use liger_gpu_sim::prelude::*;
//!
//! struct OneKernel;
//! impl Driver for OneKernel {
//!     fn start(&mut self, sim: &mut Simulation) {
//!         let stream = StreamId::new(DeviceId(0), 0);
//!         let k = KernelSpec::compute("gemm", SimDuration::from_micros(100));
//!         sim.launch(HostId(0), stream, k);
//!     }
//!     fn on_wake(&mut self, _wake: Wake, _sim: &mut Simulation) {}
//! }
//!
//! let mut sim = Simulation::builder()
//!     .device(DeviceSpec::test_device())
//!     .host(HostSpec::instant())
//!     .build()
//!     .unwrap();
//! let end = sim.run_to_completion(&mut OneKernel);
//! assert_eq!(end, SimTime::from_micros(100));
//! assert_eq!(sim.kernels_completed(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod contention;
pub mod cores;
pub mod device;
pub mod faults;
pub mod host;
pub mod ids;
pub mod json;
pub mod kernel;
mod lanes;
pub mod memory;
pub mod rng;
mod shard;
pub mod sim;
pub mod stats;
pub mod testkit;
pub mod time;
pub mod trace;

pub use contention::ContentionParams;
pub use cores::{
    ChoicePoint, CoreSelect, EnabledEvent, EventCore, ExploreCore, ParallelCore, SequentialCore,
    WindowRule,
};
pub use device::DeviceSpec;
pub use faults::{DeviceDown, FaultSpec, KernelFaultParams, LaunchSpikeParams, ParseError};
pub use host::HostSpec;
pub use ids::{CollectiveId, DeviceId, EventId, HostId, KernelId, StreamId, TimerId};
pub use json::{JsonError, JsonParser, JsonValue, ToJson};
pub use kernel::{KernelClass, KernelSpec};
pub use memory::{AllocationId, MemoryTracker, OutOfMemory};
pub use rng::Rng;
pub use sim::{
    BlockedLane, DispatchFootprint, Driver, LaneBlock, Simulation, SimulationBuilder,
    TerminalReport, Wake, COLL_FOOTPRINT_BIT,
};
pub use stats::{DeviceStats, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{ParsedChromeTrace, Trace, TraceEvent, TraceMark, TraceParseError};

/// Glob-import convenience.
pub mod prelude {
    pub use crate::contention::ContentionParams;
    pub use crate::cores::{
        ChoicePoint, CoreSelect, EnabledEvent, EventCore, ExploreCore, ParallelCore,
        SequentialCore, WindowRule,
    };
    pub use crate::device::DeviceSpec;
    pub use crate::faults::{
        DeviceDown, FaultSpec, KernelFaultParams, LaunchSpikeParams, ParseError,
    };
    pub use crate::host::HostSpec;
    pub use crate::ids::{CollectiveId, DeviceId, EventId, HostId, KernelId, StreamId, TimerId};
    pub use crate::json::{JsonError, JsonParser, JsonValue, ToJson};
    pub use crate::kernel::{KernelClass, KernelSpec};
    pub use crate::memory::{AllocationId, MemoryTracker, OutOfMemory};
    pub use crate::rng::Rng;
    pub use crate::sim::{
        BlockedLane, DispatchFootprint, Driver, LaneBlock, Simulation, SimulationBuilder,
        TerminalReport, Wake, COLL_FOOTPRINT_BIT,
    };
    pub use crate::stats::{DeviceStats, Summary};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{ParsedChromeTrace, Trace, TraceEvent, TraceMark, TraceParseError};
}
