//! Host (CPU) thread model.
//!
//! Each simulated host thread issues commands to its GPU serially, paying a
//! per-command launch overhead — the cost the paper's hybrid synchronization
//! hides by pre-launching while a kernel is still running (§3.4). Hosts also
//! model the *inconsistent launching time between GPUs* and *PCIe
//! contention* effects the paper measures in §4.5: a per-host wake jitter is
//! added whenever a blocking CPU–GPU synchronization completes, so that a
//! multi-GPU sync costs noticeably more than the ~5 µs null-kernel launch
//! latency (the paper reports > 20 µs).

use crate::time::SimDuration;

/// Static description of one host thread.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Time the host CPU is busy per kernel launch (enqueue) call.
    pub launch_overhead: SimDuration,
    /// Time the host CPU is busy per event record / stream-wait call.
    /// CUDA events are much cheaper than kernel launches.
    pub event_overhead: SimDuration,
    /// Latency from a GPU event trigger to the host observing it (driver
    /// callback / `cudaEventSynchronize` return path).
    pub sync_latency: SimDuration,
    /// Additional deterministic jitter applied when a *blocking* CPU–GPU
    /// synchronization completes on this host. Ranks are staggered to model
    /// inconsistent launch times across GPUs plus PCIe root-complex
    /// contention; the effective multi-GPU sync cost is the max over ranks.
    pub wake_jitter: SimDuration,
}

impl Default for HostSpec {
    fn default() -> Self {
        HostSpec {
            launch_overhead: SimDuration::from_micros(5),
            event_overhead: SimDuration::from_nanos(800),
            sync_latency: SimDuration::from_micros(2),
            wake_jitter: SimDuration::ZERO,
        }
    }
}

impl HostSpec {
    /// The default host spec for rank `rank` of `n` ranks on a shared PCIe
    /// complex: launch overhead 5 µs, sync latency 2 µs and a wake jitter
    /// staggered by rank (rank r waits an extra `r * 4` µs), so a full
    /// 4-rank blocking sync costs ≈ 2 + 12 + relaunch ≈ > 20 µs end to end,
    /// matching the paper's §4.5 measurement.
    pub fn mpi_rank(rank: usize) -> HostSpec {
        HostSpec { wake_jitter: SimDuration::from_micros(4) * rank as u64, ..HostSpec::default() }
    }

    /// An idealized host with zero overheads, for unit tests where kernel
    /// timing must be exact.
    pub fn instant() -> HostSpec {
        HostSpec {
            launch_overhead: SimDuration::ZERO,
            event_overhead: SimDuration::ZERO,
            sync_latency: SimDuration::ZERO,
            wake_jitter: SimDuration::ZERO,
        }
    }

    /// Overrides the launch overhead.
    pub fn with_launch_overhead(mut self, d: SimDuration) -> Self {
        self.launch_overhead = d;
        self
    }
}

impl crate::json::ToJson for HostSpec {
    fn write_json(&self, out: &mut String) {
        let mut obj = crate::json::JsonObject::begin(out);
        obj.field("launch_overhead", &self.launch_overhead)
            .field("event_overhead", &self.event_overhead)
            .field("sync_latency", &self.sync_latency)
            .field("wake_jitter", &self.wake_jitter);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_null_kernel_latency() {
        let h = HostSpec::default();
        assert_eq!(h.launch_overhead, SimDuration::from_micros(5));
        assert!(h.event_overhead < h.launch_overhead);
    }

    #[test]
    fn ranks_are_staggered() {
        let h0 = HostSpec::mpi_rank(0);
        let h3 = HostSpec::mpi_rank(3);
        assert_eq!(h0.wake_jitter, SimDuration::ZERO);
        assert_eq!(h3.wake_jitter, SimDuration::from_micros(12));
        // Max cross-rank blocking sync cost exceeds 20us when relaunch is
        // included: jitter (12) + sync latency (2) + one launch (5) = 19us,
        // plus the second subset's launches pushes past 20us.
        let total = h3.wake_jitter + h3.sync_latency + h3.launch_overhead * 2;
        assert!(total > SimDuration::from_micros(20));
    }

    #[test]
    fn instant_host_is_free() {
        let h = HostSpec::instant();
        assert!(h.launch_overhead.is_zero());
        assert!(h.event_overhead.is_zero());
        assert!(h.sync_latency.is_zero());
        assert!(h.wake_jitter.is_zero());
    }
}
