//! Event lanes: the per-lane pending-event queues both event cores dispatch
//! from.
//!
//! The simulator used to keep a single global `BinaryHeap` ordered by
//! `(time, global-push-sequence)`. That order is inherently serial: the
//! tie-break depends on the interleaving of pushes across devices, so no
//! parallel engine could reproduce it without replaying the exact global
//! push history. The lane refactor replaces it with a *canonical dispatch
//! key*:
//!
//! ```text
//! (time, lane rank, lane-local sequence)
//! ```
//!
//! where rank 0 is the **global lane** (host completions, timers, driver
//! wakes, collective completions, fault boundaries, device deaths) and rank
//! `d + 1` is device `d`'s **local lane** (its kernel completions and comm
//! dispatch-lag expiries). Each lane assigns its own monotonically
//! increasing sequence numbers, so the total order is a pure function of
//! per-lane push histories — which a sharded engine reproduces exactly,
//! because a device's lane is only ever pushed to while that device is
//! being processed (by the coordinator or by its own shard).
//!
//! [`SequentialCore`](crate::cores::SequentialCore) dispatches by scanning
//! lane heads for the minimum key; [`ParallelCore`](crate::cores::
//! ParallelCore) hands whole lanes to shard workers and merges their
//! buffered effects back in the same key order. Identical order, identical
//! traces.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One pending event in a lane: payload plus its dispatch key fragment.
#[derive(Debug, Clone)]
pub(crate) struct LaneEntry<T> {
    /// Scheduled dispatch time.
    pub at: SimTime,
    /// Lane-local push sequence (tie-break within the lane).
    pub seq: u64,
    /// The pending event itself.
    pub payload: T,
}

impl<T> PartialEq for LaneEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for LaneEntry<T> {}
impl<T> PartialOrd for LaneEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for LaneEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A single lane: a min-heap of pending events ordered by
/// `(time, lane-local sequence)`, with the lane owning its sequence counter.
#[derive(Debug, Clone)]
pub(crate) struct EventLane<T> {
    heap: BinaryHeap<Reverse<LaneEntry<T>>>,
    seq: u64,
}

impl<T> Default for EventLane<T> {
    fn default() -> Self {
        EventLane { heap: BinaryHeap::new(), seq: 0 }
    }
}

impl<T> EventLane<T> {
    /// Schedules `payload` at `at`, assigning the next lane-local sequence.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(LaneEntry { at, seq, payload }));
    }

    /// The `(time, seq)` key of the earliest pending event, if any.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    /// The earliest pending event's payload, without removing it. The
    /// explore core uses this to drop superseded (stale) lane heads before
    /// computing an enabled set, so every choice point is over real events.
    pub fn peek(&self) -> Option<&T> {
        self.heap.peek().map(|Reverse(e)| &e.payload)
    }

    /// Iterates over all pending entries in unspecified order (heap order).
    /// Used for residue accounting in [`crate::sim::TerminalReport`].
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &T)> {
        self.heap.iter().map(|Reverse(e)| (e.at, &e.payload))
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<LaneEntry<T>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of pending events in the lane.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_push_order() {
        let mut lane: EventLane<u32> = EventLane::default();
        lane.push(SimTime::from_nanos(50), 1);
        lane.push(SimTime::from_nanos(10), 2);
        lane.push(SimTime::from_nanos(10), 3);
        let order: Vec<u32> = std::iter::from_fn(|| lane.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![2, 3, 1], "equal times dispatch in push order");
    }

    #[test]
    fn peek_key_matches_pop() {
        let mut lane: EventLane<&str> = EventLane::default();
        assert_eq!(lane.peek_key(), None);
        lane.push(SimTime::from_nanos(7), "a");
        assert_eq!(lane.peek_key(), Some((SimTime::from_nanos(7), 0)));
        let e = lane.pop().unwrap();
        assert_eq!((e.at, e.seq, e.payload), (SimTime::from_nanos(7), 0, "a"));
        assert_eq!(lane.len(), 0);
    }

    #[test]
    fn sequence_survives_drain() {
        // Sequence numbers must not reset when the lane drains: the canonical
        // order is a function of the full push history.
        let mut lane: EventLane<u32> = EventLane::default();
        lane.push(SimTime::ZERO, 1);
        lane.pop();
        lane.push(SimTime::ZERO, 2);
        assert_eq!(lane.pop().unwrap().seq, 1);
        assert_eq!(lane.len(), 0);
    }
}
