//! The discrete-event simulation engine.
//!
//! # Execution model
//!
//! * **Streams and hardware queues.** Hosts enqueue operations (kernel
//!   launches, event records, event waits) onto per-device *streams*. A
//!   device exposes a fixed number of *hardware launch queues* (the
//!   `CUDA_DEVICE_MAX_CONNECTIONS` analog); stream `s` maps to queue
//!   `s % connections`. Operations within one hardware queue execute
//!   strictly serially and in FIFO order — concurrency on a device exists
//!   only *across* hardware queues. This is the mechanism that makes kernel
//!   placement decisions (which subset goes to which stream) matter, exactly
//!   as on real NVIDIA hardware.
//!
//! * **Rate-sharing contention.** Every running kernel progresses through
//!   its nominal work at a rate `1/slowdown`, where the slowdown is computed
//!   by [`ContentionParams`](crate::contention::ContentionParams) from the
//!   set of kernels concurrently running on the device. Any change to the
//!   running set re-prices affected kernels and re-schedules their
//!   completions.
//!
//! * **Collective rendezvous.** A kernel carrying a [`CollectiveId`] blocks
//!   at the head of its hardware queue until *all* members of the collective
//!   have reached the heads of theirs; the collective then progresses at the
//!   minimum of its members' local rates and completes simultaneously on all
//!   devices. This reproduces the launch-skew sensitivity of NCCL
//!   collectives that motivates the paper's hybrid synchronization.
//!
//! * **Hosts.** Host threads execute their command queues serially, paying
//!   per-command overheads ([`HostSpec`]); blocking synchronizations park the
//!   host until the awaited event fires and add a per-rank wake jitter.
//!
//! * **Driver.** All policy (what to launch when) lives outside the
//!   simulator in a [`Driver`] implementation, which is woken by timers,
//!   event callbacks and completed blocking syncs.

use std::collections::{BTreeSet, VecDeque};

use crate::device::DeviceSpec;
use crate::faults::FaultSpec;
use crate::host::HostSpec;
use crate::ids::{CollectiveId, DeviceId, EventId, HostId, KernelId, StreamId, TimerId};
use crate::kernel::{KernelClass, KernelSpec};
use crate::lanes::EventLane;
use crate::memory::{AllocationId, MemoryTracker, OutOfMemory};
use crate::stats::DeviceStats;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent, TraceMark};

/// Reasons the simulation wakes the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A timer registered with [`Simulation::set_timer`] fired.
    Timer {
        /// Token supplied at registration.
        token: u64,
    },
    /// An event registered with [`Simulation::notify_on_event`] fired.
    /// Delivered `sync_latency` after the GPU-side trigger; `fired_at` is the
    /// exact GPU-side trigger time (use it for metrics).
    EventFired {
        /// The event that fired.
        event: EventId,
        /// Token supplied at registration.
        token: u64,
        /// GPU-side trigger instant.
        fired_at: SimTime,
    },
    /// A blocking host synchronization ([`Simulation::host_sync`]) completed;
    /// the host is idle again.
    HostSynced {
        /// The host that was blocked.
        host: HostId,
        /// The event that was awaited.
        event: EventId,
        /// Token supplied at registration.
        token: u64,
        /// GPU-side trigger instant of the awaited event.
        fired_at: SimTime,
    },
    /// A kernel was killed by the injected fault schedule
    /// ([`crate::FaultSpec::kernel_failures`]). The kernel still popped from
    /// its hardware queue (stream order and events are unaffected), but its
    /// result is lost — the serving layer decides whether to retry.
    KernelFailed {
        /// The failed kernel.
        kernel: KernelId,
        /// Device it ran on.
        device: DeviceId,
        /// The kernel's user correlation tag (batch/request id).
        tag: u64,
        /// Failure instant.
        at: SimTime,
    },
    /// A device died ([`crate::FaultSpec::device_down`] /
    /// [`crate::FaultSpec::device_outage`]). Its queues were FIFO-drained
    /// (every lost kernel produced its own [`Wake::KernelFailed`]) and
    /// collectives it participated in were aborted before this wake is
    /// delivered. Production detection should come from a health watchdog
    /// observing missed heartbeats; this wake is the ground-truth loss
    /// instant for measuring detection latency.
    DeviceDown {
        /// The dead device.
        device: DeviceId,
        /// The death instant.
        at: SimTime,
    },
    /// A device's outage window ([`crate::FaultSpec::device_outage`])
    /// closed: the device is alive again with empty queues and no memory of
    /// its pre-death work. Like [`Wake::DeviceDown`] this is ground truth —
    /// production confirmation should come from the health watchdog
    /// observing answered probes through a quarantine period.
    DeviceRejoined {
        /// The recovered device.
        device: DeviceId,
        /// The rejoin instant.
        at: SimTime,
    },
}

/// Driver of a simulation: owns all scheduling policy.
pub trait Driver {
    /// Called once before the event loop starts. Submit initial work and
    /// timers here.
    fn start(&mut self, sim: &mut Simulation) {
        let _ = sim;
    }

    /// Called whenever a registered wake condition is met.
    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation);
}

// ---------------------------------------------------------------------------
// Internal runtime state
// ---------------------------------------------------------------------------

/// An operation queued on a device hardware queue.
#[derive(Debug, Clone)]
pub(crate) enum StreamOp {
    Kernel(Box<KernelSpec>, KernelId),
    Record(EventId),
    Wait(EventId),
}

impl StreamOp {
    /// True for operations a device shard cannot process on its own: event
    /// records and waits (they synchronize across lanes) and collective
    /// member kernels (they rendezvous across devices). A device whose
    /// queues hold any boundary op is pinned to the coordinator until the
    /// op drains — see [`crate::cores::ParallelCore`].
    pub(crate) fn is_boundary(&self) -> bool {
        match self {
            StreamOp::Record(_) | StreamOp::Wait(_) => true,
            StreamOp::Kernel(spec, _) => spec.collective.is_some(),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct QueuedOp {
    pub(crate) op: StreamOp,
    pub(crate) stream: usize,
    pub(crate) enqueued_at: SimTime,
}

/// State of a hardware queue's head operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeadState {
    /// Head has not begun (or queue empty).
    Idle,
    /// Head is a Wait op blocked on an untriggered event.
    WaitingEvent,
    /// Head is a comm kernel paying the dispatch-lag penalty before it may
    /// begin (left-over scheduling policy model).
    LagWait { gen: u64 },
    /// Head is a collective kernel waiting for its peers.
    WaitingPeers,
    /// Head is a kernel currently executing. For plain kernels `slot` indexes
    /// the device's run table; for collective members it is `usize::MAX` and
    /// progress is tracked by the collective.
    Running { slot: usize },
}

#[derive(Debug, Clone)]
pub(crate) struct QueueRt {
    ops: VecDeque<QueuedOp>,
    pub(crate) head: HeadState,
    pub(crate) lag_gen: u64,
    /// Count of boundary ops ([`StreamOp::is_boundary`]) currently in `ops`.
    /// Maintained by [`QueueRt::push_op`]/[`QueueRt::pop_op`] so the
    /// parallel core's shard-safety check is O(queues), not O(queued ops).
    boundary_ops: u32,
}

impl QueueRt {
    fn new() -> QueueRt {
        QueueRt { ops: VecDeque::new(), head: HeadState::Idle, lag_gen: 0, boundary_ops: 0 }
    }

    /// Appends an op, maintaining the boundary count. All queue mutations
    /// must go through `push_op`/`pop_op` — pushing to `ops` directly would
    /// silently corrupt the parallel core's shard-safety accounting.
    pub(crate) fn push_op(&mut self, op: QueuedOp) {
        self.boundary_ops += op.op.is_boundary() as u32;
        self.ops.push_back(op);
    }

    /// Pops the front op, maintaining the boundary count.
    pub(crate) fn pop_op(&mut self) -> Option<QueuedOp> {
        let op = self.ops.pop_front();
        if let Some(o) = &op {
            self.boundary_ops -= o.op.is_boundary() as u32;
        }
        op
    }

    /// The op at the front of the queue, if any.
    pub(crate) fn front(&self) -> Option<&QueuedOp> {
        self.ops.front()
    }

    /// Number of queued ops.
    pub(crate) fn ops_len(&self) -> usize {
        self.ops.len()
    }

    /// The queued op at position `i` (0 = front), if any. The explore core
    /// walks queue continuations through this to compute static footprints.
    pub(crate) fn op_at(&self, i: usize) -> Option<&QueuedOp> {
        self.ops.get(i)
    }

    /// Iterates the queued ops front to back.
    pub(crate) fn iter_ops(&self) -> impl Iterator<Item = &QueuedOp> {
        self.ops.iter()
    }

    /// True when any queued op requires coordinator-side processing.
    pub(crate) fn has_boundary_ops(&self) -> bool {
        debug_assert_eq!(
            self.boundary_ops as usize,
            self.ops.iter().filter(|o| o.op.is_boundary()).count(),
            "boundary-op count drifted from queue contents"
        );
        self.boundary_ops > 0
    }
}

/// A plain (non-collective) kernel in flight.
#[derive(Debug, Clone)]
pub(crate) struct RunSlot {
    pub(crate) kernel: KernelId,
    pub(crate) queue: usize,
    pub(crate) class: KernelClass,
    pub(crate) blocks: u32,
    pub(crate) remaining: f64, // nominal ns of work left
    pub(crate) rate: f64,      // progress in nominal ns per wall ns
    pub(crate) settled_at: SimTime,
    pub(crate) started_at: SimTime,
    pub(crate) gen: u64,
    pub(crate) live: bool,
    /// Set when the fault schedule decided at begin time that this kernel
    /// dies after a fraction of its work (remaining was shortened).
    pub(crate) failing: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct DeviceRt {
    pub(crate) spec: DeviceSpec,
    pub(crate) queues: Vec<QueueRt>,
    pub(crate) run: Vec<RunSlot>,
    pub(crate) free_slots: Vec<usize>,
    pub(crate) n_compute: u32,
    pub(crate) n_comm: u32,
    pub(crate) comm_channels: u32,
    /// Indices of currently *running* collectives with a member on this
    /// device. Kept small and current so settling/repricing is O(active),
    /// not O(all collectives ever created).
    pub(crate) active_colls: Vec<usize>,
    /// Cleared when the device dies permanently ([`Wake::DeviceDown`]).
    pub(crate) alive: bool,
    pub(crate) stats: DeviceStats,
}

impl DeviceRt {
    fn slowdown(&self, class: KernelClass) -> f64 {
        self.spec.contention.slowdown(class, self.n_compute, self.n_comm, self.comm_channels)
    }

    /// A hollow stand-in swapped into [`Simulation::devices`] while the real
    /// `DeviceRt` is out on loan to a shard worker. Never executes anything.
    pub(crate) fn placeholder() -> DeviceRt {
        DeviceRt {
            spec: DeviceSpec {
                name: String::new(),
                sm_count: 1,
                peak_flops_fp16: 1.0,
                mem_bw: 1.0,
                mem_capacity: 0,
                connections: 1,
                contention: crate::contention::ContentionParams::frictionless(),
            },
            queues: Vec::new(),
            run: Vec::new(),
            free_slots: Vec::new(),
            n_compute: 0,
            n_comm: 0,
            comm_channels: 0,
            active_colls: Vec::new(),
            alive: false,
            stats: DeviceStats::default(),
        }
    }

    // -- device-local physics -----------------------------------------------
    //
    // Everything below touches only this device's own state (plus its event
    // lane, passed in by the caller), so the sequential core and a parallel
    // shard run the *same* code — and therefore the same f64 arithmetic in
    // the same order — for the plain-kernel fast path. Collective handling
    // stays on `Simulation`: collectives span devices and are always
    // processed by the coordinator.

    /// Charges elapsed progress (at current rates) to every live plain
    /// kernel on this device.
    pub(crate) fn settle_plain(&mut self, now: SimTime) {
        for slot in self.run.iter_mut() {
            if slot.live {
                let elapsed = now.saturating_since(slot.settled_at).as_nanos() as f64;
                if elapsed > 0.0 {
                    slot.remaining = (slot.remaining - elapsed * slot.rate).max(0.0);
                    slot.settled_at = now;
                }
            }
        }
    }

    /// Recomputes rates and reschedules completions for every live plain
    /// kernel, pushing superseding [`Pending::KernelDone`] entries into the
    /// device's own lane. Callers must have settled first.
    pub(crate) fn reprice_plain(
        &mut self,
        d: usize,
        now: SimTime,
        fault_factor: f64,
        lane: &mut EventLane<Pending>,
    ) {
        for (i, slot) in self.run.iter_mut().enumerate() {
            if !slot.live {
                continue;
            }
            let rate =
                1.0 / self.spec.contention.slowdown(
                    slot.class,
                    self.n_compute,
                    self.n_comm,
                    self.comm_channels,
                ) / fault_factor;
            slot.rate = rate;
            slot.gen += 1;
            let dur = (slot.remaining / rate).ceil() as u64;
            lane.push(
                now + SimDuration::from_nanos(dur),
                Pending::KernelDone { device: d, slot: i, gen: slot.gen },
            );
        }
    }

    /// Updates running-population counters and utilization stats.
    pub(crate) fn apply_class_delta(
        &mut self,
        now: SimTime,
        class: KernelClass,
        blocks: u32,
        delta: i32,
    ) {
        self.stats.account_transition(now, self.n_compute, self.n_comm);
        match class {
            KernelClass::Compute => {
                self.n_compute = (self.n_compute as i64 + delta as i64) as u32;
            }
            KernelClass::Comm => {
                self.n_comm = (self.n_comm as i64 + delta as i64) as u32;
                let ch = blocks as i64 * delta as i64;
                self.comm_channels = (self.comm_channels as i64 + ch).max(0) as u32;
            }
        }
    }

    /// Lag charged to a comm kernel beginning while the *other* hardware
    /// queues of its device are deeply backed up with work the firmware will
    /// prioritize. Zero in normal operation; grows once the foreign backlog
    /// exceeds `COMM_LAG_FREE_OPS` (models §2.3.1's communication-kernel
    /// execution lag under kernel flooding, which the hybrid synchronization
    /// avoids by launching incrementally). Work queued *behind* the kernel
    /// in its own queue cannot delay it and is excluded.
    pub(crate) fn comm_dispatch_lag(&self, own_queue: usize) -> SimDuration {
        const COMM_LAG_FREE_OPS: usize = 24;
        const LAG_PER_OP_NS: u64 = 400;
        let foreign: usize = self
            .queues
            .iter()
            .enumerate()
            .filter(|&(q, _)| q != own_queue)
            .map(|(_, q)| q.ops.len())
            .sum();
        let backlog = foreign.saturating_sub(COMM_LAG_FREE_OPS);
        SimDuration::from_nanos(backlog as u64 * LAG_PER_OP_NS)
    }

    /// Begins the plain kernel at the head of queue `q`: assigns a run slot,
    /// applies the (precomputed) fault decision and bumps the population
    /// counters. Callers settle before and reprice after.
    pub(crate) fn begin_plain(&mut self, q: usize, now: SimTime, failure: Option<f64>) {
        let head = self.queues[q].front().expect("begin_plain on empty queue");
        let StreamOp::Kernel(spec, kid) = &head.op else {
            panic!("begin_plain on non-kernel head")
        };
        let (kid, class, blocks) = (*kid, spec.class, spec.blocks);
        let work = spec.work.as_nanos() as f64;
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            self.run.push(RunSlot {
                kernel: KernelId(0),
                queue: 0,
                class: KernelClass::Compute,
                blocks: 0,
                remaining: 0.0,
                rate: 1.0,
                settled_at: SimTime::ZERO,
                started_at: SimTime::ZERO,
                gen: 0,
                live: false,
                failing: false,
            });
            self.run.len() - 1
        });
        let s = &mut self.run[slot];
        s.kernel = kid;
        s.queue = q;
        s.class = class;
        s.blocks = blocks;
        s.remaining = match failure {
            Some(fraction) => work * fraction,
            None => work,
        };
        s.rate = 1.0;
        s.settled_at = now;
        s.started_at = now;
        s.gen += 1;
        s.live = true;
        s.failing = failure.is_some();
        self.queues[q].head = HeadState::Running { slot };
        self.apply_class_delta(now, class, blocks, 1);
    }

    /// Pops the completed kernel off queue `q`, updates device-local stats
    /// and returns the finished-kernel record. The caller owns everything
    /// cross-cutting: global counters, failure wakes and the trace append.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_head(
        &mut self,
        device: DeviceId,
        q: usize,
        kernel: KernelId,
        class: KernelClass,
        started_at: SimTime,
        failed: bool,
        now: SimTime,
    ) -> TraceEvent {
        let popped = self.queues[q].pop_op().expect("finishing empty queue");
        let (name, tag, stream, collective) = match popped.op {
            StreamOp::Kernel(spec, kid) => {
                debug_assert_eq!(kid, kernel);
                (spec.name, spec.tag, popped.stream, spec.collective)
            }
            _ => panic!("queue head changed under a running kernel"),
        };
        self.queues[q].head = HeadState::Idle;
        self.stats.account_kernel(class, now.saturating_since(started_at));
        if failed {
            self.stats.kernels_failed += 1;
        }
        TraceEvent {
            kernel,
            name,
            class,
            tag,
            device,
            stream,
            enqueued_at: popped.enqueued_at,
            started_at,
            ended_at: now,
            failed,
            collective,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CollState {
    Gathering,
    Running,
    Done,
    /// A member device died: the rendezvous can never complete. Members
    /// already gathered were failed and popped; members arriving later fail
    /// on arrival so survivor queues keep draining.
    Aborted,
}

#[derive(Debug, Clone)]
pub(crate) struct CollectiveRt {
    size: usize,
    /// (device, queue) of members that have arrived at their queue heads.
    members: Vec<(usize, usize)>,
    /// Kernel metadata captured from the first member (all members carry the
    /// same nominal work by construction).
    work: f64,
    remaining: f64,
    rate: f64,
    settled_at: SimTime,
    started_at: SimTime,
    gen: u64,
    pub(crate) state: CollState,
}

#[derive(Debug, Clone)]
enum HostOp {
    Enqueue { stream: StreamId, op: StreamOp },
    Sync { event: EventId, token: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostState {
    Idle,
    /// Busy executing the op at the front of the queue; completion scheduled.
    Busy,
    /// Parked on a blocking sync for the event at the front of the queue.
    Blocked,
}

#[derive(Debug, Clone)]
pub(crate) struct HostRt {
    pub(crate) spec: HostSpec,
    ops: VecDeque<HostOp>,
    state: HostState,
}

#[derive(Debug, Default, Clone)]
struct EventRt {
    fired_at: Option<SimTime>,
    /// Hardware queues blocked on this event: (device, queue).
    queue_waiters: Vec<(usize, usize)>,
    /// Hosts parked on this event.
    host_waiters: Vec<usize>,
    /// Driver callbacks: (token, latency-reference host).
    callbacks: Vec<(u64, usize)>,
}

/// A scheduled simulation event. Which lane it dispatches on is fixed by
/// [`Pending::device_lane`]: device-local physics (kernel completions, comm
/// dispatch-lag expiries) ride the owning device's lane; everything that can
/// touch more than one device — host completions, timers, driver wakes,
/// collective completions, fault boundaries, device deaths — rides the
/// global lane and is always dispatched by the coordinator.
#[derive(Debug, Clone)]
pub(crate) enum Pending {
    HostReady {
        host: usize,
    },
    KernelDone {
        device: usize,
        slot: usize,
        gen: u64,
    },
    CollectiveDone {
        coll: usize,
        gen: u64,
    },
    CommLagDone {
        device: usize,
        queue: usize,
        gen: u64,
    },
    Timer {
        token: u64,
    },
    DriverWake {
        wake: Wake,
    },
    /// A fault window opens or closes: rates change with no population
    /// change, so everything must settle and reprice.
    FaultBoundary,
    /// A device dies at this instant (permanently or for a window).
    DeviceDown {
        device: usize,
    },
    /// A device's outage window closes at this instant: it rejoins with
    /// empty queues. Rides the global lane so the rejoin is dispatched by
    /// the coordinator in canonical order.
    DeviceRejoin {
        device: usize,
    },
}

impl Pending {
    /// The device lane this event dispatches on, or `None` for the global
    /// lane. This routing is part of the canonical dispatch order (see
    /// [`crate::lanes`]): the global lane ranks before every device lane at
    /// equal times, and device lanes rank by device index.
    pub(crate) fn device_lane(&self) -> Option<usize> {
        match *self {
            Pending::KernelDone { device, .. } | Pending::CommLagDone { device, .. } => {
                Some(device)
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch footprints (explore-core instrumentation)
// ---------------------------------------------------------------------------

/// Tag bit distinguishing collective ids from event ids inside
/// [`DispatchFootprint::events`]: the two id spaces both start at zero, so
/// collective coupling is keyed as `COLL_FOOTPRINT_BIT | collective`.
pub const COLL_FOOTPRINT_BIT: u64 = 1 << 63;

/// The state touched by dispatching one pending event: the footprint the
/// schedule-space model checker keys its partial-order reduction on.
///
/// Two dispatches *commute* when their footprints are disjoint — neither can
/// observe whether the other ran first. `devices` covers every device whose
/// runtime state (queues, run slots, contention population, stats) the
/// dispatch settled, repriced or advanced; `events` covers every CUDA-like
/// event the dispatch fired, resolved or registered a waiter on; `streams`
/// and `tags` are reporting metadata at the granularity the sanitizer's
/// TS-HAZARD rules use (a kernel's tag is its memory label). `global` marks
/// coupling through host-side state (blocking syncs, driver callbacks),
/// which conservatively intersects everything.
///
/// Footprints are recorded two ways: *dynamically* by the probe armed by
/// [`crate::cores::ExploreCore`] around each dispatch (hooks in the queue
/// poll, kernel begin/finish and event trigger paths), and *statically* for
/// enabled-but-undispatched events by walking the queue continuation the
/// dispatch would drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchFootprint {
    /// Host-side coupling: intersects every other footprint.
    pub global: bool,
    /// Devices whose runtime state the dispatch touches.
    pub devices: BTreeSet<usize>,
    /// `(device, stream)` lanes touched, for reporting.
    pub streams: BTreeSet<(usize, usize)>,
    /// Kernel tags (memory labels in the TS-HAZARD sense) touched.
    pub tags: BTreeSet<u64>,
    /// CUDA-like events fired, resolved or waited on.
    pub events: BTreeSet<u64>,
}

impl DispatchFootprint {
    /// True when the two footprints share state: the dispatches do not
    /// commute and their order is a real choice the checker must explore.
    pub fn intersects(&self, other: &DispatchFootprint) -> bool {
        self.global
            || other.global
            || self.devices.iter().any(|d| other.devices.contains(d))
            || self.events.iter().any(|e| other.events.contains(e))
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &DispatchFootprint) {
        self.global |= other.global;
        self.devices.extend(other.devices.iter().copied());
        self.streams.extend(other.streams.iter().copied());
        self.tags.extend(other.tags.iter().copied());
        self.events.extend(other.events.iter().copied());
    }
}

// ---------------------------------------------------------------------------
// Terminal-state report (quiescence / deadlock checking)
// ---------------------------------------------------------------------------

/// Why a hardware queue is blocked at end of run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneBlock {
    /// The queue head is a `Wait` on this (unfired) event.
    Event(u64),
    /// The queue head is a collective member still gathering peers.
    Collective(u64),
}

/// One hardware queue blocked at end of run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedLane {
    /// Owning device.
    pub device: usize,
    /// Hardware queue index on the device.
    pub queue: usize,
    /// Stream of the blocking head op.
    pub stream: usize,
    /// What the head is blocked on.
    pub block: LaneBlock,
}

/// Snapshot of everything left unfinished when the event loop stopped: the
/// raw material for the model checker's MC-QUIESCENCE / MC-DEADLOCK rules.
/// A clean terminal state is [`TerminalReport::is_quiescent`].
#[derive(Debug, Clone, Default)]
pub struct TerminalReport {
    /// Non-stale events still pending in the lanes (0 unless a deadline or
    /// stop request cut the run short).
    pub pending_events: usize,
    /// Ops still sitting in device hardware queues.
    pub queued_ops: usize,
    /// Queues blocked on an event or a collective rendezvous.
    pub blocked_lanes: Vec<BlockedLane>,
    /// Hosts parked on a blocking sync: `(host, event)`.
    pub blocked_hosts: Vec<(usize, u64)>,
    /// `Record` ops still queued (events that could yet fire):
    /// `(event, device, queue)`.
    pub held_records: Vec<(u64, usize, usize)>,
    /// Collective member kernels still queued: `(collective, device, queue)`.
    pub queued_collective_members: Vec<(u64, usize, usize)>,
    /// Collectives stuck gathering: `(collective, members_arrived, size)`.
    pub gathering_collectives: Vec<(u64, usize, usize)>,
}

impl TerminalReport {
    /// True when nothing is left pending, queued or blocked: the run drained
    /// completely.
    pub fn is_quiescent(&self) -> bool {
        self.pending_events == 0
            && self.queued_ops == 0
            && self.blocked_lanes.is_empty()
            && self.blocked_hosts.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

/// Builder for [`Simulation`].
#[derive(Debug, Default)]
pub struct SimulationBuilder {
    devices: Vec<DeviceSpec>,
    hosts: Vec<HostSpec>,
    streams_per_device: usize,
    capture_trace: bool,
    faults: FaultSpec,
}

impl SimulationBuilder {
    /// Starts an empty builder (no devices, 4 streams per device).
    pub fn new() -> Self {
        SimulationBuilder {
            devices: Vec::new(),
            hosts: Vec::new(),
            streams_per_device: 4,
            capture_trace: false,
            faults: FaultSpec::none(),
        }
    }

    /// Adds `count` identical devices.
    pub fn devices(mut self, spec: DeviceSpec, count: usize) -> Self {
        for _ in 0..count {
            self.devices.push(spec.clone());
        }
        self
    }

    /// Adds one device.
    pub fn device(mut self, spec: DeviceSpec) -> Self {
        self.devices.push(spec);
        self
    }

    /// Adds one host thread.
    pub fn host(mut self, spec: HostSpec) -> Self {
        self.hosts.push(spec);
        self
    }

    /// Number of streams created per device (default 4).
    pub fn streams_per_device(mut self, n: usize) -> Self {
        self.streams_per_device = n.max(1);
        self
    }

    /// Enables execution trace capture.
    pub fn capture_trace(mut self, on: bool) -> Self {
        self.capture_trace = on;
        self
    }

    /// Installs a deterministic fault schedule ([`FaultSpec`]).
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = spec;
        self
    }

    /// Builds the simulation. If no hosts were added, one MPI-style rank per
    /// device is created ([`HostSpec::mpi_rank`]).
    ///
    /// # Errors
    /// Returns a description of the first invalid spec.
    pub fn build(mut self) -> Result<Simulation, String> {
        if self.devices.is_empty() {
            return Err("simulation requires at least one device".to_string());
        }
        for d in &self.devices {
            d.validate()?;
        }
        if self.hosts.is_empty() {
            self.hosts = (0..self.devices.len()).map(HostSpec::mpi_rank).collect();
        }
        let streams = self.streams_per_device;
        let devices: Vec<DeviceRt> = self
            .devices
            .into_iter()
            .map(|spec| {
                let nq = spec.connections.min(streams);
                DeviceRt {
                    spec,
                    queues: (0..nq).map(|_| QueueRt::new()).collect(),
                    run: Vec::new(),
                    free_slots: Vec::new(),
                    n_compute: 0,
                    n_comm: 0,
                    comm_channels: 0,
                    active_colls: Vec::new(),
                    alive: true,
                    stats: DeviceStats::default(),
                }
            })
            .collect();
        let hosts: Vec<HostRt> = self
            .hosts
            .into_iter()
            .map(|spec| HostRt { spec, ops: VecDeque::new(), state: HostState::Idle })
            .collect();
        let memory =
            MemoryTracker::new(devices.iter().map(|d: &DeviceRt| d.spec.mem_capacity).collect());
        let device_lanes = devices.iter().map(|_| EventLane::default()).collect();
        let mut sim = Simulation {
            now: SimTime::ZERO,
            global_lane: EventLane::default(),
            device_lanes,
            devices,
            hosts,
            events: Vec::new(),
            collectives: Vec::new(),
            streams_per_device: streams,
            next_kernel: 0,
            next_timer: 0,
            wakes: VecDeque::new(),
            stop: false,
            trace: if self.capture_trace { Some(Trace::new()) } else { None },
            kernels_completed: 0,
            kernels_launched: 0,
            kernels_failed: 0,
            events_dispatched: 0,
            memory,
            faults: self.faults,
            probe: None,
            relaxed_time: false,
        };
        // Every fault-window edge changes rates without a population change;
        // schedule a settle + reprice there so piecewise rates are exact.
        for at in sim.faults.boundaries() {
            sim.push(at, Pending::FaultBoundary);
        }
        for down in sim.faults.device_downs().to_vec() {
            if down.device.0 >= sim.devices.len() {
                return Err(format!("device down schedule names unknown {:?}", down.device));
            }
            sim.push(down.at, Pending::DeviceDown { device: down.device.0 });
            if let Some(until) = down.until {
                sim.push(until, Pending::DeviceRejoin { device: down.device.0 });
            }
        }
        Ok(sim)
    }
}

/// The discrete-event multi-GPU simulation.
///
/// Cloning a `Simulation` deep-copies every lane, device runtime, host
/// queue, event table and counter: the clone replays identically under the
/// same driver and dispatch order. The schedule-space model checker clones
/// a pristine simulation once per explored schedule.
#[derive(Clone)]
pub struct Simulation {
    pub(crate) now: SimTime,
    /// Coordinator lane: hosts, timers, driver wakes, collectives, fault
    /// boundaries, device deaths. Ranks before every device lane at ties.
    pub(crate) global_lane: EventLane<Pending>,
    /// One local lane per device: its kernel completions and comm-lag
    /// expiries. Lane `d` ranks `d + 1` in the canonical dispatch order.
    pub(crate) device_lanes: Vec<EventLane<Pending>>,
    pub(crate) devices: Vec<DeviceRt>,
    pub(crate) hosts: Vec<HostRt>,
    events: Vec<EventRt>,
    pub(crate) collectives: Vec<CollectiveRt>,
    streams_per_device: usize,
    next_kernel: u64,
    next_timer: u64,
    pub(crate) wakes: VecDeque<Wake>,
    pub(crate) stop: bool,
    pub(crate) trace: Option<Trace>,
    pub(crate) kernels_completed: u64,
    kernels_launched: u64,
    kernels_failed: u64,
    pub(crate) events_dispatched: u64,
    memory: MemoryTracker,
    pub(crate) faults: FaultSpec,
    /// Armed by the explore core around a dispatch: records the state the
    /// dispatch touches. `None` (the default) costs one branch per hook.
    pub(crate) probe: Option<DispatchFootprint>,
    /// Set by the explore core's unguarded window rule: out-of-timestamp
    /// dispatch across interacting lanes is intentional there, so the
    /// monotone-completion debug assertion is relaxed.
    pub(crate) relaxed_time: bool,
}

impl Simulation {
    /// Starts a builder.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::new()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of devices in the node.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of host threads.
    #[inline]
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Streams available per device.
    #[inline]
    pub fn streams_per_device(&self) -> usize {
        self.streams_per_device
    }

    /// Device specification.
    pub fn device_spec(&self, d: DeviceId) -> &DeviceSpec {
        &self.devices[d.0].spec
    }

    /// Host specification. Serving layers read the launch overhead here to
    /// derive the parallel core's lookahead.
    pub fn host_spec(&self, h: HostId) -> &HostSpec {
        &self.hosts[h.0].spec
    }

    /// Per-device utilization statistics.
    pub fn device_stats(&self, d: DeviceId) -> &DeviceStats {
        &self.devices[d.0].stats
    }

    /// Total kernels launched (enqueued on devices) so far.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched
    }

    /// Total kernels completed so far (failed kernels included: they still
    /// drain from their queues).
    pub fn kernels_completed(&self) -> u64 {
        self.kernels_completed
    }

    /// Total kernels killed by the fault schedule so far.
    pub fn kernels_failed(&self) -> u64 {
        self.kernels_failed
    }

    /// Total simulation events dispatched so far (stale, superseded entries
    /// excluded). The throughput numerator for `bench_simcore`.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// The installed fault schedule (empty by default).
    pub fn fault_spec(&self) -> &FaultSpec {
        &self.faults
    }

    /// The straggler slowdown factor currently active on `device` (1.0 when
    /// healthy). Schedulers use this for degraded-round replanning.
    pub fn device_fault_factor(&self, device: DeviceId) -> f64 {
        self.faults.device_factor(device, self.now)
    }

    /// The worst straggler factor across all devices right now (dead devices
    /// excluded: they no longer run anything to slow down).
    pub fn worst_fault_factor(&self) -> f64 {
        (0..self.devices.len())
            .filter(|&d| self.devices[d].alive)
            .map(|d| self.faults.device_factor(DeviceId(d), self.now))
            .fold(1.0, f64::max)
    }

    /// Whether `device` is still alive (true until a
    /// [`FaultSpec::device_down`](crate::FaultSpec::device_down) trigger
    /// fires for it).
    pub fn device_alive(&self, device: DeviceId) -> bool {
        self.devices[device.0].alive
    }

    /// The devices currently alive, in index order.
    pub fn alive_devices(&self) -> Vec<DeviceId> {
        (0..self.devices.len()).filter(|&d| self.devices[d].alive).map(DeviceId).collect()
    }

    /// The captured execution trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Takes the captured execution trace out of the simulation.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// When `ev` has fired, its GPU-side trigger time.
    pub fn event_fired(&self, ev: EventId) -> Option<SimTime> {
        self.events[ev.0 as usize].fired_at
    }

    /// Requests the event loop to stop after the current wake drains.
    pub fn request_stop(&mut self) {
        self.stop = true;
    }

    // -- device memory ---------------------------------------------------------

    /// Allocates `bytes` of device memory (weights, activations, KV cache).
    /// Fails when the device's capacity would be exceeded — the constraint
    /// that forces model partitioning in the first place.
    pub fn alloc_memory(
        &mut self,
        device: DeviceId,
        bytes: u64,
        label: &'static str,
    ) -> Result<AllocationId, OutOfMemory> {
        let id = self.memory.alloc(device, bytes, label)?;
        if let Some(trace) = &mut self.trace {
            trace.push_mark(TraceMark::Alloc {
                id: id.0,
                device,
                bytes,
                label: label.to_string(),
                at: self.now,
            });
        }
        Ok(id)
    }

    /// Frees a device-memory allocation. Accounting is idempotent, but a
    /// second free of the same id is an allocator bug: the tracker counts it
    /// (see [`Simulation::memory_double_frees`]) and fires a debug assertion,
    /// and the duplicate `Free` trace mark trips the sanitizer's
    /// TS-DOUBLE-FREE rule.
    pub fn free_memory(&mut self, id: AllocationId) {
        if let Some((device, ..)) = self.memory.info(id) {
            if let Some(trace) = &mut self.trace {
                trace.push_mark(TraceMark::Free { id: id.0, device, at: self.now });
            }
        }
        self.memory.free(id);
    }

    /// Double frees observed by the memory tracker, across all devices.
    pub fn memory_double_frees(&self) -> u64 {
        self.memory.double_frees()
    }

    /// Double frees charged against `device` specifically.
    pub fn memory_double_frees_on(&self, device: DeviceId) -> u64 {
        self.memory.double_frees_on(device)
    }

    /// Bytes currently allocated on `device`.
    pub fn memory_in_use(&self, device: DeviceId) -> u64 {
        self.memory.in_use(device)
    }

    /// Peak bytes ever allocated on `device`.
    pub fn memory_peak(&self, device: DeviceId) -> u64 {
        self.memory.peak(device)
    }

    // -- driver-facing API ---------------------------------------------------

    /// Registers a timer firing at `at` (clamped to `now`); the driver is
    /// woken with [`Wake::Timer`] carrying `token`.
    pub fn set_timer(&mut self, at: SimTime, token: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        let at = at.max(self.now);
        self.push(at, Pending::Timer { token });
        id
    }

    /// Allocates a fresh CUDA-like event (not yet recorded anywhere).
    pub fn new_event(&mut self) -> EventId {
        let id = EventId(self.events.len() as u64);
        self.events.push(EventRt::default());
        id
    }

    /// Allocates a collective rendezvous group expecting `size` member
    /// kernels (one per participating device).
    pub fn new_collective(&mut self, size: usize) -> CollectiveId {
        assert!(size >= 1, "collective size must be >= 1");
        let id = CollectiveId(self.collectives.len() as u64);
        self.collectives.push(CollectiveRt {
            size,
            members: Vec::with_capacity(size),
            work: 0.0,
            remaining: 0.0,
            rate: 1.0,
            settled_at: SimTime::ZERO,
            started_at: SimTime::ZERO,
            gen: 0,
            state: CollState::Gathering,
        });
        id
    }

    /// Asks host `host` to launch `spec` onto `stream`. The host pays its
    /// launch overhead; the kernel is enqueued on the stream's hardware queue
    /// when the overhead elapses. Returns the kernel's id immediately.
    pub fn launch(&mut self, host: HostId, stream: StreamId, spec: KernelSpec) -> KernelId {
        assert!(stream.device.0 < self.devices.len(), "unknown device {stream:?}");
        assert!(
            stream.index < self.streams_per_device,
            "stream index {} out of range",
            stream.index
        );
        if let Some(cid) = spec.collective {
            let coll = &self.collectives[cid.0 as usize];
            assert!(
                coll.members.len() < coll.size || coll.state == CollState::Gathering,
                "collective {cid} already complete"
            );
        }
        let id = KernelId(self.next_kernel);
        self.next_kernel += 1;
        self.host_push(
            host.0,
            HostOp::Enqueue { stream, op: StreamOp::Kernel(Box::new(spec), id) },
        );
        id
    }

    /// Asks host `host` to record a fresh event on `stream`; the event fires
    /// when every operation previously enqueued on that stream's hardware
    /// queue has completed.
    pub fn record_event(&mut self, host: HostId, stream: StreamId) -> EventId {
        let ev = self.new_event();
        self.host_push(host.0, HostOp::Enqueue { stream, op: StreamOp::Record(ev) });
        ev
    }

    /// Asks host `host` to record the *pre-created* event `ev` on `stream`.
    /// Same semantics as [`Simulation::record_event`], but the caller owns
    /// the event's identity: replay drivers use this to wire a program's
    /// symbolic event ids to simulator events before any lane runs.
    ///
    /// # Panics
    /// Panics when `ev` was not created by [`Simulation::new_event`].
    pub fn record_existing_event(&mut self, host: HostId, stream: StreamId, ev: EventId) {
        assert!((ev.0 as usize) < self.events.len(), "unknown event {ev:?}");
        self.host_push(host.0, HostOp::Enqueue { stream, op: StreamOp::Record(ev) });
    }

    /// Asks host `host` to make `stream` wait for `ev` (inter-stream
    /// synchronization, `cudaStreamWaitEvent`): operations enqueued on the
    /// stream after this call do not begin until `ev` has fired. No CPU
    /// involvement at execution time.
    pub fn stream_wait(&mut self, host: HostId, stream: StreamId, ev: EventId) {
        self.host_push(host.0, HostOp::Enqueue { stream, op: StreamOp::Wait(ev) });
    }

    /// Parks host `host` until `ev` fires (CPU–GPU synchronization,
    /// `cudaEventSynchronize`). The driver is woken with [`Wake::HostSynced`]
    /// once the host resumes (after sync latency + per-rank wake jitter).
    pub fn host_sync(&mut self, host: HostId, ev: EventId, token: u64) {
        self.host_push(host.0, HostOp::Sync { event: ev, token });
    }

    /// Registers a driver callback on `ev`: when the event fires, the driver
    /// is woken with [`Wake::EventFired`] after host `latency_host`'s sync
    /// latency (modelling the driver thread observing the completion).
    pub fn notify_on_event(&mut self, ev: EventId, latency_host: HostId, token: u64) {
        let e = &mut self.events[ev.0 as usize];
        if let Some(fired_at) = e.fired_at {
            let latency = self.hosts[latency_host.0].spec.sync_latency;
            let at = self.now.max(fired_at) + latency;
            self.push(
                at,
                Pending::DriverWake { wake: Wake::EventFired { event: ev, token, fired_at } },
            );
        } else {
            e.callbacks.push((token, latency_host.0));
        }
    }

    // -- event loop -----------------------------------------------------------

    /// Runs the simulation until the event lanes drain, `deadline` passes, or
    /// the driver requests a stop, using the ambient core selection
    /// ([`CoreSelect::from_env`]: the `LIGER_CORE` environment variable when
    /// set, else the sequential engine). Returns the final simulated time.
    ///
    /// [`CoreSelect::from_env`]: crate::cores::CoreSelect::from_env
    pub fn run(&mut self, driver: &mut dyn Driver, deadline: SimTime) -> SimTime {
        self.run_with_core(crate::cores::CoreSelect::from_env(), driver, deadline)
    }

    /// [`Simulation::run`] with an explicit event-core selection. Both cores
    /// produce byte-identical traces and metrics for the same seed; see
    /// [`crate::cores`].
    pub fn run_with_core(
        &mut self,
        core: crate::cores::CoreSelect,
        driver: &mut dyn Driver,
        deadline: SimTime,
    ) -> SimTime {
        use crate::cores::EventCore;
        match core {
            crate::cores::CoreSelect::Seq => {
                crate::cores::SequentialCore.run(self, driver, deadline)
            }
            crate::cores::CoreSelect::Par { workers } => {
                crate::cores::ParallelCore::new(workers).run(self, driver, deadline)
            }
        }
    }

    /// Pops the canonically-next pending event across all lanes: the
    /// smallest `(time, lane rank, lane seq)` key, with the global lane at
    /// rank 0 and device `d` at rank `d + 1`. Every event core dispatches in
    /// exactly this order — that invariant is what makes traces
    /// byte-identical across cores and worker counts.
    pub(crate) fn pop_next(&mut self) -> Option<(SimTime, Pending)> {
        let mut best: Option<((SimTime, usize, u64), usize)> =
            self.global_lane.peek_key().map(|(at, seq)| ((at, 0, seq), 0));
        for (d, lane) in self.device_lanes.iter().enumerate() {
            if let Some((at, seq)) = lane.peek_key() {
                let key = (at, d + 1, seq);
                let better = match &best {
                    None => true,
                    Some((b, _)) => key < *b,
                };
                if better {
                    best = Some((key, d + 1));
                }
            }
        }
        let (_, idx) = best?;
        let lane = if idx == 0 { &mut self.global_lane } else { &mut self.device_lanes[idx - 1] };
        let e = lane.pop().expect("peeked lane emptied under us");
        Some((e.at, e.payload))
    }

    /// Total pending events across all lanes.
    pub(crate) fn pending_events(&self) -> usize {
        self.global_lane.len() + self.device_lanes.iter().map(|l| l.len()).sum::<usize>()
    }

    /// True when a lane entry was superseded by a later reprice and must be
    /// ignored (its generation no longer matches the live state).
    pub(crate) fn entry_is_stale(&self, pending: &Pending) -> bool {
        match *pending {
            Pending::KernelDone { device, slot, gen } => {
                let s = &self.devices[device].run[slot];
                !s.live || s.gen != gen
            }
            Pending::CollectiveDone { coll, gen } => {
                let c = &self.collectives[coll];
                c.state != CollState::Running || c.gen != gen
            }
            Pending::CommLagDone { device, queue, gen } => {
                !matches!(self.devices[device].queues[queue].head,
                          HeadState::LagWait { gen: g } if g == gen)
            }
            // A rate-change boundary with nothing running changes nothing:
            // kernels beginning later reprice against the schedule anyway.
            Pending::FaultBoundary => {
                self.devices.iter().all(|dev| dev.run.iter().all(|s| !s.live))
                    && self.collectives.iter().all(|c| c.state != CollState::Running)
            }
            _ => false,
        }
    }

    /// [`Simulation::run`] with no deadline.
    pub fn run_to_completion(&mut self, driver: &mut dyn Driver) -> SimTime {
        self.run(driver, SimTime::MAX)
    }

    /// [`Simulation::run_with_core`] with no deadline.
    pub fn run_to_completion_with(
        &mut self,
        core: crate::cores::CoreSelect,
        driver: &mut dyn Driver,
    ) -> SimTime {
        self.run_with_core(core, driver, SimTime::MAX)
    }

    /// Applies `f` to the armed dispatch-footprint probe, if any.
    #[inline]
    fn probe_mark(&mut self, f: impl FnOnce(&mut DispatchFootprint)) {
        if let Some(p) = self.probe.as_mut() {
            f(p);
        }
    }

    /// A collective's gathered members and expected size (explore-core
    /// footprints).
    pub(crate) fn collective_members(&self, ci: usize) -> (&[(usize, usize)], usize) {
        let c = &self.collectives[ci];
        (&c.members, c.size)
    }

    /// Queues currently blocked on event `ev` (explore-core footprints).
    pub(crate) fn event_queue_waiters(&self, ev: u64) -> &[(usize, usize)] {
        &self.events[ev as usize].queue_waiters
    }

    /// True when a host blocking sync or a driver callback is parked on
    /// `ev`: firing it couples into host-side (global) state.
    pub(crate) fn event_has_host_interest(&self, ev: u64) -> bool {
        let e = &self.events[ev as usize];
        !e.host_waiters.is_empty() || !e.callbacks.is_empty()
    }

    /// Snapshot of everything unfinished: pending events, queued ops,
    /// blocked queues/hosts, undelivered records and gathering collectives.
    /// The model checker derives its MC-QUIESCENCE / MC-DEADLOCK verdicts
    /// from this after every explored schedule.
    pub fn terminal_report(&self) -> TerminalReport {
        let mut r = TerminalReport::default();
        for (_, p) in self.global_lane.iter() {
            if !self.entry_is_stale(p) {
                r.pending_events += 1;
            }
        }
        for lane in &self.device_lanes {
            for (_, p) in lane.iter() {
                if !self.entry_is_stale(p) {
                    r.pending_events += 1;
                }
            }
        }
        for (d, dev) in self.devices.iter().enumerate() {
            for (q, queue) in dev.queues.iter().enumerate() {
                r.queued_ops += queue.ops_len();
                for (i, qop) in queue.iter_ops().enumerate() {
                    match &qop.op {
                        StreamOp::Record(ev) => r.held_records.push((ev.0, d, q)),
                        StreamOp::Kernel(spec, _) => {
                            if let Some(cid) = spec.collective {
                                r.queued_collective_members.push((cid.0, d, q));
                            }
                        }
                        StreamOp::Wait(_) => {}
                    }
                    if i == 0 {
                        match (queue.head, &qop.op) {
                            (HeadState::WaitingEvent, StreamOp::Wait(ev)) => {
                                r.blocked_lanes.push(BlockedLane {
                                    device: d,
                                    queue: q,
                                    stream: qop.stream,
                                    block: LaneBlock::Event(ev.0),
                                });
                            }
                            (HeadState::WaitingPeers, StreamOp::Kernel(spec, _)) => {
                                if let Some(cid) = spec.collective {
                                    r.blocked_lanes.push(BlockedLane {
                                        device: d,
                                        queue: q,
                                        stream: qop.stream,
                                        block: LaneBlock::Collective(cid.0),
                                    });
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        for (h, host) in self.hosts.iter().enumerate() {
            if host.state == HostState::Blocked {
                if let Some(HostOp::Sync { event, .. }) = host.ops.front() {
                    r.blocked_hosts.push((h, event.0));
                }
            }
        }
        for (ci, coll) in self.collectives.iter().enumerate() {
            if coll.state == CollState::Gathering && !coll.members.is_empty() {
                r.gathering_collectives.push((ci as u64, coll.members.len(), coll.size));
            }
        }
        r
    }

    pub(crate) fn drain_wakes(&mut self, driver: &mut dyn Driver) {
        while let Some(w) = self.wakes.pop_front() {
            driver.on_wake(w, self);
            if self.stop {
                break;
            }
        }
    }

    fn push(&mut self, at: SimTime, pending: Pending) {
        match pending.device_lane() {
            Some(d) => self.device_lanes[d].push(at, pending),
            None => self.global_lane.push(at, pending),
        }
    }

    pub(crate) fn dispatch(&mut self, pending: Pending) {
        self.events_dispatched += 1;
        match pending {
            Pending::HostReady { host } => self.host_ready(host),
            Pending::KernelDone { device, slot, gen } => self.kernel_done(device, slot, gen),
            Pending::CollectiveDone { coll, gen } => self.collective_done(coll, gen),
            Pending::CommLagDone { device, queue, gen } => self.comm_lag_done(device, queue, gen),
            Pending::Timer { token } => self.wakes.push_back(Wake::Timer { token }),
            Pending::DriverWake { wake } => self.wakes.push_back(wake),
            Pending::FaultBoundary => self.fault_boundary(),
            Pending::DeviceDown { device } => self.device_down(device),
            Pending::DeviceRejoin { device } => self.device_rejoin(device),
        }
    }

    /// A fault window opened or closed: charge progress at the old rates on
    /// every device, then reprice everything at the new ones.
    fn fault_boundary(&mut self) {
        for d in 0..self.devices.len() {
            self.settle_device(d);
        }
        for d in 0..self.devices.len() {
            self.reprice_device(d);
        }
    }

    /// A device dies permanently: charge pre-death progress everywhere, fail
    /// its running kernels, abort every collective it participates in (so
    /// survivor queues drain instead of waiting forever on the rendezvous),
    /// then FIFO-drain its hardware queues — queued kernels fail with their
    /// own [`Wake::KernelFailed`], queued records still fire (work submitted
    /// before the death may legitimately have completed; post-death records
    /// never fire, which is what a heartbeat watchdog detects), queued waits
    /// are dropped. Ends by waking the driver with [`Wake::DeviceDown`].
    fn device_down(&mut self, d: usize) {
        if !self.devices[d].alive {
            return;
        }
        for i in 0..self.devices.len() {
            self.settle_device(i);
        }
        self.devices[d].alive = false;

        // Fail every plain kernel running on the dead device.
        for slot in 0..self.devices[d].run.len() {
            if !self.devices[d].run[slot].live {
                continue;
            }
            let (queue, class, blocks, kernel, started_at) = {
                let s = &self.devices[d].run[slot];
                (s.queue, s.class, s.blocks, s.kernel, s.started_at)
            };
            self.devices[d].run[slot].live = false;
            self.devices[d].free_slots.push(slot);
            let now = self.now;
            self.devices[d].apply_class_delta(now, class, blocks, -1);
            self.finish_queue_head(d, queue, kernel, class, started_at, true);
        }

        // Abort collectives (gathering or running) with a member on `d`.
        // Collectives whose dead-device member has not arrived yet abort
        // when that member's launch reaches the dead device.
        for ci in 0..self.collectives.len() {
            let doomed =
                matches!(self.collectives[ci].state, CollState::Gathering | CollState::Running)
                    && self.collectives[ci].members.iter().any(|&(md, _)| md == d);
            if doomed {
                self.abort_collective(ci);
            }
        }

        // FIFO-drain the dead device's queues.
        for q in 0..self.devices[d].queues.len() {
            self.devices[d].queues[q].head = HeadState::Idle;
            while let Some(front) = self.devices[d].queues[q].front() {
                match &front.op {
                    StreamOp::Record(ev) => {
                        let ev = *ev;
                        let stream = front.stream;
                        self.devices[d].queues[q].pop_op();
                        // The event fires vacuously at death time so that
                        // survivors waiting on it unblock; the trace must
                        // carry the record mark, or those later-resolved
                        // waits reference an event with no provenance.
                        if let Some(trace) = &mut self.trace {
                            trace.push_mark(TraceMark::Record {
                                event: ev.0,
                                device: DeviceId(d),
                                stream,
                                at: self.now,
                            });
                        }
                        self.trigger_event(ev);
                    }
                    StreamOp::Wait(_) => {
                        self.devices[d].queues[q].pop_op();
                    }
                    StreamOp::Kernel(spec, _) => {
                        if let Some(cid) = spec.collective {
                            let ci = cid.0 as usize;
                            if matches!(
                                self.collectives[ci].state,
                                CollState::Gathering | CollState::Running
                            ) {
                                self.abort_collective(ci);
                            }
                        }
                        let (kernel, class) = match &self.devices[d].queues[q]
                            .front()
                            .expect("drained under us")
                            .op
                        {
                            StreamOp::Kernel(spec, kid) => (*kid, spec.class),
                            _ => unreachable!("front changed during drain"),
                        };
                        self.finish_queue_head(d, q, kernel, class, self.now, true);
                    }
                }
            }
        }

        for i in 0..self.devices.len() {
            self.reprice_device(i);
        }
        let at = self.now;
        self.wakes.push_back(Wake::DeviceDown { device: DeviceId(d), at });
    }

    /// A device's outage window closed: mark it alive and wake the driver
    /// with [`Wake::DeviceRejoined`]. The death drain already emptied its
    /// queues and nothing enqueues on a dead device (kernels fail at
    /// enqueue, records and waits are dropped), so the device comes back
    /// idle — there is no device-local state to rebuild and rates elsewhere
    /// are unaffected until new work is submitted to it.
    fn device_rejoin(&mut self, d: usize) {
        if self.devices[d].alive {
            return;
        }
        self.devices[d].alive = true;
        let at = self.now;
        self.wakes.push_back(Wake::DeviceRejoined { device: DeviceId(d), at });
    }

    /// Aborts a collective rendezvous whose completion became impossible:
    /// members already gathered (waiting or running) fail and pop from their
    /// queue heads so the queues behind them keep draining; the state moves
    /// to [`CollState::Aborted`] so members arriving later fail on arrival.
    fn abort_collective(&mut self, ci: usize) {
        let was_running = self.collectives[ci].state == CollState::Running;
        let started_at = if was_running { self.collectives[ci].started_at } else { self.now };
        self.collectives[ci].state = CollState::Aborted;
        let members = std::mem::take(&mut self.collectives[ci].members);
        if was_running {
            for &(md, _) in &members {
                self.settle_device(md);
            }
        }
        for &(md, q) in &members {
            let (kernel, class, blocks) = match &self.devices[md].queues[q]
                .front()
                .expect("aborting collective with empty member queue")
                .op
            {
                StreamOp::Kernel(spec, kid) => (*kid, spec.class, spec.blocks),
                _ => panic!("collective member head is not a kernel"),
            };
            if was_running {
                self.devices[md].active_colls.retain(|&c| c != ci);
                let now = self.now;
                self.devices[md].apply_class_delta(now, class, blocks, -1);
            }
            self.finish_queue_head(md, q, kernel, class, started_at, true);
        }
        for &(md, _) in &members {
            self.reprice_device(md);
        }
        for &(md, q) in &members {
            if self.devices[md].alive {
                self.poll_queue(md, q);
            }
        }
    }

    // -- host machinery --------------------------------------------------------

    fn host_push(&mut self, host: usize, op: HostOp) {
        assert!(host < self.hosts.len(), "unknown host {host}");
        self.hosts[host].ops.push_back(op);
        if self.hosts[host].state == HostState::Idle {
            self.host_begin_next(host);
        }
    }

    /// Begins executing the op at the front of `host`'s queue (which must be
    /// idle and non-empty).
    fn host_begin_next(&mut self, host: usize) {
        // Fault hook: kernel launches may pay a seeded overhead spike.
        let spike = self.faults.launch_spike(HostId(host), self.now);
        let h = &mut self.hosts[host];
        let Some(front) = h.ops.front() else {
            h.state = HostState::Idle;
            return;
        };
        match front {
            HostOp::Enqueue { op, .. } => {
                let cost = match op {
                    StreamOp::Kernel(..) => h.spec.launch_overhead + spike,
                    StreamOp::Record(_) | StreamOp::Wait(_) => h.spec.event_overhead,
                };
                h.state = HostState::Busy;
                let at = self.now + cost;
                self.push(at, Pending::HostReady { host });
            }
            HostOp::Sync { event, .. } => {
                let ev = &self.events[event.0 as usize];
                if ev.fired_at.is_some() {
                    // The event already fired: no cross-GPU wake skew was
                    // involved, only the driver-call latency applies.
                    h.state = HostState::Busy;
                    let at = self.now + h.spec.sync_latency;
                    self.push(at, Pending::HostReady { host });
                } else {
                    h.state = HostState::Blocked;
                    self.events[event.0 as usize].host_waiters.push(host);
                }
            }
        }
    }

    /// The front op's overhead elapsed: apply its effect and move on.
    fn host_ready(&mut self, host: usize) {
        let op = self.hosts[host].ops.pop_front().expect("host ready with empty queue");
        self.hosts[host].state = HostState::Idle;
        match op {
            HostOp::Enqueue { stream, op } => {
                self.device_enqueue(stream, op);
            }
            HostOp::Sync { event, token } => {
                let fired_at = self.events[event.0 as usize]
                    .fired_at
                    .expect("blocking sync resumed before event fired");
                self.wakes.push_back(Wake::HostSynced {
                    host: HostId(host),
                    event,
                    token,
                    fired_at,
                });
            }
        }
        if self.hosts[host].state == HostState::Idle && !self.hosts[host].ops.is_empty() {
            self.host_begin_next(host);
        }
    }

    // -- device machinery -------------------------------------------------------

    fn queue_of(&self, device: usize, stream: usize) -> usize {
        stream % self.devices[device].queues.len()
    }

    fn device_enqueue(&mut self, stream: StreamId, op: StreamOp) {
        let d = stream.device.0;
        if !self.devices[d].alive {
            self.dead_enqueue(d, stream.index, op);
            return;
        }
        let q = self.queue_of(d, stream.index);
        if matches!(op, StreamOp::Kernel(..)) {
            self.kernels_launched += 1;
        }
        self.devices[d].queues[q].push_op(QueuedOp {
            op,
            stream: stream.index,
            enqueued_at: self.now,
        });
        self.poll_queue(d, q);
    }

    /// An operation reaching a dead device: kernels fail instantly (the
    /// driver sees a [`Wake::KernelFailed`] per kernel, so no work is
    /// silently lost) and a collective member aborts its whole rendezvous;
    /// records never fire — the missed heartbeats a health watchdog detects;
    /// waits are dropped.
    fn dead_enqueue(&mut self, d: usize, stream: usize, op: StreamOp) {
        match op {
            StreamOp::Kernel(spec, kid) => {
                self.kernels_launched += 1;
                if let Some(cid) = spec.collective {
                    let ci = cid.0 as usize;
                    if matches!(
                        self.collectives[ci].state,
                        CollState::Gathering | CollState::Running
                    ) {
                        self.abort_collective(ci);
                    }
                }
                self.kernels_completed += 1;
                self.kernels_failed += 1;
                self.devices[d].stats.kernels_failed += 1;
                self.wakes.push_back(Wake::KernelFailed {
                    kernel: kid,
                    device: DeviceId(d),
                    tag: spec.tag,
                    at: self.now,
                });
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent {
                        kernel: kid,
                        name: spec.name,
                        class: spec.class,
                        tag: spec.tag,
                        device: DeviceId(d),
                        stream,
                        enqueued_at: self.now,
                        started_at: self.now,
                        ended_at: self.now,
                        failed: true,
                        collective: spec.collective,
                    });
                }
            }
            StreamOp::Record(_) | StreamOp::Wait(_) => {}
        }
    }

    /// Advances a hardware queue: completes records, resolves waits, begins
    /// kernels. Loops because records/waits complete instantly.
    fn poll_queue(&mut self, d: usize, q: usize) {
        if !self.devices[d].alive {
            // A dead device runs nothing. This matters mid-`device_down`: a
            // Record popped during the FIFO drain can fire an event a sibling
            // queue of the *same dead device* waits on, and the waiter poll
            // must not start a kernel there.
            return;
        }
        loop {
            if self.devices[d].queues[q].head != HeadState::Idle {
                return; // head already in flight
            }
            let Some(front) = self.devices[d].queues[q].front() else { return };
            let stream = front.stream;
            match &front.op {
                StreamOp::Record(ev) => {
                    let ev = *ev;
                    self.devices[d].queues[q].pop_op();
                    self.probe_mark(|p| {
                        p.devices.insert(d);
                        p.streams.insert((d, stream));
                        p.events.insert(ev.0);
                    });
                    if let Some(trace) = &mut self.trace {
                        trace.push_mark(TraceMark::Record {
                            event: ev.0,
                            device: DeviceId(d),
                            stream,
                            at: self.now,
                        });
                    }
                    self.trigger_event(ev);
                }
                StreamOp::Wait(ev) => {
                    let ev = *ev;
                    self.probe_mark(|p| {
                        p.devices.insert(d);
                        p.streams.insert((d, stream));
                        p.events.insert(ev.0);
                    });
                    if self.events[ev.0 as usize].fired_at.is_some() {
                        self.devices[d].queues[q].pop_op();
                        if let Some(trace) = &mut self.trace {
                            trace.push_mark(TraceMark::Wait {
                                event: ev.0,
                                device: DeviceId(d),
                                stream,
                                at: self.now,
                            });
                        }
                    } else {
                        self.devices[d].queues[q].head = HeadState::WaitingEvent;
                        self.events[ev.0 as usize].queue_waiters.push((d, q));
                        return;
                    }
                }
                StreamOp::Kernel(spec, _) => {
                    // Dispatch-lag model (left-over scheduling policy): a
                    // communication kernel that becomes ready while the
                    // device's queues are deeply backed up is delayed before
                    // it can begin, because firmware prioritizes compute.
                    if spec.class == KernelClass::Comm {
                        let lag = self.devices[d].comm_dispatch_lag(q);
                        if !lag.is_zero() {
                            let g = &mut self.devices[d].queues[q];
                            g.lag_gen += 1;
                            let gen = g.lag_gen;
                            g.head = HeadState::LagWait { gen };
                            let at = self.now + lag;
                            self.push(at, Pending::CommLagDone { device: d, queue: q, gen });
                            return;
                        }
                    }
                    self.begin_kernel(d, q);
                    return;
                }
            }
        }
    }

    fn comm_lag_done(&mut self, d: usize, q: usize, gen: u64) {
        match self.devices[d].queues[q].head {
            HeadState::LagWait { gen: g } if g == gen => {
                self.devices[d].queues[q].head = HeadState::Idle;
                self.begin_kernel(d, q);
            }
            _ => {} // stale
        }
    }

    /// Begins the kernel at the head of queue `q` (plain or collective).
    fn begin_kernel(&mut self, d: usize, q: usize) {
        let front = self.devices[d].queues[q].front().expect("begin_kernel on empty queue");
        let StreamOp::Kernel(spec, _kid) = &front.op else {
            panic!("begin_kernel on non-kernel head")
        };
        let class = spec.class;
        let blocks = spec.blocks;
        let work = spec.work.as_nanos() as f64;
        let collective = spec.collective;
        let (stream, tag) = (front.stream, spec.tag);
        self.probe_mark(|p| {
            p.devices.insert(d);
            p.streams.insert((d, stream));
            p.tags.insert(tag);
            if let Some(cid) = collective {
                p.events.insert(COLL_FOOTPRINT_BIT | cid.0);
            }
        });

        match collective {
            None => {
                self.settle_device(d);
                // Fault hook: a seeded failure shortens the kernel to a
                // fraction of its nominal work; it then "dies" (pops from
                // the queue with a failure notification) at that point.
                let failure = self.faults.kernel_failure(DeviceId(d), self.now);
                self.devices[d].begin_plain(q, self.now, failure);
                self.reprice_device(d);
            }
            Some(cid) => {
                let ci = cid.0 as usize;
                if self.collectives[ci].state == CollState::Aborted {
                    // A member arriving at an aborted rendezvous (a peer
                    // device died) fails immediately and pops, keeping the
                    // queue behind it draining.
                    let (kernel, class) = {
                        let head = self.devices[d].queues[q]
                            .front()
                            .expect("queue head vanished while joining an aborted collective");
                        let StreamOp::Kernel(spec, kid) = &head.op else {
                            unreachable!("begin_kernel checked the head is a kernel")
                        };
                        (*kid, spec.class)
                    };
                    self.finish_queue_head(d, q, kernel, class, self.now, true);
                    self.poll_queue(d, q);
                    return;
                }
                let coll = &mut self.collectives[ci];
                assert_eq!(
                    coll.state,
                    CollState::Gathering,
                    "kernel joined a non-gathering collective {cid}"
                );
                coll.members.push((d, q));
                if coll.work == 0.0 {
                    coll.work = work;
                    coll.remaining = work;
                }
                self.devices[d].queues[q].head = HeadState::WaitingPeers;
                if self.collectives[ci].members.len() == self.collectives[ci].size {
                    self.start_collective(ci, class, blocks);
                }
            }
        }
    }

    fn start_collective(&mut self, ci: usize, class: KernelClass, blocks: u32) {
        let members: Vec<(usize, usize)> = self.collectives[ci].members.clone();
        self.probe_mark(|p| {
            for &(d, _) in &members {
                p.devices.insert(d);
            }
        });
        for &(d, _q) in &members {
            self.settle_device(d);
        }
        for &(d, q) in &members {
            self.devices[d].queues[q].head = HeadState::Running { slot: usize::MAX };
            self.devices[d].active_colls.push(ci);
            let now = self.now;
            self.devices[d].apply_class_delta(now, class, blocks, 1);
        }
        let coll = &mut self.collectives[ci];
        coll.state = CollState::Running;
        coll.settled_at = self.now;
        coll.started_at = self.now;
        coll.gen += 1;
        for &(d, _) in &members {
            self.reprice_device(d);
        }
        // reprice_device re-prices collectives touching each device, which
        // includes this one; nothing more to do.
    }

    /// Charges elapsed progress (at current rates) to every plain kernel on
    /// `d` and every collective with a member on `d`.
    fn settle_device(&mut self, d: usize) {
        let now = self.now;
        self.devices[d].settle_plain(now);
        // Split borrow: take the active list out while settling.
        let active = std::mem::take(&mut self.devices[d].active_colls);
        for &ci in &active {
            let coll = &mut self.collectives[ci];
            if coll.state == CollState::Running {
                let elapsed = now.saturating_since(coll.settled_at).as_nanos() as f64;
                if elapsed > 0.0 {
                    coll.remaining = (coll.remaining - elapsed * coll.rate).max(0.0);
                    coll.settled_at = now;
                }
            }
        }
        self.devices[d].active_colls = active;
    }

    /// Recomputes rates and reschedules completions for everything running on
    /// `d` (and collectives touching `d`). Callers must have settled first.
    /// Plain-kernel completions land in device `d`'s lane, collective
    /// completions in the global lane.
    fn reprice_device(&mut self, d: usize) {
        let now = self.now;
        // Fault hook: an active straggler window scales every kernel on the
        // device down uniformly.
        let fault_factor = self.faults.device_factor(DeviceId(d), now);
        self.devices[d].reprice_plain(d, now, fault_factor, &mut self.device_lanes[d]);
        // Collectives: rate = min over member devices of local comm rate.
        let mut coll_updates: Vec<(usize, f64)> = Vec::new();
        for &ci in &self.devices[d].active_colls {
            let coll = &self.collectives[ci];
            if coll.state == CollState::Running {
                let mut rate = f64::INFINITY;
                for &(md, _) in &coll.members {
                    let dev = &self.devices[md];
                    let r = 1.0
                        / dev.slowdown(KernelClass::Comm)
                        / self.faults.device_factor(DeviceId(md), now);
                    rate = rate.min(r);
                }
                // Fault hook: a degraded/partitioned link between any pair of
                // members stretches the whole rendezvous.
                let link = self
                    .faults
                    .collective_link_factor(coll.members.iter().map(|(md, _)| DeviceId(*md)), now);
                coll_updates.push((ci, rate / link));
            }
        }
        for (ci, rate) in coll_updates {
            // Settle on the collective's own clock before changing its rate:
            // settle_device(d) already settled it if it touches d (it does).
            let coll = &mut self.collectives[ci];
            coll.rate = rate;
            coll.gen += 1;
            let gen = coll.gen;
            let dur = (coll.remaining / rate).ceil() as u64;
            self.push(
                now + SimDuration::from_nanos(dur),
                Pending::CollectiveDone { coll: ci, gen },
            );
        }
    }

    fn kernel_done(&mut self, d: usize, slot: usize, gen: u64) {
        {
            let s = &self.devices[d].run[slot];
            if !s.live || s.gen != gen {
                return; // stale completion
            }
        }
        self.settle_device(d);
        let now = self.now;
        let (queue, class, blocks, kernel, started_at, failed) = {
            let s = &self.devices[d].run[slot];
            debug_assert!(
                self.relaxed_time || s.remaining <= 1.0,
                "kernel completing with {} ns of work left",
                s.remaining
            );
            (s.queue, s.class, s.blocks, s.kernel, s.started_at, s.failing)
        };
        self.devices[d].run[slot].live = false;
        self.devices[d].free_slots.push(slot);
        self.devices[d].apply_class_delta(now, class, blocks, -1);
        self.finish_queue_head(d, queue, kernel, class, started_at, failed);
        self.reprice_device(d);
        self.poll_queue(d, queue);
    }

    fn collective_done(&mut self, ci: usize, gen: u64) {
        {
            let c = &self.collectives[ci];
            if c.state != CollState::Running || c.gen != gen {
                return; // stale
            }
        }
        let members = self.collectives[ci].members.clone();
        let started_at = self.collectives[ci].started_at;
        for &(d, _) in &members {
            self.settle_device(d);
        }
        self.collectives[ci].state = CollState::Done;
        for &(d, _) in &members {
            self.devices[d].active_colls.retain(|&c| c != ci);
        }
        for &(d, q) in &members {
            // Capture kernel identity from the queue head before popping.
            let (kernel, class, blocks) =
                match &self.devices[d].queues[q].front().expect("collective member queue empty").op
                {
                    StreamOp::Kernel(spec, kid) => (*kid, spec.class, spec.blocks),
                    _ => panic!("collective member head is not a kernel"),
                };
            let now = self.now;
            self.devices[d].apply_class_delta(now, class, blocks, -1);
            self.finish_queue_head(d, q, kernel, class, started_at, false);
        }
        for &(d, _) in &members {
            self.reprice_device(d);
        }
        for &(d, q) in &members {
            self.poll_queue(d, q);
        }
    }

    /// Pops the completed kernel off its queue, records trace/stat entries.
    ///
    /// A `failed` kernel drains from the queue exactly like a successful one
    /// (so stream FIFO order and dependent events are preserved) but is
    /// counted separately and surfaced to the driver as
    /// [`Wake::KernelFailed`]; recovery policy lives above the simulator.
    fn finish_queue_head(
        &mut self,
        d: usize,
        q: usize,
        kernel: KernelId,
        class: KernelClass,
        started_at: SimTime,
        failed: bool,
    ) {
        let now = self.now;
        let ev =
            self.devices[d].finish_head(DeviceId(d), q, kernel, class, started_at, failed, now);
        self.probe_mark(|p| {
            p.devices.insert(d);
            p.streams.insert((d, ev.stream));
            p.tags.insert(ev.tag);
        });
        self.kernels_completed += 1;
        if failed {
            self.kernels_failed += 1;
            self.wakes.push_back(Wake::KernelFailed {
                kernel,
                device: DeviceId(d),
                tag: ev.tag,
                at: now,
            });
        }
        if let Some(trace) = &mut self.trace {
            trace.push(ev);
        }
    }

    fn trigger_event(&mut self, ev: EventId) {
        let now = self.now;
        let e = &mut self.events[ev.0 as usize];
        if e.fired_at.is_some() {
            return; // idempotent
        }
        e.fired_at = Some(now);
        let queue_waiters = std::mem::take(&mut e.queue_waiters);
        let host_waiters = std::mem::take(&mut e.host_waiters);
        let callbacks = std::mem::take(&mut e.callbacks);
        let host_coupled = !host_waiters.is_empty() || !callbacks.is_empty();
        self.probe_mark(|p| {
            p.events.insert(ev.0);
            p.global |= host_coupled;
        });
        for (d, q) in queue_waiters {
            if self.devices[d].queues[q].head == HeadState::WaitingEvent {
                // Re-check: the head wait op must still reference this event.
                if let Some(&QueuedOp { op: StreamOp::Wait(w), stream, .. }) =
                    self.devices[d].queues[q].front()
                {
                    if w == ev {
                        self.devices[d].queues[q].pop_op();
                        self.devices[d].queues[q].head = HeadState::Idle;
                        self.probe_mark(|p| {
                            p.devices.insert(d);
                            p.streams.insert((d, stream));
                        });
                        if let Some(trace) = &mut self.trace {
                            trace.push_mark(TraceMark::Wait {
                                event: ev.0,
                                device: DeviceId(d),
                                stream,
                                at: now,
                            });
                        }
                        self.poll_queue(d, q);
                    }
                }
            }
        }
        for h in host_waiters {
            if self.hosts[h].state == HostState::Blocked {
                let spec = &self.hosts[h].spec;
                let at = now + spec.sync_latency + spec.wake_jitter;
                self.hosts[h].state = HostState::Busy;
                self.push(at, Pending::HostReady { host: h });
            }
        }
        for (token, lat_host) in callbacks {
            let latency = self.hosts[lat_host].spec.sync_latency;
            let at = now + latency;
            self.push(
                at,
                Pending::DriverWake { wake: Wake::EventFired { event: ev, token, fired_at: now } },
            );
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("devices", &self.devices.len())
            .field("hosts", &self.hosts.len())
            .field("pending_events", &self.pending_events())
            .field("kernels_launched", &self.kernels_launched)
            .field("kernels_completed", &self.kernels_completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::ContentionParams;
    use crate::faults::{KernelFaultParams, LaunchSpikeParams};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A scriptable driver: a start closure plus a wake log.
    struct Script<F: FnMut(&mut Simulation), G: FnMut(Wake, &mut Simulation)> {
        on_start: F,
        on_wake: G,
    }

    impl<F: FnMut(&mut Simulation), G: FnMut(Wake, &mut Simulation)> Driver for Script<F, G> {
        fn start(&mut self, sim: &mut Simulation) {
            (self.on_start)(sim);
        }
        fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
            (self.on_wake)(wake, sim);
        }
    }

    fn script<F: FnMut(&mut Simulation)>(f: F) -> Script<F, impl FnMut(Wake, &mut Simulation)> {
        Script { on_start: f, on_wake: |_, _| {} }
    }

    fn test_sim(devices: usize) -> Simulation {
        Simulation::builder()
            .devices(DeviceSpec::test_device(), devices)
            .streams_per_device(4)
            .capture_trace(true)
            .build()
            .map(|mut s| {
                // Instant hosts: timing assertions stay exact.
                for h in &mut s.hosts {
                    h.spec = HostSpec::instant();
                }
                s
            })
            .unwrap()
    }

    fn s(d: usize, i: usize) -> StreamId {
        StreamId::new(DeviceId(d), i)
    }

    #[test]
    fn single_kernel_runs_for_its_work() {
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(HostId(0), s(0, 0), KernelSpec::compute("a", SimDuration::from_micros(100)));
        });
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(100));
        assert_eq!(sim.kernels_completed(), 1);
        assert_eq!(sim.kernels_launched(), 1);
    }

    #[test]
    fn same_stream_kernels_serialize_fifo() {
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            for i in 0..3 {
                sim.launch(
                    HostId(0),
                    s(0, 0),
                    KernelSpec::compute(format!("k{i}"), SimDuration::from_micros(10)).with_tag(i),
                );
            }
        });
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(30));
        let trace = sim.take_trace().unwrap();
        let evs = trace.events();
        assert_eq!(evs.len(), 3);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.tag, i as u64, "completion order is FIFO");
            assert_eq!(e.started_at, SimTime::from_micros(10 * i as u64));
        }
    }

    #[test]
    fn streams_sharing_a_hardware_queue_serialize() {
        // connections = 2; streams 0 and 2 map to queue 0, stream 1 to queue 1.
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(
                HostId(0),
                s(0, 0),
                KernelSpec::compute("q0a", SimDuration::from_micros(100)).with_tag(0),
            );
            sim.launch(
                HostId(0),
                s(0, 2),
                KernelSpec::compute("q0b", SimDuration::from_micros(100)).with_tag(2),
            );
            sim.launch(
                HostId(0),
                s(0, 1),
                KernelSpec::compute("q1", SimDuration::from_micros(100)).with_tag(1),
            );
        });
        sim.run_to_completion(&mut drv);
        let trace = sim.take_trace().unwrap();
        let find = |tag: u64| trace.events().iter().find(|e| e.tag == tag).unwrap().clone();
        let (a, b, c) = (find(0), find(2), find(1));
        // a (stream0) and c (stream1) start together; equal-share slows both 2x.
        assert_eq!(a.started_at, SimTime::ZERO);
        assert_eq!(c.started_at, SimTime::ZERO);
        assert_eq!(a.ended_at, SimTime::from_micros(200));
        assert_eq!(c.ended_at, SimTime::from_micros(200));
        // b shares queue 0 with a: begins only after a completes.
        assert_eq!(b.started_at, SimTime::from_micros(200));
        assert_eq!(b.ended_at, SimTime::from_micros(300));
    }

    #[test]
    fn cross_class_overlap_runs_concurrently_when_frictionless() {
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(HostId(0), s(0, 0), KernelSpec::compute("c", SimDuration::from_micros(100)));
            sim.launch(HostId(0), s(0, 1), KernelSpec::comm("m", SimDuration::from_micros(80)));
        });
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(100), "full overlap: makespan = max");
        let trace = sim.take_trace().unwrap();
        assert_eq!(trace.overlap_time(DeviceId(0)), SimDuration::from_micros(80));
    }

    #[test]
    fn contention_stretches_overlapping_kernels() {
        // compute_vs_comm = 1.5 (insensitive to channels), comm_vs_compute = 2.0.
        let contention = ContentionParams {
            compute_vs_comm: 1.5,
            comm_vs_compute: 2.0,
            compute_self_penalty: 1.0,
            comm_self_penalty: 1.0,
            reference_channels: 2,
            channel_sensitivity: 0.0,
        };
        let dev = DeviceSpec::test_device().with_contention(contention);
        let mut sim = Simulation::builder()
            .device(dev)
            .host(HostSpec::instant())
            .capture_trace(true)
            .build()
            .unwrap();
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(
                HostId(0),
                s(0, 0),
                KernelSpec::compute("c", SimDuration::from_micros(100)).with_tag(1),
            );
            sim.launch(
                HostId(0),
                s(0, 1),
                KernelSpec::comm("m", SimDuration::from_micros(100)).with_tag(2),
            );
        });
        sim.run_to_completion(&mut drv);
        let trace = sim.take_trace().unwrap();
        let find = |tag: u64| trace.events().iter().find(|e| e.tag == tag).unwrap().clone();
        // Compute at rate 2/3 while comm runs; comm at rate 1/2 while compute runs.
        // Compute finishes first: 100us work / (2/3) = 150us.
        assert_eq!(find(1).ended_at, SimTime::from_micros(150));
        // Comm: 75us of work done by t=150 (rate 1/2), then full rate: +25us.
        assert_eq!(find(2).ended_at, SimTime::from_micros(175));
    }

    #[test]
    fn staggered_overlap_retimes_the_running_kernel() {
        let contention = ContentionParams {
            compute_vs_comm: 1.5,
            comm_vs_compute: 2.0,
            compute_self_penalty: 1.0,
            comm_self_penalty: 1.0,
            reference_channels: 2,
            channel_sensitivity: 0.0,
        };
        let dev = DeviceSpec::test_device().with_contention(contention);
        let mut sim = Simulation::builder()
            .device(dev)
            .host(HostSpec::instant())
            .capture_trace(true)
            .build()
            .unwrap();
        struct D;
        impl Driver for D {
            fn start(&mut self, sim: &mut Simulation) {
                sim.launch(
                    HostId(0),
                    s2(0, 0),
                    KernelSpec::compute("c", SimDuration::from_micros(100)).with_tag(1),
                );
                sim.set_timer(SimTime::from_micros(50), 1);
            }
            fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
                if matches!(wake, Wake::Timer { token: 1 }) {
                    sim.launch(
                        HostId(0),
                        s2(0, 1),
                        KernelSpec::comm("m", SimDuration::from_micros(100)).with_tag(2),
                    );
                }
            }
        }
        fn s2(d: usize, i: usize) -> StreamId {
            StreamId::new(DeviceId(d), i)
        }
        sim.run_to_completion(&mut D);
        let trace = sim.take_trace().unwrap();
        let find = |tag: u64| trace.events().iter().find(|e| e.tag == tag).unwrap().clone();
        // Compute: 50us solo (50 work left), then rate 2/3 => +75us => ends 125us.
        assert_eq!(find(1).ended_at, SimTime::from_micros(125));
        // Comm from 50: rate 1/2 for 75us => 37.5 done; then full rate for 62.5.
        assert_eq!(find(2).ended_at, SimTime::from_nanos(187_500));
    }

    #[test]
    fn stream_wait_event_gates_execution() {
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(
                HostId(0),
                s(0, 0),
                KernelSpec::compute("a", SimDuration::from_micros(100)).with_tag(1),
            );
            let ev = sim.record_event(HostId(0), s(0, 0));
            sim.stream_wait(HostId(0), s(0, 1), ev);
            sim.launch(
                HostId(0),
                s(0, 1),
                KernelSpec::compute("b", SimDuration::from_micros(10)).with_tag(2),
            );
        });
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(110));
        let trace = sim.take_trace().unwrap();
        let b = trace.events().iter().find(|e| e.tag == 2).unwrap();
        assert_eq!(b.started_at, SimTime::from_micros(100));
    }

    #[test]
    fn wait_on_already_fired_event_is_free() {
        let mut sim = test_sim(1);
        struct D;
        impl Driver for D {
            fn start(&mut self, sim: &mut Simulation) {
                let st = StreamId::new(DeviceId(0), 0);
                sim.launch(HostId(0), st, KernelSpec::compute("a", SimDuration::from_micros(10)));
                let ev = sim.record_event(HostId(0), st);
                sim.notify_on_event(ev, HostId(0), 7);
            }
            fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
                if let Wake::EventFired { event, token: 7, .. } = wake {
                    // Event already fired: the wait resolves instantly.
                    sim.stream_wait(HostId(0), StreamId::new(DeviceId(0), 1), event);
                    sim.launch(
                        HostId(0),
                        StreamId::new(DeviceId(0), 1),
                        KernelSpec::compute("b", SimDuration::from_micros(5)).with_tag(2),
                    );
                }
            }
        }
        sim.run_to_completion(&mut D);
        let trace = sim.take_trace().unwrap();
        let b = trace.events().iter().find(|e| e.tag == 2).unwrap();
        assert_eq!(b.started_at, SimTime::from_micros(10), "no extra delay past the callback");
    }

    #[test]
    fn host_launch_overhead_delays_enqueue() {
        let host = HostSpec::instant().with_launch_overhead(SimDuration::from_micros(5));
        let mut sim = Simulation::builder()
            .device(DeviceSpec::test_device())
            .host(host)
            .capture_trace(true)
            .build()
            .unwrap();
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(
                HostId(0),
                s(0, 0),
                KernelSpec::compute("a", SimDuration::from_micros(10)).with_tag(1),
            );
            sim.launch(
                HostId(0),
                s(0, 0),
                KernelSpec::compute("b", SimDuration::from_micros(10)).with_tag(2),
            );
        });
        let end = sim.run_to_completion(&mut drv);
        let trace = sim.take_trace().unwrap();
        let find = |tag: u64| trace.events().iter().find(|e| e.tag == tag).unwrap().clone();
        assert_eq!(find(1).started_at, SimTime::from_micros(5), "first launch pays 5us");
        assert_eq!(find(1).ended_at, SimTime::from_micros(15));
        // Second kernel enqueued at 10us, runs after the first.
        assert_eq!(find(2).enqueued_at, SimTime::from_micros(10));
        assert_eq!(find(2).started_at, SimTime::from_micros(15));
        assert_eq!(end, SimTime::from_micros(25));
    }

    #[test]
    fn host_sync_wakes_with_jitter() {
        let host = HostSpec {
            launch_overhead: SimDuration::ZERO,
            event_overhead: SimDuration::ZERO,
            sync_latency: SimDuration::from_micros(2),
            wake_jitter: SimDuration::from_micros(3),
        };
        let mut sim =
            Simulation::builder().device(DeviceSpec::test_device()).host(host).build().unwrap();
        let log: Rc<RefCell<Vec<(Wake, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        let mut drv = Script {
            on_start: |sim: &mut Simulation| {
                let st = StreamId::new(DeviceId(0), 0);
                sim.launch(HostId(0), st, KernelSpec::compute("a", SimDuration::from_micros(10)));
                let ev = sim.record_event(HostId(0), st);
                sim.host_sync(HostId(0), ev, 9);
            },
            on_wake: move |w: Wake, sim: &mut Simulation| {
                log2.borrow_mut().push((w, sim.now()));
            },
        };
        sim.run_to_completion(&mut drv);
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        let (wake, at) = log[0];
        match wake {
            Wake::HostSynced { host, token, fired_at, .. } => {
                assert_eq!(host, HostId(0));
                assert_eq!(token, 9);
                assert_eq!(fired_at, SimTime::from_micros(10), "GPU-side trigger time is exact");
            }
            w => panic!("unexpected wake {w:?}"),
        }
        assert_eq!(at, SimTime::from_micros(15), "wake delayed by sync latency + jitter");
    }

    #[test]
    fn notify_on_event_reports_fired_at() {
        let host = HostSpec { sync_latency: SimDuration::from_micros(2), ..HostSpec::instant() };
        let mut sim =
            Simulation::builder().device(DeviceSpec::test_device()).host(host).build().unwrap();
        let log: Rc<RefCell<Vec<(Wake, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        let mut drv = Script {
            on_start: |sim: &mut Simulation| {
                let st = StreamId::new(DeviceId(0), 0);
                sim.launch(HostId(0), st, KernelSpec::compute("a", SimDuration::from_micros(10)));
                let ev = sim.record_event(HostId(0), st);
                sim.notify_on_event(ev, HostId(0), 4);
            },
            on_wake: move |w: Wake, sim: &mut Simulation| {
                log2.borrow_mut().push((w, sim.now()));
            },
        };
        sim.run_to_completion(&mut drv);
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        match log[0] {
            (Wake::EventFired { token: 4, fired_at, .. }, at) => {
                assert_eq!(fired_at, SimTime::from_micros(10));
                assert_eq!(at, SimTime::from_micros(12));
            }
            ref w => panic!("unexpected wake {w:?}"),
        }
    }

    #[test]
    fn collective_waits_for_all_ranks_and_completes_simultaneously() {
        let mut sim = test_sim(2);
        struct D;
        impl Driver for D {
            fn start(&mut self, sim: &mut Simulation) {
                let c = sim.new_collective(2);
                sim.launch(
                    HostId(0),
                    StreamId::new(DeviceId(0), 1),
                    KernelSpec::comm("ar", SimDuration::from_micros(50))
                        .with_collective(c)
                        .with_tag(0),
                );
                // Rank 1 arrives 30us late.
                sim.set_timer(SimTime::from_micros(30), 100 + c.0);
            }
            fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
                if let Wake::Timer { token } = wake {
                    let c = CollectiveId(token - 100);
                    sim.launch(
                        HostId(1),
                        StreamId::new(DeviceId(1), 1),
                        KernelSpec::comm("ar", SimDuration::from_micros(50))
                            .with_collective(c)
                            .with_tag(1),
                    );
                }
            }
        }
        let end = sim.run_to_completion(&mut D);
        assert_eq!(end, SimTime::from_micros(80), "starts at the latest rank (30us) + 50us");
        let trace = sim.take_trace().unwrap();
        for e in trace.events() {
            assert_eq!(e.started_at, SimTime::from_micros(30));
            assert_eq!(e.ended_at, SimTime::from_micros(80));
        }
    }

    #[test]
    fn collective_rate_is_min_over_member_devices() {
        // Device 0 also runs a compute kernel; comm there is slowed 2x.
        let contention = ContentionParams {
            compute_vs_comm: 1.0,
            comm_vs_compute: 2.0,
            compute_self_penalty: 1.0,
            comm_self_penalty: 1.0,
            reference_channels: 2,
            channel_sensitivity: 0.0,
        };
        let dev = DeviceSpec::test_device().with_contention(contention);
        let mut sim = Simulation::builder()
            .devices(dev, 2)
            .host(HostSpec::instant())
            .host(HostSpec::instant())
            .capture_trace(true)
            .build()
            .unwrap();
        let mut drv = script(|sim: &mut Simulation| {
            // Long compute on device 0 keeps the collective slowed throughout.
            sim.launch(
                HostId(0),
                s(0, 0),
                KernelSpec::compute("c", SimDuration::from_micros(500)).with_tag(9),
            );
            let c = sim.new_collective(2);
            for d in 0..2 {
                sim.launch(
                    HostId(d),
                    s(d, 1),
                    KernelSpec::comm("ar", SimDuration::from_micros(50)).with_collective(c),
                );
            }
        });
        sim.run_to_completion(&mut drv);
        let trace = sim.take_trace().unwrap();
        let ar: Vec<_> = trace.events().iter().filter(|e| e.class == KernelClass::Comm).collect();
        assert_eq!(ar.len(), 2);
        for e in &ar {
            assert_eq!(e.started_at, SimTime::ZERO);
            // min rate = 1/2 (device 0's comm_vs_compute) => 100us wall.
            assert_eq!(e.ended_at, SimTime::from_micros(100));
        }
    }

    #[test]
    fn comm_dispatch_lag_under_backlog() {
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            for i in 0..30 {
                sim.launch(
                    HostId(0),
                    s(0, 0),
                    KernelSpec::compute(format!("c{i}"), SimDuration::from_micros(100)),
                );
            }
            sim.launch(
                HostId(0),
                s(0, 1),
                KernelSpec::comm("m", SimDuration::from_micros(10)).with_tag(77),
            );
        });
        sim.run_to_completion(&mut drv);
        let trace = sim.take_trace().unwrap();
        let m = trace.events().iter().find(|e| e.tag == 77).unwrap();
        // foreign backlog = 30 compute ops - 24 free = 6 * 400ns = 2.4us lag.
        assert_eq!(m.started_at, SimTime::from_nanos(2_400));
    }

    #[test]
    fn comm_starts_immediately_without_backlog() {
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(HostId(0), s(0, 0), KernelSpec::compute("c", SimDuration::from_micros(100)));
            sim.launch(
                HostId(0),
                s(0, 1),
                KernelSpec::comm("m", SimDuration::from_micros(10)).with_tag(77),
            );
        });
        sim.run_to_completion(&mut drv);
        let trace = sim.take_trace().unwrap();
        let m = trace.events().iter().find(|e| e.tag == 77).unwrap();
        assert_eq!(m.started_at, SimTime::ZERO);
    }

    #[test]
    fn deadline_stops_the_clock() {
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(HostId(0), s(0, 0), KernelSpec::compute("c", SimDuration::from_micros(100)));
        });
        let end = sim.run(&mut drv, SimTime::from_micros(50));
        assert_eq!(end, SimTime::from_micros(50));
        assert_eq!(sim.kernels_completed(), 0);
    }

    #[test]
    fn request_stop_halts_immediately() {
        let mut sim = test_sim(1);
        struct D;
        impl Driver for D {
            fn start(&mut self, sim: &mut Simulation) {
                sim.set_timer(SimTime::from_micros(10), 0);
                sim.set_timer(SimTime::from_micros(20), 1);
            }
            fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
                if matches!(wake, Wake::Timer { token: 0 }) {
                    sim.request_stop();
                }
            }
        }
        let end = sim.run_to_completion(&mut D);
        assert_eq!(end, SimTime::from_micros(10));
    }

    #[test]
    fn stats_account_busy_time_and_ratio() {
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(HostId(0), s(0, 0), KernelSpec::compute("c", SimDuration::from_micros(100)));
            let ev = sim.record_event(HostId(0), s(0, 0));
            sim.stream_wait(HostId(0), s(0, 1), ev);
            sim.launch(HostId(0), s(0, 1), KernelSpec::comm("m", SimDuration::from_micros(50)));
        });
        sim.run_to_completion(&mut drv);
        let st = sim.device_stats(DeviceId(0));
        assert_eq!(st.busy_compute, SimDuration::from_micros(100));
        assert_eq!(st.busy_comm, SimDuration::from_micros(50));
        assert_eq!(st.busy_overlap, SimDuration::ZERO);
        assert!((st.comm_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(st.kernels_total(), 2);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut sim = test_sim(2);
            let mut drv = script(|sim: &mut Simulation| {
                for d in 0..2 {
                    for i in 0..5u64 {
                        sim.launch(
                            HostId(d),
                            s(d, (i % 2) as usize),
                            KernelSpec::compute(
                                format!("k{d}{i}"),
                                SimDuration::from_micros(10 + i),
                            )
                            .with_tag(i),
                        );
                    }
                }
                let c = sim.new_collective(2);
                for d in 0..2 {
                    sim.launch(
                        HostId(d),
                        s(d, 1),
                        KernelSpec::comm("ar", SimDuration::from_micros(30)).with_collective(c),
                    );
                }
            });
            sim.run_to_completion(&mut drv);
            let t = sim.take_trace().unwrap();
            t.events()
                .iter()
                .map(|e| (e.name.to_string(), e.device, e.started_at, e.ended_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn event_fired_query() {
        let mut sim = test_sim(1);
        struct D {
            ev: Option<EventId>,
        }
        impl Driver for D {
            fn start(&mut self, sim: &mut Simulation) {
                let st = StreamId::new(DeviceId(0), 0);
                sim.launch(HostId(0), st, KernelSpec::compute("a", SimDuration::from_micros(10)));
                self.ev = Some(sim.record_event(HostId(0), st));
            }
            fn on_wake(&mut self, _: Wake, _: &mut Simulation) {}
        }
        let mut d = D { ev: None };
        sim.run_to_completion(&mut d);
        assert_eq!(sim.event_fired(d.ev.unwrap()), Some(SimTime::from_micros(10)));
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn launch_to_unknown_device_panics() {
        let mut sim = test_sim(1);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(HostId(0), s(5, 0), KernelSpec::compute("a", SimDuration::from_micros(1)));
        });
        sim.run_to_completion(&mut drv);
    }

    #[test]
    fn builder_rejects_empty_node() {
        assert!(Simulation::builder().build().is_err());
    }

    fn faulty_sim(devices: usize, faults: FaultSpec) -> Simulation {
        Simulation::builder()
            .devices(DeviceSpec::test_device(), devices)
            .streams_per_device(4)
            .capture_trace(true)
            .faults(faults)
            .build()
            .map(|mut s| {
                for h in &mut s.hosts {
                    h.spec = HostSpec::instant();
                }
                s
            })
            .unwrap()
    }

    #[test]
    fn straggler_window_stretches_kernel_piecewise() {
        // Device 0 runs at half speed over [0, 50us); a 100us kernel does
        // 25us-equivalent of work in the window, then finishes the remaining
        // 75us at full rate once the boundary reprices it: ends at 125us.
        let faults =
            FaultSpec::new(7).straggler(DeviceId(0), SimTime::ZERO, SimTime::from_micros(50), 2.0);
        let mut sim = faulty_sim(1, faults);
        assert_eq!(sim.device_fault_factor(DeviceId(0)), 2.0);
        assert_eq!(sim.worst_fault_factor(), 2.0);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(HostId(0), s(0, 0), KernelSpec::compute("a", SimDuration::from_micros(100)));
        });
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(125));
        assert_eq!(sim.kernels_failed(), 0);
        assert_eq!(sim.device_fault_factor(DeviceId(0)), 1.0, "window over");
    }

    #[test]
    fn link_degrade_stretches_collective() {
        let faults = FaultSpec::new(7).degrade_link(
            DeviceId(0),
            DeviceId(1),
            SimTime::ZERO,
            SimTime::from_millis(10),
            2.0,
        );
        let mut sim = faulty_sim(2, faults);
        let mut drv = script(|sim: &mut Simulation| {
            let c = sim.new_collective(2);
            for d in 0..2 {
                sim.launch(
                    HostId(d),
                    s(d, 1),
                    KernelSpec::comm("ar", SimDuration::from_micros(50)).with_collective(c),
                );
            }
        });
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(100), "degraded link halves the collective rate");
    }

    #[test]
    fn failed_kernels_drain_fifo_and_wake_the_driver() {
        // Certain failure at half runtime: both kernels die but still pop
        // from the queue in launch order, and the driver hears about each.
        let faults = FaultSpec::new(7).kernel_failures(KernelFaultParams {
            prob: 1.0,
            fraction: 0.5,
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        let mut sim = faulty_sim(1, faults);
        let failures: Rc<RefCell<Vec<(u64, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        let log = failures.clone();
        let mut drv = Script {
            on_start: |sim: &mut Simulation| {
                for i in 0..2u64 {
                    sim.launch(
                        HostId(0),
                        s(0, 0),
                        KernelSpec::compute("k", SimDuration::from_micros(100)).with_tag(i),
                    );
                }
            },
            on_wake: move |wake: Wake, _: &mut Simulation| {
                if let Wake::KernelFailed { tag, at, .. } = wake {
                    log.borrow_mut().push((tag, at));
                }
            },
        };
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(100), "each attempt dies after 50us");
        assert_eq!(sim.kernels_completed(), 2, "failed kernels still drain");
        assert_eq!(sim.kernels_failed(), 2);
        assert_eq!(
            *failures.borrow(),
            vec![(0, SimTime::from_micros(50)), (1, SimTime::from_micros(100))],
            "failures surface in FIFO completion order"
        );
        let trace = sim.take_trace().unwrap();
        assert!(trace.events().iter().all(|e| e.failed));
    }

    #[test]
    fn launch_spike_delays_the_kernel() {
        let faults = FaultSpec::new(7).launch_spikes(LaunchSpikeParams {
            prob: 1.0,
            extra: SimDuration::from_micros(40),
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        let mut sim = faulty_sim(1, faults);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(HostId(0), s(0, 0), KernelSpec::compute("a", SimDuration::from_micros(10)));
        });
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(50), "40us spike + 10us kernel");
    }

    #[test]
    fn same_seed_fault_runs_are_identical() {
        let run = || {
            let faults = FaultSpec::new(42)
                .straggler(DeviceId(0), SimTime::from_micros(20), SimTime::from_micros(90), 3.0)
                .kernel_failures(KernelFaultParams {
                    prob: 0.4,
                    fraction: 0.5,
                    from: SimTime::ZERO,
                    until: SimTime::MAX,
                });
            let mut sim = faulty_sim(2, faults);
            let mut drv = script(|sim: &mut Simulation| {
                for d in 0..2 {
                    for i in 0..6u64 {
                        sim.launch(
                            HostId(d),
                            s(d, (i % 3) as usize),
                            KernelSpec::compute(format!("k{d}{i}"), SimDuration::from_micros(15))
                                .with_tag(i),
                        );
                    }
                }
            });
            sim.run_to_completion(&mut drv);
            sim.take_trace().unwrap().to_chrome_json()
        };
        assert_eq!(run(), run(), "same seed, byte-identical chrome traces");
    }

    #[test]
    fn device_down_fails_running_and_queued_kernels_in_fifo_order() {
        let faults = FaultSpec::new(1).device_down(DeviceId(0), SimTime::from_micros(50));
        let mut sim = faulty_sim(1, faults);
        let wakes: Rc<RefCell<Vec<(String, u64, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        let log = wakes.clone();
        let mut drv = Script {
            on_start: |sim: &mut Simulation| {
                for i in 0..3u64 {
                    sim.launch(
                        HostId(0),
                        s(0, 0),
                        KernelSpec::compute("k", SimDuration::from_micros(100)).with_tag(i),
                    );
                }
            },
            on_wake: move |wake: Wake, _: &mut Simulation| match wake {
                Wake::KernelFailed { tag, at, .. } => {
                    log.borrow_mut().push(("fail".into(), tag, at));
                }
                Wake::DeviceDown { device, at } => {
                    log.borrow_mut().push(("down".into(), device.0 as u64, at));
                }
                _ => {}
            },
        };
        let end = sim.run_to_completion(&mut drv);
        let t50 = SimTime::from_micros(50);
        assert_eq!(end, t50, "nothing outlives the death instant");
        assert!(!sim.device_alive(DeviceId(0)));
        assert!(sim.alive_devices().is_empty());
        assert_eq!(sim.kernels_completed(), 3, "dead kernels still drain");
        assert_eq!(sim.kernels_failed(), 3);
        assert_eq!(
            *wakes.borrow(),
            vec![
                ("fail".into(), 0, t50),
                ("fail".into(), 1, t50),
                ("fail".into(), 2, t50),
                ("down".into(), 0, t50),
            ],
            "kernel losses surface in FIFO order before the DeviceDown wake"
        );
        let trace = sim.take_trace().unwrap();
        assert!(trace.events().iter().all(|e| e.failed));
    }

    #[test]
    fn death_drain_does_not_start_kernels_on_sibling_queues() {
        // Queue 0 of the dying device holds a running kernel and then a
        // Record; queue 1 waits on that event with a kernel behind the wait.
        // When the drain pops the Record, the triggered event satisfies the
        // sibling queue's wait — but the sibling must NOT begin its kernel on
        // the now-dead device (its completion would fire against a drained
        // queue). Everything fails at the death instant instead.
        let faults = FaultSpec::new(1).device_down(DeviceId(0), SimTime::from_micros(50));
        let mut sim = faulty_sim(1, faults);
        let mut drv = script(|sim: &mut Simulation| {
            sim.launch(
                HostId(0),
                s(0, 0),
                KernelSpec::compute("a", SimDuration::from_micros(100)).with_tag(1),
            );
            let ev = sim.record_event(HostId(0), s(0, 0));
            sim.stream_wait(HostId(0), s(0, 1), ev);
            sim.launch(
                HostId(0),
                s(0, 1),
                KernelSpec::compute("b", SimDuration::from_micros(10)).with_tag(2),
            );
        });
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(50), "nothing outlives the death instant");
        assert_eq!(sim.kernels_failed(), 2, "both kernels fail; neither runs past death");
        assert_eq!(sim.kernels_completed(), 2);
        let trace = sim.take_trace().unwrap();
        assert!(trace.events().iter().all(|e| e.failed));
    }

    #[test]
    fn device_down_aborts_collectives_and_survivor_queues_drain() {
        let faults = FaultSpec::new(1).device_down(DeviceId(1), SimTime::from_micros(25));
        let mut sim = faulty_sim(2, faults);
        let mut drv = script(|sim: &mut Simulation| {
            let c = sim.new_collective(2);
            for d in 0..2 {
                sim.launch(
                    HostId(d),
                    s(d, 1),
                    KernelSpec::comm("ar", SimDuration::from_micros(50))
                        .with_collective(c)
                        .with_tag(d as u64),
                );
            }
            // Queued behind the doomed collective on the survivor.
            sim.launch(
                HostId(0),
                s(0, 1),
                KernelSpec::compute("after", SimDuration::from_micros(10)).with_tag(9),
            );
        });
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(
            end,
            SimTime::from_micros(35),
            "survivor drains past the aborted rendezvous and runs the next kernel"
        );
        assert_eq!(sim.kernels_failed(), 2, "both collective members fail");
        let trace = sim.take_trace().unwrap();
        let after = trace.events().iter().find(|e| e.tag == 9).unwrap();
        assert!(!after.failed);
        assert_eq!(after.started_at, SimTime::from_micros(25));
    }

    #[test]
    fn post_death_launches_fail_instantly_and_records_never_fire() {
        let faults = FaultSpec::new(1).device_down(DeviceId(0), SimTime::from_micros(10));
        let mut sim = faulty_sim(1, faults);
        let fired: Rc<RefCell<Vec<Wake>>> = Rc::new(RefCell::new(Vec::new()));
        let log = fired.clone();
        let probe: Rc<RefCell<Option<EventId>>> = Rc::new(RefCell::new(None));
        let probe2 = probe.clone();
        let mut drv = Script {
            on_start: |sim: &mut Simulation| {
                sim.set_timer(SimTime::from_micros(20), 1);
            },
            on_wake: move |wake: Wake, sim: &mut Simulation| match wake {
                Wake::Timer { token: 1 } => {
                    sim.launch(
                        HostId(0),
                        s(0, 0),
                        KernelSpec::compute("late", SimDuration::from_micros(5)).with_tag(7),
                    );
                    let ev = sim.record_event(HostId(0), s(0, 0));
                    sim.notify_on_event(ev, HostId(0), 99);
                    *probe2.borrow_mut() = Some(ev);
                }
                w => log.borrow_mut().push(w),
            },
        };
        sim.run_to_completion(&mut drv);
        let ev = probe.borrow().unwrap();
        assert_eq!(sim.event_fired(ev), None, "post-death records never fire");
        let wakes = fired.borrow();
        assert_eq!(wakes.len(), 2, "kernel failure + device-down only: {wakes:?}");
        assert!(matches!(wakes[0], Wake::DeviceDown { device: DeviceId(0), .. }));
        assert!(
            matches!(wakes[1], Wake::KernelFailed { tag: 7, .. }),
            "a launch to a dead device fails instantly"
        );
        assert_eq!(sim.kernels_failed(), 1);
    }

    #[test]
    fn gathering_collective_aborts_when_the_dead_member_arrives() {
        // The survivor gathers first; the dead device's member kernel is
        // launched only after the death, so the rendezvous can never fill —
        // it aborts when that launch reaches the dead device.
        let faults = FaultSpec::new(1).device_down(DeviceId(1), SimTime::from_micros(5));
        let mut sim = faulty_sim(2, faults);
        let coll: Rc<RefCell<Option<CollectiveId>>> = Rc::new(RefCell::new(None));
        let coll2 = coll.clone();
        let mut drv = Script {
            on_start: move |sim: &mut Simulation| {
                let c = sim.new_collective(2);
                *coll2.borrow_mut() = Some(c);
                sim.launch(
                    HostId(0),
                    s(0, 1),
                    KernelSpec::comm("ar", SimDuration::from_micros(50))
                        .with_collective(c)
                        .with_tag(0),
                );
                sim.launch(
                    HostId(0),
                    s(0, 1),
                    KernelSpec::compute("after", SimDuration::from_micros(10)).with_tag(9),
                );
                sim.set_timer(SimTime::from_micros(12), 1);
            },
            on_wake: move |wake: Wake, sim: &mut Simulation| {
                if let Wake::Timer { token: 1 } = wake {
                    let c = coll.borrow().unwrap();
                    sim.launch(
                        HostId(1),
                        s(1, 1),
                        KernelSpec::comm("ar", SimDuration::from_micros(50))
                            .with_collective(c)
                            .with_tag(1),
                    );
                }
            },
        };
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(22), "abort at 12us + 10us trailing kernel");
        assert_eq!(sim.kernels_failed(), 2, "both members of the doomed rendezvous fail");
        let trace = sim.take_trace().unwrap();
        assert!(!trace.events().iter().find(|e| e.tag == 9).unwrap().failed);
    }

    #[test]
    fn same_seed_device_down_runs_are_identical() {
        let run = || {
            let faults = FaultSpec::new(42)
                .straggler(DeviceId(0), SimTime::from_micros(20), SimTime::from_micros(90), 3.0)
                .device_down(DeviceId(1), SimTime::from_micros(40));
            let mut sim = faulty_sim(2, faults);
            let mut drv = script(|sim: &mut Simulation| {
                for d in 0..2 {
                    for i in 0..6u64 {
                        sim.launch(
                            HostId(d),
                            s(d, (i % 3) as usize),
                            KernelSpec::compute(format!("k{d}{i}"), SimDuration::from_micros(15))
                                .with_tag(i),
                        );
                    }
                }
            });
            sim.run_to_completion(&mut drv);
            sim.take_trace().unwrap().to_chrome_json()
        };
        assert_eq!(run(), run(), "same seed + device loss, byte-identical chrome traces");
    }

    #[test]
    fn windowed_outage_rejoins_and_executes_new_work() {
        // Device 0 is down over [50us, 80us): the 100us kernel launched at
        // start dies at 50, the driver hears the rejoin at 80 and submits a
        // fresh kernel, which runs to completion on the recovered device.
        let faults = FaultSpec::new(1).device_outage(
            DeviceId(0),
            SimTime::from_micros(50),
            SimTime::from_micros(80),
        );
        let mut sim = faulty_sim(1, faults);
        let wakes: Rc<RefCell<Vec<(String, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        let log = wakes.clone();
        let mut drv = Script {
            on_start: |sim: &mut Simulation| {
                sim.launch(
                    HostId(0),
                    s(0, 0),
                    KernelSpec::compute("pre", SimDuration::from_micros(100)).with_tag(1),
                );
            },
            on_wake: move |wake: Wake, sim: &mut Simulation| match wake {
                Wake::KernelFailed { tag, at, .. } => {
                    log.borrow_mut().push((format!("fail{tag}"), at));
                }
                Wake::DeviceDown { at, .. } => log.borrow_mut().push(("down".into(), at)),
                Wake::DeviceRejoined { device, at } => {
                    log.borrow_mut().push(("rejoin".into(), at));
                    assert!(sim.device_alive(device), "alive again by wake delivery");
                    sim.launch(
                        HostId(0),
                        s(0, 0),
                        KernelSpec::compute("post", SimDuration::from_micros(10)).with_tag(2),
                    );
                }
                _ => {}
            },
        };
        let end = sim.run_to_completion(&mut drv);
        assert_eq!(end, SimTime::from_micros(90), "rejoin at 80us + 10us kernel");
        assert!(sim.device_alive(DeviceId(0)));
        assert_eq!(sim.alive_devices(), vec![DeviceId(0)]);
        assert_eq!(sim.kernels_failed(), 1, "only the pre-outage kernel dies");
        assert_eq!(
            *wakes.borrow(),
            vec![
                ("fail1".into(), SimTime::from_micros(50)),
                ("down".into(), SimTime::from_micros(50)),
                ("rejoin".into(), SimTime::from_micros(80)),
            ]
        );
        let trace = sim.take_trace().unwrap();
        assert!(trace.events().iter().find(|e| e.tag == 1).unwrap().failed);
        assert!(!trace.events().iter().find(|e| e.tag == 2).unwrap().failed);
    }

    #[test]
    fn flapping_device_delivers_one_wake_pair_per_window() {
        let faults = FaultSpec::new(1)
            .device_outage(DeviceId(0), SimTime::from_micros(10), SimTime::from_micros(20))
            .device_outage(DeviceId(0), SimTime::from_micros(30), SimTime::from_micros(40));
        let mut sim = faulty_sim(1, faults);
        let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        let mut drv = Script {
            on_start: |_: &mut Simulation| {},
            on_wake: move |wake: Wake, _: &mut Simulation| match wake {
                Wake::DeviceDown { at, .. } => log2.borrow_mut().push(format!("down@{at}")),
                Wake::DeviceRejoined { at, .. } => log2.borrow_mut().push(format!("up@{at}")),
                _ => {}
            },
        };
        sim.run_to_completion(&mut drv);
        assert!(sim.device_alive(DeviceId(0)), "alive after the last window closes");
        assert_eq!(*log.borrow(), vec!["down@0.010ms", "up@0.020ms", "down@0.030ms", "up@0.040ms"]);
    }

    #[test]
    fn same_seed_windowed_outage_runs_are_identical() {
        let run = || {
            let faults = FaultSpec::new(42)
                .device_outage(DeviceId(1), SimTime::from_micros(30), SimTime::from_micros(70))
                .kernel_failures(KernelFaultParams {
                    prob: 0.2,
                    fraction: 0.5,
                    from: SimTime::ZERO,
                    until: SimTime::MAX,
                });
            let mut sim = faulty_sim(2, faults);
            let mut drv = script(|sim: &mut Simulation| {
                for d in 0..2 {
                    for i in 0..6u64 {
                        sim.launch(
                            HostId(d),
                            s(d, (i % 3) as usize),
                            KernelSpec::compute(format!("k{d}{i}"), SimDuration::from_micros(15))
                                .with_tag(i),
                        );
                    }
                }
            });
            sim.run_to_completion(&mut drv);
            sim.take_trace().unwrap().to_chrome_json()
        };
        assert_eq!(run(), run(), "same seed + outage window, byte-identical chrome traces");
    }
}
