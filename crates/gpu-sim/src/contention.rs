//! Hardware resource contention model.
//!
//! The paper (§2.3.2, citing Rashidi et al., ISCA'21) identifies two sources
//! of interference between concurrently executing kernels: compute units
//! (communication kernels also run CUDA blocks for reduction and network
//! driving) and memory bandwidth (both classes read/write HBM). The
//! simulator models this as *rate sharing*: every running kernel progresses
//! through its nominal work at a rate ≤ 1, where the rate depends on what
//! else is running on the same device. Whenever the running set changes, the
//! remaining work of every affected kernel is re-priced and its completion
//! re-scheduled.
//!
//! The model is deliberately behavioral rather than microarchitectural: it
//! reproduces the phenomena Liger's scheduler must handle — slow kernels
//! when compute and communication overlap, severe degradation when two
//! compute kernels overlap (a *scheduling failure* in the paper's terms) —
//! with a handful of parameters that play the role of the paper's profiled
//! contention factors.

use crate::kernel::KernelClass;

/// Per-device contention parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionParams {
    /// Slowdown applied to a *compute* kernel while ≥1 communication kernel
    /// runs concurrently on the same device, at the reference channel count
    /// ([`ContentionParams::reference_channels`]). ≥ 1.0.
    pub compute_vs_comm: f64,
    /// Slowdown applied to a *communication* kernel while ≥1 compute kernel
    /// runs concurrently on the same device. ≥ 1.0.
    pub comm_vs_compute: f64,
    /// Extra multiplicative penalty (on top of equal SM sharing) when `n ≥ 2`
    /// compute kernels overlap. Equal sharing already contributes a factor
    /// of `n`; this models cache thrash and occupancy loss beyond that.
    pub compute_self_penalty: f64,
    /// Extra multiplicative penalty (on top of bandwidth sharing) when `n ≥ 2`
    /// communication kernels overlap on the same device.
    pub comm_self_penalty: f64,
    /// Channel count at which `compute_vs_comm` was profiled. A communication
    /// kernel running with more channels steals proportionally more SMs from
    /// concurrent compute; fewer channels steal less. This is the knob behind
    /// the paper's `NCCL_MAX_NCHANNELS` mitigation (§3.5).
    pub reference_channels: u32,
    /// Fraction of the compute-vs-comm slowdown that scales with the channel
    /// count (the rest is memory-bandwidth interference and does not).
    pub channel_sensitivity: f64,
}

impl Default for ContentionParams {
    fn default() -> Self {
        // Mid-range defaults between the paper's V100 (1.10) and A100 (1.15)
        // contention factors.
        ContentionParams {
            compute_vs_comm: 1.12,
            comm_vs_compute: 1.18,
            compute_self_penalty: 1.15,
            comm_self_penalty: 1.05,
            reference_channels: 2,
            channel_sensitivity: 0.6,
        }
    }
}

impl ContentionParams {
    /// A frictionless model: overlapping kernels never slow each other down
    /// (same-class sharing still applies). Useful for unit tests and the
    /// contention ablation.
    pub fn frictionless() -> Self {
        ContentionParams {
            compute_vs_comm: 1.0,
            comm_vs_compute: 1.0,
            compute_self_penalty: 1.0,
            comm_self_penalty: 1.0,
            reference_channels: 2,
            channel_sensitivity: 0.0,
        }
    }

    /// Validates parameter ranges, returning a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(&str, f64); 4] = [
            ("compute_vs_comm", self.compute_vs_comm),
            ("comm_vs_compute", self.comm_vs_compute),
            ("compute_self_penalty", self.compute_self_penalty),
            ("comm_self_penalty", self.comm_self_penalty),
        ];
        for (name, v) in checks {
            if !v.is_finite() || v < 1.0 {
                return Err(format!(
                    "contention parameter {name} must be finite and >= 1.0, got {v}"
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.channel_sensitivity) {
            return Err(format!(
                "channel_sensitivity must be in [0,1], got {}",
                self.channel_sensitivity
            ));
        }
        if self.reference_channels == 0 {
            return Err("reference_channels must be >= 1".to_string());
        }
        Ok(())
    }

    /// Slowdown (≥ 1.0) experienced by a kernel of class `class`, given the
    /// concurrent load on its device:
    ///
    /// * `n_compute` / `n_comm`: number of running kernels of each class
    ///   **including** the kernel being priced;
    /// * `comm_channels`: total communication blocks currently running on the
    ///   device (drives the channel-scaled share of compute interference).
    pub fn slowdown(
        &self,
        class: KernelClass,
        n_compute: u32,
        n_comm: u32,
        comm_channels: u32,
    ) -> f64 {
        match class {
            KernelClass::Compute => {
                debug_assert!(n_compute >= 1);
                // Equal SM sharing among concurrent compute kernels …
                let mut f = n_compute as f64;
                // … plus an extra penalty beyond perfect sharing.
                if n_compute >= 2 {
                    f *= self.compute_self_penalty;
                }
                if n_comm >= 1 {
                    f *= self.cross_factor_for_compute(comm_channels);
                }
                f
            }
            KernelClass::Comm => {
                debug_assert!(n_comm >= 1);
                // Bandwidth sharing among concurrent communication kernels …
                let mut f = n_comm as f64;
                if n_comm >= 2 {
                    f *= self.comm_self_penalty;
                }
                if n_compute >= 1 {
                    f *= self.comm_vs_compute;
                }
                f
            }
        }
    }

    /// Compute-side cross-class factor at a given total running channel count.
    ///
    /// `factor = 1 + (compute_vs_comm - 1) * ((1 - s) + s * channels / ref)`
    /// so that at the reference channel count the profiled factor is
    /// recovered exactly, and reducing channels (NCCL mitigation) reduces the
    /// interference proportionally to `channel_sensitivity`.
    pub fn cross_factor_for_compute(&self, comm_channels: u32) -> f64 {
        let base = self.compute_vs_comm - 1.0;
        let s = self.channel_sensitivity;
        let ratio = comm_channels.max(1) as f64 / self.reference_channels as f64;
        1.0 + base * ((1.0 - s) + s * ratio)
    }
}

impl crate::json::ToJson for ContentionParams {
    fn write_json(&self, out: &mut String) {
        let mut obj = crate::json::JsonObject::begin(out);
        obj.field("compute_vs_comm", &self.compute_vs_comm)
            .field("comm_vs_compute", &self.comm_vs_compute)
            .field("compute_self_penalty", &self.compute_self_penalty)
            .field("comm_self_penalty", &self.comm_self_penalty)
            .field("reference_channels", &self.reference_channels)
            .field("channel_sensitivity", &self.channel_sensitivity);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ContentionParams {
        ContentionParams::default()
    }

    #[test]
    fn defaults_validate() {
        p().validate().unwrap();
        ContentionParams::frictionless().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut bad = p();
        bad.compute_vs_comm = 0.9;
        assert!(bad.validate().is_err());
        let mut bad = p();
        bad.channel_sensitivity = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = p();
        bad.reference_channels = 0;
        assert!(bad.validate().is_err());
        let mut bad = p();
        bad.comm_vs_compute = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn solo_kernels_run_at_full_rate() {
        assert_eq!(p().slowdown(KernelClass::Compute, 1, 0, 0), 1.0);
        assert_eq!(p().slowdown(KernelClass::Comm, 0, 1, 2), 1.0);
    }

    #[test]
    fn cross_class_overlap_applies_profiled_factor() {
        let params = p();
        let f = params.slowdown(KernelClass::Compute, 1, 1, params.reference_channels);
        assert!((f - params.compute_vs_comm).abs() < 1e-12);
        let g = params.slowdown(KernelClass::Comm, 1, 1, params.reference_channels);
        assert!((g - params.comm_vs_compute).abs() < 1e-12);
    }

    #[test]
    fn same_class_overlap_is_much_worse_than_cross_class() {
        let params = p();
        let same = params.slowdown(KernelClass::Compute, 2, 0, 0);
        let cross = params.slowdown(KernelClass::Compute, 1, 1, 2);
        assert!(same > cross, "compute-compute ({same}) should exceed compute-comm ({cross})");
        assert!(same >= 2.0);
    }

    #[test]
    fn more_channels_more_compute_interference() {
        let params = p();
        let lo = params.cross_factor_for_compute(1);
        let mid = params.cross_factor_for_compute(params.reference_channels);
        let hi = params.cross_factor_for_compute(16);
        assert!(lo < mid && mid < hi);
        assert!((mid - params.compute_vs_comm).abs() < 1e-12);
    }

    #[test]
    fn frictionless_never_slows_cross_class() {
        let f = ContentionParams::frictionless();
        assert_eq!(f.slowdown(KernelClass::Compute, 1, 3, 48), 1.0);
        assert_eq!(f.slowdown(KernelClass::Comm, 3, 1, 2), 1.0);
        // same-class sharing still applies
        assert_eq!(f.slowdown(KernelClass::Compute, 2, 0, 0), 2.0);
    }

    #[test]
    fn comm_self_sharing_scales_with_population() {
        let params = p();
        let two = params.slowdown(KernelClass::Comm, 0, 2, 4);
        assert!((two - 2.0 * params.comm_self_penalty).abs() < 1e-12);
    }
}
