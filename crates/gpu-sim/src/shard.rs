//! Shard-side machinery for [`ParallelCore`](crate::cores::ParallelCore).
//!
//! A *shard window* is one device's event lane advanced in isolation up to
//! a coordinator-chosen bound `W`: the coordinator loans the worker the
//! whole [`DeviceRt`] plus its [`EventLane`], the worker replays the exact
//! per-device code path the sequential core would have run (the shared
//! `DeviceRt` physics methods, so even the f64 arithmetic is
//! instruction-identical), and hands back the device, the lane and a
//! [`LocalFx`] of buffered side effects for deterministic merging.
//!
//! Windows are only ever opened on devices the coordinator proved *safe*:
//! alive, no active or queued collectives, no queued event records/waits,
//! no failing kernel in flight, and no kernel-fault window overlapping the
//! window span. Under those preconditions a window produces no driver
//! wakes and no trace marks — only kernel completion events — which is
//! what makes the merge a pure sort by the canonical
//! `(time, lane rank, lane seq)` key.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::faults::FaultSpec;
use crate::ids::DeviceId;
use crate::kernel::KernelClass;
use crate::lanes::EventLane;
use crate::sim::{DeviceRt, HeadState, Pending, StreamOp};
use crate::time::SimTime;
use crate::trace::TraceEvent;

/// One device loaned out for a shard window.
pub(crate) struct ShardTask {
    /// The device's index (its lane ranks `d + 1` in the canonical order).
    pub d: usize,
    /// The device runtime, moved out of the simulation for the window.
    pub device: DeviceRt,
    /// The device's event lane, moved out alongside it.
    pub lane: EventLane<Pending>,
    /// Exclusive upper bound: only events strictly before `until` run.
    pub until: SimTime,
    /// Whether to buffer kernel completion records for the trace.
    pub capture: bool,
}

/// A completed shard window: the loaned state plus buffered effects.
pub(crate) struct ShardDone {
    /// Device index, for restoring into the simulation.
    pub d: usize,
    /// The device runtime, handed back.
    pub device: DeviceRt,
    /// The device's event lane, handed back.
    pub lane: EventLane<Pending>,
    /// Side effects to merge on the coordinator.
    pub fx: LocalFx,
}

/// Side effects a shard window buffers instead of applying globally.
#[derive(Debug, Default)]
pub(crate) struct LocalFx {
    /// Time of the last non-stale event dispatched, if any.
    pub last_now: Option<SimTime>,
    /// Non-stale events dispatched (the bench throughput numerator).
    pub dispatched: u64,
    /// Kernels completed (all non-failed by the window preconditions).
    pub completed: u64,
    /// Kernel completion records keyed by the dispatching lane entry's
    /// `(time, seq)` — the coordinator sorts the union of all windows'
    /// events by `(time, lane rank, seq)` before appending to the trace.
    pub events: Vec<(SimTime, u64, TraceEvent)>,
}

/// Replays one device's lane up to `task.until`, mirroring the sequential
/// core's `kernel_done` / `comm_lag_done` paths for plain kernels.
pub(crate) fn run_window(task: &mut ShardTask, faults: &FaultSpec) -> LocalFx {
    let mut fx = LocalFx::default();
    while let Some((at, seq)) = task.lane.peek_key() {
        if at >= task.until {
            break;
        }
        let entry = task.lane.pop().expect("peeked lane emptied under us");
        match entry.payload {
            Pending::KernelDone { device, slot, gen } => {
                debug_assert_eq!(device, task.d, "foreign event in a device lane");
                {
                    let s = &task.device.run[slot];
                    if !s.live || s.gen != gen {
                        continue; // superseded by a reprice
                    }
                }
                fx.dispatched += 1;
                fx.last_now = Some(at);
                task.device.settle_plain(at);
                let (queue, class, blocks, kernel, started_at, failing) = {
                    let s = &task.device.run[slot];
                    debug_assert!(
                        s.remaining <= 1.0,
                        "kernel completing with {} ns of work left",
                        s.remaining
                    );
                    (s.queue, s.class, s.blocks, s.kernel, s.started_at, s.failing)
                };
                assert!(!failing, "failing kernel leaked into a shard window");
                task.device.run[slot].live = false;
                task.device.free_slots.push(slot);
                task.device.apply_class_delta(at, class, blocks, -1);
                let ev = task.device.finish_head(
                    DeviceId(task.d),
                    queue,
                    kernel,
                    class,
                    started_at,
                    false,
                    at,
                );
                fx.completed += 1;
                if task.capture {
                    fx.events.push((at, seq, ev));
                }
                reprice(task, faults, at);
                poll_plain(task, faults, queue, at);
            }
            Pending::CommLagDone { device, queue, gen } => {
                debug_assert_eq!(device, task.d, "foreign event in a device lane");
                let fresh = matches!(
                    task.device.queues[queue].head,
                    HeadState::LagWait { gen: g } if g == gen
                );
                if !fresh {
                    continue; // superseded
                }
                fx.dispatched += 1;
                fx.last_now = Some(at);
                task.device.queues[queue].head = HeadState::Idle;
                begin_plain(task, faults, queue, at);
            }
            other => unreachable!("global-lane event {other:?} dispatched in a device lane"),
        }
    }
    fx
}

/// Mirror of the sequential core's `begin_kernel` for the plain-kernel arm.
fn begin_plain(task: &mut ShardTask, faults: &FaultSpec, q: usize, now: SimTime) {
    task.device.settle_plain(now);
    let failure = faults.kernel_failure(DeviceId(task.d), now);
    assert!(failure.is_none(), "kernel-fault window leaked into a shard window");
    task.device.begin_plain(q, now, None);
    reprice(task, faults, now);
}

fn reprice(task: &mut ShardTask, faults: &FaultSpec, now: SimTime) {
    let fault_factor = faults.device_factor(DeviceId(task.d), now);
    task.device.reprice_plain(task.d, now, fault_factor, &mut task.lane);
}

/// Mirror of the sequential core's `poll_queue` under shard preconditions:
/// the front op, if any, is always a plain kernel (records, waits and
/// collective members make the device a hazard, keeping it on the
/// coordinator).
fn poll_plain(task: &mut ShardTask, faults: &FaultSpec, q: usize, now: SimTime) {
    if task.device.queues[q].head != HeadState::Idle {
        return;
    }
    let is_comm = match task.device.queues[q].front() {
        None => return,
        Some(front) => {
            let StreamOp::Kernel(spec, _) = &front.op else {
                panic!("boundary op reached a shard window")
            };
            assert!(spec.collective.is_none(), "collective member leaked into a shard window");
            spec.class == KernelClass::Comm
        }
    };
    if is_comm {
        let lag = task.device.comm_dispatch_lag(q);
        if !lag.is_zero() {
            let qu = &mut task.device.queues[q];
            qu.lag_gen += 1;
            let gen = qu.lag_gen;
            qu.head = HeadState::LagWait { gen };
            task.lane.push(now + lag, Pending::CommLagDone { device: task.d, queue: q, gen });
            return;
        }
    }
    begin_plain(task, faults, q, now);
}

/// Persistent shard worker threads plus their channels. Workers block on a
/// per-worker task channel and report on one shared result channel; the
/// pool is barrier-synchronous — the coordinator sends a round of windows
/// and receives exactly that many [`ShardDone`]s before touching the
/// simulation again.
pub(crate) struct ShardPool {
    tx: Vec<Sender<ShardTask>>,
    rx: Receiver<ShardDone>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `workers` threads, each holding its own clone of the (pure,
    /// stateless) fault schedule.
    pub(crate) fn new(workers: usize, faults: FaultSpec) -> ShardPool {
        let (done_tx, rx) = channel::<ShardDone>();
        let mut tx = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (task_tx, task_rx) = channel::<ShardTask>();
            let done = done_tx.clone();
            let faults = faults.clone();
            let handle = std::thread::Builder::new()
                .name(format!("liger-shard-{w}"))
                .spawn(move || {
                    while let Ok(mut task) = task_rx.recv() {
                        let fx = run_window(&mut task, &faults);
                        let ShardTask { d, device, lane, .. } = task;
                        if done.send(ShardDone { d, device, lane, fx }).is_err() {
                            break; // coordinator went away
                        }
                    }
                })
                .expect("failed to spawn shard worker thread");
            tx.push(task_tx);
            handles.push(handle);
        }
        ShardPool { tx, rx, handles }
    }

    pub(crate) fn workers(&self) -> usize {
        self.tx.len()
    }

    /// Sends a window to worker `w` (round-robin assignment upstream).
    pub(crate) fn send(&self, w: usize, task: ShardTask) {
        self.tx[w].send(task).expect("shard worker hung up");
    }

    /// Receives one completed window, in whatever order workers finish.
    pub(crate) fn recv(&self) -> ShardDone {
        self.rx.recv().expect("shard worker hung up")
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the task channels ends the worker loops; join so no
        // thread outlives the simulation that loaned it state.
        self.tx.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
