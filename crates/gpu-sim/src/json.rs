//! Minimal hand-rolled JSON writing and parsing.
//!
//! The workspace carries no serialization crates, so every exporter (the
//! Chrome-trace writer in [`crate::trace`], the benchmark result dumps in
//! `liger-bench`) renders JSON through this module instead: a [`ToJson`]
//! trait for values plus tiny [`JsonObject`] / [`JsonArray`] builders that
//! write straight into a `String`. Output is plain standards-compliant
//! JSON; the formats of existing exports (Chrome trace events, sweep
//! results) are unchanged from the serde era.
//!
//! The reverse direction is a small recursive-descent parser
//! ([`JsonValue::parse`] / [`JsonParser`]) used by
//! [`Trace::from_chrome_json`](crate::trace::Trace::from_chrome_json) so
//! checked-in golden traces can be re-read and verified. Numbers keep their
//! source text: correlation tags are `u64` values with high bits set (the
//! engine's control-token namespace) that a lossy `f64` detour would
//! corrupt.

use std::fmt;
use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A value that can render itself as a JSON fragment.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Renders to a fresh string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        })*
    };
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            let _ = write!(out, "{self}");
        } else {
            // JSON has no NaN/Inf; null is the least-surprising stand-in.
            out.push_str("null");
        }
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        out.push_str(&escape(self));
        out.push('"');
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        let mut arr = JsonArray::begin(out);
        for v in self {
            arr.item(v);
        }
        arr.end();
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

/// Incremental writer for one JSON object.
pub struct JsonObject<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonObject<'a> {
    /// Opens an object (writes `{`).
    pub fn begin(out: &'a mut String) -> JsonObject<'a> {
        out.push('{');
        JsonObject { out, first: true }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        self.out.push_str(&escape(name));
        self.out.push_str("\":");
    }

    /// Writes one `"name": value` member.
    pub fn field(&mut self, name: &str, value: &dyn ToJson) -> &mut Self {
        self.key(name);
        value.write_json(self.out);
        self
    }

    /// Writes one member whose value is rendered by `f` (for custom
    /// formatting such as fixed-precision floats).
    pub fn field_with(&mut self, name: &str, f: impl FnOnce(&mut String)) -> &mut Self {
        self.key(name);
        f(self.out);
        self
    }

    /// Closes the object (writes `}`).
    pub fn end(self) {
        self.out.push('}');
    }
}

/// Incremental writer for one JSON array.
pub struct JsonArray<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonArray<'a> {
    /// Opens an array (writes `[`).
    pub fn begin(out: &'a mut String) -> JsonArray<'a> {
        out.push('[');
        JsonArray { out, first: true }
    }

    fn sep(&mut self) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
    }

    /// Appends one element.
    pub fn item(&mut self, value: &dyn ToJson) -> &mut Self {
        self.sep();
        value.write_json(self.out);
        self
    }

    /// Appends one element rendered by `f`.
    pub fn item_with(&mut self, f: impl FnOnce(&mut String)) -> &mut Self {
        self.sep();
        f(self.out);
        self
    }

    /// Closes the array (writes `]`).
    pub fn end(self) {
        self.out.push(']');
    }
}

/// Why JSON parsing stopped: the byte offset reached and what the parser
/// expected to find there (the same shape as
/// [`crate::faults::ParseError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What the parser expected at that offset.
    pub expected: String,
}

impl JsonError {
    fn at(offset: usize, expected: impl Into<String>) -> JsonError {
        JsonError { offset, expected: expected.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: expected {}", self.offset, self.expected)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
///
/// Numbers are kept as their source text: the trace tags this module
/// round-trips are full-width `u64`s (control tokens set bit 62) that do
/// not survive an `f64` detour. Use [`JsonValue::as_u64`] /
/// [`JsonValue::as_f64`] to interpret them.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text (e.g. `"1.250"`).
    Number(String),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as key/value pairs in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = JsonParser::new(input);
        let v = p.value()?;
        p.finish()?;
        Ok(v)
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer number
    /// (exact — no float round-trip).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The raw source text of a number value.
    pub fn number_text(&self) -> Option<&str> {
        match self {
            JsonValue::Number(raw) => Some(raw),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object value (first match wins).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// A recursive-descent JSON parser over a string slice.
///
/// Exposed (rather than hidden behind [`JsonValue::parse`]) so callers
/// streaming a top-level array — the Chrome-trace reader — can note the
/// byte offset of each element before parsing it and attach it to
/// diagnostics, the way [`crate::faults::ParseError`] reports fault-spec
/// positions.
#[derive(Debug)]
pub struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    /// Starts a parser at the beginning of `input`.
    pub fn new(input: &'a str) -> JsonParser<'a> {
        JsonParser { bytes: input.as_bytes(), pos: 0 }
    }

    /// The current byte offset (whitespace not yet skipped).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Skips whitespace and returns the byte offset of the next token.
    pub fn token_offset(&mut self) -> usize {
        self.skip_ws();
        self.pos
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(JsonError::at(self.pos, format!("'{}'", b as char))),
        }
    }

    /// Consumes `[`, the start of an array.
    pub fn array_begin(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')
    }

    /// At an element boundary inside an array: consumes a `,` separator
    /// (unless `first`) or the closing `]`. Returns true when another
    /// element follows.
    pub fn array_next(&mut self, first: bool) -> Result<bool, JsonError> {
        match self.peek() {
            Some(b']') => {
                self.pos += 1;
                Ok(false)
            }
            _ if first => Ok(true),
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            _ => Err(JsonError::at(self.pos, "',' or ']'")),
        }
    }

    /// Requires that only whitespace remains.
    pub fn finish(&mut self) -> Result<(), JsonError> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(JsonError::at(self.pos, "end of input"))
        }
    }

    /// Parses one value of any kind.
    pub fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at(self.pos, "a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("'{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(JsonError::at(self.pos, "a digit"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(JsonError::at(self.pos, "a fraction digit"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(JsonError::at(self.pos, "an exponent digit"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number lexeme is ASCII")
            .to_string();
        Ok(JsonValue::Number(raw))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(JsonError::at(self.pos, "'\"' closing a string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| JsonError::at(self.pos, "an escape character"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::at(self.pos, "4 hex digits"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::at(self.pos, "4 hex digits"))?;
                            self.pos += 4;
                            let c = char::from_u32(code).ok_or_else(|| {
                                JsonError::at(self.pos - 4, "a non-surrogate code point")
                            })?;
                            out.push(c);
                        }
                        _ => return Err(JsonError::at(self.pos - 1, "a valid escape")),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged; advance by
                    // whole characters to keep `out` valid.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::at(self.pos, "valid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        let mut first = true;
        while self.array_next(first)? {
            items.push(self.value()?);
            first = false;
        }
        Ok(JsonValue::Array(items))
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        loop {
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ if fields.is_empty() => {}
                Some(b',') => {
                    self.pos += 1;
                }
                _ => return Err(JsonError::at(self.pos, "',' or '}'")),
            }
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn scalars() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-3i32).to_json(), "-3");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(true.to_json(), "true");
        assert_eq!("hi\"".to_json(), "\"hi\\\"\"");
        assert_eq!(Some(7u32).to_json(), "7");
        assert_eq!(None::<u32>.to_json(), "null");
    }

    #[test]
    fn collections_and_objects() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        let mut out = String::new();
        let mut o = JsonObject::begin(&mut out);
        o.field("name", &"x").field("n", &2u32).field_with("ts", |s| {
            let _ = write!(s, "{:.3}", 1.25);
        });
        o.end();
        assert_eq!(out, "{\"name\":\"x\",\"n\":2,\"ts\":1.250}");
    }

    #[test]
    fn empty_object_and_array() {
        let mut out = String::new();
        JsonObject::begin(&mut out).end();
        JsonArray::begin(&mut out).end();
        assert_eq!(out, "{}[]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        let n = JsonValue::parse("-12.5e3").unwrap();
        assert_eq!(n.as_f64(), Some(-12500.0));
        assert_eq!(n.number_text(), Some("-12.5e3"));
        assert_eq!(JsonValue::parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn big_integers_survive_exactly() {
        // Bit 62 + low bits: not representable in f64.
        let tag = (1u64 << 62) | 12345;
        let v = JsonValue::parse(&tag.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(tag));
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(JsonValue::parse("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn parse_errors_carry_byte_offsets() {
        let err = JsonValue::parse("[1,]").unwrap_err();
        assert_eq!(err.offset, 3);
        let err = JsonValue::parse("{\"a\" 1}").unwrap_err();
        assert_eq!(err.offset, 5);
        assert!(err.to_string().contains("json error at byte 5"));
        let err = JsonValue::parse("[1] trailing").unwrap_err();
        assert_eq!(err.expected, "end of input");
    }

    #[test]
    fn escape_sequences_round_trip_through_the_parser() {
        for s in ["a\"b\\c\nd", "\u{1}\t", "héllo"] {
            let rendered = s.to_json();
            assert_eq!(JsonValue::parse(&rendered).unwrap().as_str(), Some(s));
        }
    }

    #[test]
    fn writer_output_reparses() {
        let mut out = String::new();
        let mut o = JsonObject::begin(&mut out);
        o.field("xs", &vec![1u32, 2]).field("f", &1.5f64).field("s", &"q\"");
        o.end();
        let v = JsonValue::parse(&out).unwrap();
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\""));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap()[1].as_u64(), Some(2));
    }
}
