//! Minimal hand-rolled JSON writing.
//!
//! The workspace carries no serialization crates, so every exporter (the
//! Chrome-trace writer in [`crate::trace`], the benchmark result dumps in
//! `liger-bench`) renders JSON through this module instead: a [`ToJson`]
//! trait for values plus tiny [`JsonObject`] / [`JsonArray`] builders that
//! write straight into a `String`. Output is plain standards-compliant
//! JSON; the formats of existing exports (Chrome trace events, sweep
//! results) are unchanged from the serde era.

use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A value that can render itself as a JSON fragment.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Renders to a fresh string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        })*
    };
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            let _ = write!(out, "{self}");
        } else {
            // JSON has no NaN/Inf; null is the least-surprising stand-in.
            out.push_str("null");
        }
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        out.push_str(&escape(self));
        out.push('"');
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        let mut arr = JsonArray::begin(out);
        for v in self {
            arr.item(v);
        }
        arr.end();
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

/// Incremental writer for one JSON object.
pub struct JsonObject<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonObject<'a> {
    /// Opens an object (writes `{`).
    pub fn begin(out: &'a mut String) -> JsonObject<'a> {
        out.push('{');
        JsonObject { out, first: true }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        self.out.push_str(&escape(name));
        self.out.push_str("\":");
    }

    /// Writes one `"name": value` member.
    pub fn field(&mut self, name: &str, value: &dyn ToJson) -> &mut Self {
        self.key(name);
        value.write_json(self.out);
        self
    }

    /// Writes one member whose value is rendered by `f` (for custom
    /// formatting such as fixed-precision floats).
    pub fn field_with(&mut self, name: &str, f: impl FnOnce(&mut String)) -> &mut Self {
        self.key(name);
        f(self.out);
        self
    }

    /// Closes the object (writes `}`).
    pub fn end(self) {
        self.out.push('}');
    }
}

/// Incremental writer for one JSON array.
pub struct JsonArray<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonArray<'a> {
    /// Opens an array (writes `[`).
    pub fn begin(out: &'a mut String) -> JsonArray<'a> {
        out.push('[');
        JsonArray { out, first: true }
    }

    fn sep(&mut self) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
    }

    /// Appends one element.
    pub fn item(&mut self, value: &dyn ToJson) -> &mut Self {
        self.sep();
        value.write_json(self.out);
        self
    }

    /// Appends one element rendered by `f`.
    pub fn item_with(&mut self, f: impl FnOnce(&mut String)) -> &mut Self {
        self.sep();
        f(self.out);
        self
    }

    /// Closes the array (writes `]`).
    pub fn end(self) {
        self.out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn scalars() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-3i32).to_json(), "-3");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(true.to_json(), "true");
        assert_eq!("hi\"".to_json(), "\"hi\\\"\"");
        assert_eq!(Some(7u32).to_json(), "7");
        assert_eq!(None::<u32>.to_json(), "null");
    }

    #[test]
    fn collections_and_objects() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        let mut out = String::new();
        let mut o = JsonObject::begin(&mut out);
        o.field("name", &"x").field("n", &2u32).field_with("ts", |s| {
            let _ = write!(s, "{:.3}", 1.25);
        });
        o.end();
        assert_eq!(out, "{\"name\":\"x\",\"n\":2,\"ts\":1.250}");
    }

    #[test]
    fn empty_object_and_array() {
        let mut out = String::new();
        JsonObject::begin(&mut out).end();
        JsonArray::begin(&mut out).end();
        assert_eq!(out, "{}[]");
    }
}
