//! Interchangeable event-loop engines behind the [`EventCore`] trait.
//!
//! Both engines dispatch pending events in the *canonical order*
//! `(time, lane rank, lane-local seq)` — global lane first at ties, then
//! device lanes by index (see the internal `lanes` module) — so for one
//! seed they
//! produce byte-identical traces and equal metrics:
//!
//! * [`SequentialCore`] — the determinism oracle. Pops the canonically
//!   next event and dispatches it, exactly the classic single-heap loop.
//! * [`ParallelCore`] — conservative parallel discrete-event simulation.
//!   A coordinator repeatedly computes a *window bound* `W` that no
//!   cross-device interaction can precede, loans every *safe* device (its
//!   runtime plus event lane) to shard worker threads that replay their
//!   lanes up to `W` with the same per-device physics code, then merges
//!   the buffered effects back in canonical key order. Devices that are
//!   dead, touched by collectives, holding event records/waits, running a
//!   failing kernel, or inside a kernel-fault window are *hazards*: their
//!   events stay on the coordinator, which falls back to single-step
//!   sequential dispatch for them.
//!
//! The window bound is `min` of: the deadline, the global lane's next
//! event, every hazard device's next event, and the start of any
//! kernel-fault overlap on a safe device. Everything a shard does is
//! therefore provably independent of every other lane until `W`, which is
//! what makes the parallelism invisible in the results.
//!
//! The *lookahead* is a profitability gate, not a correctness knob:
//! windows spanning less simulated time than the lookahead are run inline
//! on the coordinator because the thread round-trip would cost more than
//! it buys. It defaults to the hosts' kernel launch overhead (the minimum
//! spacing new work arrives at) and serving layers pass a larger value
//! derived from their collective cost model via
//! [`ParallelCore::with_lookahead`].

use crate::ids::EventId;
use crate::sim::{
    DeviceRt, DispatchFootprint, Driver, Pending, Simulation, StreamOp, COLL_FOOTPRINT_BIT,
};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;

/// An event-loop engine: runs a [`Simulation`] against a [`Driver`] until
/// the lanes drain, `deadline` passes, or the driver requests a stop.
pub trait EventCore {
    /// Short engine name for logs and bench labels.
    fn name(&self) -> &'static str;

    /// Runs the simulation, returning the final simulated time. Semantics
    /// (including the returned instant and the state left behind) are
    /// identical across engines for identical inputs.
    fn run(&mut self, sim: &mut Simulation, driver: &mut dyn Driver, deadline: SimTime) -> SimTime;
}

/// Which event core a run should use. The string forms accepted by
/// [`CoreSelect::parse`] are `seq`, `par` (worker count = available
/// parallelism) and `par:N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreSelect {
    /// The sequential determinism oracle ([`SequentialCore`]).
    Seq,
    /// The conservative parallel engine ([`ParallelCore`]).
    Par {
        /// Number of shard worker threads (≥ 1).
        workers: usize,
    },
}

impl CoreSelect {
    /// Parses a `--core` flag value: `seq`, `par`, or `par:N`.
    ///
    /// # Errors
    /// Returns a description of the malformed value.
    pub fn parse(s: &str) -> Result<CoreSelect, String> {
        match s {
            "seq" => Ok(CoreSelect::Seq),
            "par" => Ok(CoreSelect::Par { workers: default_workers() }),
            other => match other.strip_prefix("par:") {
                Some(n) => n
                    .parse::<usize>()
                    .map(|w| CoreSelect::Par { workers: w.max(1) })
                    .map_err(|e| format!("bad worker count in core spec {other:?}: {e}")),
                None => Err(format!("unknown core {other:?} (expected seq, par, or par:N)")),
            },
        }
    }

    /// The ambient selection: `LIGER_CORE` from the environment when set
    /// and non-empty, else [`CoreSelect::Seq`]. [`Simulation::run`] honors
    /// this, so existing binaries and test suites can be re-run on the
    /// parallel core without code changes.
    ///
    /// # Panics
    /// Panics when `LIGER_CORE` is set to an unparseable value — a
    /// misconfigured environment must not silently fall back to `seq`.
    pub fn from_env() -> CoreSelect {
        match std::env::var("LIGER_CORE") {
            Ok(v) if !v.is_empty() => match CoreSelect::parse(&v) {
                Ok(core) => core,
                Err(e) => panic!("LIGER_CORE: {e}"),
            },
            _ => CoreSelect::Seq,
        }
    }
}

impl std::fmt::Display for CoreSelect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreSelect::Seq => write!(f, "seq"),
            CoreSelect::Par { workers } => write!(f, "par:{workers}"),
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The single-threaded engine: pops the canonically next event across all
/// lanes and dispatches it. This is the renamed classic global loop and
/// the oracle the parallel engine is tested against.
#[derive(Debug, Default, Clone, Copy)]
pub struct SequentialCore;

impl EventCore for SequentialCore {
    fn name(&self) -> &'static str {
        "seq"
    }

    fn run(&mut self, sim: &mut Simulation, driver: &mut dyn Driver, deadline: SimTime) -> SimTime {
        driver.start(sim);
        sim.drain_wakes(driver);
        while !sim.stop {
            let Some((at, pending)) = sim.pop_next() else { break };
            if sim.entry_is_stale(&pending) {
                // Superseded by a reprice: drop it without advancing time,
                // so the returned end time is the last *real* event.
                continue;
            }
            if at > deadline {
                sim.now = deadline;
                break;
            }
            debug_assert!(at >= sim.now, "time went backwards");
            sim.now = at;
            sim.dispatch(pending);
            sim.drain_wakes(driver);
        }
        sim.now
    }
}

/// The conservative parallel engine: shard worker threads advance safe
/// device lanes inside coordinator-computed windows; everything else runs
/// sequentially on the coordinator. See the [module docs](self) for the
/// protocol and its safety argument.
#[derive(Debug)]
pub struct ParallelCore {
    workers: usize,
    lookahead: Option<SimDuration>,
}

impl ParallelCore {
    /// A parallel core with `workers` shard threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> ParallelCore {
        ParallelCore { workers: workers.max(1), lookahead: None }
    }

    /// Overrides the minimum-profitable-window lookahead. Purely a
    /// performance knob: any value produces identical results. Serving
    /// layers derive one from their collective link-latency cost model;
    /// the default is the hosts' maximum kernel launch overhead.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> ParallelCore {
        self.lookahead = Some(lookahead);
        self
    }

    /// Shard worker threads this core will use.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl EventCore for ParallelCore {
    fn name(&self) -> &'static str {
        "par"
    }

    fn run(&mut self, sim: &mut Simulation, driver: &mut dyn Driver, deadline: SimTime) -> SimTime {
        use crate::shard::{run_window, ShardDone, ShardPool, ShardTask};

        let lookahead = self.lookahead.unwrap_or_else(|| default_lookahead(sim));
        // One worker still exercises the full loan/merge protocol (that is
        // what the 1-worker determinism tier checks) but threads buy
        // nothing, so the windows run inline on the coordinator.
        let pool = if self.workers >= 2 {
            Some(ShardPool::new(self.workers, sim.faults.clone()))
        } else {
            None
        };
        let window_cap = if deadline == SimTime::MAX {
            SimTime::MAX
        } else {
            // Events at exactly the deadline still dispatch; the bound is
            // exclusive.
            deadline + SimDuration::from_nanos(1)
        };

        driver.start(sim);
        sim.drain_wakes(driver);
        while !sim.stop {
            // -- window bound -------------------------------------------------
            let mut w = window_cap;
            if let Some((at, _)) = sim.global_lane.peek_key() {
                w = w.min(at);
            }
            let mut safe: Vec<usize> = Vec::with_capacity(sim.devices.len());
            for d in 0..sim.devices.len() {
                if device_is_hazard(sim, d) {
                    if let Some((at, _)) = sim.device_lanes[d].peek_key() {
                        w = w.min(at);
                    }
                } else {
                    safe.push(d);
                }
            }
            // Keep kernel-fault windows on the coordinator: shrinking `w`
            // only ever tightens already-checked intervals, so one pass
            // suffices.
            for &d in &safe {
                if let Some((at, _)) = sim.device_lanes[d].peek_key() {
                    if at < w && sim.faults.kernel_failure_possible(at, w) {
                        w = at;
                    }
                }
            }
            let mut work: Vec<usize> = Vec::new();
            let mut span_from = SimTime::MAX;
            for &d in &safe {
                if let Some((at, _)) = sim.device_lanes[d].peek_key() {
                    if at < w {
                        work.push(d);
                        span_from = span_from.min(at);
                    }
                }
            }

            // -- no shardable work: one canonical sequential step -------------
            if work.is_empty() {
                let Some((at, pending)) = sim.pop_next() else { break };
                if sim.entry_is_stale(&pending) {
                    continue;
                }
                if at > deadline {
                    sim.now = deadline;
                    break;
                }
                debug_assert!(at >= sim.now, "time went backwards");
                sim.now = at;
                sim.dispatch(pending);
                sim.drain_wakes(driver);
                continue;
            }

            // -- shard phase ---------------------------------------------------
            let capture = sim.trace.is_some();
            let use_threads = match &pool {
                Some(_) => work.len() > 1 && w.saturating_since(span_from) >= lookahead,
                None => false,
            };
            let mut results: Vec<ShardDone> = Vec::with_capacity(work.len());
            if use_threads {
                let p = pool.as_ref().expect("use_threads implies a pool");
                for (i, &d) in work.iter().enumerate() {
                    let device = std::mem::replace(&mut sim.devices[d], DeviceRt::placeholder());
                    let lane = std::mem::take(&mut sim.device_lanes[d]);
                    p.send(i % p.workers(), ShardTask { d, device, lane, until: w, capture });
                }
                for _ in 0..work.len() {
                    results.push(p.recv());
                }
            } else {
                for &d in &work {
                    let device = std::mem::replace(&mut sim.devices[d], DeviceRt::placeholder());
                    let lane = std::mem::take(&mut sim.device_lanes[d]);
                    let mut task = ShardTask { d, device, lane, until: w, capture };
                    let fx = run_window(&mut task, &sim.faults);
                    let ShardTask { d, device, lane, .. } = task;
                    results.push(ShardDone { d, device, lane, fx });
                }
            }

            // -- deterministic merge ------------------------------------------
            let mut trace_buf: Vec<(SimTime, usize, u64, TraceEvent)> = Vec::new();
            for done in results {
                let ShardDone { d, device, lane, fx } = done;
                sim.devices[d] = device;
                sim.device_lanes[d] = lane;
                sim.events_dispatched += fx.dispatched;
                sim.kernels_completed += fx.completed;
                if let Some(t) = fx.last_now {
                    // Every windowed event precedes the next coordinator
                    // event, so advancing to the latest one matches the
                    // sequential clock exactly.
                    if t > sim.now {
                        sim.now = t;
                    }
                }
                for (at, seq, ev) in fx.events {
                    trace_buf.push((at, d + 1, seq, ev));
                }
            }
            if !trace_buf.is_empty() {
                trace_buf.sort_by_key(|e| (e.0, e.1, e.2));
                let trace = sim.trace.as_mut().expect("captured shard events without a trace");
                for (.., ev) in trace_buf {
                    trace.push(ev);
                }
            }
        }
        sim.now
    }
}

/// True when `d`'s events may interact with other lanes and must stay on
/// the coordinator this round.
fn device_is_hazard(sim: &Simulation, d: usize) -> bool {
    let dev = &sim.devices[d];
    !dev.alive
        || !dev.active_colls.is_empty()
        || dev.run.iter().any(|s| s.live && s.failing)
        || dev.queues.iter().any(|q| q.has_boundary_ops())
}

/// Default lookahead: the minimum spacing at which hosts can feed new work
/// to devices. Windows thinner than this are not worth a thread hop.
fn default_lookahead(sim: &Simulation) -> SimDuration {
    sim.hosts.iter().map(|h| h.spec.launch_overhead).max().unwrap_or(SimDuration::ZERO)
}

// ---------------------------------------------------------------------------
// ExploreCore: schedule-space instrumentation for the model checker
// ---------------------------------------------------------------------------

/// Which pending events the [`ExploreCore`] treats as reorderable at a
/// choice point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowRule {
    /// The [`ParallelCore`] commutability argument, refined per event: a
    /// device-lane event is enabled only when its device is shard-safe
    /// (alive, no running collective, no failing kernel) *and* dispatching
    /// it would touch no boundary op (event record/wait, collective member).
    /// Every enabled order is provably equivalent to the canonical one —
    /// exploration under this rule certifies the parallel core's windows.
    Conservative,
    /// Every alive device's lane head is enabled, boundary ops included.
    /// This deliberately realizes cross-lane orders no conservative window
    /// ever would — the schedules an optimistic (time-warp) core could
    /// speculate into — so order-dependent outcomes become observable.
    Unguarded,
}

impl WindowRule {
    /// Parses a `--rule` flag value: `conservative` or `unguarded`.
    ///
    /// # Errors
    /// Returns a description of the malformed value.
    pub fn parse(s: &str) -> Result<WindowRule, String> {
        match s {
            "conservative" => Ok(WindowRule::Conservative),
            "unguarded" => Ok(WindowRule::Unguarded),
            other => {
                Err(format!("unknown window rule {other:?} (expected conservative or unguarded)"))
            }
        }
    }
}

impl std::fmt::Display for WindowRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowRule::Conservative => write!(f, "conservative"),
            WindowRule::Unguarded => write!(f, "unguarded"),
        }
    }
}

/// One enabled alternative at a choice point: a device-lane head the
/// schedule may dispatch next, with the *static* footprint of the queue
/// continuation it would drain (the model checker's persistent-set key).
#[derive(Debug, Clone)]
pub struct EnabledEvent {
    /// Device whose lane head this is.
    pub device: usize,
    /// Scheduled dispatch time.
    pub at: SimTime,
    /// Lane-local sequence number (canonical tie-break).
    pub seq: u64,
    /// Conservative static over-approximation of what dispatching it
    /// touches, from walking the queue continuation.
    pub footprint: DispatchFootprint,
}

/// One schedule choice the [`ExploreCore`] made: ≥ 2 events were enabled
/// and the active schedule picked one. The trail of choice points is the
/// model checker's raw material — it reconstructs alternative schedules by
/// redirecting `chosen` and replaying a cloned simulation.
#[derive(Debug, Clone)]
pub struct ChoicePoint {
    /// Union of the *dynamic* footprints of every dispatch since the
    /// previous choice point (exclusive) — the interference context sleep
    /// sets are evolved against.
    pub pre: DispatchFootprint,
    /// The enabled events, sorted by canonical key `(at, device, seq)`;
    /// index 0 is the canonical choice.
    pub enabled: Vec<EnabledEvent>,
    /// Index into `enabled` that was dispatched.
    pub chosen: usize,
    /// Dynamic footprint the chosen dispatch actually touched (recorded by
    /// the probe; at most the static estimate).
    pub observed: DispatchFootprint,
}

/// The instrumented engine behind `liger-verify explore`: runs the same
/// physics as [`SequentialCore`] but, wherever ≥ 2 pending events are
/// commutable under the active [`WindowRule`], records a [`ChoicePoint`]
/// and follows an externally supplied schedule (canonical order when the
/// schedule is exhausted). Dispatches between choice points stay strictly
/// canonical, so a schedule vector is a complete, replayable name for one
/// interleaving: same simulation + same schedule → same trace, bit for bit.
#[derive(Debug, Clone, Default)]
pub struct ExploreCore {
    rule: Option<WindowRule>,
    schedule: Vec<usize>,
    trail: Vec<ChoicePoint>,
}

impl ExploreCore {
    /// An explore core using `rule`, following canonical order everywhere
    /// (empty schedule).
    pub fn new(rule: WindowRule) -> ExploreCore {
        ExploreCore { rule: Some(rule), schedule: Vec::new(), trail: Vec::new() }
    }

    /// Sets the schedule: `schedule[i]` indexes into the i-th choice
    /// point's enabled set. Choice points beyond the schedule take the
    /// canonical (index 0) branch.
    pub fn with_schedule(mut self, schedule: Vec<usize>) -> ExploreCore {
        self.schedule = schedule;
        self
    }

    /// The active window rule.
    pub fn rule(&self) -> WindowRule {
        self.rule.unwrap_or(WindowRule::Conservative)
    }

    /// The choice points recorded by the last run.
    pub fn trail(&self) -> &[ChoicePoint] {
        &self.trail
    }

    /// Takes ownership of the recorded trail, leaving it empty.
    pub fn take_trail(&mut self) -> Vec<ChoicePoint> {
        std::mem::take(&mut self.trail)
    }

    /// True when `d`'s lane heads may be reordered at all under the rule.
    fn device_safe(&self, sim: &Simulation, d: usize) -> bool {
        let dev = &sim.devices[d];
        match self.rule() {
            WindowRule::Unguarded => dev.alive,
            WindowRule::Conservative => {
                dev.alive
                    && dev.active_colls.is_empty()
                    && !dev.run.iter().any(|s| s.live && s.failing)
            }
        }
    }
}

/// Pops superseded (stale) heads off every lane so the enabled set is over
/// real events only. Stale entries never dispatch anyway; scrubbing them
/// up front keeps them from masquerading as schedule alternatives.
fn scrub_stale_heads(sim: &mut Simulation) {
    for d in 0..sim.device_lanes.len() {
        while sim.device_lanes[d].peek().is_some_and(|p| sim.entry_is_stale(p)) {
            sim.device_lanes[d].pop();
        }
    }
    while sim.global_lane.peek().is_some_and(|p| sim.entry_is_stale(p)) {
        sim.global_lane.pop();
    }
}

/// True when dispatching `pending` (a device-lane head on `d`) would touch
/// a boundary op: the queue continuation it drains reaches an event record,
/// an event wait, or a collective member kernel. The conservative rule pins
/// such events to the canonical order (mirroring the parallel core, which
/// keeps whole boundary-holding devices on the coordinator).
fn touches_boundary(sim: &Simulation, d: usize, pending: &Pending) -> bool {
    match *pending {
        // A finishing plain kernel pops the head and then polls: the op at
        // index 1 is what could begin next (None: the queue just drains).
        Pending::KernelDone { device, slot, .. } => {
            debug_assert_eq!(device, d, "device-lane event on the wrong lane");
            let q = sim.devices[d].run[slot].queue;
            match sim.devices[d].queues[q].op_at(1) {
                Some(next) => next.op.is_boundary(),
                None => false,
            }
        }
        // A comm-lag expiry begins the head kernel itself.
        Pending::CommLagDone { device, queue, .. } => {
            debug_assert_eq!(device, d, "device-lane event on the wrong lane");
            match sim.devices[device].queues[queue].front() {
                Some(head) => head.op.is_boundary(),
                None => true,
            }
        }
        // Only device-lane events are ever asked; anything else is global.
        _ => true,
    }
}

/// Static over-approximation of the footprint dispatching `pending` on `d`
/// could touch: walks the queue continuation the dispatch would drain,
/// following event records to their registered and queued waiters and
/// collective kernels to every gathered or queued member, until each path
/// blocks (unfired wait) or begins a kernel. Host interest in a reachable
/// event marks the footprint global. Used for enabled-but-undispatched
/// alternatives; the dispatched branch gets the exact dynamic footprint
/// from the probe instead.
fn static_footprint(sim: &Simulation, d: usize, pending: &Pending) -> DispatchFootprint {
    let mut fp = DispatchFootprint::default();
    fp.devices.insert(d);
    // (device, queue, first continuation index) frontier.
    let mut frontier: Vec<(usize, usize, usize)> = Vec::new();
    match *pending {
        Pending::KernelDone { device, slot, .. } => {
            let q = sim.devices[device].run[slot].queue;
            if let Some(head) = sim.devices[device].queues[q].front() {
                fp.streams.insert((device, head.stream));
                if let StreamOp::Kernel(spec, _) = &head.op {
                    fp.tags.insert(spec.tag);
                }
            }
            frontier.push((device, q, 1));
        }
        Pending::CommLagDone { device, queue, .. } => {
            frontier.push((device, queue, 0));
        }
        _ => {
            fp.global = true;
            return fp;
        }
    }
    let mut visited: std::collections::BTreeSet<(usize, usize, usize)> =
        std::collections::BTreeSet::new();
    while let Some((dev, q, from)) = frontier.pop() {
        if !visited.insert((dev, q, from)) {
            continue;
        }
        fp.devices.insert(dev);
        let queue = &sim.devices[dev].queues[q];
        let mut i = from;
        while let Some(qop) = queue.op_at(i) {
            match &qop.op {
                StreamOp::Record(ev) => {
                    fp.events.insert(ev.0);
                    fp.streams.insert((dev, qop.stream));
                    if sim.event_has_host_interest(ev.0) {
                        fp.global = true;
                    }
                    // Queues already parked on this event resume from the
                    // op after their blocking wait (the head).
                    for &(wd, wq) in sim.event_queue_waiters(ev.0) {
                        frontier.push((wd, wq, 1));
                    }
                    // Queues that will reach a wait on it later resume
                    // behind that wait.
                    for (od, odev) in sim.devices.iter().enumerate() {
                        for (oq, oqueue) in odev.queues.iter().enumerate() {
                            for (oi, oop) in oqueue.iter_ops().enumerate() {
                                if matches!(&oop.op, StreamOp::Wait(w) if w.0 == ev.0) {
                                    frontier.push((od, oq, oi + 1));
                                }
                            }
                        }
                    }
                }
                StreamOp::Wait(ev) => {
                    fp.events.insert(ev.0);
                    if sim.event_fired(EventId(ev.0)).is_none() {
                        break; // the continuation blocks here
                    }
                }
                StreamOp::Kernel(spec, _) => {
                    fp.tags.insert(spec.tag);
                    fp.streams.insert((dev, qop.stream));
                    if let Some(cid) = spec.collective {
                        fp.events.insert(COLL_FOOTPRINT_BIT | cid.0);
                        let (members, _) = sim.collective_members(cid.0 as usize);
                        for &(md, mq) in members {
                            frontier.push((md, mq, 1));
                        }
                        for (od, odev) in sim.devices.iter().enumerate() {
                            for (oq, oqueue) in odev.queues.iter().enumerate() {
                                for (oi, oop) in oqueue.iter_ops().enumerate() {
                                    let member = matches!(&oop.op,
                                        StreamOp::Kernel(os, _) if os.collective == Some(cid));
                                    if member {
                                        frontier.push((od, oq, oi + 1));
                                    }
                                }
                            }
                        }
                    }
                    break; // the kernel begins; the poll stops here
                }
            }
            i += 1;
        }
    }
    fp
}

/// Pops `d`'s lane head and dispatches it with the footprint probe armed.
/// Returns the dispatch time and the dynamic footprint it touched.
fn dispatch_lane_head(
    sim: &mut Simulation,
    driver: &mut dyn Driver,
    d: usize,
) -> (SimTime, DispatchFootprint) {
    let e = sim.device_lanes[d].pop().expect("enabled lane emptied");
    sim.now = e.at;
    sim.probe = Some(DispatchFootprint::default());
    sim.dispatch(e.payload);
    let mut fp = sim.probe.take().unwrap_or_default();
    fp.devices.insert(d);
    sim.drain_wakes(driver);
    (e.at, fp)
}

impl EventCore for ExploreCore {
    fn name(&self) -> &'static str {
        "explore"
    }

    fn run(&mut self, sim: &mut Simulation, driver: &mut dyn Driver, deadline: SimTime) -> SimTime {
        let window_cap = if deadline == SimTime::MAX {
            SimTime::MAX
        } else {
            deadline + SimDuration::from_nanos(1)
        };
        if self.rule() == WindowRule::Unguarded {
            // Redirected schedules legitimately dispatch one lane past
            // another's clock; the monotone-completion assertion is about
            // canonical runs and must not fire here.
            sim.relaxed_time = true;
        }
        self.trail.clear();
        let mut cursor = 0usize;
        let mut pre = DispatchFootprint::default();
        // The end time is the latest event actually dispatched: under a
        // redirected schedule `sim.now` is not monotone, so it is tracked
        // separately and written back at exit.
        let mut end = sim.now;

        driver.start(sim);
        sim.drain_wakes(driver);
        while !sim.stop {
            scrub_stale_heads(sim);

            // -- window bound (as ParallelCore, then per-event refinement) --
            let mut w = window_cap;
            if let Some((at, _)) = sim.global_lane.peek_key() {
                w = w.min(at);
            }
            let mut safe: Vec<usize> = Vec::with_capacity(sim.devices.len());
            for d in 0..sim.devices.len() {
                if self.device_safe(sim, d) {
                    safe.push(d);
                } else if let Some((at, _)) = sim.device_lanes[d].peek_key() {
                    w = w.min(at);
                }
            }
            for &d in &safe {
                if let Some((at, _)) = sim.device_lanes[d].peek_key() {
                    if at >= w {
                        continue;
                    }
                    let pinned = sim.faults.kernel_failure_possible(at, w)
                        || (self.rule() == WindowRule::Conservative
                            && touches_boundary(
                                sim,
                                d,
                                sim.device_lanes[d].peek().expect("peeked lane emptied"),
                            ));
                    if pinned {
                        w = at;
                    }
                }
            }

            // -- enabled set ------------------------------------------------
            let mut enabled: Vec<EnabledEvent> = Vec::new();
            for &d in &safe {
                if let Some((at, seq)) = sim.device_lanes[d].peek_key() {
                    if at < w {
                        let p = sim.device_lanes[d].peek().expect("peeked lane emptied");
                        let footprint = static_footprint(sim, d, p);
                        enabled.push(EnabledEvent { device: d, at, seq, footprint });
                    }
                }
            }
            enabled.sort_by_key(|e| (e.at, e.device, e.seq));

            match enabled.len() {
                // Nothing reorderable: one canonical sequential step.
                0 => {
                    let Some((at, pending)) = sim.pop_next() else { break };
                    if sim.entry_is_stale(&pending) {
                        continue;
                    }
                    if at > deadline {
                        end = end.max(deadline);
                        break;
                    }
                    sim.now = at;
                    sim.probe = Some(DispatchFootprint::default());
                    sim.dispatch(pending);
                    let fp = sim.probe.take().unwrap_or_default();
                    pre.merge(&fp);
                    end = end.max(at);
                    sim.drain_wakes(driver);
                }
                // A single enabled event is provably the canonical next
                // dispatch below `w`; no choice to record.
                1 => {
                    let (at, fp) = dispatch_lane_head(sim, driver, enabled[0].device);
                    pre.merge(&fp);
                    end = end.max(at);
                }
                // A real choice point: follow the schedule, record the trail.
                _ => {
                    let chosen =
                        if cursor < self.schedule.len() { self.schedule[cursor] } else { 0 };
                    cursor += 1;
                    assert!(
                        chosen < enabled.len(),
                        "schedule index {chosen} out of range at choice point {} ({} enabled)",
                        self.trail.len(),
                        enabled.len()
                    );
                    let d = enabled[chosen].device;
                    let cp_pre = std::mem::take(&mut pre);
                    let (at, observed) = dispatch_lane_head(sim, driver, d);
                    end = end.max(at);
                    self.trail.push(ChoicePoint { pre: cp_pre, enabled, chosen, observed });
                }
            }
        }
        sim.now = end;
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_select_parses() {
        assert_eq!(CoreSelect::parse("seq"), Ok(CoreSelect::Seq));
        assert!(
            matches!(CoreSelect::parse("par"), Ok(CoreSelect::Par { workers }) if workers >= 1)
        );
        assert_eq!(CoreSelect::parse("par:4"), Ok(CoreSelect::Par { workers: 4 }));
        assert_eq!(CoreSelect::parse("par:0"), Ok(CoreSelect::Par { workers: 1 }));
        assert!(CoreSelect::parse("warp").is_err());
        assert!(CoreSelect::parse("par:x").is_err());
    }

    #[test]
    fn core_select_displays_round_trip() {
        for s in ["seq", "par:3"] {
            assert_eq!(CoreSelect::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn window_rule_parses_and_displays() {
        assert_eq!(WindowRule::parse("conservative"), Ok(WindowRule::Conservative));
        assert_eq!(WindowRule::parse("unguarded"), Ok(WindowRule::Unguarded));
        assert!(WindowRule::parse("optimistic").is_err());
        for r in [WindowRule::Conservative, WindowRule::Unguarded] {
            assert_eq!(WindowRule::parse(&r.to_string()), Ok(r));
        }
    }

    use crate::device::DeviceSpec;
    use crate::host::HostSpec;
    use crate::ids::{DeviceId, EventId, HostId, StreamId};
    use crate::kernel::KernelSpec;
    use crate::sim::Wake;

    /// One launch-script step on host 0 (all at t = 0, instant host).
    enum Step {
        K { d: usize, s: usize, us: u64, name: &'static str },
        Rec { d: usize, s: usize, ev: usize },
        Wait { d: usize, s: usize, ev: usize },
    }

    struct Script {
        steps: Vec<Step>,
        events: usize,
    }

    impl Driver for Script {
        fn start(&mut self, sim: &mut Simulation) {
            let evs: Vec<EventId> = (0..self.events).map(|_| sim.new_event()).collect();
            for st in &self.steps {
                match *st {
                    Step::K { d, s, us, name } => {
                        let spec = KernelSpec::compute(name, SimDuration::from_micros(us));
                        sim.launch(HostId(0), StreamId::new(DeviceId(d), s), spec);
                    }
                    Step::Rec { d, s, ev } => {
                        sim.record_existing_event(
                            HostId(0),
                            StreamId::new(DeviceId(d), s),
                            evs[ev],
                        );
                    }
                    Step::Wait { d, s, ev } => {
                        sim.stream_wait(HostId(0), StreamId::new(DeviceId(d), s), evs[ev]);
                    }
                }
            }
        }
        fn on_wake(&mut self, _wake: Wake, _sim: &mut Simulation) {}
    }

    fn two_device_sim() -> Simulation {
        Simulation::builder()
            .devices(DeviceSpec::test_device().with_connections(2), 2)
            .host(HostSpec::instant())
            .streams_per_device(2)
            .capture_trace(true)
            .build()
            .unwrap()
    }

    fn indep_script() -> Script {
        Script {
            steps: vec![
                Step::K { d: 0, s: 0, us: 10, name: "a" },
                Step::K { d: 1, s: 0, us: 7, name: "b" },
            ],
            events: 0,
        }
    }

    fn projection(sim: &Simulation, d: usize) -> Vec<(String, SimTime, SimTime)> {
        let trace = sim.trace().expect("trace captured");
        trace
            .on_device(DeviceId(d))
            .map(|e| (e.name.to_string(), e.started_at, e.ended_at))
            .collect()
    }

    #[test]
    fn explore_canonical_schedule_matches_sequential() {
        let mut a = two_device_sim();
        let end_a = SequentialCore.run(&mut a, &mut indep_script(), SimTime::MAX);
        let mut b = two_device_sim();
        let mut core = ExploreCore::new(WindowRule::Conservative);
        let end_b = core.run(&mut b, &mut indep_script(), SimTime::MAX);
        assert_eq!(end_a, end_b);
        assert_eq!(
            a.trace().unwrap().to_chrome_json(),
            b.trace().unwrap().to_chrome_json(),
            "canonical explore run must be byte-identical to the oracle"
        );
        assert_eq!(core.trail().len(), 1, "two commutable completions = one choice point");
        let cp = &core.trail()[0];
        assert_eq!(cp.enabled.len(), 2);
        assert_eq!(cp.chosen, 0);
        assert_eq!(cp.enabled[0].device, 1, "canonical order is the 7us kernel first");
        assert!(
            !cp.enabled[0].footprint.intersects(&cp.enabled[1].footprint),
            "independent kernels must have disjoint static footprints"
        );
    }

    #[test]
    fn redirected_schedule_preserves_device_projections() {
        let mut a = two_device_sim();
        ExploreCore::new(WindowRule::Conservative).run(&mut a, &mut indep_script(), SimTime::MAX);
        let mut b = two_device_sim();
        let mut core = ExploreCore::new(WindowRule::Conservative).with_schedule(vec![1]);
        let end = core.run(&mut b, &mut indep_script(), SimTime::MAX);
        assert_eq!(core.trail()[0].chosen, 1);
        assert_eq!(core.trail()[0].enabled[core.trail()[0].chosen].device, 0);
        assert_eq!(end, SimTime::from_micros(10), "end time is schedule-invariant");
        for d in 0..2 {
            assert_eq!(projection(&a, d), projection(&b, d), "device {d} projection changed");
        }
    }

    #[test]
    fn conservative_pins_boundary_events_unguarded_does_not() {
        // d0 finishes a kernel and then records an event; d1 runs an
        // independent kernel. The record makes d0's completion
        // boundary-touching: conservative keeps it canonical (no choice
        // point), unguarded exposes the order.
        let script = || Script {
            steps: vec![
                Step::K { d: 0, s: 0, us: 10, name: "a" },
                Step::Rec { d: 0, s: 0, ev: 0 },
                Step::K { d: 1, s: 0, us: 7, name: "b" },
            ],
            events: 1,
        };
        let mut a = two_device_sim();
        let mut cons = ExploreCore::new(WindowRule::Conservative);
        cons.run(&mut a, &mut script(), SimTime::MAX);
        assert_eq!(cons.trail().len(), 0, "boundary-touching completions are pinned");

        let mut b = two_device_sim();
        let mut ung = ExploreCore::new(WindowRule::Unguarded);
        ung.run(&mut b, &mut script(), SimTime::MAX);
        assert_eq!(ung.trail().len(), 1, "unguarded exposes the boundary order");
        let cp = &ung.trail()[0];
        assert!(
            cp.enabled.iter().any(|e| e.device == 0 && e.footprint.events.contains(&0)),
            "d0's static footprint must reach the recorded event"
        );
        assert_eq!(
            a.trace().unwrap().to_chrome_json(),
            b.trace().unwrap().to_chrome_json(),
            "canonical schedules agree regardless of rule"
        );
    }

    #[test]
    fn static_footprint_follows_waiters_across_devices() {
        // d0: kernel then record E; d1: wait E then kernel. Dispatching
        // d0's completion eventually releases d1, so its static footprint
        // must span both devices and the event.
        let mut sim = two_device_sim();
        let mut core = ExploreCore::new(WindowRule::Unguarded);
        let mut script = Script {
            steps: vec![
                Step::K { d: 0, s: 0, us: 10, name: "a" },
                Step::Rec { d: 0, s: 0, ev: 0 },
                Step::Wait { d: 1, s: 0, ev: 0 },
                Step::K { d: 1, s: 0, us: 5, name: "b" },
                Step::K { d: 1, s: 1, us: 7, name: "c" },
            ],
            events: 1,
        };
        core.run(&mut sim, &mut script, SimTime::MAX);
        let cp = core.trail().iter().find(|cp| cp.enabled.iter().any(|e| e.device == 0));
        let cp = cp.expect("a choice point involving d0's completion");
        let d0 = cp.enabled.iter().find(|e| e.device == 0).unwrap();
        assert!(d0.footprint.devices.contains(&0) && d0.footprint.devices.contains(&1));
        assert!(d0.footprint.events.contains(&0));
        let d1 = cp.enabled.iter().find(|e| e.device == 1).unwrap();
        assert!(
            d0.footprint.intersects(&d1.footprint),
            "release chain and released device must not commute"
        );
        let report = sim.terminal_report();
        assert!(report.is_quiescent(), "program drains: {report:?}");
    }

    #[test]
    fn explore_replays_identically_on_cloned_state() {
        let template = two_device_sim();
        let run = |schedule: Vec<usize>| {
            let mut sim = template.clone();
            let mut core = ExploreCore::new(WindowRule::Conservative).with_schedule(schedule);
            core.run(&mut sim, &mut indep_script(), SimTime::MAX);
            sim.trace().unwrap().to_chrome_json()
        };
        assert_eq!(run(vec![0]), run(vec![0]), "same schedule, same bytes");
        assert_eq!(run(vec![1]), run(vec![1]));
    }
}
