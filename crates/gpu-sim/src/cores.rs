//! Interchangeable event-loop engines behind the [`EventCore`] trait.
//!
//! Both engines dispatch pending events in the *canonical order*
//! `(time, lane rank, lane-local seq)` — global lane first at ties, then
//! device lanes by index (see [`crate::lanes`]) — so for one seed they
//! produce byte-identical traces and equal metrics:
//!
//! * [`SequentialCore`] — the determinism oracle. Pops the canonically
//!   next event and dispatches it, exactly the classic single-heap loop.
//! * [`ParallelCore`] — conservative parallel discrete-event simulation.
//!   A coordinator repeatedly computes a *window bound* `W` that no
//!   cross-device interaction can precede, loans every *safe* device (its
//!   runtime plus event lane) to shard worker threads that replay their
//!   lanes up to `W` with the same per-device physics code, then merges
//!   the buffered effects back in canonical key order. Devices that are
//!   dead, touched by collectives, holding event records/waits, running a
//!   failing kernel, or inside a kernel-fault window are *hazards*: their
//!   events stay on the coordinator, which falls back to single-step
//!   sequential dispatch for them.
//!
//! The window bound is `min` of: the deadline, the global lane's next
//! event, every hazard device's next event, and the start of any
//! kernel-fault overlap on a safe device. Everything a shard does is
//! therefore provably independent of every other lane until `W`, which is
//! what makes the parallelism invisible in the results.
//!
//! The *lookahead* is a profitability gate, not a correctness knob:
//! windows spanning less simulated time than the lookahead are run inline
//! on the coordinator because the thread round-trip would cost more than
//! it buys. It defaults to the hosts' kernel launch overhead (the minimum
//! spacing new work arrives at) and serving layers pass a larger value
//! derived from their collective cost model via
//! [`ParallelCore::with_lookahead`].

use crate::sim::{DeviceRt, Driver, Simulation};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;

/// An event-loop engine: runs a [`Simulation`] against a [`Driver`] until
/// the lanes drain, `deadline` passes, or the driver requests a stop.
pub trait EventCore {
    /// Short engine name for logs and bench labels.
    fn name(&self) -> &'static str;

    /// Runs the simulation, returning the final simulated time. Semantics
    /// (including the returned instant and the state left behind) are
    /// identical across engines for identical inputs.
    fn run(&mut self, sim: &mut Simulation, driver: &mut dyn Driver, deadline: SimTime) -> SimTime;
}

/// Which event core a run should use. The string forms accepted by
/// [`CoreSelect::parse`] are `seq`, `par` (worker count = available
/// parallelism) and `par:N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreSelect {
    /// The sequential determinism oracle ([`SequentialCore`]).
    Seq,
    /// The conservative parallel engine ([`ParallelCore`]).
    Par {
        /// Number of shard worker threads (≥ 1).
        workers: usize,
    },
}

impl CoreSelect {
    /// Parses a `--core` flag value: `seq`, `par`, or `par:N`.
    ///
    /// # Errors
    /// Returns a description of the malformed value.
    pub fn parse(s: &str) -> Result<CoreSelect, String> {
        match s {
            "seq" => Ok(CoreSelect::Seq),
            "par" => Ok(CoreSelect::Par { workers: default_workers() }),
            other => match other.strip_prefix("par:") {
                Some(n) => n
                    .parse::<usize>()
                    .map(|w| CoreSelect::Par { workers: w.max(1) })
                    .map_err(|e| format!("bad worker count in core spec {other:?}: {e}")),
                None => Err(format!("unknown core {other:?} (expected seq, par, or par:N)")),
            },
        }
    }

    /// The ambient selection: `LIGER_CORE` from the environment when set
    /// and non-empty, else [`CoreSelect::Seq`]. [`Simulation::run`] honors
    /// this, so existing binaries and test suites can be re-run on the
    /// parallel core without code changes.
    ///
    /// # Panics
    /// Panics when `LIGER_CORE` is set to an unparseable value — a
    /// misconfigured environment must not silently fall back to `seq`.
    pub fn from_env() -> CoreSelect {
        match std::env::var("LIGER_CORE") {
            Ok(v) if !v.is_empty() => match CoreSelect::parse(&v) {
                Ok(core) => core,
                Err(e) => panic!("LIGER_CORE: {e}"),
            },
            _ => CoreSelect::Seq,
        }
    }
}

impl std::fmt::Display for CoreSelect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreSelect::Seq => write!(f, "seq"),
            CoreSelect::Par { workers } => write!(f, "par:{workers}"),
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The single-threaded engine: pops the canonically next event across all
/// lanes and dispatches it. This is the renamed classic global loop and
/// the oracle the parallel engine is tested against.
#[derive(Debug, Default, Clone, Copy)]
pub struct SequentialCore;

impl EventCore for SequentialCore {
    fn name(&self) -> &'static str {
        "seq"
    }

    fn run(&mut self, sim: &mut Simulation, driver: &mut dyn Driver, deadline: SimTime) -> SimTime {
        driver.start(sim);
        sim.drain_wakes(driver);
        while !sim.stop {
            let Some((at, pending)) = sim.pop_next() else { break };
            if sim.entry_is_stale(&pending) {
                // Superseded by a reprice: drop it without advancing time,
                // so the returned end time is the last *real* event.
                continue;
            }
            if at > deadline {
                sim.now = deadline;
                break;
            }
            debug_assert!(at >= sim.now, "time went backwards");
            sim.now = at;
            sim.dispatch(pending);
            sim.drain_wakes(driver);
        }
        sim.now
    }
}

/// The conservative parallel engine: shard worker threads advance safe
/// device lanes inside coordinator-computed windows; everything else runs
/// sequentially on the coordinator. See the [module docs](self) for the
/// protocol and its safety argument.
#[derive(Debug)]
pub struct ParallelCore {
    workers: usize,
    lookahead: Option<SimDuration>,
}

impl ParallelCore {
    /// A parallel core with `workers` shard threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> ParallelCore {
        ParallelCore { workers: workers.max(1), lookahead: None }
    }

    /// Overrides the minimum-profitable-window lookahead. Purely a
    /// performance knob: any value produces identical results. Serving
    /// layers derive one from their collective link-latency cost model;
    /// the default is the hosts' maximum kernel launch overhead.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> ParallelCore {
        self.lookahead = Some(lookahead);
        self
    }

    /// Shard worker threads this core will use.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl EventCore for ParallelCore {
    fn name(&self) -> &'static str {
        "par"
    }

    fn run(&mut self, sim: &mut Simulation, driver: &mut dyn Driver, deadline: SimTime) -> SimTime {
        use crate::shard::{run_window, ShardDone, ShardPool, ShardTask};

        let lookahead = self.lookahead.unwrap_or_else(|| default_lookahead(sim));
        // One worker still exercises the full loan/merge protocol (that is
        // what the 1-worker determinism tier checks) but threads buy
        // nothing, so the windows run inline on the coordinator.
        let pool = if self.workers >= 2 {
            Some(ShardPool::new(self.workers, sim.faults.clone()))
        } else {
            None
        };
        let window_cap = if deadline == SimTime::MAX {
            SimTime::MAX
        } else {
            // Events at exactly the deadline still dispatch; the bound is
            // exclusive.
            deadline + SimDuration::from_nanos(1)
        };

        driver.start(sim);
        sim.drain_wakes(driver);
        while !sim.stop {
            // -- window bound -------------------------------------------------
            let mut w = window_cap;
            if let Some((at, _)) = sim.global_lane.peek_key() {
                w = w.min(at);
            }
            let mut safe: Vec<usize> = Vec::with_capacity(sim.devices.len());
            for d in 0..sim.devices.len() {
                if device_is_hazard(sim, d) {
                    if let Some((at, _)) = sim.device_lanes[d].peek_key() {
                        w = w.min(at);
                    }
                } else {
                    safe.push(d);
                }
            }
            // Keep kernel-fault windows on the coordinator: shrinking `w`
            // only ever tightens already-checked intervals, so one pass
            // suffices.
            for &d in &safe {
                if let Some((at, _)) = sim.device_lanes[d].peek_key() {
                    if at < w && sim.faults.kernel_failure_possible(at, w) {
                        w = at;
                    }
                }
            }
            let mut work: Vec<usize> = Vec::new();
            let mut span_from = SimTime::MAX;
            for &d in &safe {
                if let Some((at, _)) = sim.device_lanes[d].peek_key() {
                    if at < w {
                        work.push(d);
                        span_from = span_from.min(at);
                    }
                }
            }

            // -- no shardable work: one canonical sequential step -------------
            if work.is_empty() {
                let Some((at, pending)) = sim.pop_next() else { break };
                if sim.entry_is_stale(&pending) {
                    continue;
                }
                if at > deadline {
                    sim.now = deadline;
                    break;
                }
                debug_assert!(at >= sim.now, "time went backwards");
                sim.now = at;
                sim.dispatch(pending);
                sim.drain_wakes(driver);
                continue;
            }

            // -- shard phase ---------------------------------------------------
            let capture = sim.trace.is_some();
            let use_threads = match &pool {
                Some(_) => work.len() > 1 && w.saturating_since(span_from) >= lookahead,
                None => false,
            };
            let mut results: Vec<ShardDone> = Vec::with_capacity(work.len());
            if use_threads {
                let p = pool.as_ref().expect("use_threads implies a pool");
                for (i, &d) in work.iter().enumerate() {
                    let device = std::mem::replace(&mut sim.devices[d], DeviceRt::placeholder());
                    let lane = std::mem::take(&mut sim.device_lanes[d]);
                    p.send(i % p.workers(), ShardTask { d, device, lane, until: w, capture });
                }
                for _ in 0..work.len() {
                    results.push(p.recv());
                }
            } else {
                for &d in &work {
                    let device = std::mem::replace(&mut sim.devices[d], DeviceRt::placeholder());
                    let lane = std::mem::take(&mut sim.device_lanes[d]);
                    let mut task = ShardTask { d, device, lane, until: w, capture };
                    let fx = run_window(&mut task, &sim.faults);
                    let ShardTask { d, device, lane, .. } = task;
                    results.push(ShardDone { d, device, lane, fx });
                }
            }

            // -- deterministic merge ------------------------------------------
            let mut trace_buf: Vec<(SimTime, usize, u64, TraceEvent)> = Vec::new();
            for done in results {
                let ShardDone { d, device, lane, fx } = done;
                sim.devices[d] = device;
                sim.device_lanes[d] = lane;
                sim.events_dispatched += fx.dispatched;
                sim.kernels_completed += fx.completed;
                if let Some(t) = fx.last_now {
                    // Every windowed event precedes the next coordinator
                    // event, so advancing to the latest one matches the
                    // sequential clock exactly.
                    if t > sim.now {
                        sim.now = t;
                    }
                }
                for (at, seq, ev) in fx.events {
                    trace_buf.push((at, d + 1, seq, ev));
                }
            }
            if !trace_buf.is_empty() {
                trace_buf.sort_by_key(|e| (e.0, e.1, e.2));
                let trace = sim.trace.as_mut().expect("captured shard events without a trace");
                for (.., ev) in trace_buf {
                    trace.push(ev);
                }
            }
        }
        sim.now
    }
}

/// True when `d`'s events may interact with other lanes and must stay on
/// the coordinator this round.
fn device_is_hazard(sim: &Simulation, d: usize) -> bool {
    let dev = &sim.devices[d];
    !dev.alive
        || !dev.active_colls.is_empty()
        || dev.run.iter().any(|s| s.live && s.failing)
        || dev.queues.iter().any(|q| q.has_boundary_ops())
}

/// Default lookahead: the minimum spacing at which hosts can feed new work
/// to devices. Windows thinner than this are not worth a thread hop.
fn default_lookahead(sim: &Simulation) -> SimDuration {
    sim.hosts.iter().map(|h| h.spec.launch_overhead).max().unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_select_parses() {
        assert_eq!(CoreSelect::parse("seq"), Ok(CoreSelect::Seq));
        assert!(
            matches!(CoreSelect::parse("par"), Ok(CoreSelect::Par { workers }) if workers >= 1)
        );
        assert_eq!(CoreSelect::parse("par:4"), Ok(CoreSelect::Par { workers: 4 }));
        assert_eq!(CoreSelect::parse("par:0"), Ok(CoreSelect::Par { workers: 1 }));
        assert!(CoreSelect::parse("warp").is_err());
        assert!(CoreSelect::parse("par:x").is_err());
    }

    #[test]
    fn core_select_displays_round_trip() {
        for s in ["seq", "par:3"] {
            assert_eq!(CoreSelect::parse(s).unwrap().to_string(), s);
        }
    }
}
