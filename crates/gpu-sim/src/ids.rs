//! Typed identifiers for simulator entities.
//!
//! All identifiers are small, copyable newtypes over indices. Devices, hosts
//! and streams are dense indices into the simulation's arenas; kernels,
//! events, collectives and timers are monotonically allocated handles.

use std::fmt;

/// Identifies a GPU device within the simulated node (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

/// Identifies a host (CPU) thread. In an MPI-style deployment there is one
/// host thread per device (one rank per GPU), which is how the builder sets
/// things up by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

/// Identifies a CUDA-like stream on a specific device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId {
    /// Owning device.
    pub device: DeviceId,
    /// Stream index on that device.
    pub index: usize,
}

impl StreamId {
    /// Convenience constructor.
    #[inline]
    pub const fn new(device: DeviceId, index: usize) -> Self {
        StreamId { device, index }
    }
}

/// Identifies a launched kernel instance (globally unique per simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u64);

/// Identifies a CUDA-like event (globally unique per simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// Identifies a collective operation (rendezvous group) spanning devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CollectiveId(pub u64);

/// Identifies a driver timer registered with [`crate::Simulation::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.s{}", self.device, self.index)
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev{}", self.0)
    }
}

impl fmt::Display for CollectiveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "coll{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(DeviceId(2).to_string(), "gpu2");
        assert_eq!(HostId(1).to_string(), "host1");
        assert_eq!(StreamId::new(DeviceId(0), 3).to_string(), "gpu0.s3");
        assert_eq!(KernelId(7).to_string(), "k7");
        assert_eq!(EventId(9).to_string(), "ev9");
        assert_eq!(CollectiveId(4).to_string(), "coll4");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(KernelId(1) < KernelId(2));
        assert!(DeviceId(0) < DeviceId(1));
    }
}

/// Identifiers serialize as their raw index/handle numbers; streams as a
/// `{device, index}` pair.
mod json_impls {
    use super::*;
    use crate::json::{JsonObject, ToJson};

    macro_rules! id_to_json {
        ($($t:ty),*) => {
            $(impl ToJson for $t {
                fn write_json(&self, out: &mut String) {
                    self.0.write_json(out);
                }
            })*
        };
    }

    id_to_json!(DeviceId, HostId, KernelId, EventId, CollectiveId, TimerId);

    impl ToJson for StreamId {
        fn write_json(&self, out: &mut String) {
            let mut obj = JsonObject::begin(out);
            obj.field("device", &self.device).field("index", &self.index);
            obj.end();
        }
    }
}
