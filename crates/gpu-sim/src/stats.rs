//! Per-device utilization statistics.
//!
//! The simulator accounts, per device, the wall time during which at least
//! one compute kernel (resp. at least one communication kernel) was
//! executing, plus aggregate kernel counts and execution time by class.
//! These feed the utilization/communication-ratio numbers quoted in the
//! paper's Fig. 3 analysis and the efficiency discussions in §4.

use crate::kernel::KernelClass;
use crate::time::{SimDuration, SimTime};

/// Utilization counters for one device.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Wall time with ≥1 compute kernel running.
    pub busy_compute: SimDuration,
    /// Wall time with ≥1 communication kernel running.
    pub busy_comm: SimDuration,
    /// Wall time with ≥1 kernel of each class running simultaneously.
    pub busy_overlap: SimDuration,
    /// Completed kernels by class.
    pub kernels_compute: u64,
    /// Completed communication kernels.
    pub kernels_comm: u64,
    /// Summed wall execution time of completed compute kernels.
    pub exec_compute: SimDuration,
    /// Summed wall execution time of completed communication kernels.
    pub exec_comm: SimDuration,
    /// Kernels killed by the fault schedule (subset of the completed
    /// counts: a failed kernel still drains its queue slot).
    pub kernels_failed: u64,
    /// Timestamp of the last population transition.
    last_transition: SimTime,
}

impl DeviceStats {
    /// Called *before* the running population changes, with the population
    /// that held since the last transition.
    pub(crate) fn account_transition(&mut self, now: SimTime, n_compute: u32, n_comm: u32) {
        let span = now.saturating_since(self.last_transition);
        if !span.is_zero() {
            if n_compute > 0 {
                self.busy_compute += span;
            }
            if n_comm > 0 {
                self.busy_comm += span;
            }
            if n_compute > 0 && n_comm > 0 {
                self.busy_overlap += span;
            }
        }
        self.last_transition = now;
    }

    /// Called when a kernel completes.
    pub(crate) fn account_kernel(&mut self, class: KernelClass, wall: SimDuration) {
        match class {
            KernelClass::Compute => {
                self.kernels_compute += 1;
                self.exec_compute += wall;
            }
            KernelClass::Comm => {
                self.kernels_comm += 1;
                self.exec_comm += wall;
            }
        }
    }

    /// Total completed kernels.
    pub fn kernels_total(&self) -> u64 {
        self.kernels_compute + self.kernels_comm
    }

    /// Fraction of busy (compute ∪ comm) time spent with communication
    /// active, `busy_comm / (busy_compute + busy_comm - busy_overlap)`.
    pub fn comm_ratio(&self) -> f64 {
        let union =
            self.busy_compute.as_nanos() + self.busy_comm.as_nanos() - self.busy_overlap.as_nanos();
        if union == 0 {
            return 0.0;
        }
        self.busy_comm.as_nanos() as f64 / union as f64
    }

    /// Fraction of `horizon` during which compute was active.
    pub fn compute_utilization(&self, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        self.busy_compute.as_nanos() as f64 / horizon.as_nanos() as f64
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm) for building
/// confidence-interval bounds in statistical tests instead of hard-coded
/// tolerances.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Builds a summary from an iterator of samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Summary {
        let mut s = Summary::new();
        for x in samples {
            s.push(x);
        }
        s
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        self.m2 / (self.count - 1) as f64
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    pub fn stderr(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.stddev() / (self.count as f64).sqrt()
    }

    /// Half-width of the normal-approximation confidence interval around the
    /// mean at `z` standard errors (z = 1.96 for 95%, 3.29 for 99.9%).
    pub fn ci_halfwidth(&self, z: f64) -> f64 {
        z * self.stderr()
    }
}

impl crate::json::ToJson for DeviceStats {
    fn write_json(&self, out: &mut String) {
        let mut obj = crate::json::JsonObject::begin(out);
        obj.field("busy_compute", &self.busy_compute)
            .field("busy_comm", &self.busy_comm)
            .field("busy_overlap", &self.busy_overlap)
            .field("kernels_compute", &self.kernels_compute)
            .field("kernels_comm", &self.kernels_comm)
            .field("exec_compute", &self.exec_compute)
            .field("exec_comm", &self.exec_comm)
            .field("kernels_failed", &self.kernels_failed);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_accumulate_by_class() {
        let mut s = DeviceStats::default();
        // [0,10us): compute only
        s.account_transition(SimTime::from_micros(10), 1, 0);
        // [10,15us): compute + comm
        s.account_transition(SimTime::from_micros(15), 1, 1);
        // [15,20us): idle
        s.account_transition(SimTime::from_micros(20), 0, 0);
        assert_eq!(s.busy_compute, SimDuration::from_micros(15));
        assert_eq!(s.busy_comm, SimDuration::from_micros(5));
        assert_eq!(s.busy_overlap, SimDuration::from_micros(5));
    }

    #[test]
    fn kernel_accounting() {
        let mut s = DeviceStats::default();
        s.account_kernel(KernelClass::Compute, SimDuration::from_micros(100));
        s.account_kernel(KernelClass::Comm, SimDuration::from_micros(40));
        s.account_kernel(KernelClass::Comm, SimDuration::from_micros(60));
        assert_eq!(s.kernels_total(), 3);
        assert_eq!(s.kernels_compute, 1);
        assert_eq!(s.kernels_comm, 2);
        assert_eq!(s.exec_compute, SimDuration::from_micros(100));
        assert_eq!(s.exec_comm, SimDuration::from_micros(100));
    }

    #[test]
    fn comm_ratio_matches_hand_computation() {
        let mut s = DeviceStats::default();
        s.account_transition(SimTime::from_micros(80), 1, 0); // 80us compute
        s.account_transition(SimTime::from_micros(100), 0, 1); // 20us comm
        s.account_transition(SimTime::from_micros(100), 0, 0);
        // union = 100us, comm = 20us
        assert!((s.comm_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn summary_matches_two_pass_moments() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_samples(samples);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // two-pass unbiased variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.stderr() - (32.0 / 7.0f64).sqrt() / 8.0f64.sqrt()).abs() < 1e-12);
        assert!(s.ci_halfwidth(1.96) > s.ci_halfwidth(1.0));
    }

    #[test]
    fn summary_degenerate_cases() {
        let empty = Summary::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
        assert_eq!(empty.stderr(), 0.0);
        let one = Summary::from_samples([3.5]);
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DeviceStats::default();
        assert_eq!(s.comm_ratio(), 0.0);
        assert_eq!(s.compute_utilization(SimDuration::from_micros(10)), 0.0);
        assert_eq!(s.compute_utilization(SimDuration::ZERO), 0.0);
        assert_eq!(s.kernels_total(), 0);
    }
}
