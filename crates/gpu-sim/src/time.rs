//! Simulated time.
//!
//! All simulator bookkeeping uses integer nanoseconds ([`SimTime`] for
//! instants, [`SimDuration`] for spans) so that event ordering is exact and
//! runs are bit-reproducible. Floating point only appears transiently inside
//! the contention rate model, where remaining work is rescaled; results are
//! rounded back up to whole nanoseconds before re-entering the event heap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from seconds expressed as a float.
    ///
    /// Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span between two instants; saturates to zero when `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from seconds expressed as a float.
    ///
    /// Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This span expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the span scaled by `factor`, rounding to whole nanoseconds.
    ///
    /// Used by the contention-factor machinery, where secondary-subset kernel
    /// durations are inflated by a profiled slowdown before fit-checking.
    #[inline]
    pub fn scale(self, factor: f64) -> SimDuration {
        debug_assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Largest of two spans.
    #[inline]
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Smallest of two spans.
    #[inline]
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds when `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// Times and durations serialize as raw nanosecond counts.
impl crate::json::ToJson for SimTime {
    fn write_json(&self, out: &mut String) {
        self.0.write_json(out);
    }
}

/// See [`SimTime`]'s impl: raw nanoseconds.
impl crate::json::ToJson for SimDuration {
    fn write_json(&self, out: &mut String) {
        self.0.write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
    }

    #[test]
    fn float_construction_saturates() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
    }

    #[test]
    fn arithmetic_basics() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!(t + d, SimTime::from_micros(14));
        assert_eq!((t + d) - t, d);
        assert_eq!(d + d, SimDuration::from_micros(8));
        assert_eq!(d * 3, SimDuration::from_micros(12));
        assert_eq!(d / 2, SimDuration::from_micros(2));
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_micros(1);
        let late = SimTime::from_micros(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(4));
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn scale_rounds_to_nanos() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.scale(1.1), SimDuration::from_nanos(1100));
        assert_eq!(d.scale(0.5), SimDuration::from_nanos(500));
        assert_eq!(d.scale(1.0), d);
    }

    #[test]
    fn min_max_sum() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let s: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(s, SimDuration::from_nanos(19));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_millis(12_000)), "12.000s");
    }
}
