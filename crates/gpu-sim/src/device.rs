//! Device (GPU) descriptions and hardware presets.
//!
//! A [`DeviceSpec`] captures the static capabilities the cost model and the
//! device scheduler need: SM count, peak FP16 throughput, memory bandwidth,
//! the number of hardware launch queues (the `CUDA_DEVICE_MAX_CONNECTIONS`
//! analog) and the contention parameters. Presets for the paper's two
//! testbeds (V100-16GB NVLink node, A100-80GB PCIe node) live here.

use crate::contention::ContentionParams;

/// Static description of one simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Peak dense FP16 throughput in FLOP/s (tensor cores).
    pub peak_flops_fp16: f64,
    /// Peak HBM bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Number of hardware launch queues ("connections"). Streams are mapped
    /// onto hardware queues round-robin; ops sharing a hardware queue execute
    /// strictly serially, which is why the paper pins
    /// `CUDA_DEVICE_MAX_CONNECTIONS=2` — one queue for the primary subset,
    /// one for the secondary.
    pub connections: usize,
    /// Contention model parameters for this device.
    pub contention: ContentionParams,
}

impl DeviceSpec {
    /// NVIDIA Tesla V100 (16 GB, SXM2): 80 SMs, 112 TFLOP/s FP16 tensor,
    /// 900 GB/s HBM2. Contention factor 1.10 per the paper's §4.2.
    pub fn v100_16gb() -> DeviceSpec {
        DeviceSpec {
            name: "V100-16GB".to_string(),
            sm_count: 80,
            peak_flops_fp16: 112e12,
            mem_bw: 900e9,
            mem_capacity: 16 * (1 << 30),
            connections: 2,
            contention: ContentionParams {
                compute_vs_comm: 1.10,
                comm_vs_compute: 1.14,
                compute_self_penalty: 1.15,
                comm_self_penalty: 1.05,
                reference_channels: 2,
                channel_sensitivity: 0.6,
            },
        }
    }

    /// NVIDIA A100 (80 GB, PCIe): 108 SMs, 312 TFLOP/s FP16 tensor,
    /// ~1.9 TB/s HBM2e. Contention factor 1.15 per the paper's §4.2 (the
    /// PCIe interconnect makes contention on the host bridge worse even
    /// though the device has more compute).
    pub fn a100_80gb() -> DeviceSpec {
        DeviceSpec {
            name: "A100-80GB".to_string(),
            sm_count: 108,
            peak_flops_fp16: 312e12,
            mem_bw: 1.9e12,
            mem_capacity: 80 * (1 << 30),
            connections: 2,
            contention: ContentionParams {
                compute_vs_comm: 1.15,
                comm_vs_compute: 1.20,
                compute_self_penalty: 1.15,
                comm_self_penalty: 1.08,
                reference_channels: 2,
                channel_sensitivity: 0.6,
            },
        }
    }

    /// A tiny, fast, frictionless device for unit tests: round numbers so
    /// hand-computed timings are exact.
    pub fn test_device() -> DeviceSpec {
        DeviceSpec {
            name: "TestGPU".to_string(),
            sm_count: 4,
            peak_flops_fp16: 1e12,
            mem_bw: 1e11,
            mem_capacity: 1 << 30,
            connections: 2,
            contention: ContentionParams::frictionless(),
        }
    }

    /// Overrides the number of hardware launch queues.
    pub fn with_connections(mut self, connections: usize) -> Self {
        self.connections = connections.max(1);
        self
    }

    /// Overrides the contention parameters.
    pub fn with_contention(mut self, contention: ContentionParams) -> Self {
        self.contention = contention;
        self
    }

    /// Validates the specification.
    pub fn validate(&self) -> Result<(), String> {
        if self.sm_count == 0 {
            return Err(format!("{}: sm_count must be >= 1", self.name));
        }
        if !(self.peak_flops_fp16.is_finite() && self.peak_flops_fp16 > 0.0) {
            return Err(format!("{}: peak_flops_fp16 must be positive", self.name));
        }
        if !(self.mem_bw.is_finite() && self.mem_bw > 0.0) {
            return Err(format!("{}: mem_bw must be positive", self.name));
        }
        if self.connections == 0 {
            return Err(format!("{}: connections must be >= 1", self.name));
        }
        self.contention.validate().map_err(|e| format!("{}: {e}", self.name))
    }
}

impl crate::json::ToJson for DeviceSpec {
    fn write_json(&self, out: &mut String) {
        let mut obj = crate::json::JsonObject::begin(out);
        obj.field("name", &self.name)
            .field("sm_count", &self.sm_count)
            .field("peak_flops_fp16", &self.peak_flops_fp16)
            .field("mem_bw", &self.mem_bw)
            .field("mem_capacity", &self.mem_capacity)
            .field("connections", &self.connections)
            .field("contention", &self.contention);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DeviceSpec::v100_16gb().validate().unwrap();
        DeviceSpec::a100_80gb().validate().unwrap();
        DeviceSpec::test_device().validate().unwrap();
    }

    #[test]
    fn preset_headline_numbers() {
        let v = DeviceSpec::v100_16gb();
        assert_eq!(v.sm_count, 80);
        assert_eq!(v.connections, 2);
        assert!((v.contention.compute_vs_comm - 1.10).abs() < 1e-12);

        let a = DeviceSpec::a100_80gb();
        assert!(a.peak_flops_fp16 > v.peak_flops_fp16);
        assert!(a.mem_capacity > v.mem_capacity);
        assert!((a.contention.compute_vs_comm - 1.15).abs() < 1e-12);
    }

    #[test]
    fn builder_overrides() {
        let d = DeviceSpec::test_device().with_connections(0);
        assert_eq!(d.connections, 1, "zero connections clamps to one");
        let d = DeviceSpec::test_device().with_connections(8);
        assert_eq!(d.connections, 8);
        let d = DeviceSpec::test_device().with_contention(ContentionParams::default());
        assert_eq!(d.contention, ContentionParams::default());
    }

    #[test]
    fn validation_catches_degenerate_specs() {
        let mut d = DeviceSpec::test_device();
        d.sm_count = 0;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::test_device();
        d.peak_flops_fp16 = 0.0;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::test_device();
        d.mem_bw = f64::INFINITY;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::test_device();
        d.connections = 0;
        assert!(d.validate().is_err());
    }
}
