//! Execution trace capture and Chrome-trace export.
//!
//! When enabled on the [`SimulationBuilder`](crate::SimulationBuilder), the
//! simulator records one [`TraceEvent`] per completed kernel. Traces drive
//! the overlap assertions in the test suite and can be exported to the
//! Chrome `chrome://tracing` / Perfetto JSON array format for visual
//! inspection of interleaving schedules.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::ids::{DeviceId, KernelId};
use crate::json::{JsonArray, JsonObject, ToJson};
use crate::kernel::KernelClass;
use crate::time::{SimDuration, SimTime};

/// One completed kernel execution.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Kernel identity.
    pub kernel: KernelId,
    /// Kernel name.
    pub name: Arc<str>,
    /// Computation or communication.
    pub class: KernelClass,
    /// User correlation tag (batch id, …).
    pub tag: u64,
    /// Device the kernel ran on.
    pub device: DeviceId,
    /// Stream it was launched to.
    pub stream: usize,
    /// When the op landed on the device queue.
    pub enqueued_at: SimTime,
    /// When execution began (collectives: when all peers arrived).
    pub started_at: SimTime,
    /// When execution completed.
    pub ended_at: SimTime,
    /// True when the kernel was killed by the fault schedule partway
    /// through (it still drains its queue slot; see `gpu-sim::faults`).
    pub failed: bool,
}

impl TraceEvent {
    /// Wall-clock execution span.
    pub fn duration(&self) -> SimDuration {
        self.ended_at.saturating_since(self.started_at)
    }

    /// Time spent queued before execution began.
    pub fn queue_delay(&self) -> SimDuration {
        self.started_at.saturating_since(self.enqueued_at)
    }

    /// True when the two events overlap in time (open intervals).
    pub fn overlaps(&self, other: &TraceEvent) -> bool {
        self.started_at < other.ended_at && other.started_at < self.ended_at
    }
}

/// A captured execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace { events: Vec::new() }
    }

    /// Appends an event (events arrive in completion order).
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All recorded events, in completion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that ran on `device`.
    pub fn on_device(&self, device: DeviceId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.device == device)
    }

    /// Events of a given class.
    pub fn of_class(&self, class: KernelClass) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.class == class)
    }

    /// Events carrying a given tag.
    pub fn with_tag(&self, tag: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.tag == tag)
    }

    /// Total wall time during which, on `device`, at least one compute kernel
    /// and at least one comm kernel were executing simultaneously. This is
    /// the overlap the interleaved parallelism manufactures.
    pub fn overlap_time(&self, device: DeviceId) -> SimDuration {
        // Sweep-line over start/end boundaries.
        let mut bounds: Vec<(SimTime, KernelClass, i32)> = Vec::new();
        for e in self.on_device(device) {
            bounds.push((e.started_at, e.class, 1));
            bounds.push((e.ended_at, e.class, -1));
        }
        bounds.sort_by_key(|&(t, _, delta)| (t, delta)); // ends before starts at ties
        let (mut nc, mut nm) = (0i32, 0i32);
        let mut overlap = 0u64;
        let mut last = SimTime::ZERO;
        for (t, class, delta) in bounds {
            if nc > 0 && nm > 0 {
                overlap += t.saturating_since(last).as_nanos();
            }
            last = t;
            match class {
                KernelClass::Compute => nc += delta,
                KernelClass::Comm => nm += delta,
            }
        }
        SimDuration::from_nanos(overlap)
    }

    /// Renders a fixed-width ASCII timeline over `[from, to)`: one lane per
    /// (device, stream), `#` for compute, `=` for communication, `.` for
    /// idle, `*` where both classes ran within one column. Handy for
    /// eyeballing interleaving schedules in a terminal or in docs:
    ///
    /// ```text
    /// gpu0.s0 |######====######====|
    /// gpu0.s1 |....====....====....|
    /// ```
    pub fn render_ascii(&self, width: usize, from: SimTime, to: SimTime) -> String {
        use std::collections::BTreeMap;
        let width = width.max(1);
        let span = to.saturating_since(from).as_nanos().max(1);
        // (device, stream) -> per-column class presence bitmask (1 = compute, 2 = comm).
        let mut lanes: BTreeMap<(usize, usize), Vec<u8>> = BTreeMap::new();
        for e in &self.events {
            let lane = lanes.entry((e.device.0, e.stream)).or_insert_with(|| vec![0u8; width]);
            if e.ended_at <= from || e.started_at >= to {
                continue;
            }
            let s = e.started_at.max(from).saturating_since(from).as_nanos();
            let t = e.ended_at.min(to).saturating_since(from).as_nanos();
            let c0 = (s as u128 * width as u128 / span as u128) as usize;
            let c1 = ((t as u128 * width as u128).div_ceil(span as u128) as usize).min(width);
            let bit = match e.class {
                KernelClass::Compute => 1u8,
                KernelClass::Comm => 2u8,
            };
            for cell in &mut lane[c0..c1.max(c0 + 1).min(width)] {
                *cell |= bit;
            }
        }
        let mut out = String::new();
        for ((device, stream), cells) in lanes {
            let _ = write!(out, "gpu{device}.s{stream} |");
            for c in cells {
                out.push(match c {
                    0 => '.',
                    1 => '#',
                    2 => '=',
                    _ => '*',
                });
            }
            out.push_str("|\n");
        }
        out
    }

    /// Serializes to the Chrome trace-event JSON array format through the
    /// internal [`crate::json`] writer (no JSON dependency); the format is
    /// a plain array of `{"name","cat","ph":"X","ts","dur","pid","tid"}`
    /// objects with timestamps in microseconds, unchanged across the move
    /// off serde.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 128 + 2);
        let mut arr = JsonArray::begin(&mut out);
        for e in &self.events {
            arr.item(e);
        }
        arr.end();
        out
    }
}

/// Renders one event as a Chrome trace-event object.
impl ToJson for TraceEvent {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::begin(out);
        obj.field("name", &&*self.name)
            .field("cat", &self.class.label())
            .field("ph", &"X")
            .field_with("ts", |s| {
                let _ = write!(s, "{:.3}", self.started_at.as_micros_f64());
            })
            .field_with("dur", |s| {
                let _ = write!(s, "{:.3}", self.duration().as_micros_f64());
            })
            .field("pid", &self.device.0)
            .field("tid", &self.stream)
            .field_with("args", |s| {
                let mut args = JsonObject::begin(s);
                args.field("tag", &self.tag)
                    .field("kernel", &self.kernel.0)
                    .field("failed", &self.failed);
                args.end();
            });
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(device: usize, class: KernelClass, start_us: u64, end_us: u64, tag: u64) -> TraceEvent {
        TraceEvent {
            kernel: KernelId(0),
            name: "k".into(),
            class,
            tag,
            device: DeviceId(device),
            stream: 0,
            enqueued_at: SimTime::from_micros(start_us.saturating_sub(1)),
            started_at: SimTime::from_micros(start_us),
            ended_at: SimTime::from_micros(end_us),
            failed: false,
        }
    }

    #[test]
    fn duration_and_delay() {
        let e = ev(0, KernelClass::Compute, 10, 25, 0);
        assert_eq!(e.duration(), SimDuration::from_micros(15));
        assert_eq!(e.queue_delay(), SimDuration::from_micros(1));
    }

    #[test]
    fn overlap_predicate() {
        let a = ev(0, KernelClass::Compute, 0, 10, 0);
        let b = ev(0, KernelClass::Comm, 5, 15, 0);
        let c = ev(0, KernelClass::Comm, 10, 20, 0);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
    }

    #[test]
    fn filters() {
        let mut t = Trace::new();
        t.push(ev(0, KernelClass::Compute, 0, 10, 7));
        t.push(ev(1, KernelClass::Comm, 0, 10, 7));
        t.push(ev(0, KernelClass::Comm, 10, 20, 8));
        assert_eq!(t.len(), 3);
        assert_eq!(t.on_device(DeviceId(0)).count(), 2);
        assert_eq!(t.of_class(KernelClass::Comm).count(), 2);
        assert_eq!(t.with_tag(7).count(), 2);
    }

    #[test]
    fn overlap_time_cross_class_only() {
        let mut t = Trace::new();
        // compute 0..10, comm 5..15 on device 0 => overlap 5us
        t.push(ev(0, KernelClass::Compute, 0, 10, 0));
        t.push(ev(0, KernelClass::Comm, 5, 15, 0));
        // two compute kernels overlapping is NOT cross-class overlap
        t.push(ev(0, KernelClass::Compute, 20, 30, 0));
        t.push(ev(0, KernelClass::Compute, 25, 35, 0));
        assert_eq!(t.overlap_time(DeviceId(0)), SimDuration::from_micros(5));
        // other device unaffected
        assert_eq!(t.overlap_time(DeviceId(1)), SimDuration::ZERO);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Trace::new();
        t.push(ev(0, KernelClass::Compute, 0, 10, 3));
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"compute\""));
        assert!(json.contains("\"tag\":3"));
    }

    #[test]
    fn event_names_are_escaped() {
        let mut t = Trace::new();
        let mut e = ev(0, KernelClass::Compute, 0, 10, 0);
        e.name = "ge\"mm".into();
        t.push(e);
        assert!(t.to_chrome_json().contains("\"name\":\"ge\\\"mm\""));
    }
}

#[cfg(test)]
mod ascii_tests {
    use super::*;

    fn ev(
        device: usize,
        stream: usize,
        class: KernelClass,
        start_us: u64,
        end_us: u64,
    ) -> TraceEvent {
        TraceEvent {
            kernel: KernelId(0),
            name: "k".into(),
            class,
            tag: 0,
            device: DeviceId(device),
            stream,
            enqueued_at: SimTime::from_micros(start_us),
            started_at: SimTime::from_micros(start_us),
            ended_at: SimTime::from_micros(end_us),
            failed: false,
        }
    }

    #[test]
    fn renders_lanes_with_class_glyphs() {
        let mut t = Trace::new();
        t.push(ev(0, 0, KernelClass::Compute, 0, 50));
        t.push(ev(0, 1, KernelClass::Comm, 50, 100));
        let s = t.render_ascii(10, SimTime::ZERO, SimTime::from_micros(100));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "gpu0.s0 |#####.....|");
        assert_eq!(lines[1], "gpu0.s1 |.....=====|");
    }

    #[test]
    fn overlap_marks_star() {
        let mut t = Trace::new();
        t.push(ev(0, 0, KernelClass::Compute, 0, 100));
        t.push(ev(0, 0, KernelClass::Comm, 0, 100));
        let s = t.render_ascii(4, SimTime::ZERO, SimTime::from_micros(100));
        assert_eq!(s.lines().next().unwrap(), "gpu0.s0 |****|");
    }

    #[test]
    fn events_outside_the_window_are_ignored() {
        let mut t = Trace::new();
        t.push(ev(1, 0, KernelClass::Compute, 200, 300));
        let s = t.render_ascii(5, SimTime::ZERO, SimTime::from_micros(100));
        assert_eq!(s.lines().next().unwrap(), "gpu1.s0 |.....|");
    }

    #[test]
    fn degenerate_width_and_span_do_not_panic() {
        let mut t = Trace::new();
        t.push(ev(0, 0, KernelClass::Compute, 0, 1));
        let s = t.render_ascii(0, SimTime::ZERO, SimTime::ZERO);
        assert!(s.contains("gpu0.s0"));
    }
}
