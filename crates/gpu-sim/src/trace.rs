//! Execution trace capture, Chrome-trace export and re-import.
//!
//! When enabled on the [`SimulationBuilder`](crate::SimulationBuilder), the
//! simulator records one [`TraceEvent`] per completed kernel plus one
//! [`TraceMark`] per synchronization/memory operation (event records,
//! resolved stream waits, allocations, frees). Traces drive the overlap
//! assertions in the test suite, feed the happens-before sanitizer in
//! `liger-verify`, and can be exported to the Chrome `chrome://tracing` /
//! Perfetto JSON array format for visual inspection of interleaving
//! schedules. [`Trace::from_chrome_json`] reads that format back, so
//! checked-in golden traces remain analyzable.

use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::ids::{CollectiveId, DeviceId, KernelId};
use crate::json::{JsonArray, JsonError, JsonObject, JsonParser, JsonValue, ToJson};
use crate::kernel::KernelClass;
use crate::time::{SimDuration, SimTime};

/// One completed kernel execution.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Kernel identity.
    pub kernel: KernelId,
    /// Kernel name.
    pub name: Arc<str>,
    /// Computation or communication.
    pub class: KernelClass,
    /// User correlation tag (batch id, …).
    pub tag: u64,
    /// Device the kernel ran on.
    pub device: DeviceId,
    /// Stream it was launched to.
    pub stream: usize,
    /// When the op landed on the device queue.
    pub enqueued_at: SimTime,
    /// When execution began (collectives: when all peers arrived).
    pub started_at: SimTime,
    /// When execution completed.
    pub ended_at: SimTime,
    /// True when the kernel was killed by the fault schedule partway
    /// through (it still drains its queue slot; see `gpu-sim::faults`).
    pub failed: bool,
    /// The rendezvous group for a collective kernel (`None` for plain
    /// kernels). Members of one group start and end together; the trace
    /// sanitizer checks exactly that.
    pub collective: Option<CollectiveId>,
}

impl TraceEvent {
    /// Wall-clock execution span.
    pub fn duration(&self) -> SimDuration {
        self.ended_at.saturating_since(self.started_at)
    }

    /// Time spent queued before execution began.
    pub fn queue_delay(&self) -> SimDuration {
        self.started_at.saturating_since(self.enqueued_at)
    }

    /// True when the two events overlap in time (open intervals).
    pub fn overlaps(&self, other: &TraceEvent) -> bool {
        self.started_at < other.ended_at && other.started_at < self.ended_at
    }
}

/// An instantaneous synchronization or memory operation captured alongside
/// kernel executions — the raw material from which the trace sanitizer
/// reconstructs happens-before order and allocation lifetimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceMark {
    /// An event-record operation reached the head of its hardware queue
    /// (everything enqueued before it on that stream had completed).
    Record {
        /// The recorded event's id.
        event: u64,
        /// Device the record drained on.
        device: DeviceId,
        /// Stream it was enqueued to.
        stream: usize,
        /// When it fired.
        at: SimTime,
    },
    /// A stream-wait resolved: its event had fired and the queue unblocked.
    Wait {
        /// The awaited event's id.
        event: u64,
        /// Device the wait drained on.
        device: DeviceId,
        /// Stream it was enqueued to.
        stream: usize,
        /// When it resolved.
        at: SimTime,
    },
    /// Device memory was allocated.
    Alloc {
        /// The allocation's id.
        id: u64,
        /// Device the bytes live on.
        device: DeviceId,
        /// Allocation size.
        bytes: u64,
        /// Allocation label (`"weights"`, `"batch working set"`, …).
        label: String,
        /// When it was allocated.
        at: SimTime,
    },
    /// Device memory was freed.
    Free {
        /// The freed allocation's id.
        id: u64,
        /// Device the bytes lived on.
        device: DeviceId,
        /// When it was freed.
        at: SimTime,
    },
}

impl TraceMark {
    /// The instant the mark happened.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceMark::Record { at, .. }
            | TraceMark::Wait { at, .. }
            | TraceMark::Alloc { at, .. }
            | TraceMark::Free { at, .. } => at,
        }
    }

    /// The device the mark belongs to.
    pub fn device(&self) -> DeviceId {
        match *self {
            TraceMark::Record { device, .. }
            | TraceMark::Wait { device, .. }
            | TraceMark::Alloc { device, .. }
            | TraceMark::Free { device, .. } => device,
        }
    }
}

/// A captured execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    marks: Vec<TraceMark>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace { events: Vec::new(), marks: Vec::new() }
    }

    /// Appends an event (events arrive in completion order).
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Appends a synchronization/memory mark (marks arrive in simulation
    /// order).
    pub fn push_mark(&mut self, mark: TraceMark) {
        self.marks.push(mark);
    }

    /// All recorded events, in completion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All recorded synchronization/memory marks, in simulation order.
    pub fn marks(&self) -> &[TraceMark] {
        &self.marks
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that ran on `device`.
    pub fn on_device(&self, device: DeviceId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.device == device)
    }

    /// Events of a given class.
    pub fn of_class(&self, class: KernelClass) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.class == class)
    }

    /// Events carrying a given tag.
    pub fn with_tag(&self, tag: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.tag == tag)
    }

    /// Total wall time during which, on `device`, at least one compute kernel
    /// and at least one comm kernel were executing simultaneously. This is
    /// the overlap the interleaved parallelism manufactures.
    pub fn overlap_time(&self, device: DeviceId) -> SimDuration {
        // Sweep-line over start/end boundaries.
        let mut bounds: Vec<(SimTime, KernelClass, i32)> = Vec::new();
        for e in self.on_device(device) {
            bounds.push((e.started_at, e.class, 1));
            bounds.push((e.ended_at, e.class, -1));
        }
        bounds.sort_by_key(|&(t, _, delta)| (t, delta)); // ends before starts at ties
        let (mut nc, mut nm) = (0i32, 0i32);
        let mut overlap = 0u64;
        let mut last = SimTime::ZERO;
        for (t, class, delta) in bounds {
            if nc > 0 && nm > 0 {
                overlap += t.saturating_since(last).as_nanos();
            }
            last = t;
            match class {
                KernelClass::Compute => nc += delta,
                KernelClass::Comm => nm += delta,
            }
        }
        SimDuration::from_nanos(overlap)
    }

    /// Renders a fixed-width ASCII timeline over `[from, to)`: one lane per
    /// (device, stream), `#` for compute, `=` for communication, `.` for
    /// idle, `*` where both classes ran within one column. Handy for
    /// eyeballing interleaving schedules in a terminal or in docs:
    ///
    /// ```text
    /// gpu0.s0 |######====######====|
    /// gpu0.s1 |....====....====....|
    /// ```
    pub fn render_ascii(&self, width: usize, from: SimTime, to: SimTime) -> String {
        use std::collections::BTreeMap;
        let width = width.max(1);
        let span = to.saturating_since(from).as_nanos().max(1);
        // (device, stream) -> per-column class presence bitmask (1 = compute, 2 = comm).
        let mut lanes: BTreeMap<(usize, usize), Vec<u8>> = BTreeMap::new();
        for e in &self.events {
            let lane = lanes.entry((e.device.0, e.stream)).or_insert_with(|| vec![0u8; width]);
            if e.ended_at <= from || e.started_at >= to {
                continue;
            }
            let s = e.started_at.max(from).saturating_since(from).as_nanos();
            let t = e.ended_at.min(to).saturating_since(from).as_nanos();
            let c0 = (s as u128 * width as u128 / span as u128) as usize;
            let c1 = ((t as u128 * width as u128).div_ceil(span as u128) as usize).min(width);
            let bit = match e.class {
                KernelClass::Compute => 1u8,
                KernelClass::Comm => 2u8,
            };
            for cell in &mut lane[c0..c1.max(c0 + 1).min(width)] {
                *cell |= bit;
            }
        }
        let mut out = String::new();
        for ((device, stream), cells) in lanes {
            let _ = write!(out, "gpu{device}.s{stream} |");
            for c in cells {
                out.push(match c {
                    0 => '.',
                    1 => '#',
                    2 => '=',
                    _ => '*',
                });
            }
            out.push_str("|\n");
        }
        out
    }

    /// Serializes to the Chrome trace-event JSON array format through the
    /// internal [`crate::json`] writer (no JSON dependency). Kernel
    /// executions become complete (`"ph":"X"`) events; synchronization and
    /// memory marks become instant (`"ph":"i"`) events with `cat` `"sync"`
    /// or `"mem"`. Timestamps are microseconds at nanosecond precision, so
    /// [`Trace::from_chrome_json`] round-trips the trace exactly.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 128 + self.marks.len() * 96 + 2);
        let mut arr = JsonArray::begin(&mut out);
        for e in &self.events {
            arr.item(e);
        }
        for m in &self.marks {
            arr.item(m);
        }
        arr.end();
        out
    }

    /// Parses a trace back from [`Trace::to_chrome_json`] output.
    pub fn from_chrome_json(input: &str) -> Result<Trace, TraceParseError> {
        Ok(Trace::parse_chrome_json(input)?.trace)
    }

    /// Parses a Chrome trace and additionally reports the byte offset at
    /// which every event and mark begins in `input`, so downstream
    /// diagnostics (the `liger-verify` sanitizer) can point at source
    /// locations the way [`crate::faults::ParseError`] does.
    pub fn parse_chrome_json(input: &str) -> Result<ParsedChromeTrace, TraceParseError> {
        let mut p = JsonParser::new(input);
        p.array_begin()?;
        let mut trace = Trace::new();
        let mut event_offsets = Vec::new();
        let mut mark_offsets = Vec::new();
        let mut first = true;
        while p.array_next(first)? {
            first = false;
            let offset = p.token_offset();
            let v = p.value()?;
            let ph = v
                .get("ph")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| TraceParseError::at(offset, "a \"ph\" field"))?;
            match ph {
                "X" => {
                    trace.push(parse_event(&v, offset)?);
                    event_offsets.push(offset);
                }
                "i" => {
                    trace.push_mark(parse_mark(&v, offset)?);
                    mark_offsets.push(offset);
                }
                other => {
                    return Err(TraceParseError::at(
                        offset,
                        format!("phase \"X\" or \"i\", found {other:?}"),
                    ))
                }
            }
        }
        p.finish()?;
        Ok(ParsedChromeTrace { trace, event_offsets, mark_offsets })
    }
}

/// A trace parsed from Chrome JSON, with the byte offset of every element.
#[derive(Debug, Clone)]
pub struct ParsedChromeTrace {
    /// The reconstructed trace.
    pub trace: Trace,
    /// Byte offset in the source text where each kernel event's JSON object
    /// begins (parallel to [`Trace::events`]).
    pub event_offsets: Vec<usize>,
    /// Byte offset where each mark's JSON object begins (parallel to
    /// [`Trace::marks`]).
    pub mark_offsets: Vec<usize>,
}

/// Why a Chrome trace failed to parse: a byte offset plus what was expected
/// there, in the same shape as [`crate::faults::ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Byte offset into the input where the problem sits.
    pub offset: usize,
    /// What was expected there.
    pub expected: String,
}

impl TraceParseError {
    fn at(offset: usize, expected: impl Into<String>) -> TraceParseError {
        TraceParseError { offset, expected: expected.into() }
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chrome trace error at byte {}: expected {}", self.offset, self.expected)
    }
}

impl std::error::Error for TraceParseError {}

impl From<JsonError> for TraceParseError {
    fn from(e: JsonError) -> TraceParseError {
        TraceParseError { offset: e.offset, expected: e.expected }
    }
}

/// Parses a `"{:.3}"`-formatted microsecond timestamp exactly (no float
/// detour: `123.456` micros are precisely 123456 ns).
fn micros_text_to_nanos(raw: &str, offset: usize) -> Result<u64, TraceParseError> {
    let bad = || TraceParseError::at(offset, format!("a microsecond timestamp, found {raw:?}"));
    let (int, frac) = raw.split_once('.').unwrap_or((raw, ""));
    let micros: u64 = int.parse().map_err(|_| bad())?;
    if frac.len() > 3 || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad());
    }
    let mut ns = 0u64;
    for i in 0..3 {
        ns = ns * 10 + u64::from(frac.as_bytes().get(i).map_or(0, |b| b - b'0'));
    }
    micros.checked_mul(1000).and_then(|m| m.checked_add(ns)).ok_or_else(bad)
}

fn time_field(v: &JsonValue, key: &str, offset: usize) -> Result<SimTime, TraceParseError> {
    let raw = v
        .get(key)
        .and_then(JsonValue::number_text)
        .ok_or_else(|| TraceParseError::at(offset, format!("a numeric {key:?} field")))?;
    Ok(SimTime::from_nanos(micros_text_to_nanos(raw, offset)?))
}

fn u64_field(v: &JsonValue, key: &str, offset: usize) -> Result<u64, TraceParseError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| TraceParseError::at(offset, format!("an integer {key:?} field")))
}

fn str_field<'a>(v: &'a JsonValue, key: &str, offset: usize) -> Result<&'a str, TraceParseError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| TraceParseError::at(offset, format!("a string {key:?} field")))
}

fn parse_event(v: &JsonValue, offset: usize) -> Result<TraceEvent, TraceParseError> {
    let class = match str_field(v, "cat", offset)? {
        "compute" => KernelClass::Compute,
        "comm" => KernelClass::Comm,
        other => {
            return Err(TraceParseError::at(
                offset,
                format!("kernel category \"compute\" or \"comm\", found {other:?}"),
            ))
        }
    };
    let args = v
        .get("args")
        .ok_or_else(|| TraceParseError::at(offset, "an \"args\" object on a kernel event"))?;
    let started_at = time_field(v, "ts", offset)?;
    let duration = time_field(v, "dur", offset)?;
    let collective = match args.get("coll") {
        None | Some(JsonValue::Null) => None,
        Some(c) => Some(CollectiveId(
            c.as_u64()
                .ok_or_else(|| TraceParseError::at(offset, "an integer or null \"coll\" field"))?,
        )),
    };
    Ok(TraceEvent {
        kernel: KernelId(u64_field(args, "kernel", offset)?),
        name: str_field(v, "name", offset)?.into(),
        class,
        tag: u64_field(args, "tag", offset)?,
        device: DeviceId(u64_field(v, "pid", offset)? as usize),
        stream: u64_field(v, "tid", offset)? as usize,
        enqueued_at: time_field(args, "enq", offset)?,
        started_at,
        ended_at: started_at + SimDuration::from_nanos(duration.as_nanos()),
        failed: args
            .get("failed")
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| TraceParseError::at(offset, "a boolean \"failed\" field"))?,
        collective,
    })
}

fn parse_mark(v: &JsonValue, offset: usize) -> Result<TraceMark, TraceParseError> {
    let args =
        v.get("args").ok_or_else(|| TraceParseError::at(offset, "an \"args\" object on a mark"))?;
    let at = time_field(v, "ts", offset)?;
    let device = DeviceId(u64_field(v, "pid", offset)? as usize);
    match str_field(v, "name", offset)? {
        "record" => Ok(TraceMark::Record {
            event: u64_field(args, "event", offset)?,
            device,
            stream: u64_field(v, "tid", offset)? as usize,
            at,
        }),
        "wait" => Ok(TraceMark::Wait {
            event: u64_field(args, "event", offset)?,
            device,
            stream: u64_field(v, "tid", offset)? as usize,
            at,
        }),
        "alloc" => Ok(TraceMark::Alloc {
            id: u64_field(args, "id", offset)?,
            device,
            bytes: u64_field(args, "bytes", offset)?,
            label: str_field(args, "label", offset)?.to_string(),
            at,
        }),
        "free" => Ok(TraceMark::Free { id: u64_field(args, "id", offset)?, device, at }),
        other => Err(TraceParseError::at(
            offset,
            format!("mark \"record\", \"wait\", \"alloc\" or \"free\", found {other:?}"),
        )),
    }
}

/// Renders one event as a Chrome trace-event object.
impl ToJson for TraceEvent {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::begin(out);
        obj.field("name", &&*self.name)
            .field("cat", &self.class.label())
            .field("ph", &"X")
            .field_with("ts", |s| {
                let _ = write!(s, "{:.3}", self.started_at.as_micros_f64());
            })
            .field_with("dur", |s| {
                let _ = write!(s, "{:.3}", self.duration().as_micros_f64());
            })
            .field("pid", &self.device.0)
            .field("tid", &self.stream)
            .field_with("args", |s| {
                let mut args = JsonObject::begin(s);
                args.field("tag", &self.tag)
                    .field("kernel", &self.kernel.0)
                    .field("failed", &self.failed)
                    .field_with("enq", |s| {
                        let _ = write!(s, "{:.3}", self.enqueued_at.as_micros_f64());
                    })
                    .field("coll", &self.collective.map(|c| c.0));
                args.end();
            });
        obj.end();
    }
}

/// Renders one mark as a Chrome instant event.
impl ToJson for TraceMark {
    fn write_json(&self, out: &mut String) {
        let (name, cat, tid) = match self {
            TraceMark::Record { stream, .. } => ("record", "sync", *stream),
            TraceMark::Wait { stream, .. } => ("wait", "sync", *stream),
            TraceMark::Alloc { .. } => ("alloc", "mem", 0),
            TraceMark::Free { .. } => ("free", "mem", 0),
        };
        let mut obj = JsonObject::begin(out);
        obj.field("name", &name)
            .field("cat", &cat)
            .field("ph", &"i")
            .field_with("ts", |s| {
                let _ = write!(s, "{:.3}", self.at().as_micros_f64());
            })
            .field("pid", &self.device().0)
            .field("tid", &tid)
            .field("s", &"t")
            .field_with("args", |s| {
                let mut args = JsonObject::begin(s);
                match self {
                    TraceMark::Record { event, .. } | TraceMark::Wait { event, .. } => {
                        args.field("event", event);
                    }
                    TraceMark::Alloc { id, bytes, label, .. } => {
                        args.field("id", id).field("bytes", bytes).field("label", label);
                    }
                    TraceMark::Free { id, .. } => {
                        args.field("id", id);
                    }
                }
                args.end();
            });
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(device: usize, class: KernelClass, start_us: u64, end_us: u64, tag: u64) -> TraceEvent {
        TraceEvent {
            kernel: KernelId(0),
            name: "k".into(),
            class,
            tag,
            device: DeviceId(device),
            stream: 0,
            enqueued_at: SimTime::from_micros(start_us.saturating_sub(1)),
            started_at: SimTime::from_micros(start_us),
            ended_at: SimTime::from_micros(end_us),
            failed: false,
            collective: None,
        }
    }

    #[test]
    fn duration_and_delay() {
        let e = ev(0, KernelClass::Compute, 10, 25, 0);
        assert_eq!(e.duration(), SimDuration::from_micros(15));
        assert_eq!(e.queue_delay(), SimDuration::from_micros(1));
    }

    #[test]
    fn overlap_predicate() {
        let a = ev(0, KernelClass::Compute, 0, 10, 0);
        let b = ev(0, KernelClass::Comm, 5, 15, 0);
        let c = ev(0, KernelClass::Comm, 10, 20, 0);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
    }

    #[test]
    fn filters() {
        let mut t = Trace::new();
        t.push(ev(0, KernelClass::Compute, 0, 10, 7));
        t.push(ev(1, KernelClass::Comm, 0, 10, 7));
        t.push(ev(0, KernelClass::Comm, 10, 20, 8));
        assert_eq!(t.len(), 3);
        assert_eq!(t.on_device(DeviceId(0)).count(), 2);
        assert_eq!(t.of_class(KernelClass::Comm).count(), 2);
        assert_eq!(t.with_tag(7).count(), 2);
    }

    #[test]
    fn overlap_time_cross_class_only() {
        let mut t = Trace::new();
        // compute 0..10, comm 5..15 on device 0 => overlap 5us
        t.push(ev(0, KernelClass::Compute, 0, 10, 0));
        t.push(ev(0, KernelClass::Comm, 5, 15, 0));
        // two compute kernels overlapping is NOT cross-class overlap
        t.push(ev(0, KernelClass::Compute, 20, 30, 0));
        t.push(ev(0, KernelClass::Compute, 25, 35, 0));
        assert_eq!(t.overlap_time(DeviceId(0)), SimDuration::from_micros(5));
        // other device unaffected
        assert_eq!(t.overlap_time(DeviceId(1)), SimDuration::ZERO);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Trace::new();
        t.push(ev(0, KernelClass::Compute, 0, 10, 3));
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"compute\""));
        assert!(json.contains("\"tag\":3"));
    }

    #[test]
    fn event_names_are_escaped() {
        let mut t = Trace::new();
        let mut e = ev(0, KernelClass::Compute, 0, 10, 0);
        e.name = "ge\"mm".into();
        t.push(e);
        assert!(t.to_chrome_json().contains("\"name\":\"ge\\\"mm\""));
    }

    #[test]
    fn chrome_json_round_trips_byte_identically() {
        let mut t = Trace::new();
        let mut a = ev(0, KernelClass::Compute, 5, 17, (1 << 62) | 3);
        a.failed = true;
        t.push(a);
        let mut b = ev(1, KernelClass::Comm, 17, 40, 3);
        b.collective = Some(CollectiveId(9));
        b.stream = 1;
        t.push(b);
        t.push_mark(TraceMark::Record {
            event: 4,
            device: DeviceId(0),
            stream: 0,
            at: SimTime::from_micros(17),
        });
        t.push_mark(TraceMark::Wait {
            event: 4,
            device: DeviceId(1),
            stream: 1,
            at: SimTime::from_micros(17),
        });
        t.push_mark(TraceMark::Alloc {
            id: 0,
            device: DeviceId(0),
            bytes: 1 << 30,
            label: "weights".into(),
            at: SimTime::ZERO,
        });
        t.push_mark(TraceMark::Free { id: 0, device: DeviceId(0), at: SimTime::from_micros(99) });
        let json = t.to_chrome_json();
        let back = Trace::from_chrome_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.marks().len(), 4);
        assert_eq!(back.events()[0].tag, (1 << 62) | 3, "full-width tags survive");
        assert_eq!(back.events()[1].collective, Some(CollectiveId(9)));
        assert_eq!(back.marks(), t.marks());
        assert_eq!(back.to_chrome_json(), json, "re-export is byte-identical");
    }

    #[test]
    fn parse_offsets_point_at_elements() {
        let mut t = Trace::new();
        t.push(ev(0, KernelClass::Compute, 0, 10, 1));
        t.push_mark(TraceMark::Free { id: 7, device: DeviceId(0), at: SimTime::ZERO });
        let json = t.to_chrome_json();
        let parsed = Trace::parse_chrome_json(&json).unwrap();
        assert_eq!(parsed.event_offsets.len(), 1);
        assert_eq!(parsed.mark_offsets.len(), 1);
        assert_eq!(&json[parsed.event_offsets[0]..parsed.event_offsets[0] + 1], "{");
        assert!(json[parsed.mark_offsets[0]..].starts_with("{\"name\":\"free\""));
    }

    #[test]
    fn parse_rejects_malformed_traces_with_offsets() {
        let err = Trace::from_chrome_json("not json").unwrap_err();
        assert_eq!(err.offset, 0);
        let err = Trace::from_chrome_json("[{\"ph\":\"Q\"}]").unwrap_err();
        assert!(err.to_string().contains("at byte 1"), "{err}");
        let err = Trace::from_chrome_json("[{\"ph\":\"X\",\"cat\":\"compute\"}]").unwrap_err();
        assert!(err.expected.contains("args"), "{err}");
    }

    #[test]
    fn timestamp_text_parses_exactly() {
        assert_eq!(micros_text_to_nanos("123.456", 0).unwrap(), 123_456);
        assert_eq!(micros_text_to_nanos("0.001", 0).unwrap(), 1);
        assert_eq!(micros_text_to_nanos("7", 0).unwrap(), 7_000);
        assert_eq!(micros_text_to_nanos("7.25", 0).unwrap(), 7_250);
        assert!(micros_text_to_nanos("1.2345", 0).is_err(), "sub-ns precision is not ours");
        assert!(micros_text_to_nanos("-1.0", 0).is_err());
    }
}

#[cfg(test)]
mod ascii_tests {
    use super::*;

    fn ev(
        device: usize,
        stream: usize,
        class: KernelClass,
        start_us: u64,
        end_us: u64,
    ) -> TraceEvent {
        TraceEvent {
            kernel: KernelId(0),
            name: "k".into(),
            class,
            tag: 0,
            device: DeviceId(device),
            stream,
            enqueued_at: SimTime::from_micros(start_us),
            started_at: SimTime::from_micros(start_us),
            ended_at: SimTime::from_micros(end_us),
            failed: false,
            collective: None,
        }
    }

    #[test]
    fn renders_lanes_with_class_glyphs() {
        let mut t = Trace::new();
        t.push(ev(0, 0, KernelClass::Compute, 0, 50));
        t.push(ev(0, 1, KernelClass::Comm, 50, 100));
        let s = t.render_ascii(10, SimTime::ZERO, SimTime::from_micros(100));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "gpu0.s0 |#####.....|");
        assert_eq!(lines[1], "gpu0.s1 |.....=====|");
    }

    #[test]
    fn overlap_marks_star() {
        let mut t = Trace::new();
        t.push(ev(0, 0, KernelClass::Compute, 0, 100));
        t.push(ev(0, 0, KernelClass::Comm, 0, 100));
        let s = t.render_ascii(4, SimTime::ZERO, SimTime::from_micros(100));
        assert_eq!(s.lines().next().unwrap(), "gpu0.s0 |****|");
    }

    #[test]
    fn events_outside_the_window_are_ignored() {
        let mut t = Trace::new();
        t.push(ev(1, 0, KernelClass::Compute, 200, 300));
        let s = t.render_ascii(5, SimTime::ZERO, SimTime::from_micros(100));
        assert_eq!(s.lines().next().unwrap(), "gpu1.s0 |.....|");
    }

    #[test]
    fn degenerate_width_and_span_do_not_panic() {
        let mut t = Trace::new();
        t.push(ev(0, 0, KernelClass::Compute, 0, 1));
        let s = t.render_ascii(0, SimTime::ZERO, SimTime::ZERO);
        assert!(s.contains("gpu0.s0"));
    }
}
