//! Self-contained pseudo-random number generation.
//!
//! The workspace builds with zero external crates, so the seeded workload
//! generators cannot use `rand`. This module provides the small slice of
//! functionality they need: a [`SplitMix64`] seeder, a [`Rng`] built on the
//! xoshiro256++ core (Blackman & Vigna), and the uniform / lognormal /
//! exponential sampling the arrival processes draw from.
//!
//! Everything here is deterministic across platforms and Rust versions:
//! the same seed always yields the same stream, which the conformance
//! tests (`tests/engine_conformance.rs`) pin down byte-for-byte.

use std::ops::Range;

/// The SplitMix64 generator (Steele, Lea & Flood). Used to expand a single
/// `u64` seed into the 256-bit xoshiro state; also a fine standalone
/// generator for deriving per-case seeds in the property-test harness.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from the given seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A seedable generator with the xoshiro256++ core: fast, tiny state,
/// excellent statistical quality — more than enough for workload synthesis
/// and property-test case generation (we never need cryptographic strength).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64, as
    /// the xoshiro reference implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// The next 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform draw below `n` (Lemire's nearly-divisionless method with a
    /// rejection step, so the result is exactly uniform).
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n || low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform draw from the half-open range `lo..hi`.
    pub fn u64_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.u64_below(range.end - range.start)
    }

    /// A uniform draw from the inclusive range `[lo, hi]`.
    pub fn u32_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty inclusive range [{lo}, {hi}]");
        lo + self.u64_below((hi - lo) as u64 + 1) as u32
    }

    /// A uniform draw from the half-open range `lo..hi`.
    pub fn usize_range(&mut self, range: Range<usize>) -> usize {
        self.u64_range(range.start as u64..range.end as u64) as usize
    }

    /// A uniform draw from the half-open interval `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty f64 range [{lo}, {hi})");
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform draw from the open interval `(0, 1]` — safe to feed to
    /// `ln()` for inverse-transform sampling.
    pub fn open01(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// An exponential inter-arrival gap at the given `rate` (events per unit
    /// time): inverse-transform sampling.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -self.open01().ln() / rate
    }

    /// A standard normal draw (Box–Muller; one of the pair is discarded to
    /// keep the generator stateless beyond its core).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.open01();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A lognormal draw parameterized by its *median* (`exp(mu)`) and the
    /// log-space standard deviation `sigma`.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0 && sigma >= 0.0, "bad lognormal parameters");
        median * (sigma * self.standard_normal()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of SplitMix64 seeded with 1234567, from the
        // reference implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_stays_in_unit_interval_with_right_mean() {
        let mut r = Rng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_draws_cover_their_range_uniformly() {
        let mut r = Rng::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            let x = r.u32_inclusive(16, 23);
            assert!((16..=23).contains(&x));
            counts[(x - 16) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} count {c} far from uniform");
        }
    }

    #[test]
    fn exponential_has_the_right_mean() {
        let mut r = Rng::seed_from_u64(5);
        let rate = 20.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() / (1.0 / rate) < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_median_and_tail() {
        let mut r = Rng::seed_from_u64(11);
        let mut xs: Vec<f64> = (0..20_000).map(|_| r.lognormal(64.0, 0.8)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((55.0..75.0).contains(&median), "median {median}");
        let p95 = xs[(xs.len() as f64 * 0.95) as usize];
        assert!(p95 > 2.0 * median, "p95 {p95} not heavy-tailed vs median {median}");
    }

    #[test]
    #[should_panic(expected = "u64_below(0)")]
    fn zero_bound_rejected() {
        Rng::seed_from_u64(0).u64_below(0);
    }
}
