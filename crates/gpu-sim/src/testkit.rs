//! A small self-contained property-test harness.
//!
//! Replaces `proptest` for this workspace: each property runs over a batch
//! of deterministically seeded random cases. Cases are generated from a
//! [`Gen`] (backed by [`crate::rng::Rng`]); assertion failures inside a
//! case are caught, the *failing case's seed* is reported, and the panic is
//! re-raised so the test still fails loudly.
//!
//! Reproducing a failure is a matter of re-running with the reported seed:
//!
//! ```sh
//! LIGER_PROP_SEED=0xdeadbeef cargo test -p liger-core --test scheduler_props
//! ```
//!
//! Environment knobs:
//! - `LIGER_PROP_SEED` — run only the case with this seed (decimal or 0x-hex).
//! - `LIGER_PROP_CASES` — override the number of cases for every property.
//!
//! There is deliberately no shrinking: cases are small by construction
//! (generators bound their sizes), and the failing seed plus the property
//! name has been enough to debug every failure so far.

use std::panic::{self, AssertUnwindSafe};

use crate::rng::{Rng, SplitMix64};

/// Per-case random value source handed to properties.
pub struct Gen {
    rng: Rng,
    /// The seed this case was built from (also reported on failure).
    pub seed: u64,
}

impl Gen {
    /// Creates a generator for one case.
    pub fn from_seed(seed: u64) -> Gen {
        Gen { rng: Rng::seed_from_u64(seed), seed }
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.rng.gen_bool()
    }

    /// Uniform `u64` in `lo..hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.u64_range(lo..hi)
    }

    /// Uniform `u32` in `lo..hi`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.u64_range(lo as u64..hi as u64) as u32
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.usize_range(lo..hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.f64_range(lo, hi)
    }

    /// Uniform draw of any `u64`.
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize_in(0, items.len())]
    }

    /// A vector with a length drawn uniformly from `len_lo..len_hi`, each
    /// element produced by `f`.
    pub fn vec_of<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len_lo, len_hi);
        (0..n).map(|_| f(self)).collect()
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Runs `property` over `cases` deterministically seeded random cases.
///
/// The base seed is derived from the property `name`, so distinct
/// properties explore distinct streams but every run of the same test
/// binary replays identical cases (no flakiness, no time-of-day seeding).
/// On a panic inside a case, the failing seed is printed and the panic is
/// propagated.
pub fn check(name: &str, cases: u32, mut property: impl FnMut(&mut Gen)) {
    if let Some(seed) = std::env::var("LIGER_PROP_SEED").ok().as_deref().and_then(parse_seed) {
        let mut gen = Gen::from_seed(seed);
        property(&mut gen);
        return;
    }
    let cases =
        std::env::var("LIGER_PROP_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(cases);
    // FNV-1a over the name gives a stable per-property base seed.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x1000_0000_01b3);
    }
    let mut seeder = SplitMix64::new(base);
    for case in 0..cases {
        let seed = seeder.next_u64();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut gen = Gen::from_seed(seed);
            property(&mut gen);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} — \
                 rerun just this case with LIGER_PROP_SEED={seed:#x}"
            );
            panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        check("always-true", 50, |g| {
            let _ = g.u64_in(0, 10);
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 50);
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            check("fails-eventually", 20, |g| {
                assert!(g.u64_in(0, 4) != 2, "hit the bad value");
            });
        }));
        assert!(result.is_err(), "property should have failed");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            check("stable-stream", 10, |g| seen.push(g.any_u64()));
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn generators_respect_bounds() {
        check("bounds", 200, |g| {
            let v = g.vec_of(1, 8, |g| g.u32_in(5, 9));
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| (5..9).contains(&x)));
            let pick = *g.choose(&[1, 2, 3]);
            assert!((1..=3).contains(&pick));
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        });
    }
}
