//! Property tests for the discrete-event engine: conservation, ordering and
//! rendezvous invariants over randomized launch plans.
//!
//! Runs on the internal [`liger_gpu_sim::testkit`] harness; rerun a failing
//! case with the `LIGER_PROP_SEED` it prints.

use liger_gpu_sim::prelude::*;
use liger_gpu_sim::testkit::{check, Gen};

/// One step of a randomized launch plan.
#[derive(Debug, Clone)]
enum PlanOp {
    /// A plain kernel on one device/stream.
    Single { device: usize, stream: usize, compute: bool, work_us: u64 },
    /// A collective across all devices, on the given stream index everywhere.
    Collective { stream: usize, work_us: u64 },
}

/// 1–59 ops, singles four times as likely as collectives.
fn gen_plan(g: &mut Gen, devices: usize) -> Vec<PlanOp> {
    g.vec_of(1, 60, |g| {
        if g.usize_in(0, 5) < 4 {
            PlanOp::Single {
                device: g.usize_in(0, devices),
                stream: g.usize_in(0, 4),
                compute: g.bool(),
                work_us: g.u64_in(1, 500),
            }
        } else {
            PlanOp::Collective { stream: g.usize_in(0, 4), work_us: g.u64_in(1, 500) }
        }
    })
}

struct PlanDriver {
    plan: Vec<PlanOp>,
    devices: usize,
}

impl Driver for PlanDriver {
    fn start(&mut self, sim: &mut Simulation) {
        for (i, op) in self.plan.iter().enumerate() {
            let tag = i as u64;
            match *op {
                PlanOp::Single { device, stream, compute, work_us } => {
                    let work = SimDuration::from_micros(work_us);
                    let spec = if compute {
                        KernelSpec::compute(format!("c{i}"), work)
                    } else {
                        KernelSpec::comm(format!("m{i}"), work)
                    };
                    sim.launch(
                        HostId(device),
                        StreamId::new(DeviceId(device), stream),
                        spec.with_tag(tag),
                    );
                }
                PlanOp::Collective { stream, work_us } => {
                    let c = sim.new_collective(self.devices);
                    for d in 0..self.devices {
                        let spec =
                            KernelSpec::comm(format!("ar{i}"), SimDuration::from_micros(work_us))
                                .with_collective(c)
                                .with_tag(tag);
                        sim.launch(HostId(d), StreamId::new(DeviceId(d), stream), spec);
                    }
                }
            }
        }
    }

    fn on_wake(&mut self, _: Wake, _: &mut Simulation) {}
}

fn run_plan(plan: &[PlanOp], devices: usize, contention: bool) -> (Simulation, Trace) {
    let spec = if contention { DeviceSpec::v100_16gb() } else { DeviceSpec::test_device() };
    let mut sim = Simulation::builder().devices(spec, devices).capture_trace(true).build().unwrap();
    let mut drv = PlanDriver { plan: plan.to_vec(), devices };
    sim.run_to_completion(&mut drv);
    let trace = sim.take_trace().unwrap();
    (sim, trace)
}

fn expected_kernels(plan: &[PlanOp], devices: usize) -> u64 {
    plan.iter()
        .map(|op| match op {
            PlanOp::Single { .. } => 1,
            PlanOp::Collective { .. } => devices as u64,
        })
        .sum()
}

/// Every launched kernel eventually completes, exactly once.
#[test]
fn no_kernel_is_lost() {
    check("no_kernel_is_lost", 64, |g| {
        let plan = gen_plan(g, 3);
        let (sim, trace) = run_plan(&plan, 3, true);
        let expect = expected_kernels(&plan, 3);
        assert_eq!(sim.kernels_launched(), expect);
        assert_eq!(sim.kernels_completed(), expect);
        assert_eq!(trace.len() as u64, expect);
    });
}

/// Kernels never start before they are enqueued, and never end before they
/// start (with nonzero work).
#[test]
fn causality() {
    check("causality", 64, |g| {
        let plan = gen_plan(g, 2);
        let (_, trace) = run_plan(&plan, 2, true);
        for e in trace.events() {
            assert!(e.started_at >= e.enqueued_at, "{e:?} started before enqueue");
            assert!(e.ended_at > e.started_at, "{e:?} zero/negative span");
        }
    });
}

/// Within one hardware queue (stream % connections), execution intervals
/// are disjoint and ordered by launch order.
#[test]
fn hardware_queue_serialization() {
    check("hardware_queue_serialization", 64, |g| {
        let plan = gen_plan(g, 2);
        let (sim, trace) = run_plan(&plan, 2, true);
        for d in 0..2 {
            let connections = sim.device_spec(DeviceId(d)).connections;
            for q in 0..connections {
                let mut evs: Vec<_> =
                    trace.on_device(DeviceId(d)).filter(|e| e.stream % connections == q).collect();
                evs.sort_by_key(|e| e.enqueued_at);
                for w in evs.windows(2) {
                    assert!(
                        w[1].started_at >= w[0].ended_at,
                        "queue {q} on device {d} overlapped: {:?} then {:?}",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    });
}

/// All members of a collective start and end at the same instant.
#[test]
fn collectives_are_synchronous() {
    check("collectives_are_synchronous", 64, |g| {
        let plan = gen_plan(g, 3);
        let (_, trace) = run_plan(&plan, 3, true);
        for (i, op) in plan.iter().enumerate() {
            if matches!(op, PlanOp::Collective { .. }) {
                let members: Vec<_> = trace.with_tag(i as u64).collect();
                assert_eq!(members.len(), 3);
                for m in &members {
                    assert_eq!(m.started_at, members[0].started_at);
                    assert_eq!(m.ended_at, members[0].ended_at);
                }
            }
        }
    });
}

/// Contention only ever stretches kernels: wall duration >= nominal work.
#[test]
fn contention_never_speeds_up() {
    check("contention_never_speeds_up", 64, |g| {
        let plan = gen_plan(g, 2);
        let (_, trace) = run_plan(&plan, 2, true);
        for (i, op) in plan.iter().enumerate() {
            let work_us = match *op {
                PlanOp::Single { work_us, .. } => work_us,
                PlanOp::Collective { work_us, .. } => work_us,
            };
            for e in trace.with_tag(i as u64) {
                assert!(
                    e.duration() >= SimDuration::from_micros(work_us),
                    "kernel {i} ran faster than its work: {} < {}us",
                    e.duration(),
                    work_us
                );
            }
        }
    });
}

/// The same plan always produces the identical trace (determinism).
#[test]
fn deterministic_replay() {
    check("deterministic_replay", 64, |g| {
        let plan = gen_plan(g, 3);
        let (_, t1) = run_plan(&plan, 3, true);
        let (_, t2) = run_plan(&plan, 3, true);
        assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.events().iter().zip(t2.events()) {
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.started_at, b.started_at);
            assert_eq!(a.ended_at, b.ended_at);
            assert_eq!(a.device, b.device);
        }
    });
}

/// Chrome JSON export of any simulated trace parses back and re-serializes
/// byte-identically (exact u64 tags, exact nanosecond timestamps).
#[test]
fn chrome_json_round_trips() {
    check("chrome_json_round_trips", 64, |g| {
        let plan = gen_plan(g, 3);
        let (_, trace) = run_plan(&plan, 3, true);
        let json = trace.to_chrome_json();
        let back = Trace::from_chrome_json(&json)
            .unwrap_or_else(|e| panic!("exported trace failed to parse: {e}"));
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.to_chrome_json(), json, "round trip is not byte-identical");
    });
}

/// Makespan is at least the critical path of any single hardware queue
/// under no contention (frictionless device, works only).
#[test]
fn makespan_lower_bound() {
    check("makespan_lower_bound", 64, |g| {
        let plan = gen_plan(g, 2);
        let (sim, trace) = run_plan(&plan, 2, false);
        let end = trace.events().iter().map(|e| e.ended_at).max().unwrap_or(SimTime::ZERO);
        // Per (device, queue) sum of nominal works is a lower bound.
        for d in 0..2 {
            let connections = sim.device_spec(DeviceId(d)).connections;
            for q in 0..connections {
                let total: SimDuration = trace
                    .on_device(DeviceId(d))
                    .filter(|e| e.stream % connections == q)
                    .map(|e| e.duration())
                    .sum();
                // Durations are wall times; under frictionless contention a
                // queue's wall occupancy cannot exceed the makespan.
                assert!(end.as_nanos() >= total.as_nanos().saturating_sub(1));
            }
        }
    });
}
