//! Property tests for the fault-injection layer: the engine's ordering and
//! causality invariants must hold under *arbitrary* fault schedules —
//! stragglers, degraded links, kernel failures and launch spikes — and
//! replay must stay deterministic.
//!
//! Runs on the internal [`liger_gpu_sim::testkit`] harness; rerun a failing
//! case with the `LIGER_PROP_SEED` it prints.

use liger_gpu_sim::prelude::*;
use liger_gpu_sim::testkit::{check, Gen};
use liger_gpu_sim::{FaultSpec, KernelFaultParams, LaunchSpikeParams};

/// One step of a randomized launch plan (mirrors `proptests.rs`).
#[derive(Debug, Clone)]
enum PlanOp {
    Single { device: usize, stream: usize, compute: bool, work_us: u64 },
    Collective { stream: usize, work_us: u64 },
}

fn gen_plan(g: &mut Gen, devices: usize) -> Vec<PlanOp> {
    g.vec_of(1, 40, |g| {
        if g.usize_in(0, 5) < 4 {
            PlanOp::Single {
                device: g.usize_in(0, devices),
                stream: g.usize_in(0, 4),
                compute: g.bool(),
                work_us: g.u64_in(1, 400),
            }
        } else {
            PlanOp::Collective { stream: g.usize_in(0, 4), work_us: g.u64_in(1, 400) }
        }
    })
}

/// A randomized fault schedule: 0–2 stragglers, 0–1 degraded links, an
/// optional kernel-failure window and an optional launch-spike window.
fn gen_faults(g: &mut Gen, devices: usize) -> FaultSpec {
    let mut spec = FaultSpec::new(g.any_u64());
    for _ in 0..g.usize_in(0, 3) {
        let from = g.u64_in(0, 2_000);
        let len = g.u64_in(1, 4_000);
        spec = spec.straggler(
            DeviceId(g.usize_in(0, devices)),
            SimTime::from_micros(from),
            SimTime::from_micros(from + len),
            g.f64_in(1.0, 8.0),
        );
    }
    if devices >= 2 && g.bool() {
        let a = g.usize_in(0, devices);
        let b = (a + 1 + g.usize_in(0, devices - 1)) % devices;
        let from = g.u64_in(0, 2_000);
        let len = g.u64_in(1, 4_000);
        spec = spec.degrade_link(
            DeviceId(a),
            DeviceId(b),
            SimTime::from_micros(from),
            SimTime::from_micros(from + len),
            g.f64_in(1.0, 6.0),
        );
    }
    if g.bool() {
        spec = spec.kernel_failures(KernelFaultParams {
            prob: g.f64_in(0.0, 0.6),
            fraction: g.f64_in(0.1, 1.0),
            from: SimTime::ZERO,
            until: SimTime::from_micros(g.u64_in(1, 6_000)),
        });
    }
    if g.bool() {
        spec = spec.launch_spikes(LaunchSpikeParams {
            prob: g.f64_in(0.0, 0.5),
            extra: SimDuration::from_micros(g.u64_in(1, 100)),
            from: SimTime::ZERO,
            until: SimTime::from_micros(g.u64_in(1, 6_000)),
        });
    }
    spec
}

struct PlanDriver {
    plan: Vec<PlanOp>,
    devices: usize,
}

impl Driver for PlanDriver {
    fn start(&mut self, sim: &mut Simulation) {
        for (i, op) in self.plan.iter().enumerate() {
            let tag = i as u64;
            match *op {
                PlanOp::Single { device, stream, compute, work_us } => {
                    let work = SimDuration::from_micros(work_us);
                    let spec = if compute {
                        KernelSpec::compute(format!("c{i}"), work)
                    } else {
                        KernelSpec::comm(format!("m{i}"), work)
                    };
                    sim.launch(
                        HostId(device),
                        StreamId::new(DeviceId(device), stream),
                        spec.with_tag(tag),
                    );
                }
                PlanOp::Collective { stream, work_us } => {
                    let c = sim.new_collective(self.devices);
                    for d in 0..self.devices {
                        let spec =
                            KernelSpec::comm(format!("ar{i}"), SimDuration::from_micros(work_us))
                                .with_collective(c)
                                .with_tag(tag);
                        sim.launch(HostId(d), StreamId::new(DeviceId(d), stream), spec);
                    }
                }
            }
        }
    }

    fn on_wake(&mut self, _: Wake, _: &mut Simulation) {}
}

fn run_plan(plan: &[PlanOp], devices: usize, faults: FaultSpec) -> (Simulation, Trace) {
    let mut sim = Simulation::builder()
        .devices(DeviceSpec::v100_16gb(), devices)
        .capture_trace(true)
        .faults(faults)
        .build()
        .unwrap();
    let mut drv = PlanDriver { plan: plan.to_vec(), devices };
    sim.run_to_completion(&mut drv);
    let trace = sim.take_trace().unwrap();
    (sim, trace)
}

fn expected_kernels(plan: &[PlanOp], devices: usize) -> u64 {
    plan.iter()
        .map(|op| match op {
            PlanOp::Single { .. } => 1,
            PlanOp::Collective { .. } => devices as u64,
        })
        .sum()
}

/// No fault schedule may lose a kernel: everything launched drains exactly
/// once, failed or not.
#[test]
fn faults_never_lose_kernels() {
    check("faults_never_lose_kernels", 48, |g| {
        let plan = gen_plan(g, 3);
        let faults = gen_faults(g, 3);
        let (sim, trace) = run_plan(&plan, 3, faults);
        let expect = expected_kernels(&plan, 3);
        assert_eq!(sim.kernels_launched(), expect);
        assert_eq!(sim.kernels_completed(), expect);
        assert_eq!(trace.len() as u64, expect);
        assert!(sim.kernels_failed() <= expect);
    });
}

/// Causality survives faults: no kernel starts before its enqueue or ends
/// at/before its start, even when it fails or is stretched by a straggler.
#[test]
fn causality_under_faults() {
    check("causality_under_faults", 48, |g| {
        let plan = gen_plan(g, 2);
        let faults = gen_faults(g, 2);
        let (_, trace) = run_plan(&plan, 2, faults);
        for e in trace.events() {
            assert!(e.started_at >= e.enqueued_at, "{e:?} started before enqueue");
            assert!(e.ended_at > e.started_at, "{e:?} zero/negative span");
        }
    });
}

/// Stream-FIFO order holds under faults: within one hardware queue, kernels
/// complete in launch order with disjoint execution intervals — a failed
/// kernel drains in place, it never lets a successor overtake.
#[test]
fn stream_fifo_survives_failures() {
    check("stream_fifo_survives_failures", 48, |g| {
        let plan = gen_plan(g, 2);
        // Force a failure window over the whole run so the FIFO claim is
        // exercised with real failures, not vacuously.
        let faults = gen_faults(g, 2).kernel_failures(KernelFaultParams {
            prob: g.f64_in(0.2, 0.8),
            fraction: g.f64_in(0.1, 0.9),
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        let (sim, trace) = run_plan(&plan, 2, faults);
        for d in 0..2 {
            let connections = sim.device_spec(DeviceId(d)).connections;
            for q in 0..connections {
                let mut evs: Vec<_> =
                    trace.on_device(DeviceId(d)).filter(|e| e.stream % connections == q).collect();
                evs.sort_by_key(|e| e.enqueued_at);
                for w in evs.windows(2) {
                    assert!(
                        w[1].started_at >= w[0].ended_at,
                        "queue {q} on device {d} overlapped: {:?} then {:?}",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    });
}

/// A failed kernel still reports a plausible span: it never runs *longer*
/// than its healthy counterpart would at the same rate (it dies early), and
/// its trace row is marked `failed`.
#[test]
fn failed_kernels_are_marked_and_die_early() {
    check("failed_kernels_are_marked", 48, |g| {
        let plan = gen_plan(g, 2);
        let frac = g.f64_in(0.1, 0.9);
        let faults = FaultSpec::new(g.any_u64()).kernel_failures(KernelFaultParams {
            prob: 1.0,
            fraction: frac,
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        let (sim, trace) = run_plan(&plan, 2, faults);
        // prob 1.0 in an unbounded window: every *plain* kernel fails.
        // Collective members are exempt — the fault model fails kernels, and
        // a collective that loses a member is a partition (`part:`), not a
        // kernel failure.
        let singles = plan.iter().filter(|op| matches!(op, PlanOp::Single { .. })).count() as u64;
        assert_eq!(sim.kernels_failed(), singles);
        for (i, op) in plan.iter().enumerate() {
            let expect_failed = matches!(op, PlanOp::Single { .. });
            for e in trace.with_tag(i as u64) {
                assert_eq!(e.failed, expect_failed, "{e:?} fail-marking disagrees with its kind");
            }
        }
    });
}

/// Collectives stay synchronous under faults: every member starts and ends
/// at the same instant even when a straggler or slow link stretches them.
#[test]
fn collectives_stay_synchronous_under_faults() {
    check("collectives_sync_under_faults", 48, |g| {
        let plan = gen_plan(g, 3);
        let faults = gen_faults(g, 3);
        let (_, trace) = run_plan(&plan, 3, faults);
        for (i, op) in plan.iter().enumerate() {
            if matches!(op, PlanOp::Collective { .. }) {
                let members: Vec<_> = trace.with_tag(i as u64).collect();
                assert_eq!(members.len(), 3);
                for m in &members {
                    assert_eq!(m.started_at, members[0].started_at);
                    assert_eq!(m.ended_at, members[0].ended_at);
                }
            }
        }
    });
}

/// Faults only ever slow things down or truncate failed kernels — they
/// never make a *successful* kernel faster than its nominal work.
#[test]
fn faults_never_speed_up_successful_kernels() {
    check("faults_never_speed_up", 48, |g| {
        let plan = gen_plan(g, 2);
        let faults = gen_faults(g, 2);
        let (_, trace) = run_plan(&plan, 2, faults);
        for (i, op) in plan.iter().enumerate() {
            let work_us = match *op {
                PlanOp::Single { work_us, .. } => work_us,
                PlanOp::Collective { work_us, .. } => work_us,
            };
            for e in trace.with_tag(i as u64) {
                if !e.failed {
                    assert!(
                        e.duration() >= SimDuration::from_micros(work_us),
                        "kernel {i} beat its nominal work under faults: {} < {}us",
                        e.duration(),
                        work_us
                    );
                }
            }
        }
    });
}

/// A random schedule at the grammar's granularity: whole-millisecond
/// windows, whole-microsecond spikes, arbitrary f64 factors (Rust float
/// formatting round-trips exactly).
fn gen_grammar_spec(g: &mut Gen) -> FaultSpec {
    let mut spec = FaultSpec::new(g.any_u64());
    for _ in 0..g.usize_in(0, 3) {
        let from = g.u64_in(0, 50);
        spec = spec.straggler(
            DeviceId(g.usize_in(0, 4)),
            SimTime::from_millis(from),
            SimTime::from_millis(from + g.u64_in(1, 50)),
            g.f64_in(1.0, 8.0),
        );
    }
    for _ in 0..g.usize_in(0, 2) {
        let from = g.u64_in(0, 50);
        spec = spec.degrade_link(
            DeviceId(g.usize_in(0, 4)),
            DeviceId(g.usize_in(0, 4)),
            SimTime::from_millis(from),
            SimTime::from_millis(from + g.u64_in(1, 50)),
            g.f64_in(1.0, 6.0),
        );
    }
    if g.bool() {
        let from = g.u64_in(0, 50);
        spec = spec.partition_link(
            DeviceId(g.usize_in(0, 4)),
            DeviceId(g.usize_in(0, 4)),
            SimTime::from_millis(from),
            SimTime::from_millis(from + g.u64_in(1, 50)),
        );
    }
    if g.bool() {
        let (from, until) = if g.bool() {
            (SimTime::ZERO, SimTime::MAX)
        } else {
            let f = g.u64_in(0, 50);
            (SimTime::from_millis(f), SimTime::from_millis(f + g.u64_in(1, 50)))
        };
        spec = spec.kernel_failures(KernelFaultParams {
            prob: g.f64_in(0.0, 1.0),
            fraction: g.f64_in(0.0, 1.0),
            from,
            until,
        });
    }
    if g.bool() {
        let (from, until) = if g.bool() {
            (SimTime::ZERO, SimTime::MAX)
        } else {
            let f = g.u64_in(0, 50);
            (SimTime::from_millis(f), SimTime::from_millis(f + g.u64_in(1, 50)))
        };
        spec = spec.launch_spikes(LaunchSpikeParams {
            prob: g.f64_in(0.0, 1.0),
            extra: SimDuration::from_micros(g.u64_in(1, 500)),
            from,
            until,
        });
    }
    // One down/outage per device at most: the builder rejects overlapping
    // windows for the same device.
    for dev in 0..4usize {
        if g.usize_in(0, 3) != 0 {
            continue;
        }
        let at = g.u64_in(0, 80);
        if g.bool() {
            spec = spec.device_down(DeviceId(dev), SimTime::from_millis(at));
        } else {
            spec = spec.device_outage(
                DeviceId(dev),
                SimTime::from_millis(at),
                SimTime::from_millis(at + g.u64_in(1, 80)),
            );
        }
    }
    if g.bool() {
        let from = g.u64_in(0, 20);
        let len = g.u64_in(2, 40);
        spec = spec.link_flap(
            DeviceId(g.usize_in(0, 4)),
            DeviceId(g.usize_in(0, 4)),
            SimTime::from_millis(from),
            SimTime::from_millis(from + len),
            SimDuration::from_millis(g.u64_in(1, len)),
        );
    }
    spec
}

/// Display renders the exact grammar `parse` accepts: any schedule built at
/// the grammar's granularity — including windowed outages and link flaps
/// (which expand to alternating partitions) — survives a render→parse round
/// trip unchanged.
#[test]
fn display_parse_round_trip() {
    check("display_parse_round_trip", 64, |g| {
        let spec = gen_grammar_spec(g);
        let rendered = spec.to_string();
        let reparsed = FaultSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered spec {rendered:?} failed to parse: {e}"));
        assert_eq!(reparsed, spec, "round trip diverged for {rendered:?}");
    });
}

/// Node-scoped sugar (`node-down:`, `niclink:` under a `nodes=` geometry)
/// expands to device-granular primitives at parse/build time, so a
/// render→parse round trip reconstructs an equal spec — the same contract
/// `link_flap` established.
#[test]
fn node_fault_sugar_round_trips() {
    check("node_fault_sugar_round_trips", 64, |g| {
        let dpn = g.usize_in(1, 4); // devices per node in 1..=4
        let mut spec = FaultSpec::new(g.any_u64());
        // At most one down/outage per node: the builder rejects
        // overlapping windows on one device.
        for node in 0..3usize {
            if g.usize_in(0, 3) == 0 {
                let at = g.u64_in(0, 80);
                if g.bool() {
                    spec = spec.node_down(dpn, node, SimTime::from_millis(at));
                } else {
                    spec = spec.node_outage(
                        dpn,
                        node,
                        SimTime::from_millis(at),
                        SimTime::from_millis(at + g.u64_in(1, 80)),
                    );
                }
            }
        }
        if g.bool() {
            let a = g.usize_in(0, 3);
            let b = (a + 1 + g.usize_in(0, 2)) % 3;
            if a != b {
                let from = g.u64_in(0, 50);
                spec = spec.nic_link(
                    dpn,
                    a,
                    b,
                    SimTime::from_millis(from),
                    SimTime::from_millis(from + g.u64_in(1, 50)),
                    g.f64_in(1.0, 16.0),
                );
            }
        }
        let rendered = spec.to_string();
        let reparsed = FaultSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered spec {rendered:?} failed to parse: {e}"));
        assert_eq!(reparsed, spec, "round trip diverged for {rendered:?}");
        // The grammar's own node forms parse to the same expansion.
        if spec.is_empty() {
            return;
        }
        assert!(!rendered.contains("node-down"), "display must render primitives");
    });
}

/// Malformed outage/flap windows fail with errors naming the problem and
/// pointing into the spec string.
#[test]
fn malformed_windows_are_rejected_with_offsets() {
    let cases = [
        ("down:1:50..50", "a non-empty outage window"),
        ("down:1:80..20", "a non-empty outage window"),
        ("down:1:x..20", "a millisecond count"),
        ("down:1:10..y", "a millisecond count"),
        ("flap:0:1:5:5:2", "a non-empty flap window"),
        ("flap:0:1:2:8:0", "a positive flap period"),
        ("node-down:0:10", "nodes=<devices_per_node>"),
        ("nodes=2;node-down:0:30..30", "a non-empty outage window"),
        ("nodes=2;niclink:0:1:2:3", "a node pair"),
        ("nodes=0;node-down:0:10", "a positive devices-per-node count"),
    ];
    for (spec, expect) in cases {
        let err = FaultSpec::parse(spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(expect), "{spec:?} gave {msg:?}, wanted {expect:?}");
        assert!(msg.contains("at byte"), "{spec:?} error lost its offset: {msg:?}");
    }
}

/// The same (plan, fault schedule) pair always replays to the identical
/// trace: fault injection is a pure function of the seed and sim time.
#[test]
fn fault_replay_is_deterministic() {
    check("fault_replay_is_deterministic", 48, |g| {
        let plan = gen_plan(g, 3);
        let seed = g.any_u64();
        let faults = FaultSpec::new(seed)
            .straggler(DeviceId(0), SimTime::from_micros(100), SimTime::from_micros(900), 3.0)
            .kernel_failures(KernelFaultParams {
                prob: 0.3,
                fraction: 0.5,
                from: SimTime::ZERO,
                until: SimTime::MAX,
            });
        let (_, t1) = run_plan(&plan, 3, faults.clone());
        let (_, t2) = run_plan(&plan, 3, faults);
        assert_eq!(t1.to_chrome_json(), t2.to_chrome_json(), "fault replay diverged");
    });
}
