//! Edge-case behavior of the discrete-event engine: degenerate schedules,
//! stale events, blocked hosts, and interleaving of the lag model with
//! collectives.

use liger_gpu_sim::prelude::*;

struct Script<F: FnMut(&mut Simulation), G: FnMut(Wake, &mut Simulation)> {
    start: F,
    wake: G,
}

impl<F: FnMut(&mut Simulation), G: FnMut(Wake, &mut Simulation)> Driver for Script<F, G> {
    fn start(&mut self, sim: &mut Simulation) {
        (self.start)(sim);
    }
    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
        (self.wake)(wake, sim);
    }
}

fn sim(devices: usize) -> Simulation {
    let mut b =
        Simulation::builder().devices(DeviceSpec::test_device(), devices).capture_trace(true);
    for _ in 0..devices {
        b = b.host(HostSpec::instant());
    }
    b.build().unwrap()
}

#[test]
fn empty_simulation_terminates_immediately() {
    let mut s = sim(1);
    let end = s.run_to_completion(&mut Script { start: |_: &mut Simulation| {}, wake: |_, _| {} });
    assert_eq!(end, SimTime::ZERO);
    assert_eq!(s.kernels_completed(), 0);
}

#[test]
fn wait_on_event_that_never_fires_parks_the_queue_forever() {
    // The stream behind the wait must never run; the simulation still
    // terminates because nothing else is pending.
    let mut s = sim(1);
    let mut drv = Script {
        start: |sim: &mut Simulation| {
            let ev = sim.new_event(); // never recorded anywhere
            sim.stream_wait(HostId(0), StreamId::new(DeviceId(0), 0), ev);
            sim.launch(
                HostId(0),
                StreamId::new(DeviceId(0), 0),
                KernelSpec::compute("never", SimDuration::from_micros(5)),
            );
        },
        wake: |_, _| {},
    };
    s.run_to_completion(&mut drv);
    assert_eq!(s.kernels_completed(), 0, "gated kernel must not run");
    assert_eq!(s.kernels_launched(), 1);
}

#[test]
fn record_on_idle_stream_fires_instantly() {
    let mut s = sim(1);
    struct D {
        fired: Option<SimTime>,
    }
    impl Driver for D {
        fn start(&mut self, sim: &mut Simulation) {
            let ev = sim.record_event(HostId(0), StreamId::new(DeviceId(0), 2));
            sim.notify_on_event(ev, HostId(0), 0);
        }
        fn on_wake(&mut self, wake: Wake, _: &mut Simulation) {
            if let Wake::EventFired { fired_at, .. } = wake {
                self.fired = Some(fired_at);
            }
        }
    }
    let mut d = D { fired: None };
    s.run_to_completion(&mut d);
    assert_eq!(d.fired, Some(SimTime::ZERO));
}

#[test]
fn many_streams_share_hardware_queues_round_robin() {
    // connections = 2, four streams: (0,2) -> queue 0, (1,3) -> queue 1.
    let mut s = sim(1);
    let mut drv = Script {
        start: |sim: &mut Simulation| {
            for stream in 0..4usize {
                sim.launch(
                    HostId(0),
                    StreamId::new(DeviceId(0), stream),
                    KernelSpec::compute(format!("k{stream}"), SimDuration::from_micros(10))
                        .with_tag(stream as u64),
                );
            }
        },
        wake: |_, _| {},
    };
    let end = s.run_to_completion(&mut drv);
    // Two queues of two serialized 10us kernels, with same-class sharing
    // slowing concurrent pairs 2x: 0-20us pair one, 20-40us pair two.
    assert_eq!(end, SimTime::from_micros(40));
    let trace = s.take_trace().unwrap();
    let starts: Vec<(u64, SimTime)> =
        trace.events().iter().map(|e| (e.tag, e.started_at)).collect();
    for (tag, start) in starts {
        match tag {
            0 | 1 => assert_eq!(start, SimTime::ZERO),
            2 | 3 => assert_eq!(start, SimTime::from_micros(20)),
            _ => unreachable!(),
        }
    }
}

#[test]
fn collective_after_lag_still_rendezvouses() {
    // Flood device 0's compute queue so its comm kernel pays dispatch lag,
    // while device 1's arrives instantly: the collective still starts
    // simultaneously at the laggard's time.
    let mut s = sim(2);
    let mut drv = Script {
        start: |sim: &mut Simulation| {
            for i in 0..40 {
                sim.launch(
                    HostId(0),
                    StreamId::new(DeviceId(0), 0),
                    KernelSpec::compute(format!("f{i}"), SimDuration::from_micros(1)),
                );
            }
            let c = sim.new_collective(2);
            for d in 0..2 {
                sim.launch(
                    HostId(d),
                    StreamId::new(DeviceId(d), 1),
                    KernelSpec::comm("ar", SimDuration::from_micros(30))
                        .with_collective(c)
                        .with_tag(9),
                );
            }
        },
        wake: |_, _| {},
    };
    s.run_to_completion(&mut drv);
    let trace = s.take_trace().unwrap();
    let ar: Vec<_> = trace.events().iter().filter(|e| e.tag == 9).collect();
    assert_eq!(ar.len(), 2);
    assert_eq!(ar[0].started_at, ar[1].started_at);
    assert!(
        ar[0].started_at >= SimTime::from_nanos((40 - 24) * 400),
        "lag must delay the rendezvous"
    );
    assert_eq!(ar[0].ended_at, ar[1].ended_at);
}

#[test]
fn deadline_mid_kernel_freezes_state_consistently() {
    let mut s = sim(1);
    let mut drv = Script {
        start: |sim: &mut Simulation| {
            sim.launch(
                HostId(0),
                StreamId::new(DeviceId(0), 0),
                KernelSpec::compute("long", SimDuration::from_millis(10)),
            );
        },
        wake: |_, _| {},
    };
    let end = s.run(&mut drv, SimTime::from_millis(3));
    assert_eq!(end, SimTime::from_millis(3));
    assert_eq!(s.kernels_launched(), 1);
    assert_eq!(s.kernels_completed(), 0);
}

#[test]
fn memory_api_is_visible_through_the_simulation() {
    let mut s = sim(1);
    let id = s.alloc_memory(DeviceId(0), 1024, "weights").unwrap();
    assert_eq!(s.memory_in_use(DeviceId(0)), 1024);
    s.free_memory(id);
    assert_eq!(s.memory_in_use(DeviceId(0)), 0);
    assert_eq!(s.memory_peak(DeviceId(0)), 1024);
    // OOM at device capacity (test device: 1 GiB).
    let cap = DeviceSpec::test_device().mem_capacity;
    assert!(s.alloc_memory(DeviceId(0), cap + 1, "too big").is_err());
}

#[test]
fn timers_fire_in_order_with_stable_tie_breaking() {
    let mut s = sim(1);
    struct D {
        seen: Vec<u64>,
    }
    impl Driver for D {
        fn start(&mut self, sim: &mut Simulation) {
            sim.set_timer(SimTime::from_micros(10), 1);
            sim.set_timer(SimTime::from_micros(5), 0);
            sim.set_timer(SimTime::from_micros(10), 2); // tie with token 1
        }
        fn on_wake(&mut self, wake: Wake, _: &mut Simulation) {
            if let Wake::Timer { token } = wake {
                self.seen.push(token);
            }
        }
    }
    let mut d = D { seen: vec![] };
    s.run_to_completion(&mut d);
    assert_eq!(d.seen, vec![0, 1, 2], "ties break by registration order");
}
