//! Cross-core determinism property tests: the parallel event core must be
//! observationally indistinguishable from the sequential oracle.
//!
//! Every property drives one random, fault-injected workload — plain
//! kernels, collectives, reactive timers and cross-stream event chains —
//! through [`SequentialCore`] and through [`ParallelCore`] at 1, 2 and 4
//! workers, then compares the *bytes* of the exported Chrome traces and
//! every public counter. Any divergence in dispatch order, fault
//! application or merge bookkeeping shows up as a trace diff.
//!
//! Runs on the internal [`liger_gpu_sim::testkit`] harness; rerun a failing
//! case with the `LIGER_PROP_SEED` it prints. One seed (`0xfa0175`) is
//! additionally pinned as a plain regression test so the exact case that
//! validated the refactor replays forever.

use liger_gpu_sim::prelude::*;
use liger_gpu_sim::testkit::{check, Gen};
use liger_gpu_sim::{KernelFaultParams, LaunchSpikeParams};

/// One step of a randomized launch plan.
#[derive(Debug, Clone)]
enum PlanOp {
    /// A plain kernel on one device.
    Single { device: usize, stream: usize, compute: bool, work_us: u64 },
    /// An all-device collective (rendezvous + simultaneous completion).
    Collective { stream: usize, work_us: u64 },
    /// A timer whose wake launches a follow-up kernel — exercises driver
    /// wakes (global lane) interleaving with device-local work.
    Timer { at_us: u64, device: usize, stream: usize, work_us: u64 },
    /// Producer kernel, recorded event, and a dependent kernel behind a
    /// `stream_wait` on another stream of the same device.
    Chain { device: usize, from: usize, to: usize, work_us: u64 },
}

fn gen_plan(g: &mut Gen, devices: usize) -> Vec<PlanOp> {
    g.vec_of(1, 32, |g| match g.usize_in(0, 8) {
        0..=3 => PlanOp::Single {
            device: g.usize_in(0, devices),
            stream: g.usize_in(0, 4),
            compute: g.bool(),
            work_us: g.u64_in(1, 400),
        },
        4 | 5 => PlanOp::Collective { stream: g.usize_in(0, 4), work_us: g.u64_in(1, 400) },
        6 => PlanOp::Timer {
            at_us: g.u64_in(0, 2_000),
            device: g.usize_in(0, devices),
            stream: g.usize_in(0, 4),
            work_us: g.u64_in(1, 200),
        },
        _ => {
            let from = g.usize_in(0, 4);
            PlanOp::Chain {
                device: g.usize_in(0, devices),
                from,
                to: (from + 1 + g.usize_in(0, 3)) % 4,
                work_us: g.u64_in(1, 300),
            }
        }
    })
}

/// A randomized fault schedule: stragglers, degraded links, kernel-failure
/// and launch-spike windows, and (occasionally) a permanent device death —
/// every hazard class the parallel core's window protocol must fence.
fn gen_faults(g: &mut Gen, devices: usize) -> FaultSpec {
    let mut spec = FaultSpec::new(g.any_u64());
    for _ in 0..g.usize_in(0, 3) {
        let from = g.u64_in(0, 2_000);
        let len = g.u64_in(1, 4_000);
        spec = spec.straggler(
            DeviceId(g.usize_in(0, devices)),
            SimTime::from_micros(from),
            SimTime::from_micros(from + len),
            g.f64_in(1.0, 8.0),
        );
    }
    if devices >= 2 && g.bool() {
        let a = g.usize_in(0, devices);
        let b = (a + 1 + g.usize_in(0, devices - 1)) % devices;
        let from = g.u64_in(0, 2_000);
        let len = g.u64_in(1, 4_000);
        spec = spec.degrade_link(
            DeviceId(a),
            DeviceId(b),
            SimTime::from_micros(from),
            SimTime::from_micros(from + len),
            g.f64_in(1.0, 6.0),
        );
    }
    if g.bool() {
        spec = spec.kernel_failures(KernelFaultParams {
            prob: g.f64_in(0.0, 0.6),
            fraction: g.f64_in(0.1, 1.0),
            from: SimTime::ZERO,
            until: SimTime::from_micros(g.u64_in(1, 6_000)),
        });
    }
    if g.bool() {
        spec = spec.launch_spikes(LaunchSpikeParams {
            prob: g.f64_in(0.0, 0.5),
            extra: SimDuration::from_micros(g.u64_in(1, 100)),
            from: SimTime::ZERO,
            until: SimTime::from_micros(g.u64_in(1, 6_000)),
        });
    }
    if g.usize_in(0, 4) == 0 {
        spec = spec.device_down(
            DeviceId(g.usize_in(0, devices)),
            SimTime::from_micros(g.u64_in(100, 4_000)),
        );
    }
    spec
}

struct PlanDriver {
    plan: Vec<PlanOp>,
    devices: usize,
}

impl Driver for PlanDriver {
    fn start(&mut self, sim: &mut Simulation) {
        for (i, op) in self.plan.iter().enumerate() {
            let tag = i as u64;
            match *op {
                PlanOp::Single { device, stream, compute, work_us } => {
                    let work = SimDuration::from_micros(work_us);
                    let spec = if compute {
                        KernelSpec::compute(format!("c{i}"), work)
                    } else {
                        KernelSpec::comm(format!("m{i}"), work)
                    };
                    sim.launch(
                        HostId(device),
                        StreamId::new(DeviceId(device), stream),
                        spec.with_tag(tag),
                    );
                }
                PlanOp::Collective { stream, work_us } => {
                    let c = sim.new_collective(self.devices);
                    for d in 0..self.devices {
                        let spec =
                            KernelSpec::comm(format!("ar{i}"), SimDuration::from_micros(work_us))
                                .with_collective(c)
                                .with_tag(tag);
                        sim.launch(HostId(d), StreamId::new(DeviceId(d), stream), spec);
                    }
                }
                PlanOp::Timer { at_us, .. } => {
                    sim.set_timer(SimTime::from_micros(at_us), tag);
                }
                PlanOp::Chain { device, from, to, work_us } => {
                    let host = HostId(device);
                    let producer = StreamId::new(DeviceId(device), from);
                    let consumer = StreamId::new(DeviceId(device), to);
                    let work = SimDuration::from_micros(work_us);
                    sim.launch(
                        host,
                        producer,
                        KernelSpec::compute(format!("p{i}"), work).with_tag(tag),
                    );
                    let ev = sim.record_event(host, producer);
                    sim.stream_wait(host, consumer, ev);
                    sim.launch(
                        host,
                        consumer,
                        KernelSpec::comm(format!("d{i}"), work).with_tag(tag),
                    );
                }
            }
        }
    }

    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
        if let Wake::Timer { token } = wake {
            let PlanOp::Timer { device, stream, work_us, .. } = self.plan[token as usize] else {
                panic!("timer token {token} does not name a Timer op");
            };
            sim.launch(
                HostId(device),
                StreamId::new(DeviceId(device), stream),
                KernelSpec::compute(format!("t{token}"), SimDuration::from_micros(work_us))
                    .with_tag(token),
            );
        }
    }
}

/// Observable outcome of one run: trace bytes plus every public counter.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    trace: String,
    end: SimTime,
    launched: u64,
    completed: u64,
    failed: u64,
    dispatched: u64,
}

fn run_on(
    core: CoreSelect,
    plan: &[PlanOp],
    devices: usize,
    faults: FaultSpec,
    deadline: SimTime,
) -> Outcome {
    let mut sim = Simulation::builder()
        .devices(DeviceSpec::v100_16gb(), devices)
        .capture_trace(true)
        .faults(faults)
        .build()
        .unwrap();
    let mut drv = PlanDriver { plan: plan.to_vec(), devices };
    let end = sim.run_with_core(core, &mut drv, deadline);
    Outcome {
        trace: sim.take_trace().unwrap().to_chrome_json(),
        end,
        launched: sim.kernels_launched(),
        completed: sim.kernels_completed(),
        failed: sim.kernels_failed(),
        dispatched: sim.events_dispatched(),
    }
}

const CORES: [CoreSelect; 3] = [
    CoreSelect::Par { workers: 1 },
    CoreSelect::Par { workers: 2 },
    CoreSelect::Par { workers: 4 },
];

fn assert_cores_agree(g: &mut Gen, deadline: SimTime) {
    let devices = g.usize_in(2, 5);
    let plan = gen_plan(g, devices);
    let faults = gen_faults(g, devices);
    let oracle = run_on(CoreSelect::Seq, &plan, devices, faults.clone(), deadline);
    for core in CORES {
        let got = run_on(core, &plan, devices, faults.clone(), deadline);
        assert_eq!(
            got, oracle,
            "core {core} diverged from the sequential oracle (devices={devices}, plan={plan:?})"
        );
    }
}

/// Seed-for-seed, the parallel core at 1, 2 and 4 workers reproduces the
/// sequential oracle's trace bytes and counters on arbitrary fault-injected
/// workloads run to completion.
#[test]
fn parallel_core_matches_oracle_to_completion() {
    check("parallel_core_matches_oracle", 40, |g| {
        assert_cores_agree(g, SimTime::MAX);
    });
}

/// The same equivalence holds for bounded runs: a deadline that cuts the
/// workload mid-flight must leave both cores at the identical instant with
/// identical partial traces (the window protocol clamps at the deadline).
#[test]
fn parallel_core_matches_oracle_under_deadlines() {
    check("parallel_core_matches_oracle_deadline", 24, |g| {
        let deadline = SimTime::from_micros(g.u64_in(1, 5_000));
        assert_cores_agree(g, deadline);
    });
}

/// The exact case that validated the refactor, pinned forever. `check`
/// honours `LIGER_PROP_SEED` for ad-hoc replay; this test hard-codes the
/// seed so the case cannot rot out of the suite.
#[test]
fn pinned_seed_replays_identically() {
    let mut g = Gen::from_seed(0xfa0175);
    assert_cores_agree(&mut g, SimTime::MAX);
    let mut g = Gen::from_seed(0xfa0175);
    assert_cores_agree(&mut g, SimTime::from_micros(1_500));
}
