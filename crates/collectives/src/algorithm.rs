//! Collective algorithm selection (ring vs. tree).
//!
//! NCCL picks between a bandwidth-optimal **ring** (cost `≈ α + 2(n−1)/n ·
//! B/bw`, latency grows linearly with ring length) and a latency-optimal
//! **tree** (`≈ α·⌈log₂ n⌉ + 2·B/(bw·η)`, shallower critical path but a
//! small bandwidth penalty `η`) based on message size. The crossover
//! matters to Liger's runtime decomposition: small chunks of a decomposed
//! all-reduce are latency-bound, and the tree keeps the per-chunk overhead
//! flat as the division factor grows.

use liger_gpu_sim::SimDuration;

use crate::cost::CollectiveKind;
use crate::nccl::NcclConfig;
use crate::topology::Topology;

/// Which collective algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveAlgorithm {
    /// Bandwidth-optimal ring (the default of [`crate::collective_time`]).
    Ring,
    /// Latency-optimal binary tree.
    Tree,
    /// Pick whichever is faster for the given size (NCCL's behavior).
    Auto,
}

/// Tree bandwidth efficiency relative to the ring (NCCL's tree moves data
/// up and down a binary tree; its sustained bandwidth is slightly lower).
const TREE_BW_EFFICIENCY: f64 = 0.85;

/// Per-hop latency of one tree level, relative to the topology's base
/// latency (a tree level is one neighbor exchange; the ring's base latency
/// covers the full ring setup).
const TREE_HOP_FRACTION: f64 = 0.5;

/// Duration of an `n`-rank collective of `bytes` under an explicit
/// algorithm choice.
pub fn collective_time_with(
    algo: CollectiveAlgorithm,
    kind: CollectiveKind,
    bytes: u64,
    n: usize,
    topo: &Topology,
    nccl: &NcclConfig,
) -> SimDuration {
    if n <= 1 {
        return SimDuration::ZERO;
    }
    match algo {
        CollectiveAlgorithm::Ring => crate::cost::collective_time(kind, bytes, n, topo, nccl),
        CollectiveAlgorithm::Tree => tree_time(kind, bytes, n, topo, nccl),
        CollectiveAlgorithm::Auto => crate::cost::collective_time(kind, bytes, n, topo, nccl)
            .min(tree_time(kind, bytes, n, topo, nccl)),
    }
}

/// The algorithm [`CollectiveAlgorithm::Auto`] would select.
pub fn auto_choice(
    kind: CollectiveKind,
    bytes: u64,
    n: usize,
    topo: &Topology,
    nccl: &NcclConfig,
) -> CollectiveAlgorithm {
    let ring = crate::cost::collective_time(kind, bytes, n, topo, nccl);
    let tree = tree_time(kind, bytes, n, topo, nccl);
    if tree < ring {
        CollectiveAlgorithm::Tree
    } else {
        CollectiveAlgorithm::Ring
    }
}

fn tree_time(
    kind: CollectiveKind,
    bytes: u64,
    n: usize,
    topo: &Topology,
    nccl: &NcclConfig,
) -> SimDuration {
    debug_assert!(n >= 2);
    if kind == CollectiveKind::SendRecv {
        // Point-to-point has no tree form.
        return crate::cost::collective_time(kind, bytes, n, topo, nccl);
    }
    let depth = (n as f64).log2().ceil().max(1.0);
    let bw = match kind {
        CollectiveKind::SendRecv => topo.p2p_bw,
        _ => topo.allreduce_bus_bw,
    } * nccl.bandwidth_fraction()
        * TREE_BW_EFFICIENCY;
    // An all-reduce tree is a reduce followed by a broadcast: 2 passes.
    let passes = match kind {
        CollectiveKind::AllReduce => 2.0,
        CollectiveKind::ReduceScatter | CollectiveKind::AllGather => 1.0,
        CollectiveKind::SendRecv => unreachable!(),
    };
    let latency = topo.base_latency.scale(TREE_HOP_FRACTION * depth * passes);
    let transfer = passes * bytes as f64 / bw;
    latency + SimDuration::from_secs_f64(transfer)
}

/// Algorithms serialize as lowercase tags.
impl liger_gpu_sim::ToJson for CollectiveAlgorithm {
    fn write_json(&self, out: &mut String) {
        let tag = match self {
            CollectiveAlgorithm::Ring => "ring",
            CollectiveAlgorithm::Tree => "tree",
            CollectiveAlgorithm::Auto => "auto",
        };
        tag.write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Topology, NcclConfig) {
        (Topology::v100_nvlink(), NcclConfig::liger_tuned())
    }

    #[test]
    fn tree_wins_for_small_messages_at_scale() {
        // At 4 ranks the ring's short chain wins everywhere (which is why
        // single-node NCCL overwhelmingly runs rings); the tree's log-depth
        // latency pays off for small messages at larger rank counts.
        let (topo, nccl) = setup();
        let small = 16 * 1024;
        assert_eq!(
            auto_choice(CollectiveKind::AllReduce, small, 16, &topo, &nccl),
            CollectiveAlgorithm::Tree,
            "small messages are latency-bound at 16 ranks"
        );
        assert_eq!(
            auto_choice(CollectiveKind::AllReduce, small, 4, &topo, &nccl),
            CollectiveAlgorithm::Ring,
            "a 4-rank ring chain is already short"
        );
    }

    #[test]
    fn ring_wins_for_large_messages() {
        let (topo, nccl) = setup();
        let large = 64 << 20;
        assert_eq!(
            auto_choice(CollectiveKind::AllReduce, large, 4, &topo, &nccl),
            CollectiveAlgorithm::Ring,
            "large messages are bandwidth-bound"
        );
    }

    #[test]
    fn auto_is_the_min_of_both() {
        let (topo, nccl) = setup();
        for bytes in [1u64 << 12, 1 << 16, 1 << 20, 1 << 24] {
            let ring = collective_time_with(
                CollectiveAlgorithm::Ring,
                CollectiveKind::AllReduce,
                bytes,
                4,
                &topo,
                &nccl,
            );
            let tree = collective_time_with(
                CollectiveAlgorithm::Tree,
                CollectiveKind::AllReduce,
                bytes,
                4,
                &topo,
                &nccl,
            );
            let auto = collective_time_with(
                CollectiveAlgorithm::Auto,
                CollectiveKind::AllReduce,
                bytes,
                4,
                &topo,
                &nccl,
            );
            assert_eq!(auto, ring.min(tree), "bytes={bytes}");
        }
    }

    #[test]
    fn tree_latency_grows_logarithmically() {
        let (topo, nccl) = setup();
        let tiny = 1024;
        let t2 = collective_time_with(
            CollectiveAlgorithm::Tree,
            CollectiveKind::AllReduce,
            tiny,
            2,
            &topo,
            &nccl,
        );
        let t4 = collective_time_with(
            CollectiveAlgorithm::Tree,
            CollectiveKind::AllReduce,
            tiny,
            4,
            &topo,
            &nccl,
        );
        let t8 = collective_time_with(
            CollectiveAlgorithm::Tree,
            CollectiveKind::AllReduce,
            tiny,
            8,
            &topo,
            &nccl,
        );
        // Depth 1 -> 2 -> 3: latency term grows by equal steps.
        let d1 = t4.as_nanos() as i64 - t2.as_nanos() as i64;
        let d2 = t8.as_nanos() as i64 - t4.as_nanos() as i64;
        assert!(d1 > 0 && d2 > 0);
        assert!((d1 - d2).abs() <= d1 / 4, "non-logarithmic growth: {d1} then {d2}");
    }

    #[test]
    fn sendrecv_has_no_tree_form() {
        let (topo, nccl) = setup();
        let ring = collective_time_with(
            CollectiveAlgorithm::Ring,
            CollectiveKind::SendRecv,
            1 << 20,
            2,
            &topo,
            &nccl,
        );
        let tree = collective_time_with(
            CollectiveAlgorithm::Tree,
            CollectiveKind::SendRecv,
            1 << 20,
            2,
            &topo,
            &nccl,
        );
        assert_eq!(ring, tree);
    }

    #[test]
    fn single_rank_is_free() {
        let (topo, nccl) = setup();
        for algo in
            [CollectiveAlgorithm::Ring, CollectiveAlgorithm::Tree, CollectiveAlgorithm::Auto]
        {
            assert_eq!(
                collective_time_with(algo, CollectiveKind::AllReduce, 1 << 20, 1, &topo, &nccl),
                SimDuration::ZERO
            );
        }
    }

    #[test]
    fn decomposed_chunks_prefer_tree_at_scale() {
        // A 2MB all-reduce split 16 ways produces 128KB chunks — small
        // enough that at 16 ranks Auto switches to the tree, capping the
        // per-chunk latency overhead of deep decomposition.
        let (topo, nccl) = setup();
        let whole = 2u64 << 20;
        assert_eq!(
            auto_choice(CollectiveKind::AllReduce, whole, 16, &topo, &nccl),
            CollectiveAlgorithm::Ring
        );
        assert_eq!(
            auto_choice(CollectiveKind::AllReduce, whole / 16, 16, &topo, &nccl),
            CollectiveAlgorithm::Tree
        );
    }
}
