//! Analytic cost model for collective operations.
//!
//! Ring all-reduce over `n` ranks moves `2(n−1)/n × bytes` per rank, so with
//! the measured *bus bandwidth* `B` (the quantity `nccl-tests` reports and
//! the paper quotes: 32.75 GB/s on the V100 node, 14.88 GB/s on the A100
//! node) the transfer takes `2(n−1)/n × bytes / (B × f)` where `f` is the
//! bandwidth fraction achievable under the current [`NcclConfig`], plus a
//! fixed base latency per launched collective.

use liger_gpu_sim::SimDuration;

use crate::nccl::NcclConfig;
use crate::topology::{ClusterTopology, NicLink, Topology};

/// The collective operations the transformer workloads need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Ring all-reduce (tensor-parallel synchronization).
    AllReduce,
    /// Reduce-scatter (half of an all-reduce).
    ReduceScatter,
    /// All-gather (the other half).
    AllGather,
    /// Point-to-point transfer between two ranks (pipeline stage boundary).
    SendRecv,
}

impl CollectiveKind {
    /// Bytes moved per rank, as a multiple of the payload size, for an
    /// `n`-rank ring.
    pub fn traffic_factor(self, n: usize) -> f64 {
        let n = n.max(2) as f64;
        match self {
            CollectiveKind::AllReduce => 2.0 * (n - 1.0) / n,
            CollectiveKind::ReduceScatter | CollectiveKind::AllGather => (n - 1.0) / n,
            CollectiveKind::SendRecv => 1.0,
        }
    }

    /// Kernel-name prefix.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::AllReduce => "nccl_allreduce",
            CollectiveKind::ReduceScatter => "nccl_reduce_scatter",
            CollectiveKind::AllGather => "nccl_allgather",
            CollectiveKind::SendRecv => "nccl_sendrecv",
        }
    }
}

/// No-load duration of a collective moving `bytes` across `n` ranks.
pub fn collective_time(
    kind: CollectiveKind,
    bytes: u64,
    n: usize,
    topo: &Topology,
    nccl: &NcclConfig,
) -> SimDuration {
    debug_assert!(n >= 1);
    if n <= 1 {
        return SimDuration::ZERO; // degenerate single-rank "collective"
    }
    let bw = match kind {
        CollectiveKind::SendRecv => topo.p2p_bw,
        _ => topo.allreduce_bus_bw,
    } * nccl.bandwidth_fraction();
    let transfer = kind.traffic_factor(n) * bytes as f64 / bw;
    // Ring latency chains through every rank: (n-1) hops, normalized so a
    // 4-rank ring costs exactly the topology's calibrated base latency.
    let latency = match kind {
        CollectiveKind::SendRecv => topo.base_latency,
        _ => topo.base_latency.scale((n as f64 - 1.0) / 3.0),
    };
    latency + SimDuration::from_secs_f64(transfer)
}

/// Duration of one chunk when a collective is equally decomposed into
/// `parts` pieces: each chunk moves `bytes/parts` and pays the base latency
/// again. This is the §3.6 all-reduce decomposition profile.
pub fn chunk_time(
    kind: CollectiveKind,
    bytes: u64,
    parts: u32,
    n: usize,
    topo: &Topology,
    nccl: &NcclConfig,
) -> SimDuration {
    let parts = parts.max(1) as u64;
    collective_time(kind, bytes.div_ceil(parts), n, topo, nccl)
}

/// Total duration of a fully decomposed collective (`parts` sequential
/// chunks). Always ≥ the undivided time; the gap is the decomposition
/// overhead the runtime weighs against finer overlap.
pub fn decomposed_total_time(
    kind: CollectiveKind,
    bytes: u64,
    parts: u32,
    n: usize,
    topo: &Topology,
    nccl: &NcclConfig,
) -> SimDuration {
    chunk_time(kind, bytes, parts, n, topo, nccl) * parts.max(1) as u64
}

/// No-load duration of a collective whose `n` ranks live on the flat device
/// indices `ranks` of `cluster`.
///
/// When every rank shares a node this is exactly [`collective_time`] on the
/// intra-node topology. When ranks span nodes, the ring is hierarchical:
/// the slowest hop is the NIC, so the achievable bus/p2p bandwidth is the
/// minimum of the intra-node figure and the NIC bandwidth, and the NIC's
/// per-transfer latency is paid on top of the intra-node base latency. This
/// is the standard two-level NCCL tree/ring approximation — good enough for
/// the cluster tier's purpose of making cross-node collectives visibly more
/// expensive than intra-node ones.
pub fn cluster_collective_time(
    kind: CollectiveKind,
    bytes: u64,
    ranks: &[usize],
    cluster: &ClusterTopology,
    nccl: &NcclConfig,
) -> SimDuration {
    let n = ranks.len();
    if n <= 1 {
        return SimDuration::ZERO;
    }
    let spans_nodes = ranks.iter().any(|&r| !cluster.same_node(r, ranks[0]));
    if !spans_nodes {
        return collective_time(kind, bytes, n, &cluster.intra, nccl);
    }
    let intra = &cluster.intra;
    let effective = Topology {
        kind: intra.kind,
        allreduce_bus_bw: intra.allreduce_bus_bw.min(cluster.nic.bandwidth),
        p2p_bw: intra.p2p_bw.min(cluster.nic.bandwidth),
        base_latency: intra.base_latency + cluster.nic.latency,
    };
    collective_time(kind, bytes, n, &effective, nccl)
}

/// Wire time of streaming `bytes` of finished KV blocks from a prefill node
/// to a decode node over the inter-node NIC (disaggregated serving).
///
/// A stream is a point-to-point RDMA write, not a collective: it pays the
/// NIC latency once and the payload at NIC bandwidth, with no NCCL channel
/// discount (KV shipping bypasses the collective library).
pub fn kv_stream_time(bytes: u64, nic: &NicLink) -> SimDuration {
    nic.transfer_time(bytes)
}

/// Collective kinds serialize as snake_case tags.
impl liger_gpu_sim::ToJson for CollectiveKind {
    fn write_json(&self, out: &mut String) {
        let tag = match self {
            CollectiveKind::AllReduce => "all_reduce",
            CollectiveKind::ReduceScatter => "reduce_scatter",
            CollectiveKind::AllGather => "all_gather",
            CollectiveKind::SendRecv => "send_recv",
        };
        tag.write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_factors() {
        assert!((CollectiveKind::AllReduce.traffic_factor(4) - 1.5).abs() < 1e-12);
        assert!((CollectiveKind::ReduceScatter.traffic_factor(4) - 0.75).abs() < 1e-12);
        assert!((CollectiveKind::AllGather.traffic_factor(2) - 0.5).abs() < 1e-12);
        assert!((CollectiveKind::SendRecv.traffic_factor(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn allreduce_time_hand_check() {
        // 10 GB/s bus, 1us latency, 4 ranks, 10 MB payload, saturating NCCL:
        // 1.5 * 10e6 / 10e9 = 1.5ms + 1us.
        let topo = Topology::test_topology();
        let nccl = NcclConfig::default();
        let t = collective_time(CollectiveKind::AllReduce, 10_000_000, 4, &topo, &nccl);
        assert_eq!(t, SimDuration::from_micros(1501));
    }

    #[test]
    fn paper_v100_allreduce_magnitude() {
        // OPT-30B layer activation: batch 2 x seq 64 x hidden 7168 x fp16
        // = 1.83 MB; the paper-scale sanity check from DESIGN.md: ~88us.
        let topo = Topology::v100_nvlink();
        let nccl = NcclConfig::liger_tuned();
        let bytes = 2 * 64 * 7168 * 2;
        let t = collective_time(CollectiveKind::AllReduce, bytes, 4, &topo, &nccl);
        let us = t.as_micros_f64();
        assert!((80.0..100.0).contains(&us), "V100 all-reduce {us:.1}us out of expected band");
    }

    #[test]
    fn pcie_is_slower_than_nvlink() {
        let nccl = NcclConfig::default();
        let bytes = 1 << 20;
        let nv =
            collective_time(CollectiveKind::AllReduce, bytes, 4, &Topology::v100_nvlink(), &nccl);
        let pcie =
            collective_time(CollectiveKind::AllReduce, bytes, 4, &Topology::a100_pcie(), &nccl);
        assert!(pcie > nv);
    }

    #[test]
    fn single_rank_is_free() {
        let t = collective_time(
            CollectiveKind::AllReduce,
            1 << 20,
            1,
            &Topology::test_topology(),
            &NcclConfig::default(),
        );
        assert_eq!(t, SimDuration::ZERO);
    }

    #[test]
    fn fewer_channels_below_saturation_slow_transfers() {
        let topo = Topology::test_topology();
        let one = NcclConfig::default().with_channels(1);
        let many = NcclConfig::default();
        let bytes = 10 << 20;
        let slow = collective_time(CollectiveKind::AllReduce, bytes, 4, &topo, &one);
        let fast = collective_time(CollectiveKind::AllReduce, bytes, 4, &topo, &many);
        assert!(slow > fast);
    }

    #[test]
    fn decomposition_overhead_is_latency_bound() {
        let topo = Topology::test_topology();
        let nccl = NcclConfig::default();
        let bytes = 8 << 20;
        let whole = collective_time(CollectiveKind::AllReduce, bytes, 4, &topo, &nccl);
        for parts in [2u32, 4, 8, 16] {
            let total =
                decomposed_total_time(CollectiveKind::AllReduce, bytes, parts, 4, &topo, &nccl);
            assert!(total >= whole, "decomposed total must not beat the whole");
            // Overhead equals the extra (parts-1) base latencies, up to
            // per-chunk nanosecond rounding in either direction.
            let overhead = (total - whole).as_nanos() as i64;
            let expect = (topo.base_latency * (parts as u64 - 1)).as_nanos() as i64;
            let slack = parts as i64 + 1;
            assert!(
                (overhead - expect).abs() <= slack,
                "parts={parts}: overhead {overhead}ns vs expected {expect}ns"
            );
        }
    }

    #[test]
    fn intra_node_cluster_collective_matches_single_node() {
        let cluster = ClusterTopology::test_cluster(2, 4);
        let nccl = NcclConfig::default();
        let bytes = 1 << 20;
        let flat = collective_time(CollectiveKind::AllReduce, bytes, 4, &cluster.intra, &nccl);
        let ranks: Vec<usize> = (0..4).collect();
        let clustered =
            cluster_collective_time(CollectiveKind::AllReduce, bytes, &ranks, &cluster, &nccl);
        assert_eq!(clustered, flat, "co-located ranks must price like one node");
    }

    #[test]
    fn cross_node_collective_is_nic_bound() {
        let cluster = ClusterTopology::test_cluster(2, 4);
        let nccl = NcclConfig::default();
        let bytes = 10 << 20;
        let intra = cluster_collective_time(
            CollectiveKind::AllReduce,
            bytes,
            &[0, 1, 2, 3],
            &cluster,
            &nccl,
        );
        let spanning = cluster_collective_time(
            CollectiveKind::AllReduce,
            bytes,
            &[0, 1, 4, 5],
            &cluster,
            &nccl,
        );
        // test NIC is 10x slower than the test node's bus: spanning rings crawl.
        assert!(
            spanning > intra * 5,
            "cross-node ring must be NIC-bound: {spanning:?} vs {intra:?}"
        );
    }

    #[test]
    fn kv_stream_pays_nic_latency_and_bandwidth() {
        let nic = NicLink::test_nic();
        // 1 MB at 1 GB/s + 10us = 1010us; independent of NCCL channels.
        assert_eq!(kv_stream_time(1_000_000, &nic), SimDuration::from_micros(1010));
        assert!(kv_stream_time(0, &nic) > SimDuration::ZERO, "latency is always paid");
    }

    #[test]
    fn chunks_cover_the_payload() {
        // parts chunks of ceil(bytes/parts) always cover bytes.
        let bytes: u64 = 1_000_003;
        for parts in 1u32..=16 {
            assert!(bytes.div_ceil(parts as u64) * parts as u64 >= bytes);
        }
    }
}
