//! # liger-collectives
//!
//! Interconnect topology and NCCL-like collective communication for the
//! Liger reproduction: cost model (ring all-reduce bus-bandwidth
//! formulation, point-to-point transfers), channel/resource configuration
//! (`NCCL_MAX_NCHANNELS` / `NCCL_NTHREADS` analogs from the paper's §3.5
//! contention mitigation), and planning helpers that instantiate collectives
//! as rendezvous-synchronized kernels on the [`liger_gpu_sim`] simulator.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod cost;
pub mod nccl;
pub mod plan;
pub mod topology;

pub use algorithm::{auto_choice, collective_time_with, CollectiveAlgorithm};
pub use cost::{
    chunk_time, cluster_collective_time, collective_time, decomposed_total_time, kv_stream_time,
    CollectiveKind,
};
pub use nccl::NcclConfig;
pub use plan::CollectivePlan;
pub use topology::{ClusterTopology, InterconnectKind, NicLink, Topology};
