//! Instantiating collectives as simulator kernels.
//!
//! A [`CollectivePlan`] describes one logical collective (kind, payload,
//! participating ranks). [`CollectivePlan::kernel_specs`] turns it into one
//! communication [`KernelSpec`] per rank, all bound to a fresh rendezvous
//! group, ready to be launched by whatever engine is driving the simulation.

use liger_gpu_sim::{DeviceId, KernelSpec, SimDuration, Simulation};

use crate::cost::{chunk_time, collective_time, CollectiveKind};
use crate::nccl::NcclConfig;
use crate::topology::Topology;

/// One logical collective operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectivePlan {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Payload bytes (per rank, pre-reduction).
    pub bytes: u64,
    /// Participating devices.
    pub ranks: Vec<DeviceId>,
}

impl CollectivePlan {
    /// An all-reduce across `ranks`.
    pub fn allreduce(bytes: u64, ranks: Vec<DeviceId>) -> CollectivePlan {
        CollectivePlan { kind: CollectiveKind::AllReduce, bytes, ranks }
    }

    /// A point-to-point transfer from `src` to `dst`.
    pub fn send_recv(bytes: u64, src: DeviceId, dst: DeviceId) -> CollectivePlan {
        CollectivePlan { kind: CollectiveKind::SendRecv, bytes, ranks: vec![src, dst] }
    }

    /// No-load duration of this collective.
    pub fn duration(&self, topo: &Topology, nccl: &NcclConfig) -> SimDuration {
        collective_time(self.kind, self.bytes, self.ranks.len(), topo, nccl)
    }

    /// Rebuilds the plan's ring excluding `dead` ranks (elastic recovery):
    /// the same logical collective over the surviving members only. Panics
    /// if fewer than one rank would remain.
    pub fn excluding(&self, dead: &[DeviceId]) -> CollectivePlan {
        let ranks: Vec<DeviceId> =
            self.ranks.iter().copied().filter(|r| !dead.contains(r)).collect();
        assert!(!ranks.is_empty(), "collective would have no surviving rank");
        CollectivePlan { kind: self.kind, bytes: self.bytes, ranks }
    }

    /// Splits the plan into `parts` equal chunks (runtime decomposition of
    /// §3.6). Each chunk is itself a full collective over the same ranks.
    pub fn chunked(&self, parts: u32) -> Vec<CollectivePlan> {
        let parts = parts.max(1);
        let chunk_bytes = self.bytes.div_ceil(parts as u64);
        (0..parts)
            .map(|_| CollectivePlan {
                kind: self.kind,
                bytes: chunk_bytes,
                ranks: self.ranks.clone(),
            })
            .collect()
    }

    /// Duration of one chunk under a `parts`-way decomposition.
    pub fn chunk_duration(&self, parts: u32, topo: &Topology, nccl: &NcclConfig) -> SimDuration {
        chunk_time(self.kind, self.bytes, parts, self.ranks.len(), topo, nccl)
    }

    /// Allocates a rendezvous group in `sim` and builds the per-rank kernel
    /// specs. The caller launches each spec on its rank's stream of choice.
    pub fn kernel_specs(
        &self,
        sim: &mut Simulation,
        topo: &Topology,
        nccl: &NcclConfig,
        tag: u64,
    ) -> Vec<(DeviceId, KernelSpec)> {
        let work = self.duration(topo, nccl);
        let group = sim.new_collective(self.ranks.len());
        self.ranks
            .iter()
            .map(|&rank| {
                let spec = KernelSpec::comm(self.kind.name(), work)
                    .with_blocks(nccl.channels)
                    .with_collective(group)
                    .with_tag(tag);
                (rank, spec)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::{
        DeviceSpec, Driver, HostId, HostSpec, KernelClass, SimTime, StreamId, Wake,
    };

    fn ranks(n: usize) -> Vec<DeviceId> {
        (0..n).map(DeviceId).collect()
    }

    #[test]
    fn chunking_covers_payload_and_preserves_ranks() {
        let plan = CollectivePlan::allreduce(1_000_003, ranks(4));
        let chunks = plan.chunked(8);
        assert_eq!(chunks.len(), 8);
        let total: u64 = chunks.iter().map(|c| c.bytes).sum();
        assert!(total >= plan.bytes);
        for c in &chunks {
            assert_eq!(c.ranks, plan.ranks);
            assert_eq!(c.kind, plan.kind);
        }
    }

    #[test]
    fn chunk_duration_matches_cost_model() {
        let plan = CollectivePlan::allreduce(8 << 20, ranks(4));
        let topo = Topology::test_topology();
        let nccl = NcclConfig::default();
        assert_eq!(
            plan.chunk_duration(8, &topo, &nccl),
            chunk_time(CollectiveKind::AllReduce, 8 << 20, 8, 4, &topo, &nccl)
        );
        assert_eq!(plan.chunk_duration(1, &topo, &nccl), plan.duration(&topo, &nccl));
    }

    #[test]
    fn excluding_rebuilds_the_ring_over_survivors() {
        let plan = CollectivePlan::allreduce(1 << 20, ranks(4));
        let rebuilt = plan.excluding(&[DeviceId(2)]);
        assert_eq!(rebuilt.ranks, vec![DeviceId(0), DeviceId(1), DeviceId(3)]);
        assert_eq!(rebuilt.bytes, plan.bytes);
        assert_eq!(rebuilt.kind, plan.kind);
        // A 3-rank ring moves less total data: never slower than 4 ranks on
        // the same topology.
        let topo = Topology::test_topology();
        let nccl = NcclConfig::default();
        assert!(rebuilt.duration(&topo, &nccl) <= plan.duration(&topo, &nccl));
    }

    #[test]
    #[should_panic(expected = "no surviving rank")]
    fn excluding_everyone_panics() {
        CollectivePlan::allreduce(1, ranks(2)).excluding(&[DeviceId(0), DeviceId(1)]);
    }

    #[test]
    fn send_recv_is_pairwise() {
        let p = CollectivePlan::send_recv(1 << 20, DeviceId(1), DeviceId(2));
        assert_eq!(p.ranks.len(), 2);
        assert_eq!(p.kind, CollectiveKind::SendRecv);
    }

    /// End-to-end: instantiate an all-reduce on a 4-GPU sim and check all
    /// ranks execute it simultaneously for the cost-model duration.
    #[test]
    fn allreduce_executes_on_the_simulator() {
        struct D {
            plan: CollectivePlan,
            topo: Topology,
            nccl: NcclConfig,
        }
        impl Driver for D {
            fn start(&mut self, sim: &mut Simulation) {
                let specs = self.plan.kernel_specs(sim, &self.topo, &self.nccl, 7);
                for (rank, spec) in specs {
                    sim.launch(HostId(rank.0), StreamId::new(rank, 1), spec);
                }
            }
            fn on_wake(&mut self, _: Wake, _: &mut Simulation) {}
        }

        let topo = Topology::test_topology();
        let nccl = NcclConfig::liger_tuned();
        let plan = CollectivePlan::allreduce(10 << 20, ranks(4));
        let expected = plan.duration(&topo, &nccl);

        let mut sim = Simulation::builder()
            .devices(DeviceSpec::test_device(), 4)
            .capture_trace(true)
            .build()
            .unwrap();
        // Instant hosts so the rendezvous is not skewed by launch overhead.
        let mut hosts: Vec<HostSpec> = Vec::new();
        for _ in 0..4 {
            hosts.push(HostSpec::instant());
        }
        drop(hosts); // builder hosts already created; override not needed for timing below
        let mut drv = D { plan, topo, nccl };
        sim.run_to_completion(&mut drv);
        let trace = sim.take_trace().unwrap();
        let evs: Vec<_> = trace.of_class(KernelClass::Comm).collect();
        assert_eq!(evs.len(), 4);
        let start = evs.iter().map(|e| e.started_at).max().unwrap();
        for e in &evs {
            assert_eq!(e.started_at, start, "all ranks start together");
            assert_eq!(e.ended_at, start + expected, "duration follows the cost model");
            assert_eq!(e.tag, 7);
        }
        assert!(start > SimTime::ZERO, "launch overhead staggers rendezvous arrival");
    }
}
