//! Interconnect topology of the multi-GPU node.
//!
//! The paper evaluates two node flavors (Fig. 1): GPUs joined by a direct
//! link (NVLink) and GPUs communicating through the PCIe switch. What the
//! cost model needs from the topology is the achievable *bus bandwidth* of
//! ring collectives (taken from the paper's own `nccl-tests` measurements),
//! the point-to-point bandwidth, and the base latency of starting a
//! collective.

use liger_gpu_sim::SimDuration;

/// The physical interconnect flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterconnectKind {
    /// Direct GPU-to-GPU links (NVLink / Infinity Fabric).
    NvLink,
    /// Communication through the PCIe switch.
    PciE,
}

/// Interconnect description of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Flavor of the links.
    pub kind: InterconnectKind,
    /// Peak all-reduce *bus* bandwidth in bytes/s, as reported by
    /// `nccl-tests` (busbw = algbw × 2(n−1)/n).
    pub allreduce_bus_bw: f64,
    /// Peak point-to-point bandwidth in bytes/s (pipeline stage transfers).
    pub p2p_bw: f64,
    /// Fixed startup latency of one collective operation (ring setup,
    /// protocol switch), paid once per launched collective kernel — this is
    /// what makes over-decomposing collectives progressively less free.
    pub base_latency: SimDuration,
}

impl Topology {
    /// The paper's V100 node: 4× Tesla V100 with first-generation NVLink;
    /// `nccl-tests` peak all-reduce bandwidth 32.75 GB/s (§4.1).
    pub fn v100_nvlink() -> Topology {
        Topology {
            kind: InterconnectKind::NvLink,
            allreduce_bus_bw: 32.75e9,
            p2p_bw: 22e9, // one NVLink1 brick pair
            base_latency: SimDuration::from_micros(2),
        }
    }

    /// The paper's A100 node: 4× A100 communicating over the PCIe switch;
    /// `nccl-tests` peak all-reduce bandwidth 14.88 GB/s (§4.1).
    pub fn a100_pcie() -> Topology {
        Topology {
            kind: InterconnectKind::PciE,
            allreduce_bus_bw: 14.88e9,
            p2p_bw: 12e9, // PCIe gen4 x16 effective
            base_latency: SimDuration::from_micros(5),
        }
    }

    /// A round-numbers topology for unit tests: 10 GB/s bus bandwidth,
    /// 10 GB/s p2p and 1 µs base latency.
    pub fn test_topology() -> Topology {
        Topology {
            kind: InterconnectKind::NvLink,
            allreduce_bus_bw: 10e9,
            p2p_bw: 10e9,
            base_latency: SimDuration::from_micros(1),
        }
    }

    /// The topology after rebuilding rings over `survivors` of `total`
    /// devices (elastic recovery from a permanent device loss).
    ///
    /// On an NVLink node the dead GPU's link bricks leave the ring and one
    /// hop must route around the hole, so the achievable all-reduce bus
    /// bandwidth scales by `survivors/total`; point-to-point transfers still
    /// ride a direct brick pair at full rate. On a PCIe node all traffic
    /// already flows through the switch, whose bandwidth is unchanged by the
    /// loss. Base latency is a protocol constant either way.
    pub fn degraded(&self, survivors: usize, total: usize) -> Topology {
        assert!(
            survivors >= 1 && survivors <= total,
            "degraded ring needs 1..=total survivors, got {survivors}/{total}"
        );
        let scale = match self.kind {
            InterconnectKind::NvLink => survivors as f64 / total as f64,
            InterconnectKind::PciE => 1.0,
        };
        Topology { allreduce_bus_bw: self.allreduce_bus_bw * scale, ..self.clone() }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.allreduce_bus_bw.is_finite() && self.allreduce_bus_bw > 0.0) {
            return Err("allreduce_bus_bw must be positive".into());
        }
        if !(self.p2p_bw.is_finite() && self.p2p_bw > 0.0) {
            return Err("p2p_bw must be positive".into());
        }
        Ok(())
    }
}

impl liger_gpu_sim::ToJson for InterconnectKind {
    fn write_json(&self, out: &mut String) {
        let tag = match self {
            InterconnectKind::NvLink => "nvlink",
            InterconnectKind::PciE => "pcie",
        };
        tag.write_json(out);
    }
}

impl liger_gpu_sim::ToJson for Topology {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("kind", &self.kind)
            .field("allreduce_bus_bw", &self.allreduce_bus_bw)
            .field("p2p_bw", &self.p2p_bw)
            .field("base_latency", &self.base_latency);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_numbers() {
        let v = Topology::v100_nvlink();
        assert_eq!(v.kind, InterconnectKind::NvLink);
        assert!((v.allreduce_bus_bw - 32.75e9).abs() < 1.0);
        let a = Topology::a100_pcie();
        assert_eq!(a.kind, InterconnectKind::PciE);
        assert!((a.allreduce_bus_bw - 14.88e9).abs() < 1.0);
        assert!(a.base_latency > v.base_latency, "PCIe collectives start slower");
    }

    #[test]
    fn presets_validate() {
        Topology::v100_nvlink().validate().unwrap();
        Topology::a100_pcie().validate().unwrap();
        Topology::test_topology().validate().unwrap();
    }

    #[test]
    fn degraded_rings_lose_bandwidth_only_on_nvlink() {
        let v = Topology::v100_nvlink();
        let d = v.degraded(3, 4);
        assert!((d.allreduce_bus_bw - v.allreduce_bus_bw * 0.75).abs() < 1.0);
        assert_eq!(d.p2p_bw, v.p2p_bw, "direct brick pairs survive");
        assert_eq!(d.base_latency, v.base_latency);
        let a = Topology::a100_pcie();
        assert_eq!(a.degraded(2, 4), a, "the PCIe switch is indifferent to losses");
        assert_eq!(v.degraded(4, 4), v, "no loss, no change");
        d.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "degraded ring")]
    fn degraded_rejects_zero_survivors() {
        Topology::test_topology().degraded(0, 4);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut t = Topology::test_topology();
        t.allreduce_bus_bw = 0.0;
        assert!(t.validate().is_err());
        let mut t = Topology::test_topology();
        t.p2p_bw = f64::NAN;
        assert!(t.validate().is_err());
    }
}
