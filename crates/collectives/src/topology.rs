//! Interconnect topology of the multi-GPU node.
//!
//! The paper evaluates two node flavors (Fig. 1): GPUs joined by a direct
//! link (NVLink) and GPUs communicating through the PCIe switch. What the
//! cost model needs from the topology is the achievable *bus bandwidth* of
//! ring collectives (taken from the paper's own `nccl-tests` measurements),
//! the point-to-point bandwidth, and the base latency of starting a
//! collective.

use liger_gpu_sim::SimDuration;

/// The physical interconnect flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterconnectKind {
    /// Direct GPU-to-GPU links (NVLink / Infinity Fabric).
    NvLink,
    /// Communication through the PCIe switch.
    PciE,
}

/// Interconnect description of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Flavor of the links.
    pub kind: InterconnectKind,
    /// Peak all-reduce *bus* bandwidth in bytes/s, as reported by
    /// `nccl-tests` (busbw = algbw × 2(n−1)/n).
    pub allreduce_bus_bw: f64,
    /// Peak point-to-point bandwidth in bytes/s (pipeline stage transfers).
    pub p2p_bw: f64,
    /// Fixed startup latency of one collective operation (ring setup,
    /// protocol switch), paid once per launched collective kernel — this is
    /// what makes over-decomposing collectives progressively less free.
    pub base_latency: SimDuration,
}

impl Topology {
    /// The paper's V100 node: 4× Tesla V100 with first-generation NVLink;
    /// `nccl-tests` peak all-reduce bandwidth 32.75 GB/s (§4.1).
    pub fn v100_nvlink() -> Topology {
        Topology {
            kind: InterconnectKind::NvLink,
            allreduce_bus_bw: 32.75e9,
            p2p_bw: 22e9, // one NVLink1 brick pair
            base_latency: SimDuration::from_micros(2),
        }
    }

    /// The paper's A100 node: 4× A100 communicating over the PCIe switch;
    /// `nccl-tests` peak all-reduce bandwidth 14.88 GB/s (§4.1).
    pub fn a100_pcie() -> Topology {
        Topology {
            kind: InterconnectKind::PciE,
            allreduce_bus_bw: 14.88e9,
            p2p_bw: 12e9, // PCIe gen4 x16 effective
            base_latency: SimDuration::from_micros(5),
        }
    }

    /// A round-numbers topology for unit tests: 10 GB/s bus bandwidth,
    /// 10 GB/s p2p and 1 µs base latency.
    pub fn test_topology() -> Topology {
        Topology {
            kind: InterconnectKind::NvLink,
            allreduce_bus_bw: 10e9,
            p2p_bw: 10e9,
            base_latency: SimDuration::from_micros(1),
        }
    }

    /// The topology after rebuilding rings over `survivors` of `total`
    /// devices (elastic recovery from a permanent device loss).
    ///
    /// On an NVLink node the dead GPU's link bricks leave the ring and one
    /// hop must route around the hole, so the achievable all-reduce bus
    /// bandwidth scales by `survivors/total`; point-to-point transfers still
    /// ride a direct brick pair at full rate. On a PCIe node all traffic
    /// already flows through the switch, whose bandwidth is unchanged by the
    /// loss. Base latency is a protocol constant either way.
    pub fn degraded(&self, survivors: usize, total: usize) -> Topology {
        assert!(
            survivors >= 1 && survivors <= total,
            "degraded ring needs 1..=total survivors, got {survivors}/{total}"
        );
        let scale = match self.kind {
            InterconnectKind::NvLink => survivors as f64 / total as f64,
            InterconnectKind::PciE => 1.0,
        };
        Topology { allreduce_bus_bw: self.allreduce_bus_bw * scale, ..self.clone() }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.allreduce_bus_bw.is_finite() && self.allreduce_bus_bw > 0.0) {
            return Err("allreduce_bus_bw must be positive".into());
        }
        if !(self.p2p_bw.is_finite() && self.p2p_bw > 0.0) {
            return Err("p2p_bw must be positive".into());
        }
        Ok(())
    }
}

/// An inter-node NIC link (InfiniBand / RoCE): the fabric that carries
/// cross-node collectives and streamed KV blocks in the cluster tier.
///
/// Unlike the intra-node [`Topology`], a NIC link is point-to-point between
/// nodes: no ring bus-bandwidth formulation applies, just bandwidth and a
/// per-transfer latency (RDMA setup + switch traversal), both far worse than
/// NVLink — which is exactly why disaggregated serving must price them.
#[derive(Debug, Clone, PartialEq)]
pub struct NicLink {
    /// Achievable bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Fixed per-transfer latency (RDMA setup, switch traversal).
    pub latency: SimDuration,
}

impl NicLink {
    /// A 200 Gb/s HDR InfiniBand NIC: ~25 GB/s effective, 5 µs latency.
    pub fn hdr_200g() -> NicLink {
        NicLink { bandwidth: 25e9, latency: SimDuration::from_micros(5) }
    }

    /// A 100 Gb/s EDR NIC: ~12.5 GB/s effective, 8 µs latency.
    pub fn edr_100g() -> NicLink {
        NicLink { bandwidth: 12.5e9, latency: SimDuration::from_micros(8) }
    }

    /// Round-numbers NIC for unit tests: 1 GB/s, 10 µs latency — slow
    /// enough that tests can tell NIC-priced transfers from NVLink ones.
    pub fn test_nic() -> NicLink {
        NicLink { bandwidth: 1e9, latency: SimDuration::from_micros(10) }
    }

    /// Wire time of one `bytes`-sized transfer over this link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// The link under a fault slowdown `factor` (≥ 1): bandwidth divides by
    /// the factor, latency is a protocol constant. Mirrors how `gpu-sim`
    /// link faults scale collective durations.
    pub fn degraded(&self, factor: f64) -> NicLink {
        assert!(factor >= 1.0 && factor.is_finite(), "degrade factor must be >= 1, got {factor}");
        NicLink { bandwidth: self.bandwidth / factor, latency: self.latency }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.bandwidth.is_finite() && self.bandwidth > 0.0) {
            return Err("nic bandwidth must be positive".into());
        }
        Ok(())
    }
}

/// A cluster of identical nodes: `nodes × devices_per_node` devices, where
/// devices `[n·k, (n+1)·k)` form node `n` (the same flat numbering the
/// simulator's `DeviceId` space uses). Intra-node traffic is priced by the
/// per-node [`Topology`]; anything crossing a node boundary rides the
/// [`NicLink`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTopology {
    /// Number of nodes.
    pub nodes: usize,
    /// Devices per node.
    pub devices_per_node: usize,
    /// Interconnect inside each node.
    pub intra: Topology,
    /// NIC link between any pair of nodes (full bisection assumed).
    pub nic: NicLink,
}

impl ClusterTopology {
    /// A cluster of `nodes` nodes, `devices_per_node` devices each.
    pub fn new(nodes: usize, devices_per_node: usize, intra: Topology, nic: NicLink) -> Self {
        ClusterTopology { nodes, devices_per_node, intra, nic }
    }

    /// V100-NVLink nodes joined by 200 Gb/s HDR NICs.
    pub fn v100_cluster(nodes: usize, devices_per_node: usize) -> Self {
        ClusterTopology::new(nodes, devices_per_node, Topology::v100_nvlink(), NicLink::hdr_200g())
    }

    /// Round-numbers cluster for unit tests.
    pub fn test_cluster(nodes: usize, devices_per_node: usize) -> Self {
        ClusterTopology::new(
            nodes,
            devices_per_node,
            Topology::test_topology(),
            NicLink::test_nic(),
        )
    }

    /// Total devices across the cluster.
    pub fn total_devices(&self) -> usize {
        self.nodes * self.devices_per_node
    }

    /// The node a flat device index belongs to.
    pub fn node_of(&self, device: usize) -> usize {
        device / self.devices_per_node.max(1)
    }

    /// Flat device indices of node `node`.
    pub fn devices_of(&self, node: usize) -> std::ops::Range<usize> {
        let k = self.devices_per_node;
        node * k..(node + 1) * k
    }

    /// Whether two flat device indices share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Validates geometry and both link layers.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.devices_per_node == 0 {
            return Err("nodes need at least one device".into());
        }
        self.intra.validate()?;
        self.nic.validate()
    }
}

impl liger_gpu_sim::ToJson for NicLink {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("bandwidth", &self.bandwidth).field("latency", &self.latency);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for ClusterTopology {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("nodes", &(self.nodes as u64))
            .field("devices_per_node", &(self.devices_per_node as u64))
            .field("intra", &self.intra)
            .field("nic", &self.nic);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for InterconnectKind {
    fn write_json(&self, out: &mut String) {
        let tag = match self {
            InterconnectKind::NvLink => "nvlink",
            InterconnectKind::PciE => "pcie",
        };
        tag.write_json(out);
    }
}

impl liger_gpu_sim::ToJson for Topology {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("kind", &self.kind)
            .field("allreduce_bus_bw", &self.allreduce_bus_bw)
            .field("p2p_bw", &self.p2p_bw)
            .field("base_latency", &self.base_latency);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_numbers() {
        let v = Topology::v100_nvlink();
        assert_eq!(v.kind, InterconnectKind::NvLink);
        assert!((v.allreduce_bus_bw - 32.75e9).abs() < 1.0);
        let a = Topology::a100_pcie();
        assert_eq!(a.kind, InterconnectKind::PciE);
        assert!((a.allreduce_bus_bw - 14.88e9).abs() < 1.0);
        assert!(a.base_latency > v.base_latency, "PCIe collectives start slower");
    }

    #[test]
    fn presets_validate() {
        Topology::v100_nvlink().validate().unwrap();
        Topology::a100_pcie().validate().unwrap();
        Topology::test_topology().validate().unwrap();
    }

    #[test]
    fn degraded_rings_lose_bandwidth_only_on_nvlink() {
        let v = Topology::v100_nvlink();
        let d = v.degraded(3, 4);
        assert!((d.allreduce_bus_bw - v.allreduce_bus_bw * 0.75).abs() < 1.0);
        assert_eq!(d.p2p_bw, v.p2p_bw, "direct brick pairs survive");
        assert_eq!(d.base_latency, v.base_latency);
        let a = Topology::a100_pcie();
        assert_eq!(a.degraded(2, 4), a, "the PCIe switch is indifferent to losses");
        assert_eq!(v.degraded(4, 4), v, "no loss, no change");
        d.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "degraded ring")]
    fn degraded_rejects_zero_survivors() {
        Topology::test_topology().degraded(0, 4);
    }

    #[test]
    fn nic_transfer_time_hand_check() {
        // 1 GB/s + 10us latency: 1 MB takes 1ms + 10us.
        let nic = NicLink::test_nic();
        assert_eq!(nic.transfer_time(1_000_000), SimDuration::from_micros(1010));
        assert_eq!(nic.transfer_time(0), nic.latency);
    }

    #[test]
    fn nic_degraded_scales_bandwidth_only() {
        let nic = NicLink::hdr_200g();
        let d = nic.degraded(2.0);
        assert!((d.bandwidth - nic.bandwidth / 2.0).abs() < 1.0);
        assert_eq!(d.latency, nic.latency);
        d.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn nic_degraded_rejects_speedups() {
        NicLink::test_nic().degraded(0.5);
    }

    #[test]
    fn cluster_geometry() {
        let c = ClusterTopology::test_cluster(2, 4);
        assert_eq!(c.total_devices(), 8);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(3), 0);
        assert_eq!(c.node_of(4), 1);
        assert_eq!(c.devices_of(1), 4..8);
        assert!(c.same_node(1, 3));
        assert!(!c.same_node(3, 4));
        c.validate().unwrap();
        ClusterTopology::v100_cluster(4, 4).validate().unwrap();
    }

    #[test]
    fn cluster_validation_rejects_degenerate_geometry() {
        let mut c = ClusterTopology::test_cluster(2, 4);
        c.nodes = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterTopology::test_cluster(2, 4);
        c.devices_per_node = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterTopology::test_cluster(2, 4);
        c.nic.bandwidth = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut t = Topology::test_topology();
        t.allreduce_bus_bw = 0.0;
        assert!(t.validate().is_err());
        let mut t = Topology::test_topology();
        t.p2p_bw = f64::NAN;
        assert!(t.validate().is_err());
    }
}
