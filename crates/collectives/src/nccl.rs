//! NCCL-style resource configuration for communication kernels.
//!
//! NCCL collectives run as ordinary CUDA kernels whose grid size is the
//! *channel* count; each channel occupies one CUDA block and a slice of SM
//! time. The paper observes (§3.5) that NCCL allocates redundant blocks by
//! default and that a few channels already saturate the node's bandwidth, so
//! Liger pins `NCCL_MAX_NCHANNELS=3` (artifact appendix) to shrink the
//! compute footprint of communication.
//!
//! [`NcclConfig`] models exactly that: a channel count which (a) caps the
//! achievable fraction of the link bandwidth and (b) determines the `blocks`
//! footprint of the generated communication kernels (and thereby the
//! contention they impose on concurrent compute via the channel-sensitive
//! term in `ContentionParams`).

/// Channel/thread configuration of the communication library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NcclConfig {
    /// Number of channels (CUDA blocks) per collective kernel
    /// (`NCCL_MAX_NCHANNELS`).
    pub channels: u32,
    /// Threads per channel (`NCCL_NTHREADS`); only influences the
    /// per-channel bandwidth capability.
    pub threads_per_channel: u32,
    /// Fraction of the link bandwidth a single channel can drive. With the
    /// default 0.4, two channels reach 80% and three saturate the link,
    /// matching the paper's observation that "less blocks are enough to
    /// saturate the peak bandwidth".
    pub per_channel_bw_fraction: f64,
}

impl Default for NcclConfig {
    /// NCCL's out-of-the-box behavior: generous channel allocation.
    fn default() -> Self {
        NcclConfig { channels: 16, threads_per_channel: 512, per_channel_bw_fraction: 0.4 }
    }
}

impl NcclConfig {
    /// The tuned configuration from the paper's artifact
    /// (`NCCL_MAX_NCHANNELS=3`, reduced `NCCL_NTHREADS`).
    pub fn liger_tuned() -> NcclConfig {
        NcclConfig { channels: 3, threads_per_channel: 256, per_channel_bw_fraction: 0.4 }
    }

    /// Config with an explicit channel count.
    pub fn with_channels(mut self, channels: u32) -> Self {
        self.channels = channels.max(1);
        self
    }

    /// Fraction of the peak link bandwidth achievable with this
    /// configuration (saturates at 1.0).
    pub fn bandwidth_fraction(&self) -> f64 {
        // Thread starvation halves a channel's capability below 128 threads.
        let thread_scale = if self.threads_per_channel >= 128 { 1.0 } else { 0.5 };
        (self.channels as f64 * self.per_channel_bw_fraction * thread_scale).min(1.0)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("channels must be >= 1".into());
        }
        if self.threads_per_channel == 0 {
            return Err("threads_per_channel must be >= 1".into());
        }
        if !(self.per_channel_bw_fraction.is_finite() && self.per_channel_bw_fraction > 0.0) {
            return Err("per_channel_bw_fraction must be positive".into());
        }
        Ok(())
    }
}

impl liger_gpu_sim::ToJson for NcclConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("channels", &self.channels)
            .field("threads_per_channel", &self.threads_per_channel)
            .field("per_channel_bw_fraction", &self.per_channel_bw_fraction);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_saturates_link() {
        let c = NcclConfig::default();
        assert_eq!(c.channels, 16);
        assert!((c.bandwidth_fraction() - 1.0).abs() < 1e-12);
        c.validate().unwrap();
    }

    #[test]
    fn tuned_config_still_saturates_with_fewer_blocks() {
        let c = NcclConfig::liger_tuned();
        assert_eq!(c.channels, 3);
        assert!((c.bandwidth_fraction() - 1.0).abs() < 1e-12, "3 channels x 0.4 saturate");
        assert!(c.channels < NcclConfig::default().channels);
    }

    #[test]
    fn single_channel_cannot_saturate() {
        let c = NcclConfig::default().with_channels(1);
        assert!((c.bandwidth_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn starved_threads_halve_channel_capability() {
        let c = NcclConfig { channels: 2, threads_per_channel: 64, per_channel_bw_fraction: 0.4 };
        assert!((c.bandwidth_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(NcclConfig { channels: 0, ..Default::default() }.validate().is_err());
        assert!(NcclConfig { threads_per_channel: 0, ..Default::default() }.validate().is_err());
        assert!(NcclConfig { per_channel_bw_fraction: 0.0, ..Default::default() }
            .validate()
            .is_err());
        assert_eq!(NcclConfig::default().with_channels(0).channels, 1);
    }
}
