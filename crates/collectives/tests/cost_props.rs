//! Property tests for the collective cost model: monotonicity and
//! algorithm-selection invariants over the parameter space.

use liger_collectives::{
    auto_choice, chunk_time, collective_time, collective_time_with, decomposed_total_time,
    CollectiveAlgorithm, CollectiveKind, NcclConfig, Topology,
};
use proptest::prelude::*;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::v100_nvlink()),
        Just(Topology::a100_pcie()),
        Just(Topology::test_topology()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cost grows with payload for every kind/algorithm/topology.
    #[test]
    fn cost_is_monotone_in_bytes(topo in topo_strategy(), bytes in 1u64..1 << 28, n in 2usize..16) {
        let nccl = NcclConfig::liger_tuned();
        for kind in [CollectiveKind::AllReduce, CollectiveKind::ReduceScatter, CollectiveKind::AllGather, CollectiveKind::SendRecv] {
            for algo in [CollectiveAlgorithm::Ring, CollectiveAlgorithm::Tree, CollectiveAlgorithm::Auto] {
                let small = collective_time_with(algo, kind, bytes, n, &topo, &nccl);
                let large = collective_time_with(algo, kind, bytes * 2, n, &topo, &nccl);
                prop_assert!(large >= small, "{:?}/{:?} shrank with payload", kind, algo);
            }
        }
    }

    /// Auto never loses to either fixed algorithm.
    #[test]
    fn auto_is_optimal(topo in topo_strategy(), bytes in 1u64..1 << 26, n in 2usize..16) {
        let nccl = NcclConfig::default();
        let kind = CollectiveKind::AllReduce;
        let auto = collective_time_with(CollectiveAlgorithm::Auto, kind, bytes, n, &topo, &nccl);
        let ring = collective_time_with(CollectiveAlgorithm::Ring, kind, bytes, n, &topo, &nccl);
        let tree = collective_time_with(CollectiveAlgorithm::Tree, kind, bytes, n, &topo, &nccl);
        prop_assert!(auto <= ring && auto <= tree);
        // And the reported choice matches the cheaper side.
        let choice = auto_choice(kind, bytes, n, &topo, &nccl);
        let chosen = collective_time_with(choice, kind, bytes, n, &topo, &nccl);
        prop_assert_eq!(chosen, auto);
    }

    /// Chunked execution never beats the whole transfer (up to rounding),
    /// and a single chunk never exceeds the whole.
    #[test]
    fn chunking_overhead_is_latency_bounded(topo in topo_strategy(), bytes in 1024u64..1 << 26, parts in 2u32..32, n in 2usize..9) {
        let nccl = NcclConfig::liger_tuned();
        let kind = CollectiveKind::AllReduce;
        let whole = collective_time(kind, bytes, n, &topo, &nccl);
        let total = decomposed_total_time(kind, bytes, parts, n, &topo, &nccl);
        prop_assert!(total.as_nanos() + parts as u64 >= whole.as_nanos(), "chunking beat the whole transfer");
        let chunk = chunk_time(kind, bytes, parts, n, &topo, &nccl);
        prop_assert!(chunk <= whole, "one chunk cannot exceed the whole");
    }

    /// More ranks means more traffic per ring all-reduce byte.
    #[test]
    fn ring_traffic_grows_with_ranks(bytes in 1u64 << 16..1 << 24) {
        let topo = Topology::test_topology();
        let nccl = NcclConfig::default();
        let t4 = collective_time(CollectiveKind::AllReduce, bytes, 4, &topo, &nccl);
        let t8 = collective_time(CollectiveKind::AllReduce, bytes, 8, &topo, &nccl);
        prop_assert!(t8 > t4);
    }
}
