//! Property tests for the collective cost model: monotonicity and
//! algorithm-selection invariants over the parameter space.
//!
//! Runs on the internal [`liger_gpu_sim::testkit`] harness; rerun a failing
//! case with the `LIGER_PROP_SEED` it prints.

use liger_collectives::{
    auto_choice, chunk_time, collective_time, collective_time_with, decomposed_total_time,
    CollectiveAlgorithm, CollectiveKind, NcclConfig, Topology,
};
use liger_gpu_sim::testkit::{check, Gen};

fn gen_topo(g: &mut Gen) -> Topology {
    match g.usize_in(0, 3) {
        0 => Topology::v100_nvlink(),
        1 => Topology::a100_pcie(),
        _ => Topology::test_topology(),
    }
}

/// Cost grows with payload for every kind/algorithm/topology.
#[test]
fn cost_is_monotone_in_bytes() {
    check("cost_is_monotone_in_bytes", 128, |g| {
        let topo = gen_topo(g);
        let bytes = g.u64_in(1, 1 << 28);
        let n = g.usize_in(2, 16);
        let nccl = NcclConfig::liger_tuned();
        for kind in [
            CollectiveKind::AllReduce,
            CollectiveKind::ReduceScatter,
            CollectiveKind::AllGather,
            CollectiveKind::SendRecv,
        ] {
            for algo in
                [CollectiveAlgorithm::Ring, CollectiveAlgorithm::Tree, CollectiveAlgorithm::Auto]
            {
                let small = collective_time_with(algo, kind, bytes, n, &topo, &nccl);
                let large = collective_time_with(algo, kind, bytes * 2, n, &topo, &nccl);
                assert!(large >= small, "{:?}/{:?} shrank with payload", kind, algo);
            }
        }
    });
}

/// Auto never loses to either fixed algorithm.
#[test]
fn auto_is_optimal() {
    check("auto_is_optimal", 128, |g| {
        let topo = gen_topo(g);
        let bytes = g.u64_in(1, 1 << 26);
        let n = g.usize_in(2, 16);
        let nccl = NcclConfig::default();
        let kind = CollectiveKind::AllReduce;
        let auto = collective_time_with(CollectiveAlgorithm::Auto, kind, bytes, n, &topo, &nccl);
        let ring = collective_time_with(CollectiveAlgorithm::Ring, kind, bytes, n, &topo, &nccl);
        let tree = collective_time_with(CollectiveAlgorithm::Tree, kind, bytes, n, &topo, &nccl);
        assert!(auto <= ring && auto <= tree);
        // And the reported choice matches the cheaper side.
        let choice = auto_choice(kind, bytes, n, &topo, &nccl);
        let chosen = collective_time_with(choice, kind, bytes, n, &topo, &nccl);
        assert_eq!(chosen, auto);
    });
}

/// Chunked execution never beats the whole transfer (up to rounding),
/// and a single chunk never exceeds the whole.
#[test]
fn chunking_overhead_is_latency_bounded() {
    check("chunking_overhead_is_latency_bounded", 128, |g| {
        let topo = gen_topo(g);
        let bytes = g.u64_in(1024, 1 << 26);
        let parts = g.u32_in(2, 32);
        let n = g.usize_in(2, 9);
        let nccl = NcclConfig::liger_tuned();
        let kind = CollectiveKind::AllReduce;
        let whole = collective_time(kind, bytes, n, &topo, &nccl);
        let total = decomposed_total_time(kind, bytes, parts, n, &topo, &nccl);
        assert!(
            total.as_nanos() + parts as u64 >= whole.as_nanos(),
            "chunking beat the whole transfer"
        );
        let chunk = chunk_time(kind, bytes, parts, n, &topo, &nccl);
        assert!(chunk <= whole, "one chunk cannot exceed the whole");
    });
}

/// More ranks means more traffic per ring all-reduce byte.
#[test]
fn ring_traffic_grows_with_ranks() {
    check("ring_traffic_grows_with_ranks", 128, |g| {
        let bytes = g.u64_in(1 << 16, 1 << 24);
        let topo = Topology::test_topology();
        let nccl = NcclConfig::default();
        let t4 = collective_time(CollectiveKind::AllReduce, bytes, 4, &topo, &nccl);
        let t8 = collective_time(CollectiveKind::AllReduce, bytes, 8, &topo, &nccl);
        assert!(t8 > t4);
    });
}
