//! Property tests for the paged KV pool: block accounting stays consistent
//! under arbitrary interleavings of admission, growth, release, sharing and
//! device loss — and every serve-shaped episode ends with the pool *and*
//! the memory tracker empty, with zero double frees.
//!
//! Runs on the internal [`liger_gpu_sim::testkit`] harness; rerun a failing
//! case with the `LIGER_PROP_SEED` it prints.

use liger_gpu_sim::testkit::{check, Gen};
use liger_gpu_sim::{DeviceId, DeviceSpec, Driver, HostSpec, Simulation, Wake};
use liger_kvcache::{BlockPool, BlockPoolConfig};

/// One random pool operation.
#[derive(Debug, Clone, Copy)]
enum PoolOp {
    /// Admit or grow sequence `seq` to `tokens` tokens at `rows` rows.
    Grow { seq: u64, tokens: u32, rows: u32 },
    /// Release sequence `seq` (no-op if absent).
    Release { seq: u64 },
    /// Share sequence `src`'s blocks into new sequence `dst`.
    Share { src: u64, dst: u64 },
    /// Permanently lose one device (at most once per episode).
    DeviceLoss,
}

fn gen_ops(g: &mut Gen) -> Vec<PoolOp> {
    g.vec_of(1, 40, |g| match g.usize_in(0, 10) {
        0..=4 => {
            PoolOp::Grow { seq: g.u64_in(0, 8), tokens: g.u32_in(1, 200), rows: g.u32_in(1, 3) }
        }
        5..=7 => PoolOp::Release { seq: g.u64_in(0, 8) },
        8 => PoolOp::Share { src: g.u64_in(0, 8), dst: g.u64_in(8, 16) },
        _ => PoolOp::DeviceLoss,
    })
}

/// Applies `ops` to a pool inside a live simulation, checking consistency
/// after every step, then drains everything and checks emptiness.
struct PoolDriver {
    ops: Vec<PoolOp>,
    pool: Option<BlockPool>,
    config: BlockPoolConfig,
    grows_refused: u64,
}

impl Driver for PoolDriver {
    fn start(&mut self, sim: &mut Simulation) {
        let mut pool = BlockPool::new(self.config, sim.alive_devices());
        let mut lost_one = false;
        let mut rows_of: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        for op in self.ops.clone() {
            match op {
                PoolOp::Grow { seq, tokens, rows } => {
                    // Rows are fixed at the sequence's first grow.
                    let rows = *rows_of.entry(seq).or_insert(rows);
                    match pool.grow(sim, seq, tokens, rows) {
                        Ok(_) => {}
                        Err(e) => {
                            self.grows_refused += 1;
                            assert!(
                                e.requested_blocks > 0,
                                "a refused grow must have wanted something: {e}"
                            );
                        }
                    }
                }
                PoolOp::Release { seq } => {
                    pool.release(sim, seq);
                    rows_of.remove(&seq);
                }
                PoolOp::Share { src, dst } => {
                    if pool.has_seq(src) && !pool.has_seq(dst) {
                        pool.share(src, dst);
                        rows_of.insert(dst, rows_of[&src]);
                    }
                }
                PoolOp::DeviceLoss => {
                    if !lost_one && pool.devices().len() > 1 {
                        lost_one = true;
                        let dead = pool.devices()[0];
                        pool.on_device_loss(sim, dead);
                    }
                }
            }
            pool.check_consistent().expect("pool invariant broken mid-episode");
            assert_eq!(sim.memory_double_frees(), 0, "pool double-freed a block");
        }
        // Serve-shaped end: every sequence retires.
        let live: Vec<u64> = pool.seq_ids();
        for seq in live {
            pool.release(sim, seq);
            pool.check_consistent().expect("pool invariant broken during drain");
        }
        self.pool = Some(pool);
        sim.request_stop();
    }

    fn on_wake(&mut self, _wake: Wake, _sim: &mut Simulation) {}
}

#[test]
fn random_interleavings_keep_the_pool_consistent_and_leak_free() {
    check("kv_pool_consistency", 150, |g: &mut Gen| {
        let devices = g.usize_in(2, 4);
        let config = BlockPoolConfig {
            block_tokens: g.u32_in(1, 32),
            block_bytes: 1 << g.u32_in(6, 12),
            budget_bytes: (1 << g.u32_in(10, 16)) as u64,
            watermark: g.f64_in(0.5, 1.0),
        };
        if config.validate().is_err() {
            return; // degenerate geometry (budget below one block): skip
        }
        let mut builder = Simulation::builder().devices(DeviceSpec::test_device(), devices);
        for _ in 0..devices {
            builder = builder.host(HostSpec::instant());
        }
        let mut sim = builder.build().unwrap();
        let mut driver = PoolDriver { ops: gen_ops(g), pool: None, config, grows_refused: 0 };
        sim.run_to_completion(&mut driver);

        let pool = driver.pool.expect("driver ran");
        assert!(pool.is_empty(), "episode ended with live blocks");
        assert_eq!(pool.live_blocks(), 0);
        assert_eq!(pool.stats().allocated, pool.stats().freed, "alloc/free imbalance");
        assert_eq!(sim.memory_double_frees(), 0);
        for d in 0..devices {
            assert_eq!(
                sim.memory_in_use(DeviceId(d)),
                0,
                "device {d} still holds pool memory after drain"
            );
        }
    });
}
