//! Property tests for the prefix cache and speculative rollback paths:
//! block accounting stays consistent under arbitrary interleavings of
//! prefix admission, publication, cold eviction, cache flushes, rollback
//! truncation, sharing and device loss — and every episode drains to an
//! empty pool with exact refcounts and zero double frees.
//!
//! Runs on the internal [`liger_gpu_sim::testkit`] harness; rerun a failing
//! case with the `LIGER_PROP_SEED` it prints.

use std::collections::BTreeMap;

use liger_gpu_sim::testkit::{check, Gen};
use liger_gpu_sim::{DeviceId, DeviceSpec, Driver, HostSpec, Simulation, Wake};
use liger_kvcache::{mix64, BlockPool, BlockPoolConfig};

/// One random cache-aware pool operation.
#[derive(Debug, Clone, Copy)]
enum PrefixOp {
    /// Admit `seq` (single row) with `class`'s digest stream over `tokens`
    /// tokens, adopting whatever chain the cache holds.
    AdmitWithPrefix { seq: u64, class: u64, tokens: u32 },
    /// Plain grow (multi-row sequences never consult the cache).
    Grow { seq: u64, tokens: u32, rows: u32 },
    /// Publish `seq`'s resident prompt blocks under its class's digests.
    Publish { seq: u64 },
    /// Speculative rollback: shrink `seq`'s table back to `tokens`.
    Truncate { seq: u64, tokens: u32 },
    /// Reclaim up to `want` cold cached blocks (leaf-first LRU).
    EvictCold { want: u64 },
    /// Drop the whole index (what a device loss forces on the scheduler).
    Flush,
    /// Release sequence `seq` (no-op if absent).
    Release { seq: u64 },
    /// Share sequence `src`'s blocks into new sequence `dst`.
    Share { src: u64, dst: u64 },
    /// Permanently lose one device (at most once per episode).
    DeviceLoss,
}

fn gen_ops(g: &mut Gen) -> Vec<PrefixOp> {
    g.vec_of(1, 48, |g| match g.usize_in(0, 15) {
        0..=3 => PrefixOp::AdmitWithPrefix {
            seq: g.u64_in(0, 8),
            class: g.u64_in(0, 3),
            tokens: g.u32_in(1, 200),
        },
        4..=5 => {
            PrefixOp::Grow { seq: g.u64_in(0, 8), tokens: g.u32_in(1, 200), rows: g.u32_in(1, 3) }
        }
        6..=8 => PrefixOp::Publish { seq: g.u64_in(0, 8) },
        9..=10 => PrefixOp::Truncate { seq: g.u64_in(0, 8), tokens: g.u32_in(0, 120) },
        11 => PrefixOp::EvictCold { want: g.u64_in(1, 6) },
        12 => PrefixOp::Flush,
        13 => PrefixOp::Release { seq: g.u64_in(0, 8) },
        14 => PrefixOp::Share { src: g.u64_in(0, 8), dst: g.u64_in(8, 16) },
        _ => PrefixOp::DeviceLoss,
    })
}

/// The digest stream of a prompt class: position `i`'s full-block content
/// digest. Same class, same stream — what makes chains shareable.
fn class_digests(class: u64, blocks: usize) -> Vec<u64> {
    (0..blocks as u64).map(|i| mix64(mix64(0x00d1_6e57 ^ class) ^ i)).collect()
}

/// Applies `ops` to a pool inside a live simulation, checking consistency
/// after every step, then drains everything and checks emptiness.
struct PrefixDriver {
    ops: Vec<PrefixOp>,
    pool: Option<BlockPool>,
    config: BlockPoolConfig,
    admits_refused: u64,
    cache_hits: u64,
}

impl Driver for PrefixDriver {
    fn start(&mut self, sim: &mut Simulation) {
        let mut pool = BlockPool::new(self.config, sim.alive_devices());
        let bt = self.config.block_tokens;
        let mut lost_one = false;
        let mut rows_of: BTreeMap<u64, u32> = BTreeMap::new();
        let mut class_of: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
        for op in self.ops.clone() {
            match op {
                PrefixOp::AdmitWithPrefix { seq, class, tokens } => {
                    // Rows are fixed at the sequence's first grow; re-admits
                    // of a multi-row sequence take the plain-grow fallback.
                    let rows = *rows_of.entry(seq).or_insert(1);
                    let digests = class_digests(class, (tokens / bt) as usize);
                    match pool.admit_with_prefix(sim, seq, &digests, tokens, rows) {
                        Ok(admit) => {
                            class_of.entry(seq).or_insert((class, tokens));
                            if admit.cached_blocks > 0 {
                                self.cache_hits += 1;
                                assert!(
                                    admit.cached_tokens < tokens.max(1),
                                    "adoption must leave at least one novel token: \
                                     cached {} of {tokens}",
                                    admit.cached_tokens
                                );
                            }
                        }
                        Err(e) => {
                            self.admits_refused += 1;
                            assert!(
                                e.requested_blocks > 0,
                                "a refused admit must have wanted something: {e}"
                            );
                            assert!(!pool.has_seq(seq) || rows_of.contains_key(&seq));
                        }
                    }
                }
                PrefixOp::Grow { seq, tokens, rows } => {
                    let rows = *rows_of.entry(seq).or_insert(rows);
                    if pool.grow(sim, seq, tokens, rows).is_err() {
                        self.admits_refused += 1;
                    }
                }
                PrefixOp::Publish { seq } => {
                    if let Some(&(class, tokens)) = class_of.get(&seq) {
                        if pool.has_seq(seq) {
                            let span = tokens.max(pool.seq_tokens(seq).unwrap_or(0));
                            let digests = class_digests(class, (span / bt) as usize);
                            pool.publish_prefix(seq, &digests);
                        }
                    }
                }
                PrefixOp::Truncate { seq, tokens } => {
                    pool.truncate(sim, seq, tokens);
                }
                PrefixOp::EvictCold { want } => {
                    pool.evict_cold_prefixes(sim, want);
                }
                PrefixOp::Flush => {
                    pool.flush_prefix_cache(sim);
                }
                PrefixOp::Release { seq } => {
                    pool.release(sim, seq);
                    rows_of.remove(&seq);
                    class_of.remove(&seq);
                }
                PrefixOp::Share { src, dst } => {
                    if pool.has_seq(src) && !pool.has_seq(dst) {
                        pool.share(src, dst);
                        rows_of.insert(dst, rows_of[&src]);
                    }
                }
                PrefixOp::DeviceLoss => {
                    if !lost_one && pool.devices().len() > 1 {
                        lost_one = true;
                        let dead = pool.devices()[0];
                        pool.on_device_loss(sim, dead);
                        // What the scheduler does on loss: a chain missing a
                        // shard must never be served to a later adopter.
                        pool.flush_prefix_cache(sim);
                    }
                }
            }
            pool.check_consistent().expect("pool invariant broken mid-episode");
            assert_eq!(sim.memory_double_frees(), 0, "pool double-freed a block");
        }
        // Serve-shaped end: every sequence retires, then the cache flushes.
        let live: Vec<u64> = pool.seq_ids();
        for seq in live {
            pool.release(sim, seq);
            pool.check_consistent().expect("pool invariant broken during drain");
        }
        pool.flush_prefix_cache(sim);
        pool.check_consistent().expect("pool invariant broken after flush");
        self.pool = Some(pool);
        sim.request_stop();
    }

    fn on_wake(&mut self, _wake: Wake, _sim: &mut Simulation) {}
}

#[test]
fn random_share_evict_rollback_interleavings_stay_consistent_and_drain_clean() {
    check("kv_prefix_consistency", 150, |g: &mut Gen| {
        let devices = g.usize_in(2, 4);
        let config = BlockPoolConfig {
            block_tokens: g.u32_in(1, 32),
            block_bytes: 1 << g.u32_in(6, 12),
            budget_bytes: (1 << g.u32_in(10, 16)) as u64,
            watermark: g.f64_in(0.5, 1.0),
        };
        if config.validate().is_err() {
            return; // degenerate geometry (budget below one block): skip
        }
        let mut builder = Simulation::builder().devices(DeviceSpec::test_device(), devices);
        for _ in 0..devices {
            builder = builder.host(HostSpec::instant());
        }
        let mut sim = builder.build().unwrap();
        let mut driver =
            PrefixDriver { ops: gen_ops(g), pool: None, config, admits_refused: 0, cache_hits: 0 };
        sim.run_to_completion(&mut driver);

        let pool = driver.pool.expect("driver ran");
        assert!(pool.is_empty(), "episode ended with live blocks");
        assert_eq!(pool.live_blocks(), 0);
        assert_eq!(pool.pinned_prefix_blocks(), 0, "flush left index entries");
        assert_eq!(pool.stats().allocated, pool.stats().freed, "alloc/free imbalance");
        assert_eq!(sim.memory_double_frees(), 0);
        for d in 0..devices {
            assert_eq!(
                sim.memory_in_use(DeviceId(d)),
                0,
                "device {d} still holds pool memory after drain"
            );
        }
    });
}
