//! Paged KV-cache subsystem: a block-granular, ref-counted pool backed by
//! the simulator's [`MemoryTracker`](liger_gpu_sim::MemoryTracker).
//!
//! The continuous-batching scheduler (vLLM-style iteration-level serving,
//! the baseline mechanism LLMServingSim and Frontier assume) needs KV memory
//! it can grow one token at a time and reclaim the instant a sequence
//! retires. This crate provides that: sequences own *block tables* — lists
//! of fixed-size blocks, each holding `block_tokens` tokens of K and V
//! sharded across the node's devices — and every block is a real
//! [`Simulation::alloc_memory`](liger_gpu_sim::Simulation::alloc_memory)
//! allocation per device, so the static verifier's SV-MEM-CAP rule and the
//! trace sanitizer's UAF/double-free/leak rules see every page the pool
//! touches.
//!
//! Exhaustion is a typed [`OutOfBlocks`], never a panic: the scheduler
//! handles it with watermark-driven preemption (evict the youngest
//! sequence's blocks and recompute its prefill later, priced by
//! `liger_model::kv_recovery_plan`). Blocks are ref-counted so a recovery
//! replica can [`share`](BlockPool::share) a dying sequence's table without
//! copying it.
//!
//! # Simplifications
//!
//! The block size is fixed at deployment time from the *healthy* parallel
//! degree. After a device loss the pool frees the dead device's side of
//! every block and allocates new blocks on the survivors only, keeping the
//! per-device block size — i.e. the degraded node packs the same tokens
//! into the same per-device bytes. The true cost of restoring the lost
//! shard is carried by the recovery plan, not the pool.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt;

use liger_gpu_sim::{AllocationId, DeviceId, Simulation};
use liger_model::{blocks_for_tokens, kv_block_bytes, ModelConfig};

/// Allocation label every KV block carries in traces and the tracker.
pub const BLOCK_LABEL: &str = "kv-block";

/// Geometry and budget of a [`BlockPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPoolConfig {
    /// Tokens per block (vLLM-style fixed page size).
    pub block_tokens: u32,
    /// Per-device bytes of one block (one sequence's K+V for `block_tokens`
    /// tokens, sharded across the node) — see `liger_model::kv_block_bytes`.
    pub block_bytes: u64,
    /// Per-device byte budget for the whole pool.
    pub budget_bytes: u64,
    /// Occupancy fraction above which the scheduler stops admitting and
    /// starts preempting.
    pub watermark: f64,
}

impl BlockPoolConfig {
    /// Sizes a pool for `model` partitioned `world` ways on devices with
    /// `capacity` bytes each: the budget is a quarter of the capacity left
    /// after the weight shard, leaving headroom for the engine's transient
    /// per-step working sets (which the static verifier checks).
    pub fn sized_for(
        model: &ModelConfig,
        world: u32,
        capacity: u64,
        block_tokens: u32,
    ) -> BlockPoolConfig {
        let weights = model.weight_bytes() / world.max(1) as u64;
        let headroom = capacity.saturating_sub(weights);
        BlockPoolConfig {
            block_tokens,
            block_bytes: kv_block_bytes(model, world, block_tokens),
            budget_bytes: headroom / 4,
            watermark: 0.9,
        }
    }

    /// Whole blocks the per-device budget can hold.
    pub fn capacity_blocks(&self) -> u64 {
        self.budget_bytes / self.block_bytes.max(1)
    }

    /// Rejects degenerate geometry (zero-sized blocks, a budget below one
    /// block, or a watermark outside `(0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if self.block_tokens == 0 {
            return Err("block_tokens must be positive".into());
        }
        if self.block_bytes == 0 {
            return Err("block_bytes must be positive".into());
        }
        if self.capacity_blocks() == 0 {
            return Err(format!(
                "budget of {} bytes holds zero blocks of {} bytes",
                self.budget_bytes, self.block_bytes
            ));
        }
        if !(self.watermark > 0.0 && self.watermark <= 1.0) {
            return Err(format!("watermark {} outside (0, 1]", self.watermark));
        }
        Ok(())
    }
}

/// Typed block-pool exhaustion: the scheduler must handle this (preempt,
/// shed, or defer) — it is never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBlocks {
    /// Blocks the failed grow needed.
    pub requested_blocks: u64,
    /// Blocks free under the pool budget at the time of the failure.
    pub free_blocks: u64,
    /// Total blocks the budget holds.
    pub capacity_blocks: u64,
    /// Device whose tracker refused the backing allocation, when the
    /// failure came from real device capacity rather than the pool budget.
    pub device: Option<DeviceId>,
}

impl fmt::Display for OutOfBlocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device {
            Some(d) => write!(
                f,
                "out of KV blocks: {} tracker refused backing pages ({} requested, {} of {} free)",
                d, self.requested_blocks, self.free_blocks, self.capacity_blocks
            ),
            None => write!(
                f,
                "out of KV blocks: {} requested, {} of {} free",
                self.requested_blocks, self.free_blocks, self.capacity_blocks
            ),
        }
    }
}

impl std::error::Error for OutOfBlocks {}

#[derive(Debug)]
struct Block {
    /// One backing allocation per live device (the block's shard on it).
    allocs: Vec<(DeviceId, AllocationId)>,
    /// Sequences whose tables reference this block.
    refs: u32,
}

#[derive(Debug)]
struct SeqEntry {
    /// Block ids, in allocation order (`blocks_per_row × rows` entries).
    table: Vec<u64>,
    /// Cached tokens per row this table currently covers.
    tokens: u32,
    /// Rows (batch members) sharing this sequence entry.
    rows: u32,
}

/// Pool-lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Blocks ever allocated.
    pub allocated: u64,
    /// Blocks fully freed (refcount reached zero).
    pub freed: u64,
    /// High-water mark of live blocks.
    pub peak_live: u64,
}

/// Block-granular, ref-counted KV pool over the node's live devices.
///
/// Every logical block is backed by one tracker allocation *per device*
/// (label [`BLOCK_LABEL`]), so traces show each page's lifetime and the
/// capacity checks see the pool's true footprint.
#[derive(Debug)]
pub struct BlockPool {
    config: BlockPoolConfig,
    devices: Vec<DeviceId>,
    blocks: BTreeMap<u64, Block>,
    seqs: BTreeMap<u64, SeqEntry>,
    next_block: u64,
    stats: PoolStats,
}

impl BlockPool {
    /// Creates a pool over `devices` (the live devices at deployment).
    /// Panics on an invalid config — validate first if it came from a user.
    pub fn new(config: BlockPoolConfig, devices: Vec<DeviceId>) -> BlockPool {
        if let Err(e) = config.validate() {
            panic!("invalid BlockPoolConfig: {e}");
        }
        assert!(!devices.is_empty(), "a block pool needs at least one device");
        BlockPool {
            config,
            devices,
            blocks: BTreeMap::new(),
            seqs: BTreeMap::new(),
            next_block: 0,
            stats: PoolStats::default(),
        }
    }

    /// The pool's geometry and budget.
    pub fn config(&self) -> &BlockPoolConfig {
        &self.config
    }

    /// Devices the pool currently allocates on.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Blocks needed per row to cache `tokens` tokens.
    pub fn blocks_for(&self, tokens: u32) -> u64 {
        blocks_for_tokens(tokens, self.config.block_tokens)
    }

    /// Whether `seq` has a block table.
    pub fn has_seq(&self, seq: u64) -> bool {
        self.seqs.contains_key(&seq)
    }

    /// Cached tokens per row for `seq`, if it has a table.
    pub fn seq_tokens(&self, seq: u64) -> Option<u32> {
        self.seqs.get(&seq).map(|e| e.tokens)
    }

    /// Grows `seq`'s table to cover `tokens` cached tokens per row across
    /// `rows` rows, allocating backing pages on every live device. Creates
    /// the table on first call; `rows` must then match on every later grow.
    /// Shrinking is not a thing — fewer tokens than already covered is a
    /// no-op. Returns the number of blocks added.
    ///
    /// On failure (pool budget or device capacity) the pool is left exactly
    /// as before the call and the caller gets a typed [`OutOfBlocks`].
    pub fn grow(
        &mut self,
        sim: &mut Simulation,
        seq: u64,
        tokens: u32,
        rows: u32,
    ) -> Result<u64, OutOfBlocks> {
        assert!(rows >= 1, "a sequence has at least one row");
        let have = match self.seqs.get(&seq) {
            Some(e) => {
                assert_eq!(e.rows, rows, "rows are fixed at sequence creation");
                e.table.len() as u64
            }
            None => 0,
        };
        let needed = self.blocks_for(tokens) * rows as u64;
        if needed <= have {
            if let Some(e) = self.seqs.get_mut(&seq) {
                e.tokens = e.tokens.max(tokens);
            }
            return Ok(0);
        }
        let delta = needed - have;
        let capacity = self.config.capacity_blocks();
        let live = self.live_blocks();
        let free = capacity.saturating_sub(live);
        if delta > free {
            return Err(OutOfBlocks {
                requested_blocks: delta,
                free_blocks: free,
                capacity_blocks: capacity,
                device: None,
            });
        }
        // Allocate the new blocks, rolling the whole grow back if any
        // device's tracker refuses a backing page.
        let mut added: Vec<u64> = Vec::with_capacity(delta as usize);
        for _ in 0..delta {
            let mut allocs: Vec<(DeviceId, AllocationId)> = Vec::with_capacity(self.devices.len());
            let mut failed: Option<DeviceId> = None;
            for &d in &self.devices {
                match sim.alloc_memory(d, self.config.block_bytes, BLOCK_LABEL) {
                    Ok(id) => allocs.push((d, id)),
                    Err(_) => {
                        failed = Some(d);
                        break;
                    }
                }
            }
            if let Some(d) = failed {
                for (_, id) in allocs {
                    sim.free_memory(id);
                }
                for b in added {
                    let block = self.blocks.remove(&b).expect("just inserted");
                    for (_, id) in block.allocs {
                        sim.free_memory(id);
                    }
                    self.stats.allocated -= 1;
                }
                return Err(OutOfBlocks {
                    requested_blocks: delta,
                    free_blocks: free,
                    capacity_blocks: capacity,
                    device: Some(d),
                });
            }
            let id = self.next_block;
            self.next_block += 1;
            self.blocks.insert(id, Block { allocs, refs: 1 });
            self.stats.allocated += 1;
            added.push(id);
        }
        self.stats.peak_live = self.stats.peak_live.max(self.live_blocks());
        let entry = self.seqs.entry(seq).or_insert(SeqEntry { table: Vec::new(), tokens: 0, rows });
        entry.table.extend(added);
        entry.tokens = entry.tokens.max(tokens);
        Ok(delta)
    }

    /// Drops `seq`'s table, freeing every block whose refcount reaches
    /// zero. Returns the number of blocks actually freed (shared blocks
    /// survive in the replica's table). Unknown sequences free nothing.
    pub fn release(&mut self, sim: &mut Simulation, seq: u64) -> u64 {
        let Some(entry) = self.seqs.remove(&seq) else {
            return 0;
        };
        let mut freed = 0;
        for b in entry.table {
            let block = self.blocks.get_mut(&b).expect("table references a live block");
            block.refs -= 1;
            if block.refs == 0 {
                let block = self.blocks.remove(&b).expect("present");
                for (_, id) in block.allocs {
                    sim.free_memory(id);
                }
                self.stats.freed += 1;
                freed += 1;
            }
        }
        freed
    }

    /// Clones `src`'s table into `dst` by bumping each block's refcount —
    /// the zero-copy replication recovery uses to keep a warm standby of a
    /// sequence's KV state. `dst` must not already exist.
    pub fn share(&mut self, src: u64, dst: u64) {
        assert!(!self.seqs.contains_key(&dst), "share target already has a table");
        let entry = self.seqs.get(&src).expect("share source has a table");
        let cloned =
            SeqEntry { table: entry.table.clone(), tokens: entry.tokens, rows: entry.rows };
        for &b in &cloned.table {
            self.blocks.get_mut(&b).expect("table references a live block").refs += 1;
        }
        self.seqs.insert(dst, cloned);
    }

    /// A device died: free its side of every live block (the shard is gone
    /// with the hardware) and stop allocating on it. Block tables survive —
    /// the surviving shards are intact, and the recovery plan prices
    /// restoring the lost one. Returns the number of backing allocations
    /// freed.
    pub fn on_device_loss(&mut self, sim: &mut Simulation, dead: DeviceId) -> u64 {
        let mut freed = 0;
        for block in self.blocks.values_mut() {
            let mut kept = Vec::with_capacity(block.allocs.len());
            for (d, id) in block.allocs.drain(..) {
                if d == dead {
                    sim.free_memory(id);
                    freed += 1;
                } else {
                    kept.push((d, id));
                }
            }
            block.allocs = kept;
        }
        self.devices.retain(|&d| d != dead);
        freed
    }

    /// Live (allocated, unreleased) blocks.
    pub fn live_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Total blocks the budget holds.
    pub fn capacity_blocks(&self) -> u64 {
        self.config.capacity_blocks()
    }

    /// Fraction of the budget in use.
    pub fn occupancy(&self) -> f64 {
        self.live_blocks() as f64 / self.capacity_blocks() as f64
    }

    /// Whether occupancy exceeds the preemption watermark.
    pub fn above_watermark(&self) -> bool {
        self.occupancy() > self.config.watermark
    }

    /// Whether the pool holds no blocks (every serve must end here).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of sequences holding tables.
    pub fn live_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// Ids of every sequence holding a table, ascending.
    pub fn seq_ids(&self) -> Vec<u64> {
        self.seqs.keys().copied().collect()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Structural invariants, checked exhaustively (for tests): every table
    /// entry references a live block, stored refcounts equal the number of
    /// tables referencing each block, every block is reachable from some
    /// table, and every block's backing allocations cover exactly the live
    /// device set.
    pub fn check_consistent(&self) -> Result<(), String> {
        let mut refs: BTreeMap<u64, u32> = BTreeMap::new();
        for (seq, entry) in &self.seqs {
            let expect = self.blocks_for(entry.tokens) * entry.rows as u64;
            if entry.table.len() as u64 != expect {
                return Err(format!(
                    "seq {seq}: table holds {} blocks, {} tokens x {} rows needs {expect}",
                    entry.table.len(),
                    entry.tokens,
                    entry.rows
                ));
            }
            for &b in &entry.table {
                if !self.blocks.contains_key(&b) {
                    return Err(format!("seq {seq} references dead block {b}"));
                }
                *refs.entry(b).or_insert(0) += 1;
            }
        }
        for (&b, block) in &self.blocks {
            let counted = refs.get(&b).copied().unwrap_or(0);
            if counted != block.refs {
                return Err(format!(
                    "block {b}: stored refcount {} but {counted} tables reference it",
                    block.refs
                ));
            }
            if block.refs == 0 {
                return Err(format!("block {b} is live with zero references"));
            }
            let mut devs: Vec<DeviceId> = block.allocs.iter().map(|&(d, _)| d).collect();
            devs.sort_by_key(|d| d.0);
            let mut live: Vec<DeviceId> = self.devices.clone();
            live.sort_by_key(|d| d.0);
            if devs != live {
                return Err(format!("block {b}: backed on {devs:?} but live devices are {live:?}"));
            }
        }
        if self.stats.allocated - self.stats.freed != self.live_blocks() {
            return Err(format!(
                "counters disagree: {} allocated - {} freed != {} live",
                self.stats.allocated,
                self.stats.freed,
                self.live_blocks()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::{DeviceSpec, HostSpec};

    fn sim(devices: usize) -> Simulation {
        let mut b = Simulation::builder().devices(DeviceSpec::test_device(), devices);
        for _ in 0..devices {
            b = b.host(HostSpec::instant());
        }
        b.build().unwrap()
    }

    fn config(block_bytes: u64, budget: u64) -> BlockPoolConfig {
        BlockPoolConfig { block_tokens: 16, block_bytes, budget_bytes: budget, watermark: 0.9 }
    }

    fn pool(devices: usize, block_bytes: u64, budget: u64) -> BlockPool {
        BlockPool::new(config(block_bytes, budget), (0..devices).map(DeviceId).collect())
    }

    #[test]
    fn grow_release_roundtrip_hits_the_tracker() {
        let mut s = sim(2);
        let mut p = pool(2, 1024, 16 * 1024);
        // 40 tokens at 16/block = 3 blocks, on both devices.
        let added = p.grow(&mut s, 0, 40, 1).unwrap();
        assert_eq!(added, 3);
        assert_eq!(p.live_blocks(), 3);
        assert_eq!(s.memory_in_use(DeviceId(0)), 3 * 1024);
        assert_eq!(s.memory_in_use(DeviceId(1)), 3 * 1024);
        p.check_consistent().unwrap();
        // Growing within the covered span allocates nothing.
        assert_eq!(p.grow(&mut s, 0, 48, 1).unwrap(), 0);
        // One token past the boundary adds one block.
        assert_eq!(p.grow(&mut s, 0, 49, 1).unwrap(), 1);
        assert_eq!(p.release(&mut s, 0), 4);
        assert!(p.is_empty());
        assert_eq!(s.memory_in_use(DeviceId(0)), 0);
        assert_eq!(s.memory_in_use(DeviceId(1)), 0);
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn rows_multiply_the_table() {
        let mut s = sim(1);
        let mut p = pool(1, 64, 64 * 64);
        assert_eq!(p.grow(&mut s, 7, 16, 4).unwrap(), 4, "one block per row");
        assert_eq!(p.grow(&mut s, 7, 17, 4).unwrap(), 4, "next block, every row");
        p.check_consistent().unwrap();
        p.release(&mut s, 7);
    }

    #[test]
    fn budget_exhaustion_is_typed_and_clean() {
        let mut s = sim(1);
        let mut p = pool(1, 1024, 4 * 1024); // 4 blocks
        p.grow(&mut s, 0, 48, 1).unwrap(); // 3 blocks
        let err = p.grow(&mut s, 1, 32, 1).unwrap_err(); // needs 2, 1 free
        assert_eq!(err.requested_blocks, 2);
        assert_eq!(err.free_blocks, 1);
        assert_eq!(err.capacity_blocks, 4);
        assert_eq!(err.device, None);
        assert!(err.to_string().contains("out of KV blocks"));
        // The failed grow left nothing behind.
        assert!(!p.has_seq(1));
        assert_eq!(p.live_blocks(), 3);
        p.check_consistent().unwrap();
        p.release(&mut s, 0);
    }

    #[test]
    fn tracker_capacity_failure_rolls_the_grow_back() {
        let mut s = sim(1);
        let cap = DeviceSpec::test_device().mem_capacity;
        // Pool budget far above the device: the tracker refuses first.
        let block = cap / 4 + 1;
        let mut p = pool(1, block, 100 * block);
        let before = s.memory_in_use(DeviceId(0));
        let err = p.grow(&mut s, 0, 16 * 4, 1).unwrap_err(); // 4 blocks > capacity
        assert_eq!(err.device, Some(DeviceId(0)));
        assert!(!p.has_seq(0));
        assert!(p.is_empty());
        assert_eq!(s.memory_in_use(DeviceId(0)), before, "rollback frees partial pages");
        p.check_consistent().unwrap();
    }

    #[test]
    fn shared_blocks_survive_the_source_release() {
        let mut s = sim(2);
        let mut p = pool(2, 512, 32 * 512);
        p.grow(&mut s, 1, 32, 1).unwrap(); // 2 blocks
        p.share(1, 101);
        p.check_consistent().unwrap();
        assert_eq!(p.release(&mut s, 1), 0, "replica still references every block");
        assert_eq!(p.live_blocks(), 2);
        assert!(s.memory_in_use(DeviceId(0)) > 0);
        assert_eq!(p.release(&mut s, 101), 2, "last reference frees");
        assert!(p.is_empty());
        assert_eq!(s.memory_in_use(DeviceId(0)), 0);
    }

    #[test]
    fn device_loss_frees_the_dead_shard_only() {
        let mut s = sim(3);
        let mut p = pool(3, 256, 8 * 256);
        p.grow(&mut s, 0, 64, 1).unwrap(); // 4 blocks x 3 devices
        let freed = p.on_device_loss(&mut s, DeviceId(1));
        assert_eq!(freed, 4);
        assert_eq!(s.memory_in_use(DeviceId(1)), 0);
        assert_eq!(s.memory_in_use(DeviceId(0)), 4 * 256);
        assert_eq!(p.devices(), &[DeviceId(0), DeviceId(2)]);
        p.check_consistent().unwrap();
        // New blocks land on survivors only.
        p.grow(&mut s, 0, 65, 1).unwrap();
        assert_eq!(s.memory_in_use(DeviceId(1)), 0);
        p.release(&mut s, 0);
        assert!(p.is_empty());
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn sized_for_leaves_engine_headroom() {
        let model = ModelConfig::opt_30b();
        let cap = DeviceSpec::v100_16gb().mem_capacity;
        let cfg = BlockPoolConfig::sized_for(&model, 4, cap, 16);
        cfg.validate().unwrap();
        let weights = model.weight_bytes() / 4;
        assert!(weights + 4 * cfg.budget_bytes <= cap, "budget is a quarter of the headroom");
        assert!(cfg.capacity_blocks() > 0);
    }

    #[test]
    fn validate_rejects_degenerate_geometry() {
        assert!(config(0, 1024).validate().is_err());
        assert!(config(1024, 512).validate().is_err(), "budget below one block");
        let mut bad = config(1024, 4096);
        bad.watermark = 0.0;
        assert!(bad.validate().is_err());
        bad.watermark = 1.5;
        assert!(bad.validate().is_err());
        bad.block_tokens = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn occupancy_and_watermark() {
        let mut s = sim(1);
        let mut p = pool(1, 1024, 10 * 1024);
        assert_eq!(p.occupancy(), 0.0);
        assert!(!p.above_watermark());
        p.grow(&mut s, 0, 16 * 10, 1).unwrap(); // all 10 blocks
        assert_eq!(p.occupancy(), 1.0);
        assert!(p.above_watermark());
        p.release(&mut s, 0);
    }
}
