//! Paged KV-cache subsystem: a block-granular, ref-counted pool backed by
//! the simulator's [`MemoryTracker`](liger_gpu_sim::MemoryTracker).
//!
//! The continuous-batching scheduler (vLLM-style iteration-level serving,
//! the baseline mechanism LLMServingSim and Frontier assume) needs KV memory
//! it can grow one token at a time and reclaim the instant a sequence
//! retires. This crate provides that: sequences own *block tables* — lists
//! of fixed-size blocks, each holding `block_tokens` tokens of K and V
//! sharded across the node's devices — and every block is a real
//! [`Simulation::alloc_memory`](liger_gpu_sim::Simulation::alloc_memory)
//! allocation per device, so the static verifier's SV-MEM-CAP rule and the
//! trace sanitizer's UAF/double-free/leak rules see every page the pool
//! touches.
//!
//! Exhaustion is a typed [`OutOfBlocks`], never a panic: the scheduler
//! handles it with watermark-driven preemption (evict the youngest
//! sequence's blocks and recompute its prefill later, priced by
//! `liger_model::kv_recovery_plan`). Blocks are ref-counted so a recovery
//! replica can [`share`](BlockPool::share) a dying sequence's table without
//! copying it.
//!
//! # Cross-request prefix caching
//!
//! Full prompt-prefix blocks can be *published* into a content-hash index
//! ([`BlockPool::publish_prefix`]): each full block of a finished prefill is
//! keyed by a running chain hash over its token digests, and the cache holds
//! its own reference on the block. A later request with the same leading
//! digests adopts the longest cached chain
//! ([`BlockPool::admit_with_prefix`]) — its table shares the cached blocks
//! via the ordinary refcounts and only the novel tail is ever prefilled.
//! Cold chains are reclaimed leaf-first, least-recently-used first, and only
//! when the cache holds the last reference
//! ([`BlockPool::evict_cold_prefixes`]): a block pinned by any live sequence
//! is never evicted out from under it. Speculative-decoding rollback uses
//! [`BlockPool::truncate`], the shrink mirror of [`BlockPool::grow`].
//!
//! # Simplifications
//!
//! The block size is fixed at deployment time from the *healthy* parallel
//! degree. After a device loss the pool frees the dead device's side of
//! every block and allocates new blocks on the survivors only, keeping the
//! per-device block size — i.e. the degraded node packs the same tokens
//! into the same per-device bytes. The true cost of restoring the lost
//! shard is carried by the recovery plan, not the pool.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt;

use liger_gpu_sim::{AllocationId, DeviceId, Simulation};
use liger_model::{blocks_for_tokens, kv_block_bytes, ModelConfig};

/// Allocation label every KV block carries in traces and the tracker.
pub const BLOCK_LABEL: &str = "kv-block";

/// Seed of the prefix chain hash (the splitmix64 increment, an arbitrary
/// odd constant — any fixed value works, it only has to be shared by
/// publishers and adopters).
const PREFIX_CHAIN_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation used
/// for the prefix chain hash and the serving layer's deterministic token
/// oracle.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Running chain hash over per-block content digests: `h_k` commits to
/// digests `0..=k`, so two prompts share `h_k` exactly when their first
/// `k + 1` blocks hold identical tokens. `hashes[k]` keys block `k` in the
/// prefix index.
pub fn chain_hashes(digests: &[u64]) -> Vec<u64> {
    let mut h = PREFIX_CHAIN_SEED;
    digests
        .iter()
        .map(|&d| {
            h = mix64(h ^ d);
            h
        })
        .collect()
}

/// Geometry and budget of a [`BlockPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPoolConfig {
    /// Tokens per block (vLLM-style fixed page size).
    pub block_tokens: u32,
    /// Per-device bytes of one block (one sequence's K+V for `block_tokens`
    /// tokens, sharded across the node) — see `liger_model::kv_block_bytes`.
    pub block_bytes: u64,
    /// Per-device byte budget for the whole pool.
    pub budget_bytes: u64,
    /// Occupancy fraction above which the scheduler stops admitting and
    /// starts preempting.
    pub watermark: f64,
}

impl BlockPoolConfig {
    /// Sizes a pool for `model` partitioned `world` ways on devices with
    /// `capacity` bytes each: the budget is a quarter of the capacity left
    /// after the weight shard, leaving headroom for the engine's transient
    /// per-step working sets (which the static verifier checks).
    pub fn sized_for(
        model: &ModelConfig,
        world: u32,
        capacity: u64,
        block_tokens: u32,
    ) -> BlockPoolConfig {
        let weights = model.weight_bytes() / world.max(1) as u64;
        let headroom = capacity.saturating_sub(weights);
        BlockPoolConfig {
            block_tokens,
            block_bytes: kv_block_bytes(model, world, block_tokens),
            budget_bytes: headroom / 4,
            watermark: 0.9,
        }
    }

    /// Sizes a pool that also hosts a cross-request prefix cache pinning up
    /// to `pinned_prefix_tokens` tokens of shared prompt blocks.
    ///
    /// [`sized_for`](Self::sized_for)'s quarter-headroom geometry assumes
    /// every block belongs to an active sequence, so a resident prefix cache
    /// would eat the decode working set from inside the budget and the
    /// watermark would preempt active sequences to protect blocks that are
    /// only cache-warm. This variant grows the budget by the pinned
    /// footprint (capped at half the headroom so the engine's transient
    /// working sets keep their room — the static verifier's prefix-residency
    /// rule checks the cap holds in degraded worlds too). With zero pinned
    /// tokens it is identical to `sized_for`.
    pub fn sized_for_shared(
        model: &ModelConfig,
        world: u32,
        capacity: u64,
        block_tokens: u32,
        pinned_prefix_tokens: u32,
    ) -> BlockPoolConfig {
        let mut cfg = BlockPoolConfig::sized_for(model, world, capacity, block_tokens);
        let weights = model.weight_bytes() / world.max(1) as u64;
        let headroom = capacity.saturating_sub(weights);
        let pinned = blocks_for_tokens(pinned_prefix_tokens, block_tokens) * cfg.block_bytes;
        cfg.budget_bytes = (cfg.budget_bytes + pinned).min(headroom / 2);
        cfg
    }

    /// Whole blocks the per-device budget can hold.
    pub fn capacity_blocks(&self) -> u64 {
        self.budget_bytes / self.block_bytes.max(1)
    }

    /// Rejects degenerate geometry (zero-sized blocks, a budget below one
    /// block, or a watermark outside `(0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if self.block_tokens == 0 {
            return Err("block_tokens must be positive".into());
        }
        if self.block_bytes == 0 {
            return Err("block_bytes must be positive".into());
        }
        if self.capacity_blocks() == 0 {
            return Err(format!(
                "budget of {} bytes holds zero blocks of {} bytes",
                self.budget_bytes, self.block_bytes
            ));
        }
        if !(self.watermark > 0.0 && self.watermark <= 1.0) {
            return Err(format!("watermark {} outside (0, 1]", self.watermark));
        }
        Ok(())
    }
}

/// Typed block-pool exhaustion: the scheduler must handle this (preempt,
/// shed, or defer) — it is never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBlocks {
    /// Blocks the failed grow needed.
    pub requested_blocks: u64,
    /// Blocks free under the pool budget at the time of the failure.
    pub free_blocks: u64,
    /// Total blocks the budget holds.
    pub capacity_blocks: u64,
    /// Device whose tracker refused the backing allocation, when the
    /// failure came from real device capacity rather than the pool budget.
    pub device: Option<DeviceId>,
}

impl fmt::Display for OutOfBlocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device {
            Some(d) => write!(
                f,
                "out of KV blocks: {} tracker refused backing pages ({} requested, {} of {} free)",
                d, self.requested_blocks, self.free_blocks, self.capacity_blocks
            ),
            None => write!(
                f,
                "out of KV blocks: {} requested, {} of {} free",
                self.requested_blocks, self.free_blocks, self.capacity_blocks
            ),
        }
    }
}

impl std::error::Error for OutOfBlocks {}

#[derive(Debug)]
struct Block {
    /// One backing allocation per live device (the block's shard on it).
    allocs: Vec<(DeviceId, AllocationId)>,
    /// Sequences whose tables reference this block.
    refs: u32,
}

/// One cached prefix block in the content-hash index, keyed by its chain
/// hash.
#[derive(Debug)]
struct PrefixEntry {
    /// The block holding this prefix position's KV pages.
    block: u64,
    /// Chain hash of the previous prefix block (`None` for block 0). Kept
    /// so eviction can tell leaves from interior chain links.
    parent: Option<u64>,
    /// Logical clock of the last admit/publish that touched this entry.
    last_used: u64,
}

/// Outcome of [`BlockPool::admit_with_prefix`]: how much of the prompt the
/// cache served and how many fresh blocks the tail needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixAdmit {
    /// Prompt tokens covered by adopted cache blocks (always leaves at
    /// least one novel token to prefill).
    pub cached_tokens: u32,
    /// Cache blocks adopted into the sequence's table.
    pub cached_blocks: u64,
    /// Fresh blocks allocated for the novel tail.
    pub added_blocks: u64,
}

#[derive(Debug)]
struct SeqEntry {
    /// Block ids, in allocation order (`blocks_per_row × rows` entries).
    table: Vec<u64>,
    /// Cached tokens per row this table currently covers.
    tokens: u32,
    /// Rows (batch members) sharing this sequence entry.
    rows: u32,
}

/// Pool-lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Blocks ever allocated.
    pub allocated: u64,
    /// Blocks fully freed (refcount reached zero).
    pub freed: u64,
    /// High-water mark of live blocks.
    pub peak_live: u64,
}

/// Block-granular, ref-counted KV pool over the node's live devices.
///
/// Every logical block is backed by one tracker allocation *per device*
/// (label [`BLOCK_LABEL`]), so traces show each page's lifetime and the
/// capacity checks see the pool's true footprint.
#[derive(Debug)]
pub struct BlockPool {
    config: BlockPoolConfig,
    devices: Vec<DeviceId>,
    blocks: BTreeMap<u64, Block>,
    seqs: BTreeMap<u64, SeqEntry>,
    /// Content-hash index of published prompt-prefix blocks: chain hash →
    /// cached entry. The cache holds one reference on every indexed block.
    prefix: BTreeMap<u64, PrefixEntry>,
    /// Inverse of `prefix` (block id → chain hash); a block is indexed
    /// under at most one hash.
    prefix_of_block: BTreeMap<u64, u64>,
    /// Logical clock for prefix LRU ordering.
    prefix_clock: u64,
    next_block: u64,
    stats: PoolStats,
}

impl BlockPool {
    /// Creates a pool over `devices` (the live devices at deployment).
    /// Panics on an invalid config — validate first if it came from a user.
    pub fn new(config: BlockPoolConfig, devices: Vec<DeviceId>) -> BlockPool {
        if let Err(e) = config.validate() {
            panic!("invalid BlockPoolConfig: {e}");
        }
        assert!(!devices.is_empty(), "a block pool needs at least one device");
        BlockPool {
            config,
            devices,
            blocks: BTreeMap::new(),
            seqs: BTreeMap::new(),
            prefix: BTreeMap::new(),
            prefix_of_block: BTreeMap::new(),
            prefix_clock: 0,
            next_block: 0,
            stats: PoolStats::default(),
        }
    }

    /// The pool's geometry and budget.
    pub fn config(&self) -> &BlockPoolConfig {
        &self.config
    }

    /// Devices the pool currently allocates on.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Blocks needed per row to cache `tokens` tokens.
    pub fn blocks_for(&self, tokens: u32) -> u64 {
        blocks_for_tokens(tokens, self.config.block_tokens)
    }

    /// Whether `seq` has a block table.
    pub fn has_seq(&self, seq: u64) -> bool {
        self.seqs.contains_key(&seq)
    }

    /// Cached tokens per row for `seq`, if it has a table.
    pub fn seq_tokens(&self, seq: u64) -> Option<u32> {
        self.seqs.get(&seq).map(|e| e.tokens)
    }

    /// Grows `seq`'s table to cover `tokens` cached tokens per row across
    /// `rows` rows, allocating backing pages on every live device. Creates
    /// the table on first call; `rows` must then match on every later grow.
    /// Shrinking is not a thing — fewer tokens than already covered is a
    /// no-op. Returns the number of blocks added.
    ///
    /// On failure (pool budget or device capacity) the pool is left exactly
    /// as before the call and the caller gets a typed [`OutOfBlocks`].
    pub fn grow(
        &mut self,
        sim: &mut Simulation,
        seq: u64,
        tokens: u32,
        rows: u32,
    ) -> Result<u64, OutOfBlocks> {
        assert!(rows >= 1, "a sequence has at least one row");
        let have = match self.seqs.get(&seq) {
            Some(e) => {
                assert_eq!(e.rows, rows, "rows are fixed at sequence creation");
                e.table.len() as u64
            }
            None => 0,
        };
        let needed = self.blocks_for(tokens) * rows as u64;
        if needed <= have {
            if let Some(e) = self.seqs.get_mut(&seq) {
                e.tokens = e.tokens.max(tokens);
            }
            return Ok(0);
        }
        let delta = needed - have;
        let capacity = self.config.capacity_blocks();
        let live = self.live_blocks();
        let free = capacity.saturating_sub(live);
        if delta > free {
            return Err(OutOfBlocks {
                requested_blocks: delta,
                free_blocks: free,
                capacity_blocks: capacity,
                device: None,
            });
        }
        // Allocate the new blocks, rolling the whole grow back if any
        // device's tracker refuses a backing page.
        let mut added: Vec<u64> = Vec::with_capacity(delta as usize);
        for _ in 0..delta {
            let mut allocs: Vec<(DeviceId, AllocationId)> = Vec::with_capacity(self.devices.len());
            let mut failed: Option<DeviceId> = None;
            for &d in &self.devices {
                match sim.alloc_memory(d, self.config.block_bytes, BLOCK_LABEL) {
                    Ok(id) => allocs.push((d, id)),
                    Err(_) => {
                        failed = Some(d);
                        break;
                    }
                }
            }
            if let Some(d) = failed {
                for (_, id) in allocs {
                    sim.free_memory(id);
                }
                for b in added {
                    let block = self.blocks.remove(&b).expect("just inserted");
                    for (_, id) in block.allocs {
                        sim.free_memory(id);
                    }
                    self.stats.allocated -= 1;
                }
                return Err(OutOfBlocks {
                    requested_blocks: delta,
                    free_blocks: free,
                    capacity_blocks: capacity,
                    device: Some(d),
                });
            }
            let id = self.next_block;
            self.next_block += 1;
            self.blocks.insert(id, Block { allocs, refs: 1 });
            self.stats.allocated += 1;
            added.push(id);
        }
        self.stats.peak_live = self.stats.peak_live.max(self.live_blocks());
        let entry = self.seqs.entry(seq).or_insert(SeqEntry { table: Vec::new(), tokens: 0, rows });
        entry.table.extend(added);
        entry.tokens = entry.tokens.max(tokens);
        Ok(delta)
    }

    /// Drops `seq`'s table, freeing every block whose refcount reaches
    /// zero. Returns the number of blocks actually freed (shared blocks
    /// survive in the replica's table). Unknown sequences free nothing.
    pub fn release(&mut self, sim: &mut Simulation, seq: u64) -> u64 {
        let Some(entry) = self.seqs.remove(&seq) else {
            return 0;
        };
        let mut freed = 0;
        for b in entry.table {
            let block = self.blocks.get_mut(&b).expect("table references a live block");
            block.refs -= 1;
            if block.refs == 0 {
                let block = self.blocks.remove(&b).expect("present");
                for (_, id) in block.allocs {
                    sim.free_memory(id);
                }
                self.stats.freed += 1;
                freed += 1;
            }
        }
        freed
    }

    /// Clones `src`'s table into `dst` by bumping each block's refcount —
    /// the zero-copy replication recovery uses to keep a warm standby of a
    /// sequence's KV state. `dst` must not already exist.
    pub fn share(&mut self, src: u64, dst: u64) {
        assert!(!self.seqs.contains_key(&dst), "share target already has a table");
        let entry = self.seqs.get(&src).expect("share source has a table");
        let cloned =
            SeqEntry { table: entry.table.clone(), tokens: entry.tokens, rows: entry.rows };
        for &b in &cloned.table {
            self.blocks.get_mut(&b).expect("table references a live block").refs += 1;
        }
        self.seqs.insert(dst, cloned);
    }

    /// Admits a fresh single-row sequence, adopting the longest published
    /// prefix chain matching `digests` (per-full-block content digests of
    /// the prompt, see [`chain_hashes`]) before growing the novel tail to
    /// `tokens` like [`grow`](Self::grow). Adopted blocks are shared via
    /// the ordinary refcounts — the cache keeps its own reference, so a
    /// later eviction can never free a block under an adopter.
    ///
    /// Adoption is capped so at least one novel token remains: even a full
    /// prompt hit must run a one-token prefill to produce its first output.
    /// Multi-row sequences and re-grows of existing sequences fall through
    /// to a plain `grow` with zero cached tokens. On failure the pool is
    /// left exactly as before the call.
    pub fn admit_with_prefix(
        &mut self,
        sim: &mut Simulation,
        seq: u64,
        digests: &[u64],
        tokens: u32,
        rows: u32,
    ) -> Result<PrefixAdmit, OutOfBlocks> {
        if rows != 1 || self.seqs.contains_key(&seq) {
            let added = self.grow(sim, seq, tokens, rows)?;
            return Ok(PrefixAdmit { cached_tokens: 0, cached_blocks: 0, added_blocks: added });
        }
        let hashes = chain_hashes(digests);
        let max_cached = (tokens.saturating_sub(1) / self.config.block_tokens) as usize;
        let mut matched: Vec<u64> = Vec::new();
        for h in hashes.iter().take(max_cached) {
            match self.prefix.get(h) {
                Some(e) => matched.push(e.block),
                None => break,
            }
        }
        self.prefix_clock += 1;
        let clock = self.prefix_clock;
        for h in hashes.iter().take(matched.len()) {
            self.prefix.get_mut(h).expect("matched above").last_used = clock;
        }
        let cached_blocks = matched.len() as u64;
        let cached_tokens = matched.len() as u32 * self.config.block_tokens;
        if cached_blocks > 0 {
            for &b in &matched {
                self.blocks.get_mut(&b).expect("cached block is live").refs += 1;
            }
            self.seqs.insert(seq, SeqEntry { table: matched, tokens: cached_tokens, rows: 1 });
        }
        match self.grow(sim, seq, tokens, rows) {
            Ok(added) => Ok(PrefixAdmit { cached_tokens, cached_blocks, added_blocks: added }),
            Err(e) => {
                // Undo the adoption; the cache's own references keep the
                // adopted blocks alive.
                self.release(sim, seq);
                Err(e)
            }
        }
    }

    /// Publishes `seq`'s full prompt-prefix blocks into the content-hash
    /// index so later requests can adopt them. `digests` are the same
    /// per-full-block digests the adopter will present; block `k` of the
    /// table (tables append in order, so table position is prompt position)
    /// is keyed by chain hash `k`. Each newly indexed block gains one cache
    /// reference. Chains already published (by this or an equal-content
    /// prompt) are just LRU-refreshed. Multi-row and unknown sequences
    /// publish nothing. Returns the number of newly indexed blocks.
    pub fn publish_prefix(&mut self, seq: u64, digests: &[u64]) -> u64 {
        let Some(entry) = self.seqs.get(&seq) else {
            return 0;
        };
        if entry.rows != 1 {
            return 0;
        }
        let hashes = chain_hashes(digests);
        let n = hashes.len().min(entry.table.len());
        let blocks: Vec<u64> = entry.table[..n].to_vec();
        self.prefix_clock += 1;
        let clock = self.prefix_clock;
        let mut published = 0;
        for (p, (&h, &b)) in hashes.iter().zip(blocks.iter()).enumerate() {
            if let Some(e) = self.prefix.get_mut(&h) {
                // Same content already cached (possibly a different block
                // from a racing prefill) — refresh and keep walking.
                e.last_used = clock;
                continue;
            }
            if self.prefix_of_block.contains_key(&b) {
                // The block is already indexed under another chain; a block
                // holds one content, so stop rather than double-index it.
                break;
            }
            let parent = if p == 0 { None } else { Some(hashes[p - 1]) };
            self.prefix.insert(h, PrefixEntry { block: b, parent, last_used: clock });
            self.prefix_of_block.insert(b, h);
            self.blocks.get_mut(&b).expect("table references a live block").refs += 1;
            published += 1;
        }
        published
    }

    /// Evicts cold cached prefixes until `want_blocks` blocks have been
    /// freed or no evictable entry remains. Victims are chosen leaf-first
    /// (an interior chain link is never dropped under its children),
    /// least-recently-used first, and only when the cache holds the *last*
    /// reference — a prefix still pinned by any live sequence is skipped,
    /// so eviction can never free memory out from under an active decode.
    /// Returns the number of blocks freed.
    pub fn evict_cold_prefixes(&mut self, sim: &mut Simulation, want_blocks: u64) -> u64 {
        let mut evicted = 0;
        while evicted < want_blocks {
            let parents: std::collections::BTreeSet<u64> =
                self.prefix.values().filter_map(|e| e.parent).collect();
            let victim = self
                .prefix
                .iter()
                .filter(|(h, e)| {
                    !parents.contains(h) && self.blocks.get(&e.block).is_some_and(|b| b.refs == 1)
                })
                .min_by_key(|(&h, e)| (e.last_used, h))
                .map(|(&h, _)| h);
            let Some(h) = victim else {
                break;
            };
            let entry = self.prefix.remove(&h).expect("victim chosen from the index");
            self.prefix_of_block.remove(&entry.block);
            let block = self.blocks.get_mut(&entry.block).expect("indexed block is live");
            block.refs -= 1;
            debug_assert_eq!(block.refs, 0, "victims are cache-only by construction");
            let block = self.blocks.remove(&entry.block).expect("present");
            for (_, id) in block.allocs {
                sim.free_memory(id);
            }
            self.stats.freed += 1;
            evicted += 1;
        }
        evicted
    }

    /// Drops every cache reference, freeing blocks no sequence still pins.
    /// Serving calls this at drain (so the end-of-serve pool is provably
    /// empty) and on device loss (a cached prefix missing a shard would
    /// serve corrupt KV to its next adopter). Returns the blocks freed.
    pub fn flush_prefix_cache(&mut self, sim: &mut Simulation) -> u64 {
        let cached: Vec<u64> = self.prefix.values().map(|e| e.block).collect();
        self.prefix.clear();
        self.prefix_of_block.clear();
        let mut freed = 0;
        for b in cached {
            let block = self.blocks.get_mut(&b).expect("cached block is live");
            block.refs -= 1;
            if block.refs == 0 {
                let block = self.blocks.remove(&b).expect("present");
                for (_, id) in block.allocs {
                    sim.free_memory(id);
                }
                self.stats.freed += 1;
                freed += 1;
            }
        }
        freed
    }

    /// Shrinks `seq`'s table back to `tokens` cached tokens per row — the
    /// rollback mirror of [`grow`](Self::grow), used when speculative
    /// verification rejects drafted tokens whose blocks were grown ahead.
    /// Blocks are popped from the table tail; ones still shared (with the
    /// prefix cache or a replica) survive, the rest are freed. Growing via
    /// `truncate` is impossible: `tokens` above the covered span is a
    /// no-op. Returns the number of blocks dropped from the table.
    pub fn truncate(&mut self, sim: &mut Simulation, seq: u64, tokens: u32) -> u64 {
        let needed = match self.seqs.get(&seq) {
            Some(e) => self.blocks_for(e.tokens.min(tokens)) * e.rows as u64,
            None => return 0,
        };
        let entry = self.seqs.get_mut(&seq).expect("checked above");
        entry.tokens = entry.tokens.min(tokens);
        let mut popped: Vec<u64> = Vec::new();
        while entry.table.len() as u64 > needed {
            popped.push(entry.table.pop().expect("longer than needed"));
        }
        let dropped = popped.len() as u64;
        for b in popped {
            let block = self.blocks.get_mut(&b).expect("table references a live block");
            block.refs -= 1;
            if block.refs == 0 {
                let block = self.blocks.remove(&b).expect("present");
                for (_, id) in block.allocs {
                    sim.free_memory(id);
                }
                self.stats.freed += 1;
            }
        }
        dropped
    }

    /// Blocks currently indexed (and therefore pinned) by the prefix cache.
    pub fn pinned_prefix_blocks(&self) -> u64 {
        self.prefix_of_block.len() as u64
    }

    /// A device died: free its side of every live block (the shard is gone
    /// with the hardware) and stop allocating on it. Block tables survive —
    /// the surviving shards are intact, and the recovery plan prices
    /// restoring the lost one. Returns the number of backing allocations
    /// freed.
    pub fn on_device_loss(&mut self, sim: &mut Simulation, dead: DeviceId) -> u64 {
        // A device that is not a member holds no shard: a second confirmed
        // loss for the same device (e.g. queued behind an in-progress drain)
        // must not walk the free path again — its pages are already gone,
        // and freeing them twice would trip the TS-DOUBLE-FREE sanitizer.
        if !self.devices.contains(&dead) {
            return 0;
        }
        let mut freed = 0;
        for block in self.blocks.values_mut() {
            let mut kept = Vec::with_capacity(block.allocs.len());
            for (d, id) in block.allocs.drain(..) {
                if d == dead {
                    sim.free_memory(id);
                    freed += 1;
                } else {
                    kept.push((d, id));
                }
            }
            block.allocs = kept;
        }
        self.devices.retain(|&d| d != dead);
        freed
    }

    /// A lost device rejoined with empty memory: resume allocating on it
    /// and back every live block with a page on it — the shard the
    /// re-expansion's migrate/recompute work fills in. Returns the number
    /// of pages allocated. No-op if the device is already a member.
    pub fn on_device_rejoin(&mut self, sim: &mut Simulation, rejoined: DeviceId) -> u64 {
        if self.devices.contains(&rejoined) {
            return 0;
        }
        self.devices.push(rejoined);
        self.devices.sort_unstable_by_key(|d| d.0);
        let mut added = 0;
        for block in self.blocks.values_mut() {
            let id = sim
                .alloc_memory(rejoined, self.config.block_bytes, BLOCK_LABEL)
                .expect("an empty rejoined device backs every live block");
            block.allocs.push((rejoined, id));
            added += 1;
        }
        added
    }

    /// Live (allocated, unreleased) blocks.
    pub fn live_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Total blocks the budget holds.
    pub fn capacity_blocks(&self) -> u64 {
        self.config.capacity_blocks()
    }

    /// Fraction of the budget in use.
    pub fn occupancy(&self) -> f64 {
        self.live_blocks() as f64 / self.capacity_blocks() as f64
    }

    /// Whether occupancy exceeds the preemption watermark.
    pub fn above_watermark(&self) -> bool {
        self.occupancy() > self.config.watermark
    }

    /// Whether the pool holds no blocks (every serve must end here).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of sequences holding tables.
    pub fn live_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// Ids of every sequence holding a table, ascending.
    pub fn seq_ids(&self) -> Vec<u64> {
        self.seqs.keys().copied().collect()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Structural invariants, checked exhaustively (for tests): every table
    /// entry references a live block, stored refcounts equal the number of
    /// tables referencing each block plus the prefix cache's pin, every
    /// block is reachable from some table or the prefix index, the index
    /// and its inverse form a bijection whose parent chains are unbroken,
    /// and every block's backing allocations cover exactly the live device
    /// set.
    pub fn check_consistent(&self) -> Result<(), String> {
        let mut refs: BTreeMap<u64, u32> = BTreeMap::new();
        for (seq, entry) in &self.seqs {
            let expect = self.blocks_for(entry.tokens) * entry.rows as u64;
            if entry.table.len() as u64 != expect {
                return Err(format!(
                    "seq {seq}: table holds {} blocks, {} tokens x {} rows needs {expect}",
                    entry.table.len(),
                    entry.tokens,
                    entry.rows
                ));
            }
            for &b in &entry.table {
                if !self.blocks.contains_key(&b) {
                    return Err(format!("seq {seq} references dead block {b}"));
                }
                *refs.entry(b).or_insert(0) += 1;
            }
        }
        if self.prefix.len() != self.prefix_of_block.len() {
            return Err(format!(
                "prefix index holds {} entries but its inverse holds {}",
                self.prefix.len(),
                self.prefix_of_block.len()
            ));
        }
        for (&h, entry) in &self.prefix {
            if !self.blocks.contains_key(&entry.block) {
                return Err(format!("prefix {h:#x} references dead block {}", entry.block));
            }
            if self.prefix_of_block.get(&entry.block) != Some(&h) {
                return Err(format!(
                    "prefix index bijection broken at block {} (hash {h:#x})",
                    entry.block
                ));
            }
            if let Some(p) = entry.parent {
                if !self.prefix.contains_key(&p) {
                    return Err(format!("prefix {h:#x} has evicted parent {p:#x}"));
                }
            }
            *refs.entry(entry.block).or_insert(0) += 1;
        }
        for (&b, block) in &self.blocks {
            let counted = refs.get(&b).copied().unwrap_or(0);
            if counted != block.refs {
                return Err(format!(
                    "block {b}: stored refcount {} but {counted} references (tables + cache)",
                    block.refs
                ));
            }
            if block.refs == 0 {
                return Err(format!("block {b} is live with zero references"));
            }
            let mut devs: Vec<DeviceId> = block.allocs.iter().map(|&(d, _)| d).collect();
            devs.sort_by_key(|d| d.0);
            let mut live: Vec<DeviceId> = self.devices.clone();
            live.sort_by_key(|d| d.0);
            if devs != live {
                return Err(format!("block {b}: backed on {devs:?} but live devices are {live:?}"));
            }
        }
        if self.stats.allocated - self.stats.freed != self.live_blocks() {
            return Err(format!(
                "counters disagree: {} allocated - {} freed != {} live",
                self.stats.allocated,
                self.stats.freed,
                self.live_blocks()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::{DeviceSpec, HostSpec};

    fn sim(devices: usize) -> Simulation {
        let mut b = Simulation::builder().devices(DeviceSpec::test_device(), devices);
        for _ in 0..devices {
            b = b.host(HostSpec::instant());
        }
        b.build().unwrap()
    }

    fn config(block_bytes: u64, budget: u64) -> BlockPoolConfig {
        BlockPoolConfig { block_tokens: 16, block_bytes, budget_bytes: budget, watermark: 0.9 }
    }

    fn pool(devices: usize, block_bytes: u64, budget: u64) -> BlockPool {
        BlockPool::new(config(block_bytes, budget), (0..devices).map(DeviceId).collect())
    }

    #[test]
    fn grow_release_roundtrip_hits_the_tracker() {
        let mut s = sim(2);
        let mut p = pool(2, 1024, 16 * 1024);
        // 40 tokens at 16/block = 3 blocks, on both devices.
        let added = p.grow(&mut s, 0, 40, 1).unwrap();
        assert_eq!(added, 3);
        assert_eq!(p.live_blocks(), 3);
        assert_eq!(s.memory_in_use(DeviceId(0)), 3 * 1024);
        assert_eq!(s.memory_in_use(DeviceId(1)), 3 * 1024);
        p.check_consistent().unwrap();
        // Growing within the covered span allocates nothing.
        assert_eq!(p.grow(&mut s, 0, 48, 1).unwrap(), 0);
        // One token past the boundary adds one block.
        assert_eq!(p.grow(&mut s, 0, 49, 1).unwrap(), 1);
        assert_eq!(p.release(&mut s, 0), 4);
        assert!(p.is_empty());
        assert_eq!(s.memory_in_use(DeviceId(0)), 0);
        assert_eq!(s.memory_in_use(DeviceId(1)), 0);
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn rows_multiply_the_table() {
        let mut s = sim(1);
        let mut p = pool(1, 64, 64 * 64);
        assert_eq!(p.grow(&mut s, 7, 16, 4).unwrap(), 4, "one block per row");
        assert_eq!(p.grow(&mut s, 7, 17, 4).unwrap(), 4, "next block, every row");
        p.check_consistent().unwrap();
        p.release(&mut s, 7);
    }

    #[test]
    fn budget_exhaustion_is_typed_and_clean() {
        let mut s = sim(1);
        let mut p = pool(1, 1024, 4 * 1024); // 4 blocks
        p.grow(&mut s, 0, 48, 1).unwrap(); // 3 blocks
        let err = p.grow(&mut s, 1, 32, 1).unwrap_err(); // needs 2, 1 free
        assert_eq!(err.requested_blocks, 2);
        assert_eq!(err.free_blocks, 1);
        assert_eq!(err.capacity_blocks, 4);
        assert_eq!(err.device, None);
        assert!(err.to_string().contains("out of KV blocks"));
        // The failed grow left nothing behind.
        assert!(!p.has_seq(1));
        assert_eq!(p.live_blocks(), 3);
        p.check_consistent().unwrap();
        p.release(&mut s, 0);
    }

    #[test]
    fn tracker_capacity_failure_rolls_the_grow_back() {
        let mut s = sim(1);
        let cap = DeviceSpec::test_device().mem_capacity;
        // Pool budget far above the device: the tracker refuses first.
        let block = cap / 4 + 1;
        let mut p = pool(1, block, 100 * block);
        let before = s.memory_in_use(DeviceId(0));
        let err = p.grow(&mut s, 0, 16 * 4, 1).unwrap_err(); // 4 blocks > capacity
        assert_eq!(err.device, Some(DeviceId(0)));
        assert!(!p.has_seq(0));
        assert!(p.is_empty());
        assert_eq!(s.memory_in_use(DeviceId(0)), before, "rollback frees partial pages");
        p.check_consistent().unwrap();
    }

    #[test]
    fn shared_blocks_survive_the_source_release() {
        let mut s = sim(2);
        let mut p = pool(2, 512, 32 * 512);
        p.grow(&mut s, 1, 32, 1).unwrap(); // 2 blocks
        p.share(1, 101);
        p.check_consistent().unwrap();
        assert_eq!(p.release(&mut s, 1), 0, "replica still references every block");
        assert_eq!(p.live_blocks(), 2);
        assert!(s.memory_in_use(DeviceId(0)) > 0);
        assert_eq!(p.release(&mut s, 101), 2, "last reference frees");
        assert!(p.is_empty());
        assert_eq!(s.memory_in_use(DeviceId(0)), 0);
    }

    #[test]
    fn device_loss_frees_the_dead_shard_only() {
        let mut s = sim(3);
        let mut p = pool(3, 256, 8 * 256);
        p.grow(&mut s, 0, 64, 1).unwrap(); // 4 blocks x 3 devices
        let freed = p.on_device_loss(&mut s, DeviceId(1));
        assert_eq!(freed, 4);
        assert_eq!(s.memory_in_use(DeviceId(1)), 0);
        assert_eq!(s.memory_in_use(DeviceId(0)), 4 * 256);
        assert_eq!(p.devices(), &[DeviceId(0), DeviceId(2)]);
        p.check_consistent().unwrap();
        // New blocks land on survivors only.
        p.grow(&mut s, 0, 65, 1).unwrap();
        assert_eq!(s.memory_in_use(DeviceId(1)), 0);
        p.release(&mut s, 0);
        assert!(p.is_empty());
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn a_repeated_loss_for_the_same_device_frees_nothing_twice() {
        let mut s = sim(3);
        let mut p = pool(3, 256, 8 * 256);
        p.grow(&mut s, 0, 64, 1).unwrap(); // 4 blocks x 3 devices
        assert_eq!(p.on_device_loss(&mut s, DeviceId(1)), 4);
        // A stale confirmation for the same device (e.g. queued behind an
        // in-progress drain) must not walk the free path again.
        assert_eq!(p.on_device_loss(&mut s, DeviceId(1)), 0);
        p.check_consistent().unwrap();
        p.release(&mut s, 0);
        assert!(p.is_empty());
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn a_rejoined_device_backs_every_live_block_and_new_growth() {
        let mut s = sim(3);
        let mut p = pool(3, 256, 8 * 256);
        p.grow(&mut s, 0, 64, 1).unwrap(); // 4 blocks x 3 devices
        p.on_device_loss(&mut s, DeviceId(1));
        assert_eq!(p.devices(), &[DeviceId(0), DeviceId(2)]);
        let added = p.on_device_rejoin(&mut s, DeviceId(1));
        assert_eq!(added, 4, "every live block regains its shard");
        assert_eq!(p.devices(), &[DeviceId(0), DeviceId(1), DeviceId(2)]);
        assert_eq!(s.memory_in_use(DeviceId(1)), 4 * 256);
        p.check_consistent().unwrap();
        // Rejoining an existing member is a no-op.
        assert_eq!(p.on_device_rejoin(&mut s, DeviceId(1)), 0);
        // New growth shards over the widened set again.
        p.grow(&mut s, 0, 65, 1).unwrap();
        assert_eq!(s.memory_in_use(DeviceId(1)), 5 * 256);
        p.release(&mut s, 0);
        assert!(p.is_empty());
        assert_eq!(s.memory_in_use(DeviceId(1)), 0);
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn sized_for_leaves_engine_headroom() {
        let model = ModelConfig::opt_30b();
        let cap = DeviceSpec::v100_16gb().mem_capacity;
        let cfg = BlockPoolConfig::sized_for(&model, 4, cap, 16);
        cfg.validate().unwrap();
        let weights = model.weight_bytes() / 4;
        assert!(weights + 4 * cfg.budget_bytes <= cap, "budget is a quarter of the headroom");
        assert!(cfg.capacity_blocks() > 0);
    }

    #[test]
    fn validate_rejects_degenerate_geometry() {
        assert!(config(0, 1024).validate().is_err());
        assert!(config(1024, 512).validate().is_err(), "budget below one block");
        let mut bad = config(1024, 4096);
        bad.watermark = 0.0;
        assert!(bad.validate().is_err());
        bad.watermark = 1.5;
        assert!(bad.validate().is_err());
        bad.block_tokens = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn occupancy_and_watermark() {
        let mut s = sim(1);
        let mut p = pool(1, 1024, 10 * 1024);
        assert_eq!(p.occupancy(), 0.0);
        assert!(!p.above_watermark());
        p.grow(&mut s, 0, 16 * 10, 1).unwrap(); // all 10 blocks
        assert_eq!(p.occupancy(), 1.0);
        assert!(p.above_watermark());
        p.release(&mut s, 0);
    }

    #[test]
    fn publish_then_admit_shares_the_prefix_blocks() {
        let mut s = sim(2);
        let mut p = pool(2, 512, 64 * 512);
        let digests = [11, 22, 33]; // 3 full prompt blocks at 16 tokens each
                                    // First request: cold prefill of a 56-token prompt (48 shared + tail).
        let admit = p.admit_with_prefix(&mut s, 0, &digests, 56, 1).unwrap();
        assert_eq!(admit.cached_tokens, 0, "nothing published yet");
        assert_eq!(admit.added_blocks, 4);
        assert_eq!(p.publish_prefix(0, &digests), 3);
        assert_eq!(p.pinned_prefix_blocks(), 3);
        p.check_consistent().unwrap();
        let live_before = p.live_blocks();
        // Second request, same leading digests: adopts all 3 cached blocks.
        let admit = p.admit_with_prefix(&mut s, 1, &digests, 56, 1).unwrap();
        assert_eq!(admit.cached_tokens, 48);
        assert_eq!(admit.cached_blocks, 3);
        assert_eq!(admit.added_blocks, 1, "only the novel tail allocates");
        assert_eq!(p.live_blocks(), live_before + 1, "shared blocks are not re-backed");
        p.check_consistent().unwrap();
        // Releasing both leaves the cache's copies alive, flush drains them.
        p.release(&mut s, 0);
        p.release(&mut s, 1);
        assert_eq!(p.live_blocks(), 3, "cache still pins the published chain");
        assert_eq!(p.flush_prefix_cache(&mut s), 3);
        assert!(p.is_empty());
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn full_prompt_hit_still_prefills_one_token() {
        let mut s = sim(1);
        let mut p = pool(1, 256, 64 * 256);
        let digests = [7, 8]; // prompt is exactly 2 full blocks (32 tokens)
        p.admit_with_prefix(&mut s, 0, &digests, 32, 1).unwrap();
        p.publish_prefix(0, &digests);
        let admit = p.admit_with_prefix(&mut s, 1, &digests, 32, 1).unwrap();
        assert_eq!(admit.cached_blocks, 1, "adoption capped below the full prompt");
        assert_eq!(admit.cached_tokens, 16);
        p.check_consistent().unwrap();
        p.release(&mut s, 0);
        p.release(&mut s, 1);
        p.flush_prefix_cache(&mut s);
        assert!(p.is_empty());
    }

    #[test]
    fn divergent_tails_adopt_only_the_common_chain() {
        let mut s = sim(1);
        let mut p = pool(1, 256, 64 * 256);
        p.admit_with_prefix(&mut s, 0, &[1, 2, 3], 60, 1).unwrap();
        p.publish_prefix(0, &[1, 2, 3]);
        // Same first two blocks, then different content.
        let admit = p.admit_with_prefix(&mut s, 1, &[1, 2, 99], 60, 1).unwrap();
        assert_eq!(admit.cached_blocks, 2, "chain match stops at the divergence");
        assert_eq!(p.publish_prefix(1, &[1, 2, 99]), 1, "only the divergent block is new");
        p.check_consistent().unwrap();
        p.release(&mut s, 0);
        p.release(&mut s, 1);
        p.flush_prefix_cache(&mut s);
        assert!(p.is_empty());
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn eviction_is_leaf_first_lru_and_never_touches_pinned_chains() {
        let mut s = sim(1);
        let mut p = pool(1, 256, 64 * 256);
        // Publish a 3-block chain, with seq 1 still pinning all of it.
        p.admit_with_prefix(&mut s, 0, &[1, 2, 3], 3 * 16, 1).unwrap();
        p.publish_prefix(0, &[1, 2, 3]);
        p.admit_with_prefix(&mut s, 1, &[1, 2, 3], 3 * 16 + 8, 1).unwrap();
        // While an adopter lives, nothing is evictable.
        assert_eq!(p.evict_cold_prefixes(&mut s, 10), 0);
        p.release(&mut s, 0);
        p.release(&mut s, 1);
        p.check_consistent().unwrap();
        // Now only the cache pins the chain: eviction walks leaf -> root.
        assert_eq!(p.evict_cold_prefixes(&mut s, 1), 1);
        assert_eq!(p.pinned_prefix_blocks(), 2, "the leaf went first");
        p.check_consistent().unwrap();
        assert_eq!(p.evict_cold_prefixes(&mut s, 10), 2, "rest of the chain drains");
        assert!(p.is_empty());
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn truncate_rolls_back_speculative_blocks() {
        let mut s = sim(2);
        let mut p = pool(2, 512, 64 * 512);
        p.grow(&mut s, 0, 80, 1).unwrap(); // 5 blocks, grown ahead for drafts
                                           // All drafted tokens rejected: roll back to 40 tokens (3 blocks).
        assert_eq!(p.truncate(&mut s, 0, 40), 2);
        assert_eq!(p.seq_tokens(0), Some(40));
        assert_eq!(s.memory_in_use(DeviceId(0)), 3 * 512);
        p.check_consistent().unwrap();
        // Truncate never grows, and re-growing after rollback works.
        assert_eq!(p.truncate(&mut s, 0, 100), 0);
        assert_eq!(p.seq_tokens(0), Some(40));
        p.grow(&mut s, 0, 49, 1).unwrap();
        p.release(&mut s, 0);
        assert!(p.is_empty());
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn truncate_spares_blocks_the_cache_still_pins() {
        let mut s = sim(1);
        let mut p = pool(1, 256, 64 * 256);
        let digests = [5, 6];
        p.admit_with_prefix(&mut s, 0, &digests, 2 * 16, 1).unwrap();
        p.publish_prefix(0, &digests);
        // Rolling the sequence all the way back drops its table entries but
        // the published blocks stay alive under the cache's reference.
        assert_eq!(p.truncate(&mut s, 0, 0), 2);
        assert_eq!(p.live_blocks(), 2);
        p.check_consistent().unwrap();
        p.release(&mut s, 0);
        p.flush_prefix_cache(&mut s);
        assert!(p.is_empty());
        assert_eq!(s.memory_double_frees(), 0);
    }

    #[test]
    fn chain_hashes_commit_to_content_and_position() {
        let a = chain_hashes(&[1, 2, 3]);
        let b = chain_hashes(&[1, 2, 4]);
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
        assert_ne!(a[2], b[2], "divergent content diverges the chain");
        assert_ne!(chain_hashes(&[2, 1])[1], a[1], "order matters");
        assert!(chain_hashes(&[]).is_empty());
    }

    #[test]
    fn sized_for_shared_accounts_pinned_blocks() {
        let model = ModelConfig::opt_30b();
        let cap = DeviceSpec::v100_16gb().mem_capacity;
        let base = BlockPoolConfig::sized_for(&model, 4, cap, 16);
        let zero = BlockPoolConfig::sized_for_shared(&model, 4, cap, 16, 0);
        assert_eq!(zero, base, "no pinned prefix changes nothing");
        let shared = BlockPoolConfig::sized_for_shared(&model, 4, cap, 16, 256);
        shared.validate().unwrap();
        let pinned_blocks = blocks_for_tokens(256, 16);
        assert_eq!(
            shared.budget_bytes,
            base.budget_bytes + pinned_blocks * base.block_bytes,
            "budget grows by exactly the pinned footprint"
        );
        // The cap: an absurd pinned span cannot eat the engine headroom.
        let weights = model.weight_bytes() / 4;
        let capped = BlockPoolConfig::sized_for_shared(&model, 4, cap, 16, u32::MAX);
        assert_eq!(capped.budget_bytes, (cap - weights) / 2);
    }
}
