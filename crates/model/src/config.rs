//! Model configurations and the model zoo (the paper's Table 1).

/// Static description of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Model name (e.g. `"OPT-30B"`).
    pub name: String,
    /// Number of transformer layers.
    pub layers: u32,
    /// Attention heads.
    pub heads: u32,
    /// Hidden size.
    pub hidden: u32,
    /// Vocabulary size (embedding / LM head width).
    pub vocab: u32,
    /// Bytes per parameter/activation element (2 = FP16, Table 1's "Prec.").
    pub dtype_bytes: u32,
}

impl ModelConfig {
    /// OPT-30B: 48 layers, 56 heads, hidden 7168, FP16 (Table 1: 60 GB).
    pub fn opt_30b() -> ModelConfig {
        ModelConfig {
            name: "OPT-30B".into(),
            layers: 48,
            heads: 56,
            hidden: 7168,
            vocab: 50272,
            dtype_bytes: 2,
        }
    }

    /// OPT-66B: 64 layers, 72 heads, hidden 9216, FP16 (Table 1: 132 GB).
    pub fn opt_66b() -> ModelConfig {
        ModelConfig {
            name: "OPT-66B".into(),
            layers: 64,
            heads: 72,
            hidden: 9216,
            vocab: 50272,
            dtype_bytes: 2,
        }
    }

    /// GLM-130B: 70 layers, 96 heads, hidden 12288, FP16 (Table 1: 260 GB).
    /// The paper notes it shares GPT-3's layer setup.
    pub fn glm_130b() -> ModelConfig {
        ModelConfig {
            name: "GLM-130B".into(),
            layers: 70,
            heads: 96,
            hidden: 12288,
            vocab: 150528,
            dtype_bytes: 2,
        }
    }

    /// GPT-8B-class model (Fig. 4's small end).
    pub fn gpt_8b() -> ModelConfig {
        ModelConfig {
            name: "GPT-8B".into(),
            layers: 32,
            heads: 32,
            hidden: 4096,
            vocab: 50272,
            dtype_bytes: 2,
        }
    }

    /// GPT-175B-class model (Fig. 4's large end; GPT-3 geometry).
    pub fn gpt_175b() -> ModelConfig {
        ModelConfig {
            name: "GPT-175B".into(),
            layers: 96,
            heads: 96,
            hidden: 12288,
            vocab: 50272,
            dtype_bytes: 2,
        }
    }

    /// A tiny model for fast unit tests.
    pub fn tiny_test() -> ModelConfig {
        ModelConfig {
            name: "Tiny-Test".into(),
            layers: 4,
            heads: 8,
            hidden: 512,
            vocab: 1024,
            dtype_bytes: 2,
        }
    }

    /// The paper's evaluation zoo (Table 1).
    pub fn zoo() -> Vec<ModelConfig> {
        vec![Self::opt_30b(), Self::opt_66b(), Self::glm_130b()]
    }

    /// Head dimension (`hidden / heads`).
    pub fn head_dim(&self) -> u32 {
        self.hidden / self.heads
    }

    /// FFN inner width (4 × hidden, the GPT/OPT/GLM convention).
    pub fn ffn_hidden(&self) -> u32 {
        4 * self.hidden
    }

    /// Approximate parameter count: `12 L H²` for the blocks plus `V·H` for
    /// the tied embedding / LM head.
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        12 * self.layers as u64 * h * h + self.vocab as u64 * h
    }

    /// Total weight bytes at the configured precision.
    pub fn weight_bytes(&self) -> u64 {
        self.param_count() * self.dtype_bytes as u64
    }

    /// Returns a copy with a reduced layer count. Used by the paper's Fig. 3
    /// strong-scaling study, which shrinks models to fit on fewer devices —
    /// "reducing layer number will not impact the computational and
    /// communication features" since all layers are identical.
    pub fn with_layers(&self, layers: u32) -> ModelConfig {
        ModelConfig {
            layers: layers.max(1),
            name: format!("{}@{}L", self.name, layers.max(1)),
            ..self.clone()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.layers == 0 || self.heads == 0 || self.hidden == 0 {
            return Err(format!("{}: layers/heads/hidden must be non-zero", self.name));
        }
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(format!(
                "{}: hidden ({}) must divide evenly by heads ({})",
                self.name, self.hidden, self.heads
            ));
        }
        if self.dtype_bytes == 0 {
            return Err(format!("{}: dtype_bytes must be non-zero", self.name));
        }
        Ok(())
    }
}

impl liger_gpu_sim::ToJson for ModelConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("name", &self.name)
            .field("layers", &self.layers)
            .field("heads", &self.heads)
            .field("hidden", &self.hidden)
            .field("vocab", &self.vocab)
            .field("dtype_bytes", &self.dtype_bytes);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_validates() {
        for m in ModelConfig::zoo() {
            m.validate().unwrap();
        }
        ModelConfig::tiny_test().validate().unwrap();
        ModelConfig::gpt_8b().validate().unwrap();
        ModelConfig::gpt_175b().validate().unwrap();
    }

    #[test]
    fn table1_weight_sizes() {
        // Table 1: OPT-30B = 60 GB, OPT-66B = 132 GB, GLM-130B = 260 GB.
        let gb = |b: u64| b as f64 / 1e9;
        let opt30 = gb(ModelConfig::opt_30b().weight_bytes());
        assert!((55.0..66.0).contains(&opt30), "OPT-30B weights {opt30:.1} GB");
        let opt66 = gb(ModelConfig::opt_66b().weight_bytes());
        assert!((125.0..140.0).contains(&opt66), "OPT-66B weights {opt66:.1} GB");
        let glm = gb(ModelConfig::glm_130b().weight_bytes());
        assert!((250.0..275.0).contains(&glm), "GLM-130B weights {glm:.1} GB");
    }

    #[test]
    fn derived_dimensions() {
        let m = ModelConfig::opt_30b();
        assert_eq!(m.head_dim(), 128);
        assert_eq!(m.ffn_hidden(), 4 * 7168);
    }

    #[test]
    fn layer_reduction_keeps_geometry() {
        let m = ModelConfig::glm_130b().with_layers(18);
        assert_eq!(m.layers, 18);
        assert_eq!(m.hidden, 12288);
        assert!(m.name.contains("@18L"));
        assert_eq!(ModelConfig::tiny_test().with_layers(0).layers, 1);
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut m = ModelConfig::tiny_test();
        m.heads = 7; // 512 % 7 != 0
        assert!(m.validate().is_err());
        let mut m = ModelConfig::tiny_test();
        m.layers = 0;
        assert!(m.validate().is_err());
        let mut m = ModelConfig::tiny_test();
        m.dtype_bytes = 0;
        assert!(m.validate().is_err());
    }
}
