//! Roofline cost model: pricing a [`LayerOp`] on a device + interconnect.
//!
//! Compute kernels are priced as
//! `max(flops / (peak · eff), bytes / (mem_bw · mem_eff)) + overhead` with a
//! shape-dependent efficiency:
//!
//! * `eff_m(m) = m / (m + m_half)` — skinny GEMMs (small row dimension)
//!   underutilize tensor cores. This term is calibrated so that at the
//!   paper's typical prefill shapes (`m ≈ 128`) a GEMM achieves ≈ 50% of
//!   peak, reproducing Fig. 3's measured intra-op scaling and communication
//!   ratios (20.7% on the V100 node, 47.1% on the A100 node). It is also
//!   what makes *horizontal* GEMM decomposition catastrophic (Fig. 9).
//! * `eff_n(n) = 1 / (1 + n / n_droop)` — very wide GEMMs lose efficiency to
//!   cache/TLB pressure on the output tiles. The droop is mild; its visible
//!   consequence is the paper's Fig. 10(j)(k) anomaly where the *sum* of the
//!   four column-partitioned GEMMs of GLM-130B is cheaper than the unsplit
//!   kernel, making Inter-Th beat Inter-Op for the largest model only.
//!
//! Communication kernels delegate to the `liger-collectives` cost model.

use liger_collectives::{
    collective_time_with, CollectiveAlgorithm, CollectiveKind, NcclConfig, Topology,
};
use liger_gpu_sim::{DeviceSpec, SimDuration};

use crate::ops::LayerOp;

/// Tunable calibration constants of the compute roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Row count at which a GEMM reaches 50% of peak.
    pub m_half: f64,
    /// Output-width droop scale (see module docs).
    pub n_droop: f64,
    /// Achievable fraction of peak memory bandwidth.
    pub mem_eff: f64,
    /// Fixed per-kernel tail/setup overhead.
    pub kernel_overhead: SimDuration,
    /// Efficiency multiplier for the fused attention kernel (softmax and
    /// masking make it less tensor-core friendly than a plain GEMM).
    pub attention_eff: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            m_half: 128.0,
            n_droop: 500_000.0,
            mem_eff: 0.85,
            kernel_overhead: SimDuration::from_micros(2),
            attention_eff: 0.6,
        }
    }
}

impl CostParams {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.m_half.is_finite() && self.m_half > 0.0) {
            return Err("m_half must be positive".into());
        }
        if !(self.n_droop.is_finite() && self.n_droop > 0.0) {
            return Err("n_droop must be positive".into());
        }
        if !(0.0 < self.mem_eff && self.mem_eff <= 1.0) {
            return Err("mem_eff must be in (0,1]".into());
        }
        if !(0.0 < self.attention_eff && self.attention_eff <= 1.0) {
            return Err("attention_eff must be in (0,1]".into());
        }
        Ok(())
    }
}

/// Prices [`LayerOp`]s on a concrete device + interconnect.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Device capabilities.
    pub device: DeviceSpec,
    /// Node interconnect.
    pub topology: Topology,
    /// Communication-library configuration.
    pub nccl: NcclConfig,
    /// Calibration constants.
    pub params: CostParams,
    /// Element width in bytes (FP16 = 2).
    pub dtype_bytes: u64,
    /// Collective algorithm policy (Auto mirrors NCCL's size-based choice;
    /// at 4 ranks it always resolves to the ring).
    pub algorithm: CollectiveAlgorithm,
}

impl CostModel {
    /// Cost model for a device/topology pair with default calibration.
    pub fn new(device: DeviceSpec, topology: Topology) -> CostModel {
        CostModel {
            device,
            topology,
            nccl: NcclConfig::liger_tuned(),
            params: CostParams::default(),
            dtype_bytes: 2,
            algorithm: CollectiveAlgorithm::Auto,
        }
    }

    /// The paper's V100 node (NVLink).
    pub fn v100_node() -> CostModel {
        CostModel::new(DeviceSpec::v100_16gb(), Topology::v100_nvlink())
    }

    /// The paper's A100 node (PCIe).
    pub fn a100_node() -> CostModel {
        CostModel::new(DeviceSpec::a100_80gb(), Topology::a100_pcie())
    }

    /// Overrides the NCCL configuration.
    pub fn with_nccl(mut self, nccl: NcclConfig) -> CostModel {
        self.nccl = nccl;
        self
    }

    /// Row-dimension efficiency.
    pub fn eff_m(&self, m: u64) -> f64 {
        let m = m as f64;
        m / (m + self.params.m_half)
    }

    /// Output-width efficiency droop.
    pub fn eff_n(&self, n: u64) -> f64 {
        1.0 / (1.0 + n as f64 / self.params.n_droop)
    }

    /// No-load duration of a GEMM `[m×k]·[k×n]`.
    pub fn gemm_time(&self, m: u64, k: u64, n: u64) -> SimDuration {
        let flops = (2 * m * k * n) as f64;
        let bytes = (self.dtype_bytes * (m * k + k * n + m * n)) as f64;
        let eff = self.eff_m(m) * self.eff_n(n);
        let compute = flops / (self.device.peak_flops_fp16 * eff);
        let memory = bytes / (self.device.mem_bw * self.params.mem_eff);
        SimDuration::from_secs_f64(compute.max(memory)) + self.params.kernel_overhead
    }

    /// No-load duration of any [`LayerOp`].
    pub fn op_time(&self, op: &LayerOp) -> SimDuration {
        match *op {
            LayerOp::Gemm { m, k, n, .. } => self.gemm_time(m, k, n),
            LayerOp::Attention { batch, q_len, .. } => {
                let flops = op.flops() as f64;
                let bytes = op.bytes(self.dtype_bytes) as f64;
                let eff = self.eff_m(batch * q_len) * self.params.attention_eff;
                let compute = flops / (self.device.peak_flops_fp16 * eff);
                let memory = bytes / (self.device.mem_bw * self.params.mem_eff);
                SimDuration::from_secs_f64(compute.max(memory)) + self.params.kernel_overhead
            }
            LayerOp::LayerNorm { .. } | LayerOp::Gelu { .. } | LayerOp::Residual { .. } => {
                let bytes = op.bytes(self.dtype_bytes) as f64;
                let memory = bytes / (self.device.mem_bw * self.params.mem_eff);
                SimDuration::from_secs_f64(memory) + self.params.kernel_overhead
            }
            LayerOp::AllReduce { bytes, ranks } => collective_time_with(
                self.algorithm,
                CollectiveKind::AllReduce,
                bytes,
                ranks as usize,
                &self.topology,
                &self.nccl,
            ),
            LayerOp::P2p { bytes } => collective_time_with(
                self.algorithm,
                CollectiveKind::SendRecv,
                bytes,
                2,
                &self.topology,
                &self.nccl,
            ),
        }
    }
}

impl liger_gpu_sim::ToJson for CostParams {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("m_half", &self.m_half)
            .field("n_droop", &self.n_droop)
            .field("mem_eff", &self.mem_eff)
            .field("kernel_overhead", &self.kernel_overhead)
            .field("attention_eff", &self.attention_eff);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::GemmKind;

    #[test]
    fn params_validate() {
        CostParams::default().validate().unwrap();
        assert!(CostParams { m_half: 0.0, ..Default::default() }.validate().is_err());
        assert!(CostParams { mem_eff: 1.5, ..Default::default() }.validate().is_err());
        assert!(CostParams { n_droop: f64::NAN, ..Default::default() }.validate().is_err());
        assert!(CostParams { attention_eff: 0.0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn eff_m_saturates() {
        let cm = CostModel::v100_node();
        assert!((cm.eff_m(128) - 0.5).abs() < 1e-12, "m_half calibration");
        assert!(cm.eff_m(16) < cm.eff_m(128));
        assert!(cm.eff_m(4096) > 0.95);
    }

    #[test]
    fn eff_n_droops_mildly() {
        let cm = CostModel::a100_node();
        assert!(cm.eff_n(7168) > 0.97);
        assert!(cm.eff_n(49152) < cm.eff_n(12288));
        assert!(cm.eff_n(49152) > 0.85, "droop stays mild");
    }

    #[test]
    fn gemm_time_is_monotone_in_every_dim() {
        let cm = CostModel::v100_node();
        let base = cm.gemm_time(128, 7168, 7168);
        assert!(cm.gemm_time(256, 7168, 7168) > base);
        assert!(cm.gemm_time(128, 14336, 7168) > base);
        assert!(cm.gemm_time(128, 7168, 14336) > base);
    }

    #[test]
    fn opt30b_layer_gemm_magnitude_on_v100() {
        // Per-device QKV GEMM at tp=4, batch 2 x seq 64: m=128, k=7168,
        // n=5376 — expect a few hundred microseconds (DESIGN.md sanity).
        let cm = CostModel::v100_node();
        let t = cm.gemm_time(128, 7168, 3 * 7168 / 4).as_micros_f64();
        assert!((100.0..400.0).contains(&t), "QKV shard took {t:.0}us");
    }

    #[test]
    fn decode_gemm_is_memory_bound() {
        let cm = CostModel::v100_node();
        // m = 32 decode rows over a 7168x7168 weight: the weight read floor
        // is ~115us at 765 GB/s effective; the compute term is comparable.
        let t = cm.gemm_time(32, 7168, 7168);
        let weight_floor = (2.0 * 7168.0 * 7168.0) / (900e9 * 0.85);
        assert!(t.as_secs_f64() >= weight_floor, "GEMV cannot beat the weight-read floor");
    }

    #[test]
    fn memory_bound_ops_scale_with_bytes() {
        let cm = CostModel::a100_node();
        let small = cm.op_time(&LayerOp::LayerNorm { rows: 128, hidden: 1024 });
        let large = cm.op_time(&LayerOp::LayerNorm { rows: 128, hidden: 8192 });
        assert!(large > small);
        let g1 = cm.op_time(&LayerOp::Gelu { rows: 128, width: 4096 });
        let g2 = cm.op_time(&LayerOp::Gelu { rows: 512, width: 4096 });
        assert!(g2 > g1);
    }

    #[test]
    fn comm_ops_use_collective_model() {
        let cm = CostModel::v100_node();
        let ar = LayerOp::AllReduce { bytes: 1 << 20, ranks: 4 };
        let direct = collective_time_with(
            cm.algorithm,
            CollectiveKind::AllReduce,
            1 << 20,
            4,
            &cm.topology,
            &cm.nccl,
        );
        assert_eq!(cm.op_time(&ar), direct);
        let p2p = LayerOp::P2p { bytes: 1 << 20 };
        assert!(cm.op_time(&p2p) > SimDuration::ZERO);
    }

    #[test]
    fn a100_compute_is_faster_than_v100() {
        let v = CostModel::v100_node();
        let a = CostModel::a100_node();
        let g = |cm: &CostModel| cm.gemm_time(128, 7168, 7168);
        assert!(g(&a) < g(&v));
        // … but its PCIe all-reduce is slower.
        let ar = LayerOp::AllReduce { bytes: 1 << 21, ranks: 4 };
        assert!(a.op_time(&ar) > v.op_time(&ar));
    }

    #[test]
    fn column_split_sum_vs_whole_gemm() {
        // The Fig. 10(j)(k) anomaly: for GLM-scale widths the sum of 4
        // column-split GEMMs undercuts the whole kernel; for small widths the
        // per-kernel overhead makes the split more expensive.
        let cm = CostModel::a100_node();
        let m = 128;
        // GLM-130B fc1: k=12288, n=49152.
        let whole = cm.gemm_time(m, 12288, 49152);
        let split4: SimDuration = (0..4).map(|_| cm.gemm_time(m, 12288, 49152 / 4)).sum();
        assert!(split4 < whole, "GLM-width column split should win: {split4} vs {whole}");
        // Tiny GEMM: overhead dominates, split loses.
        let whole_small = cm.gemm_time(m, 512, 2048);
        let split_small: SimDuration = (0..4).map(|_| cm.gemm_time(m, 512, 2048 / 4)).sum();
        assert!(split_small > whole_small);
    }

    #[test]
    fn horizontal_split_is_catastrophic_for_skinny_gemms() {
        // Fig. 9: splitting the already-skinny m dimension collapses
        // efficiency; the accumulated duration far exceeds the original.
        let cm = CostModel::v100_node();
        let (m, k, n) = (128u64, 7168, 7168);
        let whole = cm.gemm_time(m, k, n);
        let horizontal: SimDuration = (0..8).map(|_| cm.gemm_time(m / 8, k, n)).sum();
        let vertical: SimDuration = (0..8).map(|_| cm.gemm_time(m, k, n / 8)).sum();
        assert!(horizontal.as_nanos() as f64 > 1.5 * whole.as_nanos() as f64);
        assert!(vertical.as_nanos() as f64 <= 1.25 * whole.as_nanos() as f64);
        assert!(vertical < horizontal);
    }

    #[test]
    fn gemm_kind_does_not_change_price() {
        let cm = CostModel::v100_node();
        let a = cm.op_time(&LayerOp::Gemm { m: 64, k: 512, n: 512, kind: GemmKind::Qkv });
        let b = cm.op_time(&LayerOp::Gemm { m: 64, k: 512, n: 512, kind: GemmKind::Fc2 });
        assert_eq!(a, b);
    }
}
