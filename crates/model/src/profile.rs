//! Offline profiling (§3.5's preprocessing procedure).
//!
//! Before deployment, Liger runs an offline pass that (a) collects no-load
//! kernel durations and (b) measures *contention factors* by executing
//! representative kernel pairs concurrently and comparing wall time against
//! the no-load baseline. This module performs that measurement against the
//! simulator — exactly the way the real system profiles against hardware —
//! rather than reading the simulator's contention parameters directly, so a
//! different substrate (or a future real-GPU backend) can be profiled with
//! the same code.

use liger_collectives::NcclConfig;
use liger_gpu_sim::{
    DeviceId, DeviceSpec, Driver, HostId, HostSpec, KernelSpec, SimDuration, Simulation, StreamId,
    Wake,
};

/// Measured contention factors for one device type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionProfile {
    /// Wall/no-load ratio of a compute kernel fully overlapped by
    /// communication.
    pub compute_slowdown: f64,
    /// Wall/no-load ratio of a communication kernel fully overlapped by
    /// compute.
    pub comm_slowdown: f64,
}

impl ContentionProfile {
    /// The single scheduling factor Liger feeds into Algorithm 1: the worst
    /// of the two directions (the paper's V100 node uses 1.1, the A100 node
    /// 1.15; this measurement reproduces those magnitudes).
    pub fn factor(&self) -> f64 {
        self.compute_slowdown.max(self.comm_slowdown)
    }
}

struct PairDriver {
    long: KernelSpec,
    short: KernelSpec,
}

impl Driver for PairDriver {
    fn start(&mut self, sim: &mut Simulation) {
        let d = DeviceId(0);
        sim.launch(HostId(0), StreamId::new(d, 0), self.long.clone());
        sim.launch(HostId(0), StreamId::new(d, 1), self.short.clone());
    }
    fn on_wake(&mut self, _: Wake, _: &mut Simulation) {}
}

/// Runs `short` fully overlapped by `long` on a single `spec` device and
/// returns the short kernel's wall/no-load stretch.
fn measure_stretch(spec: &DeviceSpec, long: KernelSpec, short: KernelSpec) -> f64 {
    let short_work = short.work;
    let mut sim = Simulation::builder()
        .device(spec.clone())
        .host(HostSpec::instant())
        .capture_trace(true)
        .build()
        .expect("valid device spec");
    let mut drv = PairDriver { long, short: short.clone() };
    sim.run_to_completion(&mut drv);
    let trace = sim.take_trace().expect("trace enabled");
    let ev = trace.events().iter().find(|e| e.tag == 1).expect("short kernel completed");
    ev.duration().as_nanos() as f64 / short_work.as_nanos() as f64
}

/// Profiles the contention factors of a device by concurrent execution of a
/// long GEMM-like kernel with a short collective-like kernel (and vice
/// versa), mirroring the paper's "concurrent profiling of these kernels".
pub fn profile_contention(spec: &DeviceSpec, nccl: &NcclConfig) -> ContentionProfile {
    let long = SimDuration::from_millis(20);
    let short = SimDuration::from_millis(1);
    // Short compute under long communication.
    let compute_slowdown = measure_stretch(
        spec,
        KernelSpec::comm("profile_allreduce", long).with_blocks(nccl.channels).with_tag(0),
        KernelSpec::compute("profile_gemm", short).with_tag(1),
    );
    // Short communication under long compute.
    let comm_slowdown = measure_stretch(
        spec,
        KernelSpec::compute("profile_gemm", long).with_tag(0),
        KernelSpec::comm("profile_allreduce", short).with_blocks(nccl.channels).with_tag(1),
    );
    ContentionProfile { compute_slowdown, comm_slowdown }
}

/// No-load duration check: runs a kernel solo and returns its wall time.
/// Used by tests to confirm the simulator honors profiled durations.
pub fn measure_solo(spec: &DeviceSpec, kernel: KernelSpec) -> SimDuration {
    let mut sim = Simulation::builder()
        .device(spec.clone())
        .host(HostSpec::instant())
        .capture_trace(true)
        .build()
        .expect("valid device spec");
    struct Solo(Option<KernelSpec>);
    impl Driver for Solo {
        fn start(&mut self, sim: &mut Simulation) {
            let k = self.0.take().expect("driver started twice");
            sim.launch(HostId(0), StreamId::new(DeviceId(0), 0), k);
        }
        fn on_wake(&mut self, _: Wake, _: &mut Simulation) {}
    }
    let mut drv = Solo(Some(kernel));
    sim.run_to_completion(&mut drv);
    let trace = sim.take_trace().expect("trace enabled");
    assert_eq!(trace.events().len(), 1, "solo run must execute exactly one kernel");
    trace.events()[0].duration()
}

impl liger_gpu_sim::ToJson for ContentionProfile {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("compute_slowdown", &self.compute_slowdown)
            .field("comm_slowdown", &self.comm_slowdown)
            .field("factor", &self.factor());
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_factors_match_paper_magnitudes() {
        let nccl = NcclConfig::liger_tuned();
        let v100 = profile_contention(&DeviceSpec::v100_16gb(), &nccl);
        let a100 = profile_contention(&DeviceSpec::a100_80gb(), &nccl);
        // Paper §4.2: scheduling factor 1.1 on the V100 node, 1.15 on A100.
        assert!((1.05..=1.20).contains(&v100.factor()), "V100 factor {}", v100.factor());
        assert!((1.10..=1.30).contains(&a100.factor()), "A100 factor {}", a100.factor());
        assert!(
            a100.factor() > v100.factor(),
            "A100 contends harder (paper's counterintuitive note)"
        );
    }

    #[test]
    fn frictionless_device_profiles_to_one() {
        let p = profile_contention(&DeviceSpec::test_device(), &NcclConfig::liger_tuned());
        assert!((p.compute_slowdown - 1.0).abs() < 1e-9);
        assert!((p.comm_slowdown - 1.0).abs() < 1e-9);
        assert!((p.factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn channel_reduction_lowers_compute_slowdown() {
        let spec = DeviceSpec::a100_80gb();
        let few = profile_contention(&spec, &NcclConfig::liger_tuned());
        let many = profile_contention(&spec, &NcclConfig::default());
        assert!(
            few.compute_slowdown < many.compute_slowdown,
            "NCCL_MAX_NCHANNELS mitigation: {} !< {}",
            few.compute_slowdown,
            many.compute_slowdown
        );
    }

    #[test]
    fn solo_measurement_equals_nominal_work() {
        let spec = DeviceSpec::v100_16gb();
        let work = SimDuration::from_micros(500);
        let wall = measure_solo(&spec, KernelSpec::compute("g", work));
        assert_eq!(wall, work);
    }
}
