//! Pricing op sequences into duration-annotated lists.
//!
//! This is the model-side half of the paper's *function assembly* (§3.2):
//! for a batch shape, produce the ordered list of kernels with "details such
//! as the kernel duration, the kernel type, the batch size, and the sequence
//! length" attached. `liger-core` wraps these into its `FuncVec`s; the
//! baseline engines launch them directly.

use liger_gpu_sim::{KernelClass, SimDuration};

use crate::config::ModelConfig;
use crate::cost::CostModel;
use crate::layers::{model_ops, PlacedOp};
use crate::workload::BatchShape;

/// One op with its offline-profiled no-load duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PricedOp {
    /// The op and its layer.
    pub placed: PlacedOp,
    /// No-load duration from the cost model (the profile table entry).
    pub duration: SimDuration,
}

impl PricedOp {
    /// Kernel class shortcut.
    pub fn class(&self) -> KernelClass {
        self.placed.op.class()
    }
}

/// Prices every op in `ops` under `cm`.
pub fn price_ops(cm: &CostModel, ops: &[PlacedOp]) -> Vec<PricedOp> {
    ops.iter().map(|&placed| PricedOp { placed, duration: cm.op_time(&placed.op) }).collect()
}

/// Prices the full per-device kernel list of one inference iteration at
/// tensor-parallel degree `tp`.
pub fn assemble(cm: &CostModel, cfg: &ModelConfig, shape: BatchShape, tp: u32) -> Vec<PricedOp> {
    price_ops(cm, &model_ops(cfg, shape, tp))
}

/// Splits a priced sequence's total duration by kernel class:
/// `(compute_total, comm_total)`.
pub fn class_totals(ops: &[PricedOp]) -> (SimDuration, SimDuration) {
    let mut compute = SimDuration::ZERO;
    let mut comm = SimDuration::ZERO;
    for op in ops {
        match op.class() {
            KernelClass::Compute => compute += op.duration,
            KernelClass::Comm => comm += op.duration,
        }
    }
    (compute, comm)
}

impl liger_gpu_sim::ToJson for PricedOp {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("placed", &self.placed).field("duration", &self.duration);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembled_sequence_is_fully_priced() {
        let cm = CostModel::v100_node();
        let cfg = ModelConfig::tiny_test();
        let ops = assemble(&cm, &cfg, BatchShape::prefill(2, 16), 2);
        assert!(!ops.is_empty());
        for op in &ops {
            assert!(op.duration > SimDuration::ZERO);
        }
    }

    #[test]
    fn class_totals_add_up() {
        let cm = CostModel::v100_node();
        let cfg = ModelConfig::tiny_test();
        let ops = assemble(&cm, &cfg, BatchShape::prefill(2, 16), 2);
        let (compute, comm) = class_totals(&ops);
        let total: SimDuration = ops.iter().map(|o| o.duration).sum();
        assert_eq!(compute + comm, total);
        assert!(comm > SimDuration::ZERO, "tp=2 must communicate");
        assert!(compute > comm);
    }

    #[test]
    fn fig3_communication_ratios() {
        // The paper's Fig. 3 case study: at tp=4 the communication share of
        // an intra-op iteration is ~20.7% for OPT-30B on the V100/NVLink
        // node and ~47.1% for GLM-130B on the A100/PCIe node.
        let shape = BatchShape::prefill(2, 64);

        let v = CostModel::v100_node();
        let ops = assemble(&v, &ModelConfig::opt_30b(), shape, 4);
        let (compute, comm) = class_totals(&ops);
        let ratio = comm.as_secs_f64() / (compute + comm).as_secs_f64();
        assert!((0.14..0.28).contains(&ratio), "OPT-30B/V100 comm ratio {ratio:.3}");

        let a = CostModel::a100_node();
        let ops = assemble(&a, &ModelConfig::glm_130b(), shape, 4);
        let (compute, comm) = class_totals(&ops);
        let ratio = comm.as_secs_f64() / (compute + comm).as_secs_f64();
        assert!((0.38..0.56).contains(&ratio), "GLM-130B/A100 comm ratio {ratio:.3}");
    }

    #[test]
    fn decode_iteration_is_cheaper_than_prefill() {
        let cm = CostModel::v100_node();
        let cfg = ModelConfig::opt_30b();
        let prefill: SimDuration =
            assemble(&cm, &cfg, BatchShape::prefill(2, 64), 4).iter().map(|o| o.duration).sum();
        let decode: SimDuration =
            assemble(&cm, &cfg, BatchShape::decode(2, 64), 4).iter().map(|o| o.duration).sum();
        assert!(decode < prefill);
    }

    #[test]
    fn decode_comm_share_is_smaller() {
        // §4.3: generative tasks have lower computational intensity and
        // relatively less communication, leaving Liger less room.
        let cm = CostModel::v100_node();
        let cfg = ModelConfig::opt_30b();
        let share = |shape| {
            let ops = assemble(&cm, &cfg, shape, 4);
            let (compute, comm) = class_totals(&ops);
            comm.as_secs_f64() / (compute + comm).as_secs_f64()
        };
        assert!(share(BatchShape::decode(32, 16)) < share(BatchShape::prefill(2, 64)));
    }
}
