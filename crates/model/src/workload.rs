//! Inference phases and batch shapes.
//!
//! The paper distinguishes *general tasks* (§4.2: one full forward pass over
//! the prompt, what generative serving calls the conditioning/prefill phase)
//! from *generative tasks* (§4.3: the incremental sampling phase, one token
//! per iteration with a KV cache).

/// The execution phase of one inference iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Full forward pass over `seq_len` prompt tokens per sequence.
    Prefill {
        /// Prompt length.
        seq_len: u32,
    },
    /// One-token decode step with a KV cache of `context` tokens.
    Decode {
        /// Tokens already cached (attention span).
        context: u32,
    },
}

impl Phase {
    /// Tokens processed per sequence this iteration.
    pub fn tokens(self) -> u32 {
        match self {
            Phase::Prefill { seq_len } => seq_len,
            Phase::Decode { .. } => 1,
        }
    }

    /// The key/value span attended over.
    pub fn kv_len(self) -> u32 {
        match self {
            Phase::Prefill { seq_len } => seq_len,
            Phase::Decode { context } => context + 1,
        }
    }
}

/// Shape of one batched inference iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchShape {
    /// Sequences in the batch.
    pub batch: u32,
    /// Phase (prefill vs. decode).
    pub phase: Phase,
}

impl BatchShape {
    /// A prefill iteration.
    pub fn prefill(batch: u32, seq_len: u32) -> BatchShape {
        BatchShape { batch, phase: Phase::Prefill { seq_len } }
    }

    /// A decode iteration.
    pub fn decode(batch: u32, context: u32) -> BatchShape {
        BatchShape { batch, phase: Phase::Decode { context } }
    }

    /// The GEMM row dimension `m = batch × tokens`: the quantity that drives
    /// compute efficiency (skinny GEMMs are inefficient — Fig. 9).
    pub fn rows(&self) -> u64 {
        self.batch as u64 * self.phase.tokens() as u64
    }

    /// Validates the shape.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch == 0 {
            return Err("batch must be >= 1".into());
        }
        if self.phase.tokens() == 0 {
            return Err("seq_len must be >= 1".into());
        }
        Ok(())
    }
}

/// Phases serialize as `{"phase": "prefill"|"decode", ...}` objects.
impl liger_gpu_sim::ToJson for Phase {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        match *self {
            Phase::Prefill { seq_len } => {
                obj.field("phase", &"prefill").field("seq_len", &seq_len);
            }
            Phase::Decode { context } => {
                obj.field("phase", &"decode").field("context", &context);
            }
        }
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for BatchShape {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("batch", &self.batch).field("phase", &self.phase);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_rows() {
        let b = BatchShape::prefill(2, 64);
        assert_eq!(b.rows(), 128);
        assert_eq!(b.phase.tokens(), 64);
        assert_eq!(b.phase.kv_len(), 64);
        b.validate().unwrap();
    }

    #[test]
    fn decode_rows() {
        let b = BatchShape::decode(32, 16);
        assert_eq!(b.rows(), 32);
        assert_eq!(b.phase.tokens(), 1);
        assert_eq!(b.phase.kv_len(), 17, "cached context plus the new token");
        b.validate().unwrap();
    }

    #[test]
    fn validation() {
        assert!(BatchShape::prefill(0, 16).validate().is_err());
        assert!(BatchShape::prefill(2, 0).validate().is_err());
        assert!(BatchShape::decode(1, 0).validate().is_ok(), "empty context is legal");
    }
}
