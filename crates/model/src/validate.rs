//! Structural validation of kernel sequences.
//!
//! [`validate_sequence`] checks that an op list is a well-formed
//! Megatron-partitioned transformer forward pass: every GEMM's reduction
//! width matches the tensor feeding it, attention geometry is consistent
//! with the model and the tensor-parallel degree, all-reduce payloads equal
//! the activation tensor they synchronize, and per-layer op order follows
//! the canonical block structure. It is written independently of
//! [`crate::layers`] (an articulation of the *rules*, not a re-run of the
//! generator), so it serves as a test oracle for generated sequences and a
//! safety net for hand-built or decomposed ones.

use crate::config::ModelConfig;
use crate::layers::{PlacedOp, HEAD_LAYER};
use crate::ops::{GemmKind, LayerOp};
use crate::workload::{BatchShape, Phase};

/// Validates a per-device op sequence at tensor-parallel degree `tp`.
///
/// Decomposed sequences (where a GEMM or all-reduce appears as several
/// column/payload pieces) are accepted: pieces of one logical op must be
/// contiguous and their widths/payloads must sum to the logical op's.
pub fn validate_sequence(
    cfg: &ModelConfig,
    shape: BatchShape,
    tp: u32,
    ops: &[PlacedOp],
) -> Result<(), String> {
    cfg.validate()?;
    shape.validate()?;
    if tp == 0 || tp > cfg.heads {
        return Err(format!("invalid tensor-parallel degree {tp} for {} heads", cfg.heads));
    }
    let tp64 = tp as u64;
    let h = cfg.hidden as u64;
    // Uneven degrees (degraded mode) shard by ceil-division and model the
    // critical-path largest shard, mirroring `layers::layer_ops`.
    let heads_local = (cfg.heads as u64).div_ceil(tp64);
    let shard_h = heads_local * cfg.head_dim() as u64;
    let ffn = cfg.ffn_hidden() as u64;
    let ffn_shard = ffn.div_ceil(tp64);
    let rows = shape.rows();
    let dtype = cfg.dtype_bytes as u64;
    let (q_len, kv_len) = match shape.phase {
        Phase::Prefill { seq_len } => (seq_len as u64, seq_len as u64),
        Phase::Decode { context } => (1, context as u64 + 1),
    };

    let mut i = 0usize;

    // Consumes contiguous pieces of one logical GEMM and checks the sum.
    let eat_gemm = |i: &mut usize,
                    ops: &[PlacedOp],
                    kind: GemmKind,
                    m: u64,
                    k: u64,
                    n_total: u64,
                    layer: u32|
     -> Result<(), String> {
        let mut n_sum = 0u64;
        let mut pieces = 0;
        while let Some(PlacedOp {
            op: LayerOp::Gemm { m: gm, k: gk, n, kind: gkind },
            layer: glayer,
        }) = ops.get(*i)
        {
            if *gkind != kind || *glayer != layer {
                break;
            }
            if kind.column_parallel() {
                if (*gm, *gk) != (m, k) {
                    return Err(format!(
                        "layer {layer} {kind:?}: piece has m,k = {gm},{gk}, expected {m},{k}"
                    ));
                }
                n_sum += n;
            } else {
                // Row-parallel GEMMs split k; n stays whole per piece.
                if (*gm, *n) != (m, n_total) {
                    return Err(format!(
                        "layer {layer} {kind:?}: piece has m,n = {gm},{n}, expected {m},{n_total}"
                    ));
                }
                n_sum += gk;
            }
            pieces += 1;
            *i += 1;
        }
        if pieces == 0 {
            return Err(format!("layer {layer}: expected {kind:?} GEMM at op {i:?}"));
        }
        let expected = if kind.column_parallel() { n_total } else { k };
        if n_sum != expected {
            return Err(format!(
                "layer {layer} {kind:?}: pieces cover {n_sum} of {expected} along the split axis"
            ));
        }
        Ok(())
    };

    let eat_allreduce = |i: &mut usize, ops: &[PlacedOp], layer: u32| -> Result<(), String> {
        if tp == 1 {
            return Ok(()); // single device: no synchronization emitted
        }
        let expect_bytes = rows * h * dtype;
        let mut sum = 0u64;
        let mut pieces = 0;
        while let Some(PlacedOp { op: LayerOp::AllReduce { bytes, ranks }, layer: glayer }) =
            ops.get(*i)
        {
            if *glayer != layer {
                break;
            }
            if *ranks != tp {
                return Err(format!(
                    "layer {layer}: all-reduce spans {ranks} ranks, expected {tp}"
                ));
            }
            sum += bytes;
            pieces += 1;
            *i += 1;
        }
        if pieces == 0 {
            return Err(format!("layer {layer}: missing all-reduce"));
        }
        if sum != expect_bytes {
            return Err(format!(
                "layer {layer}: all-reduce pieces move {sum} bytes, expected {expect_bytes}"
            ));
        }
        Ok(())
    };

    let eat = |i: &mut usize,
               ops: &[PlacedOp],
               what: &str,
               layer: u32,
               pred: &dyn Fn(&LayerOp) -> Result<(), String>|
     -> Result<(), String> {
        match ops.get(*i) {
            Some(p) if p.layer == layer => {
                pred(&p.op).map_err(|e| format!("layer {layer}: {e}"))?;
                *i += 1;
                Ok(())
            }
            other => Err(format!("layer {layer}: expected {what}, found {other:?}")),
        }
    };

    let ln = |op: &LayerOp| -> Result<(), String> {
        match *op {
            LayerOp::LayerNorm { rows: r, hidden: hh } if r == rows && hh == h => Ok(()),
            ref other => Err(format!("expected layernorm[{rows}x{h}], got {other:?}")),
        }
    };
    let residual = |op: &LayerOp| -> Result<(), String> {
        match *op {
            LayerOp::Residual { rows: r, hidden: hh } if r == rows && hh == h => Ok(()),
            ref other => Err(format!("expected residual[{rows}x{h}], got {other:?}")),
        }
    };

    for layer in 0..cfg.layers {
        eat(&mut i, ops, "layernorm", layer, &ln)?;
        eat_gemm(&mut i, ops, GemmKind::Qkv, rows, h, 3 * shard_h, layer)?;
        eat(&mut i, ops, "attention", layer, &|op| match *op {
            LayerOp::Attention { batch, heads, q_len: q, kv_len: kv, head_dim }
                if batch == shape.batch as u64
                    && heads == heads_local
                    && q == q_len
                    && kv == kv_len
                    && head_dim == cfg.head_dim() as u64 =>
            {
                Ok(())
            }
            ref other => Err(format!("malformed attention {other:?}")),
        })?;
        eat_gemm(&mut i, ops, GemmKind::AttnOut, rows, shard_h, h, layer)?;
        eat_allreduce(&mut i, ops, layer)?;
        eat(&mut i, ops, "residual", layer, &residual)?;
        eat(&mut i, ops, "layernorm", layer, &ln)?;
        eat_gemm(&mut i, ops, GemmKind::Fc1, rows, h, ffn_shard, layer)?;
        eat(&mut i, ops, "gelu", layer, &|op| match *op {
            LayerOp::Gelu { rows: r, width } if r == rows && width == ffn_shard => Ok(()),
            ref other => Err(format!("malformed gelu {other:?}")),
        })?;
        eat_gemm(&mut i, ops, GemmKind::Fc2, rows, ffn_shard, h, layer)?;
        eat_allreduce(&mut i, ops, layer)?;
        eat(&mut i, ops, "residual", layer, &residual)?;
    }

    // Head: final norm + LM projection.
    eat(&mut i, ops, "final layernorm", HEAD_LAYER, &ln)?;
    eat_gemm(
        &mut i,
        ops,
        GemmKind::LmHead,
        rows,
        h,
        (cfg.vocab as u64).div_ceil(tp64),
        HEAD_LAYER,
    )?;

    if i != ops.len() {
        return Err(format!("{} trailing ops after the head", ops.len() - i));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{equal_split, split_op};
    use crate::layers::model_ops;
    use crate::ops::LayerOp;

    fn cfg() -> ModelConfig {
        ModelConfig::tiny_test()
    }

    #[test]
    fn generated_sequences_validate_for_all_degrees_and_phases() {
        // Includes uneven degrees (3, 5): the degraded-mode ceil-division
        // fallback must agree between generator and validator.
        for model in [ModelConfig::tiny_test(), ModelConfig::opt_30b()] {
            for tp in [1u32, 2, 3, 4, 5, 8] {
                for shape in [BatchShape::prefill(2, 64), BatchShape::decode(32, 16)] {
                    let ops = model_ops(&model, shape, tp);
                    validate_sequence(&model, shape, tp, &ops)
                        .unwrap_or_else(|e| panic!("{} tp={tp} {shape:?}: {e}", model.name));
                }
            }
        }
    }

    #[test]
    fn decomposed_gemms_still_validate() {
        let shape = BatchShape::prefill(2, 32);
        let mut ops = model_ops(&cfg(), shape, 2);
        // Split the first FC1 GEMM into 4 contiguous column pieces.
        let pos = ops
            .iter()
            .position(|p| matches!(p.op, LayerOp::Gemm { kind: GemmKind::Fc1, .. }))
            .unwrap();
        let layer = ops[pos].layer;
        let pieces = equal_split(&ops[pos].op, 4);
        ops.splice(pos..=pos, pieces.into_iter().map(|op| PlacedOp { layer, op }));
        validate_sequence(&cfg(), shape, 2, &ops).unwrap();
    }

    #[test]
    fn decomposed_allreduces_still_validate() {
        let shape = BatchShape::prefill(2, 32);
        let mut ops = model_ops(&cfg(), shape, 2);
        let pos = ops.iter().position(|p| matches!(p.op, LayerOp::AllReduce { .. })).unwrap();
        let layer = ops[pos].layer;
        let (a, b) = split_op(&ops[pos].op, 3, 8).unwrap();
        ops.splice(pos..=pos, [PlacedOp { layer, op: a }, PlacedOp { layer, op: b }]);
        validate_sequence(&cfg(), shape, 2, &ops).unwrap();
    }

    #[test]
    fn missing_allreduce_is_caught() {
        let shape = BatchShape::prefill(2, 32);
        let mut ops = model_ops(&cfg(), shape, 2);
        let pos = ops.iter().position(|p| matches!(p.op, LayerOp::AllReduce { .. })).unwrap();
        ops.remove(pos);
        let err = validate_sequence(&cfg(), shape, 2, &ops).unwrap_err();
        assert!(err.contains("all-reduce") || err.contains("expected"), "{err}");
    }

    #[test]
    fn wrong_gemm_width_is_caught() {
        let shape = BatchShape::prefill(2, 32);
        let mut ops = model_ops(&cfg(), shape, 2);
        for p in &mut ops {
            if let LayerOp::Gemm { ref mut n, kind: GemmKind::Qkv, .. } = p.op {
                *n -= 1; // shave one column off a QKV shard
                break;
            }
        }
        let err = validate_sequence(&cfg(), shape, 2, &ops).unwrap_err();
        assert!(err.contains("Qkv"), "{err}");
    }

    #[test]
    fn wrong_allreduce_payload_is_caught() {
        let shape = BatchShape::prefill(2, 32);
        let mut ops = model_ops(&cfg(), shape, 2);
        for p in &mut ops {
            if let LayerOp::AllReduce { ref mut bytes, .. } = p.op {
                *bytes += 1;
                break;
            }
        }
        let err = validate_sequence(&cfg(), shape, 2, &ops).unwrap_err();
        assert!(err.contains("bytes"), "{err}");
    }

    #[test]
    fn truncated_sequence_is_caught() {
        let shape = BatchShape::prefill(2, 32);
        let mut ops = model_ops(&cfg(), shape, 2);
        ops.pop();
        assert!(validate_sequence(&cfg(), shape, 2, &ops).is_err());
    }

    #[test]
    fn trailing_ops_are_caught() {
        let shape = BatchShape::prefill(2, 32);
        let mut ops = model_ops(&cfg(), shape, 2);
        // Duplicate the final LM-head piece: absorbed as an extra piece
        // whose widths no longer sum to the vocabulary shard.
        ops.push(*ops.last().unwrap());
        let err = validate_sequence(&cfg(), shape, 2, &ops).unwrap_err();
        assert!(err.contains("pieces cover") || err.contains("trailing"), "{err}");
        // A trailing op of a different kind is reported as trailing.
        let mut ops = model_ops(&cfg(), shape, 2);
        ops.push(PlacedOp { layer: HEAD_LAYER, op: LayerOp::Gelu { rows: 1, width: 1 } });
        let err = validate_sequence(&cfg(), shape, 2, &ops).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn bad_degree_is_rejected() {
        let shape = BatchShape::prefill(2, 32);
        let ops = model_ops(&cfg(), shape, 2);
        assert!(validate_sequence(&cfg(), shape, 3, &ops).is_err());
        assert!(validate_sequence(&cfg(), shape, 0, &ops).is_err());
    }
}
