//! # liger-model
//!
//! Transformer workload modeling for the Liger reproduction: the model zoo
//! (the paper's Table 1), per-layer kernel sequences under Megatron-style
//! tensor parallelism and pipeline staging, a calibrated roofline cost
//! model, the kernel decomposition catalogue of §3.6, device-memory
//! accounting, and the offline profiling procedure of §3.5 (run against the
//! simulator, the way the real system profiles against hardware).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assembly;
pub mod config;
pub mod cost;
pub mod decompose;
pub mod layers;
pub mod memory;
pub mod ops;
pub mod profile;
pub mod spec;
pub mod validate;
pub mod workload;

pub use assembly::{assemble, class_totals, price_ops, PricedOp};
pub use config::ModelConfig;
pub use cost::{CostModel, CostParams};
pub use decompose::{
    equal_split, equal_split_axis, profile_decomposition, split_op, split_op_axis,
    DecompositionProfile, GemmSplitAxis,
};
pub use layers::{layer_ops, model_ops, stage_boundary_bytes, stage_ops, PlacedOp, HEAD_LAYER};
pub use memory::{
    blocks_for_tokens, device_footprint, fits, kv_block_bytes, kv_recovery_plan, KvRecoveryPlan,
    MemoryFootprint, RecoveryPolicy,
};
pub use ops::{GemmKind, LayerOp};
pub use profile::{measure_solo, profile_contention, ContentionProfile};
pub use spec::{draft_model_for, spec_draft_time, spec_verify_shape};
pub use validate::validate_sequence;
pub use workload::{BatchShape, Phase};
