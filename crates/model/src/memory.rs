//! Device-memory accounting: weights, KV cache, activations — and the cost
//! model for reconstructing KV-cache state lost with a dead device.
//!
//! Used to validate that a model/parallelism/batch combination actually fits
//! the node the paper ran it on — e.g. OPT-30B (60 GB of FP16 weights) only
//! fits the 4×16 GB V100 node when partitioned four ways. The recovery half
//! ([`kv_recovery_plan`]) prices the two policies for repopulating the KV
//! shard a dead device takes with it: replaying the prefill on the survivors
//! (recompute) or copying a warm replica over the interconnect (replicate).

use liger_gpu_sim::SimDuration;

use crate::config::ModelConfig;
use crate::cost::CostModel;
use crate::layers::model_ops;
use crate::workload::BatchShape;

/// Memory footprint breakdown for one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Weight bytes resident on this device.
    pub weights: u64,
    /// KV-cache bytes for one in-flight batch at the given context length.
    pub kv_cache: u64,
    /// Peak activation workspace bytes for one in-flight batch.
    pub activations: u64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.kv_cache + self.activations
    }

    /// Block-granular view of the KV share: the number of fixed-size blocks
    /// of `block_bytes` a paged allocator needs to hold `kv_cache`, rounding
    /// the tail token span up to a whole block.
    pub fn kv_blocks(&self, block_bytes: u64) -> u64 {
        assert!(block_bytes > 0, "block size must be non-zero");
        self.kv_cache.div_ceil(block_bytes)
    }
}

/// Per-device bytes of one KV block — `block_tokens` tokens of one
/// sequence's K and V across every layer, sharded `ways` ways. This is the
/// unit the paged `liger-kvcache` pool allocates in, and it matches the
/// per-token KV term in [`device_footprint`] exactly so block counts and
/// byte footprints agree.
pub fn kv_block_bytes(cfg: &ModelConfig, ways: u32, block_tokens: u32) -> u64 {
    let ways = ways.max(1) as u64;
    2 * cfg.layers as u64 * cfg.hidden as u64 * cfg.dtype_bytes as u64 * block_tokens as u64 / ways
}

/// Blocks needed to hold `tokens` cached tokens at `block_tokens` per block
/// (ceiling division; zero tokens need zero blocks).
pub fn blocks_for_tokens(tokens: u32, block_tokens: u32) -> u64 {
    assert!(block_tokens > 0, "block size must be non-zero");
    (tokens as u64).div_ceil(block_tokens as u64)
}

/// Per-device footprint when the model is partitioned `ways` ways (either
/// tensor-parallel shards or pipeline stages — both divide weights evenly),
/// serving `in_flight` concurrent batches of `shape` with KV spans of
/// `max_context` tokens.
pub fn device_footprint(
    cfg: &ModelConfig,
    ways: u32,
    shape: BatchShape,
    max_context: u32,
    in_flight: u32,
) -> MemoryFootprint {
    let ways = ways.max(1) as u64;
    let dtype = cfg.dtype_bytes as u64;
    let h = cfg.hidden as u64;
    let weights = cfg.weight_bytes() / ways;
    // K and V per token per layer: 2 × hidden, sharded by `ways`.
    let kv_per_seq = 2 * cfg.layers as u64 * h * dtype * max_context as u64 / ways;
    let kv_cache = kv_per_seq * shape.batch as u64 * in_flight as u64;
    // Workspace: a handful of rows×(4H) tensors.
    let activations = 6 * shape.rows() * 4 * h * dtype / ways * in_flight as u64;
    MemoryFootprint { weights, kv_cache, activations }
}

/// Whether the configuration fits in `capacity` bytes per device.
pub fn fits(
    cfg: &ModelConfig,
    ways: u32,
    shape: BatchShape,
    max_context: u32,
    in_flight: u32,
    capacity: u64,
) -> bool {
    device_footprint(cfg, ways, shape, max_context, in_flight).total() <= capacity
}

/// How to reconstruct the KV-cache shard lost with a dead device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryPolicy {
    /// Replay the prefill of every affected sequence on the survivors. No
    /// standby memory cost, but the replay is priced through the full
    /// roofline model and can dwarf the drain itself — this is the policy
    /// under which overloaded degraded nodes shed requests.
    Recompute,
    /// Copy the lost shard from a warm replica over the interconnect. Fast
    /// (one point-to-point transfer of the lost bytes) but presumes the KV
    /// cache was mirrored while the device was healthy.
    Replicate,
}

impl RecoveryPolicy {
    /// Stable lowercase name (trace labels, CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::Recompute => "recompute",
            RecoveryPolicy::Replicate => "replicate",
        }
    }

    /// Parses a [`RecoveryPolicy::name`] string.
    pub fn parse(s: &str) -> Option<RecoveryPolicy> {
        match s {
            "recompute" => Some(RecoveryPolicy::Recompute),
            "replicate" => Some(RecoveryPolicy::Replicate),
            _ => None,
        }
    }
}

/// Priced plan for recovering the KV cache lost with one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvRecoveryPlan {
    /// Policy this plan prices.
    pub policy: RecoveryPolicy,
    /// KV-cache bytes that died with the device (its shard of every
    /// affected sequence).
    pub lost_bytes: u64,
    /// Tokens whose prefill must be replayed (zero under replication).
    pub recompute_tokens: u64,
    /// Wall-clock duration of the recovery work on the survivors.
    pub duration: SimDuration,
}

/// Prices the recovery of the KV shard a dead device held: `seqs` in-flight
/// sequences with `context` cached tokens each, previously partitioned
/// `ways` ways, recovered on `survivors` devices using `policy`.
///
/// Recompute replays the prefill of the affected sequences through the full
/// per-device kernel sequence at the *degraded* degree (`survivors`), priced
/// by the roofline `cost` model — so the recompute bill honestly reflects
/// skinny-GEMM inefficiency and the degraded interconnect inside `cost`.
/// Replicate is one point-to-point copy of the lost bytes.
pub fn kv_recovery_plan(
    cfg: &ModelConfig,
    cost: &CostModel,
    policy: RecoveryPolicy,
    ways: u32,
    survivors: u32,
    seqs: u32,
    context: u32,
) -> KvRecoveryPlan {
    assert!(survivors >= 1, "recovery needs at least one survivor");
    let ways = ways.max(1) as u64;
    let kv_per_seq =
        2 * cfg.layers as u64 * cfg.hidden as u64 * cfg.dtype_bytes as u64 * context as u64 / ways;
    let lost_bytes = kv_per_seq * seqs as u64;
    if seqs == 0 || context == 0 {
        return KvRecoveryPlan {
            policy,
            lost_bytes,
            recompute_tokens: 0,
            duration: SimDuration::ZERO,
        };
    }
    match policy {
        RecoveryPolicy::Recompute => {
            let shape = BatchShape::prefill(seqs, context);
            let duration =
                model_ops(cfg, shape, survivors).iter().map(|p| cost.op_time(&p.op)).sum();
            KvRecoveryPlan {
                policy,
                lost_bytes,
                recompute_tokens: seqs as u64 * context as u64,
                duration,
            }
        }
        RecoveryPolicy::Replicate => {
            let duration = cost.op_time(&crate::ops::LayerOp::P2p { bytes: lost_bytes });
            KvRecoveryPlan { policy, lost_bytes, recompute_tokens: 0, duration }
        }
    }
}

impl liger_gpu_sim::ToJson for MemoryFootprint {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("weights", &self.weights)
            .field("kv_cache", &self.kv_cache)
            .field("activations", &self.activations)
            .field("total", &self.total());
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::DeviceSpec;

    #[test]
    fn opt30b_fits_4x_v100_but_not_one() {
        let cfg = ModelConfig::opt_30b();
        let shape = BatchShape::prefill(8, 128);
        let cap = DeviceSpec::v100_16gb().mem_capacity;
        assert!(fits(&cfg, 4, shape, 128, 4, cap), "paper serves OPT-30B on 4 V100s");
        assert!(!fits(&cfg, 1, shape, 128, 1, cap), "60 GB of weights cannot fit one 16 GB card");
    }

    #[test]
    fn glm130b_fits_4x_a100_80gb() {
        let cfg = ModelConfig::glm_130b();
        let shape = BatchShape::prefill(8, 128);
        let cap = DeviceSpec::a100_80gb().mem_capacity;
        assert!(fits(&cfg, 4, shape, 128, 4, cap));
        assert!(!fits(&cfg, 2, shape, 128, 1, cap), "260 GB / 2 exceeds 80 GB");
    }

    #[test]
    fn kv_cache_grows_with_context_and_batch() {
        let cfg = ModelConfig::opt_30b();
        let a = device_footprint(&cfg, 4, BatchShape::decode(8, 16), 16, 1);
        let b = device_footprint(&cfg, 4, BatchShape::decode(8, 512), 512, 1);
        let c = device_footprint(&cfg, 4, BatchShape::decode(32, 16), 16, 1);
        assert!(b.kv_cache > a.kv_cache);
        assert!(c.kv_cache > a.kv_cache);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn replicate_undercuts_recompute_by_orders_of_magnitude() {
        let cfg = ModelConfig::opt_30b();
        let cost = CostModel::v100_node();
        let rec = kv_recovery_plan(&cfg, &cost, RecoveryPolicy::Recompute, 4, 3, 8, 128);
        let rep = kv_recovery_plan(&cfg, &cost, RecoveryPolicy::Replicate, 4, 3, 8, 128);
        assert_eq!(rec.lost_bytes, rep.lost_bytes, "same shard either way");
        assert_eq!(rec.recompute_tokens, 8 * 128);
        assert_eq!(rep.recompute_tokens, 0);
        assert!(
            rec.duration.as_nanos() > 10 * rep.duration.as_nanos(),
            "prefill replay ({}) should dwarf a p2p copy ({})",
            rec.duration,
            rep.duration
        );
    }

    #[test]
    fn lost_bytes_match_the_device_footprint_share() {
        let cfg = ModelConfig::opt_30b();
        let cost = CostModel::v100_node();
        let plan = kv_recovery_plan(&cfg, &cost, RecoveryPolicy::Replicate, 4, 3, 8, 128);
        let fp = device_footprint(&cfg, 4, BatchShape::decode(8, 128), 128, 1);
        assert_eq!(plan.lost_bytes, fp.kv_cache, "the dead device's KV share");
    }

    #[test]
    fn empty_recovery_is_free() {
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        for policy in [RecoveryPolicy::Recompute, RecoveryPolicy::Replicate] {
            let plan = kv_recovery_plan(&cfg, &cost, policy, 4, 3, 0, 128);
            assert_eq!(plan.duration, SimDuration::ZERO);
            assert_eq!(plan.recompute_tokens, 0);
        }
    }

    #[test]
    fn recompute_scales_with_lost_context() {
        let cfg = ModelConfig::tiny_test();
        let cost = CostModel::v100_node();
        let short = kv_recovery_plan(&cfg, &cost, RecoveryPolicy::Recompute, 4, 3, 4, 32);
        let long = kv_recovery_plan(&cfg, &cost, RecoveryPolicy::Recompute, 4, 3, 4, 256);
        assert!(long.duration > short.duration);
        assert!(long.recompute_tokens > short.recompute_tokens);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [RecoveryPolicy::Recompute, RecoveryPolicy::Replicate] {
            assert_eq!(RecoveryPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(RecoveryPolicy::parse("teleport"), None);
    }

    #[test]
    fn footprint_total_adds_up() {
        let f = MemoryFootprint { weights: 10, kv_cache: 20, activations: 30 };
        assert_eq!(f.total(), 60);
    }

    #[test]
    fn block_bytes_match_the_footprint_kv_term() {
        let cfg = ModelConfig::opt_30b();
        // A context of exactly one block: footprint KV for one sequence must
        // equal one block's bytes.
        let bt = 16;
        let fp = device_footprint(&cfg, 4, BatchShape::decode(1, bt), bt, 1);
        assert_eq!(kv_block_bytes(&cfg, 4, bt), fp.kv_cache);
        assert_eq!(fp.kv_blocks(kv_block_bytes(&cfg, 4, bt)), 1);
    }

    #[test]
    fn blocks_round_the_tail_up() {
        assert_eq!(blocks_for_tokens(0, 16), 0);
        assert_eq!(blocks_for_tokens(1, 16), 1);
        assert_eq!(blocks_for_tokens(16, 16), 1);
        assert_eq!(blocks_for_tokens(17, 16), 2);
        assert_eq!(blocks_for_tokens(160, 16), 10);
    }

    #[test]
    fn kv_blocks_view_rounds_up() {
        let f = MemoryFootprint { weights: 0, kv_cache: 1001, activations: 0 };
        assert_eq!(f.kv_blocks(500), 3);
        let empty = MemoryFootprint { weights: 0, kv_cache: 0, activations: 0 };
        assert_eq!(empty.kv_blocks(500), 0);
    }

    #[test]
    fn more_ways_smaller_share() {
        let cfg = ModelConfig::opt_66b();
        let shape = BatchShape::prefill(2, 64);
        let one = device_footprint(&cfg, 1, shape, 64, 1);
        let four = device_footprint(&cfg, 4, shape, 64, 1);
        assert!(four.weights * 4 <= one.weights + 4);
        assert!(four.total() < one.total());
    }
}
