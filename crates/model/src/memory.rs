//! Device-memory accounting: weights, KV cache, activations.
//!
//! Used to validate that a model/parallelism/batch combination actually fits
//! the node the paper ran it on — e.g. OPT-30B (60 GB of FP16 weights) only
//! fits the 4×16 GB V100 node when partitioned four ways.

use crate::config::ModelConfig;
use crate::workload::BatchShape;

/// Memory footprint breakdown for one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Weight bytes resident on this device.
    pub weights: u64,
    /// KV-cache bytes for one in-flight batch at the given context length.
    pub kv_cache: u64,
    /// Peak activation workspace bytes for one in-flight batch.
    pub activations: u64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.kv_cache + self.activations
    }
}

/// Per-device footprint when the model is partitioned `ways` ways (either
/// tensor-parallel shards or pipeline stages — both divide weights evenly),
/// serving `in_flight` concurrent batches of `shape` with KV spans of
/// `max_context` tokens.
pub fn device_footprint(
    cfg: &ModelConfig,
    ways: u32,
    shape: BatchShape,
    max_context: u32,
    in_flight: u32,
) -> MemoryFootprint {
    let ways = ways.max(1) as u64;
    let dtype = cfg.dtype_bytes as u64;
    let h = cfg.hidden as u64;
    let weights = cfg.weight_bytes() / ways;
    // K and V per token per layer: 2 × hidden, sharded by `ways`.
    let kv_per_seq = 2 * cfg.layers as u64 * h * dtype * max_context as u64 / ways;
    let kv_cache = kv_per_seq * shape.batch as u64 * in_flight as u64;
    // Workspace: a handful of rows×(4H) tensors.
    let activations = 6 * shape.rows() * 4 * h * dtype / ways * in_flight as u64;
    MemoryFootprint { weights, kv_cache, activations }
}

/// Whether the configuration fits in `capacity` bytes per device.
pub fn fits(
    cfg: &ModelConfig,
    ways: u32,
    shape: BatchShape,
    max_context: u32,
    in_flight: u32,
    capacity: u64,
) -> bool {
    device_footprint(cfg, ways, shape, max_context, in_flight).total() <= capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::DeviceSpec;

    #[test]
    fn opt30b_fits_4x_v100_but_not_one() {
        let cfg = ModelConfig::opt_30b();
        let shape = BatchShape::prefill(8, 128);
        let cap = DeviceSpec::v100_16gb().mem_capacity;
        assert!(fits(&cfg, 4, shape, 128, 4, cap), "paper serves OPT-30B on 4 V100s");
        assert!(!fits(&cfg, 1, shape, 128, 1, cap), "60 GB of weights cannot fit one 16 GB card");
    }

    #[test]
    fn glm130b_fits_4x_a100_80gb() {
        let cfg = ModelConfig::glm_130b();
        let shape = BatchShape::prefill(8, 128);
        let cap = DeviceSpec::a100_80gb().mem_capacity;
        assert!(fits(&cfg, 4, shape, 128, 4, cap));
        assert!(!fits(&cfg, 2, shape, 128, 1, cap), "260 GB / 2 exceeds 80 GB");
    }

    #[test]
    fn kv_cache_grows_with_context_and_batch() {
        let cfg = ModelConfig::opt_30b();
        let a = device_footprint(&cfg, 4, BatchShape::decode(8, 16), 16, 1);
        let b = device_footprint(&cfg, 4, BatchShape::decode(8, 512), 512, 1);
        let c = device_footprint(&cfg, 4, BatchShape::decode(32, 16), 16, 1);
        assert!(b.kv_cache > a.kv_cache);
        assert!(c.kv_cache > a.kv_cache);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn footprint_total_adds_up() {
        let f = MemoryFootprint { weights: 10, kv_cache: 20, activations: 30 };
        assert_eq!(f.total(), 60);
    }

    #[test]
    fn more_ways_smaller_share() {
        let cfg = ModelConfig::opt_66b();
        let shape = BatchShape::prefill(2, 64);
        let one = device_footprint(&cfg, 1, shape, 64, 1);
        let four = device_footprint(&cfg, 4, shape, 64, 1);
        assert!(four.weights * 4 <= one.weights + 4);
        assert!(four.total() < one.total());
    }
}

impl liger_gpu_sim::ToJson for MemoryFootprint {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("weights", &self.weights)
            .field("kv_cache", &self.kv_cache)
            .field("activations", &self.activations)
            .field("total", &self.total());
        obj.end();
    }
}
