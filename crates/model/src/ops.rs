//! The logical operations (kernels) of a transformer layer.
//!
//! A [`LayerOp`] is a shape-carrying description of one kernel. The cost
//! model prices it; the parallelism engines and Liger's function assembly
//! turn priced ops into simulator [`KernelSpec`](liger_gpu_sim::KernelSpec)s.

use liger_gpu_sim::KernelClass;

/// Which GEMM of the transformer block (they partition differently under
/// Megatron-style tensor parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmKind {
    /// Fused QKV projection — column-parallel (output width divides).
    Qkv,
    /// Attention output projection — row-parallel (reduction dim divides).
    AttnOut,
    /// First MLP GEMM — column-parallel.
    Fc1,
    /// Second MLP GEMM — row-parallel.
    Fc2,
    /// LM head projection over the vocabulary — column-parallel.
    LmHead,
}

impl GemmKind {
    /// Short kernel-name fragment.
    pub fn name(self) -> &'static str {
        match self {
            GemmKind::Qkv => "gemm_qkv",
            GemmKind::AttnOut => "gemm_attn_out",
            GemmKind::Fc1 => "gemm_fc1",
            GemmKind::Fc2 => "gemm_fc2",
            GemmKind::LmHead => "gemm_lm_head",
        }
    }

    /// True when Megatron splits this GEMM along its output columns
    /// (column-parallel); false for row-parallel GEMMs.
    pub fn column_parallel(self) -> bool {
        matches!(self, GemmKind::Qkv | GemmKind::Fc1 | GemmKind::LmHead)
    }
}

/// One logical kernel with its shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerOp {
    /// Row-wise layer normalization over `rows × hidden` activations.
    LayerNorm {
        /// Token rows.
        rows: u64,
        /// Hidden width.
        hidden: u64,
    },
    /// Dense GEMM `[m×k] · [k×n]`.
    Gemm {
        /// Rows (batch × tokens).
        m: u64,
        /// Reduction depth.
        k: u64,
        /// Output width.
        n: u64,
        /// Which projection this is.
        kind: GemmKind,
    },
    /// Scaled-dot-product attention (QKᵀ, softmax, ·V fused): `batch`
    /// sequences, `heads` local heads, `q_len` queries attending over
    /// `kv_len` keys of width `head_dim`.
    Attention {
        /// Sequences.
        batch: u64,
        /// Heads on this device (heads / tp).
        heads: u64,
        /// Query tokens this iteration.
        q_len: u64,
        /// Attended span (includes KV cache in decode).
        kv_len: u64,
        /// Per-head width.
        head_dim: u64,
    },
    /// GELU over `rows × width` activations.
    Gelu {
        /// Token rows.
        rows: u64,
        /// Activation width.
        width: u64,
    },
    /// Residual add over `rows × hidden`.
    Residual {
        /// Token rows.
        rows: u64,
        /// Hidden width.
        hidden: u64,
    },
    /// Ring all-reduce over the tensor-parallel group.
    AllReduce {
        /// Payload bytes.
        bytes: u64,
        /// Group size.
        ranks: u32,
    },
    /// Point-to-point activation transfer (pipeline stage boundary).
    P2p {
        /// Payload bytes.
        bytes: u64,
    },
}

impl LayerOp {
    /// Computation or communication.
    pub fn class(&self) -> KernelClass {
        match self {
            LayerOp::AllReduce { .. } | LayerOp::P2p { .. } => KernelClass::Comm,
            _ => KernelClass::Compute,
        }
    }

    /// Kernel name for traces.
    pub fn name(&self) -> &'static str {
        match self {
            LayerOp::LayerNorm { .. } => "layernorm",
            LayerOp::Gemm { kind, .. } => kind.name(),
            LayerOp::Attention { .. } => "attention",
            LayerOp::Gelu { .. } => "gelu",
            LayerOp::Residual { .. } => "residual_add",
            LayerOp::AllReduce { .. } => "nccl_allreduce",
            LayerOp::P2p { .. } => "nccl_sendrecv",
        }
    }

    /// Floating-point operations of the kernel.
    pub fn flops(&self) -> u64 {
        match *self {
            LayerOp::Gemm { m, k, n, .. } => 2 * m * k * n,
            LayerOp::Attention { batch, heads, q_len, kv_len, head_dim } => {
                // QK^T and attn·V, 2 FLOPs per MAC each.
                2 * 2 * batch * heads * q_len * kv_len * head_dim
            }
            LayerOp::LayerNorm { rows, hidden } => 8 * rows * hidden,
            LayerOp::Gelu { rows, width } => 10 * rows * width,
            LayerOp::Residual { rows, hidden } => rows * hidden,
            LayerOp::AllReduce { .. } | LayerOp::P2p { .. } => 0,
        }
    }

    /// Bytes of memory traffic (weights + activations), at `dtype_bytes` per
    /// element. Communication ops report their payload.
    pub fn bytes(&self, dtype_bytes: u64) -> u64 {
        match *self {
            LayerOp::Gemm { m, k, n, .. } => dtype_bytes * (m * k + k * n + m * n),
            LayerOp::Attention { batch, heads, q_len, kv_len, head_dim } => {
                // Read K,V (the cache in decode), read Q, write scores + out.
                let kv = 2 * batch * heads * kv_len * head_dim;
                let q = batch * heads * q_len * head_dim;
                let scores = batch * heads * q_len * kv_len;
                let out = batch * heads * q_len * head_dim;
                dtype_bytes * (kv + q + scores + out)
            }
            LayerOp::LayerNorm { rows, hidden } => dtype_bytes * 3 * rows * hidden,
            LayerOp::Gelu { rows, width } => dtype_bytes * 2 * rows * width,
            LayerOp::Residual { rows, hidden } => dtype_bytes * 3 * rows * hidden,
            LayerOp::AllReduce { bytes, .. } => bytes,
            LayerOp::P2p { bytes } => bytes,
        }
    }

    /// True for the long kernels the runtime may decompose at runtime
    /// (§3.6: "giant kernels … primarily include collective communication
    /// kernels and GEMM kernels").
    pub fn decomposable(&self) -> bool {
        matches!(self, LayerOp::Gemm { .. } | LayerOp::AllReduce { .. })
    }
}

/// GEMM kinds serialize as their kernel-name fragments.
impl liger_gpu_sim::ToJson for GemmKind {
    fn write_json(&self, out: &mut String) {
        self.name().write_json(out);
    }
}

/// Ops serialize as `{"op": <tag>, ...shape fields}` objects.
impl liger_gpu_sim::ToJson for LayerOp {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        match *self {
            LayerOp::LayerNorm { rows, hidden } => {
                obj.field("op", &"layer_norm").field("rows", &rows).field("hidden", &hidden);
            }
            LayerOp::Gemm { m, k, n, kind } => {
                obj.field("op", &"gemm")
                    .field("m", &m)
                    .field("k", &k)
                    .field("n", &n)
                    .field("kind", &kind);
            }
            LayerOp::Attention { batch, heads, q_len, kv_len, head_dim } => {
                obj.field("op", &"attention")
                    .field("batch", &batch)
                    .field("heads", &heads)
                    .field("q_len", &q_len)
                    .field("kv_len", &kv_len)
                    .field("head_dim", &head_dim);
            }
            LayerOp::Gelu { rows, width } => {
                obj.field("op", &"gelu").field("rows", &rows).field("width", &width);
            }
            LayerOp::Residual { rows, hidden } => {
                obj.field("op", &"residual").field("rows", &rows).field("hidden", &hidden);
            }
            LayerOp::AllReduce { bytes, ranks } => {
                obj.field("op", &"all_reduce").field("bytes", &bytes).field("ranks", &ranks);
            }
            LayerOp::P2p { bytes } => {
                obj.field("op", &"p2p").field("bytes", &bytes);
            }
        }
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(LayerOp::AllReduce { bytes: 1, ranks: 4 }.class(), KernelClass::Comm);
        assert_eq!(LayerOp::P2p { bytes: 1 }.class(), KernelClass::Comm);
        assert_eq!(
            LayerOp::Gemm { m: 1, k: 1, n: 1, kind: GemmKind::Qkv }.class(),
            KernelClass::Compute
        );
        assert_eq!(LayerOp::LayerNorm { rows: 1, hidden: 1 }.class(), KernelClass::Compute);
    }

    #[test]
    fn gemm_flops_and_bytes() {
        let g = LayerOp::Gemm { m: 4, k: 8, n: 16, kind: GemmKind::Fc1 };
        assert_eq!(g.flops(), 2 * 4 * 8 * 16);
        assert_eq!(g.bytes(2), 2 * (32 + 128 + 64));
    }

    #[test]
    fn attention_scales_with_kv_len() {
        let short = LayerOp::Attention { batch: 2, heads: 8, q_len: 1, kv_len: 16, head_dim: 64 };
        let long = LayerOp::Attention { batch: 2, heads: 8, q_len: 1, kv_len: 512, head_dim: 64 };
        assert!(long.flops() > short.flops());
        assert!(long.bytes(2) > short.bytes(2), "KV cache reads grow with context");
    }

    #[test]
    fn partition_axes() {
        assert!(GemmKind::Qkv.column_parallel());
        assert!(GemmKind::Fc1.column_parallel());
        assert!(GemmKind::LmHead.column_parallel());
        assert!(!GemmKind::AttnOut.column_parallel());
        assert!(!GemmKind::Fc2.column_parallel());
    }

    #[test]
    fn decomposable_ops() {
        assert!(LayerOp::Gemm { m: 1, k: 1, n: 1, kind: GemmKind::Qkv }.decomposable());
        assert!(LayerOp::AllReduce { bytes: 1, ranks: 4 }.decomposable());
        assert!(!LayerOp::LayerNorm { rows: 1, hidden: 1 }.decomposable());
        assert!(!LayerOp::Attention { batch: 1, heads: 1, q_len: 1, kv_len: 1, head_dim: 1 }
            .decomposable());
    }

    #[test]
    fn comm_ops_have_no_flops() {
        assert_eq!(LayerOp::AllReduce { bytes: 1024, ranks: 4 }.flops(), 0);
        assert_eq!(LayerOp::AllReduce { bytes: 1024, ranks: 4 }.bytes(2), 1024);
    }
}
