//! Speculative-decoding cost entries: the draft model and the price of one
//! draft-then-verify round.
//!
//! Speculative decoding runs a small *draft* model `k` sequential steps
//! ahead of the served model, then verifies all `k` proposals (plus the
//! bonus token) in one batched target-model pass. The scheduler only needs
//! two numbers from the model layer: how long the draft burst takes
//! ([`spec_draft_time`]) and what shape the batched verification submits
//! ([`spec_verify_shape`]). Acceptance itself is a property of the token
//! distributions, not the hardware, so it lives with the serving layer's
//! seeded acceptance sampler.

use liger_gpu_sim::SimDuration;

use crate::config::ModelConfig;
use crate::cost::CostModel;
use crate::layers::model_ops;
use crate::workload::BatchShape;

/// Derives a draft model for `target`: a quarter of the layers at half the
/// width (heads halved with the head dimension preserved), the standard
/// "same family, one size down" draft choice. Falls back to the smallest
/// legal geometry for models too small to shrink.
pub fn draft_model_for(target: &ModelConfig) -> ModelConfig {
    let heads = if target.heads >= 2 { target.heads / 2 } else { target.heads };
    let hidden = heads * target.head_dim();
    ModelConfig {
        name: format!("{}-draft", target.name),
        layers: (target.layers / 4).max(1),
        heads,
        hidden,
        vocab: target.vocab,
        dtype_bytes: target.dtype_bytes,
    }
}

/// Wall-clock cost of one draft burst: `k` strictly sequential single-token
/// decode steps of `draft` over `rows` sequences, contexts growing from
/// `context`, priced through the roofline `cost` model on one device (the
/// draft is small enough to run unsharded). Zero when `k` is zero.
pub fn spec_draft_time(
    draft: &ModelConfig,
    cost: &CostModel,
    rows: u32,
    context: u32,
    k: u32,
) -> SimDuration {
    let mut total = SimDuration::ZERO;
    for step in 0..k {
        let shape = BatchShape::decode(rows.max(1), context + step);
        total += model_ops(draft, shape, 1).iter().map(|p| cost.op_time(&p.op)).sum();
    }
    total
}

/// Shape of the batched verification pass: every sequence re-scores its `k`
/// draft tokens plus the bonus token in one target-model decode, so the
/// batch widens to `rows × (k + 1)` single-token rows attending over up to
/// `max_context + k` cached tokens.
pub fn spec_verify_shape(rows: u32, max_context: u32, k: u32) -> BatchShape {
    BatchShape::decode(rows.max(1) * (k + 1), max_context + k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draft_models_are_valid_and_smaller() {
        for target in
            [ModelConfig::opt_30b(), ModelConfig::gpt_8b(), ModelConfig::tiny_test()].iter()
        {
            let draft = draft_model_for(target);
            draft.validate().unwrap();
            assert!(draft.weight_bytes() < target.weight_bytes());
            assert_eq!(draft.head_dim(), target.head_dim(), "head geometry preserved");
            assert!(draft.name.contains("-draft"));
        }
    }

    #[test]
    fn draft_of_a_minimal_model_stays_legal() {
        let mut tiny = ModelConfig::tiny_test();
        tiny.layers = 1;
        tiny.heads = 1;
        tiny.hidden = 64;
        let draft = draft_model_for(&tiny);
        draft.validate().unwrap();
        assert_eq!(draft.layers, 1);
    }

    #[test]
    fn draft_time_scales_with_k_and_is_cheaper_than_target() {
        let target = ModelConfig::gpt_8b();
        let draft = draft_model_for(&target);
        let cost = CostModel::v100_node();
        let one = spec_draft_time(&draft, &cost, 4, 128, 1);
        let four = spec_draft_time(&draft, &cost, 4, 128, 4);
        assert!(four > one, "more draft steps cost more");
        assert_eq!(spec_draft_time(&draft, &cost, 4, 128, 0), SimDuration::ZERO);
        // The whole point: k draft steps undercut k target steps.
        let target_k: SimDuration = (0..4)
            .map(|j| {
                model_ops(&target, BatchShape::decode(4, 128 + j), 1)
                    .iter()
                    .map(|p| cost.op_time(&p.op))
                    .sum::<SimDuration>()
            })
            .sum();
        assert!(four < target_k, "draft burst {four} must undercut target steps {target_k}");
    }

    #[test]
    fn verify_shape_widens_the_batch() {
        let shape = spec_verify_shape(3, 100, 4);
        assert_eq!(shape.batch, 15, "rows x (k + 1)");
        assert_eq!(shape.phase.kv_len(), 105, "context + k + the new token");
        shape.validate().unwrap();
        assert_eq!(spec_verify_shape(2, 64, 0), BatchShape::decode(2, 64), "k=0 is a plain step");
    }
}
