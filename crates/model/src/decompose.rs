//! Kernel decomposition (§3.6).
//!
//! Liger breaks lengthy kernels — GEMMs and collectives — into fine-grained
//! pieces with equal total capability so the scheduler can match computation
//! and communication windows precisely. Decomposition strategies are decided
//! offline (this module profiles them); at runtime the scheduler carves off
//! the largest piece that fits the remaining overlap window.
//!
//! For GEMMs two axes exist (Fig. 9):
//!
//! * **Vertical** — split the weight matrix's output columns `n`. The
//!   activation matrix `A` keeps its (already skinny) row count, so compute
//!   intensity is preserved; `A` is re-read per piece but `A` is the small
//!   matrix. This is the strategy Liger uses.
//! * **Horizontal** — split the activation rows `m`. The paper shows this is
//!   much worse: `A` is already skinny, and slicing `m` collapses tensor-core
//!   efficiency so the pieces' accumulated duration far exceeds the whole.
//!
//! All-reduces decompose into equal chunks, each paying the collective base
//! latency again.

use liger_gpu_sim::SimDuration;

use crate::cost::CostModel;
use crate::ops::LayerOp;

/// GEMM decomposition axis (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmSplitAxis {
    /// Split output columns `n` (the good strategy).
    Vertical,
    /// Split activation rows `m` (the bad strategy, kept for the ablation).
    Horizontal,
}

/// Splits `op` into a head piece of `num/den` of its size and a tail with
/// the remainder, along the op's preferred axis (vertical for GEMMs, payload
/// bytes for all-reduces). Returns `None` when the op is indivisible, or
/// when the fraction would produce an empty head or tail.
pub fn split_op(op: &LayerOp, num: u32, den: u32) -> Option<(LayerOp, LayerOp)> {
    split_op_axis(op, num, den, GemmSplitAxis::Vertical)
}

/// [`split_op`] with an explicit GEMM axis.
pub fn split_op_axis(
    op: &LayerOp,
    num: u32,
    den: u32,
    axis: GemmSplitAxis,
) -> Option<(LayerOp, LayerOp)> {
    if num == 0 || den == 0 || num >= den {
        return None;
    }
    match *op {
        LayerOp::Gemm { m, k, n, kind } => match axis {
            GemmSplitAxis::Vertical => {
                let n1 = n * num as u64 / den as u64;
                if n1 == 0 || n1 == n {
                    return None;
                }
                Some((LayerOp::Gemm { m, k, n: n1, kind }, LayerOp::Gemm { m, k, n: n - n1, kind }))
            }
            GemmSplitAxis::Horizontal => {
                let m1 = m * num as u64 / den as u64;
                if m1 == 0 || m1 == m {
                    return None;
                }
                Some((LayerOp::Gemm { m: m1, k, n, kind }, LayerOp::Gemm { m: m - m1, k, n, kind }))
            }
        },
        LayerOp::AllReduce { bytes, ranks } => {
            let b1 = bytes * num as u64 / den as u64;
            if b1 == 0 || b1 == bytes {
                return None;
            }
            Some((
                LayerOp::AllReduce { bytes: b1, ranks },
                LayerOp::AllReduce { bytes: bytes - b1, ranks },
            ))
        }
        _ => None,
    }
}

/// Splits `op` into `parts` equal pieces along its preferred axis. Ops that
/// cannot be decomposed are returned whole.
pub fn equal_split(op: &LayerOp, parts: u32) -> Vec<LayerOp> {
    equal_split_axis(op, parts, GemmSplitAxis::Vertical)
}

/// [`equal_split`] with an explicit GEMM axis.
pub fn equal_split_axis(op: &LayerOp, parts: u32, axis: GemmSplitAxis) -> Vec<LayerOp> {
    let parts = parts.max(1);
    if parts == 1 || !op.decomposable() {
        return vec![*op];
    }
    let mut out = Vec::with_capacity(parts as usize);
    let mut rest = *op;
    for i in 0..parts - 1 {
        // Carve 1/(parts-i) of the remainder so all pieces end up equal.
        match split_op_axis(&rest, 1, parts - i, axis) {
            Some((head, tail)) => {
                out.push(head);
                rest = tail;
            }
            None => break, // remainder too small to keep splitting
        }
    }
    out.push(rest);
    out
}

/// The offline decomposition profile of one op at division factor `factor`:
/// durations of pieces sized `j/factor` for `j = 1..=factor` (§3.6: "we
/// profile durations for divisions ranging from 1/8 to 7/8").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompositionProfile {
    /// Division factor `F`.
    pub factor: u32,
    /// `piece_time[j-1]` = no-load duration of a `j/F` piece.
    pub piece_times: Vec<SimDuration>,
}

impl DecompositionProfile {
    /// Largest `j` (in `1..factor`) whose `j/F` piece fits in `window`;
    /// `None` when even the smallest piece does not fit.
    pub fn largest_fitting(&self, window: SimDuration) -> Option<u32> {
        (1..self.factor).rev().find(|&j| self.piece_times[(j - 1) as usize] <= window)
    }
}

/// Profiles the decomposition of `op` under `cm` (no-load durations of all
/// fractional pieces).
pub fn profile_decomposition(cm: &CostModel, op: &LayerOp, factor: u32) -> DecompositionProfile {
    let factor = factor.max(1);
    let piece_times = (1..=factor)
        .map(|j| match split_op(op, j, factor) {
            Some((head, _)) => cm.op_time(&head),
            None if j == factor => cm.op_time(op),
            None => cm.op_time(op), // indivisible: every "piece" is the whole
        })
        .collect();
    DecompositionProfile { factor, piece_times }
}

impl liger_gpu_sim::ToJson for GemmSplitAxis {
    fn write_json(&self, out: &mut String) {
        let tag = match self {
            GemmSplitAxis::Vertical => "vertical",
            GemmSplitAxis::Horizontal => "horizontal",
        };
        tag.write_json(out);
    }
}

impl liger_gpu_sim::ToJson for DecompositionProfile {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("factor", &self.factor).field("piece_times", &self.piece_times);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::GemmKind;

    fn gemm(m: u64, k: u64, n: u64) -> LayerOp {
        LayerOp::Gemm { m, k, n, kind: GemmKind::Fc1 }
    }

    #[test]
    fn split_gemm_vertical_partitions_n() {
        let (head, tail) = split_op(&gemm(128, 512, 1024), 1, 4).unwrap();
        match (head, tail) {
            (LayerOp::Gemm { n: n1, m: m1, .. }, LayerOp::Gemm { n: n2, m: m2, .. }) => {
                assert_eq!(n1, 256);
                assert_eq!(n2, 768);
                assert_eq!(m1, 128);
                assert_eq!(m2, 128);
            }
            _ => panic!("wrong op kinds"),
        }
    }

    #[test]
    fn split_gemm_horizontal_partitions_m() {
        let (head, tail) =
            split_op_axis(&gemm(128, 512, 1024), 1, 2, GemmSplitAxis::Horizontal).unwrap();
        match (head, tail) {
            (LayerOp::Gemm { m: m1, n: n1, .. }, LayerOp::Gemm { m: m2, n: n2, .. }) => {
                assert_eq!((m1, m2), (64, 64));
                assert_eq!((n1, n2), (1024, 1024));
            }
            _ => panic!("wrong op kinds"),
        }
    }

    #[test]
    fn split_allreduce_partitions_bytes() {
        let ar = LayerOp::AllReduce { bytes: 1000, ranks: 4 };
        let (head, tail) = split_op(&ar, 3, 8).unwrap();
        match (head, tail) {
            (
                LayerOp::AllReduce { bytes: b1, ranks: r1 },
                LayerOp::AllReduce { bytes: b2, ranks: r2 },
            ) => {
                assert_eq!(b1, 375);
                assert_eq!(b2, 625);
                assert_eq!(r1, 4);
                assert_eq!(r2, 4);
            }
            _ => panic!("wrong op kinds"),
        }
    }

    #[test]
    fn degenerate_splits_rejected() {
        assert!(split_op(&gemm(128, 512, 1024), 0, 8).is_none());
        assert!(split_op(&gemm(128, 512, 1024), 8, 8).is_none());
        assert!(split_op(&gemm(128, 512, 1024), 9, 8).is_none());
        assert!(split_op(&LayerOp::LayerNorm { rows: 1, hidden: 1 }, 1, 2).is_none());
        // n too small to split 1/8.
        assert!(split_op(&gemm(128, 512, 7), 1, 8).is_none());
    }

    #[test]
    fn equal_split_conserves_work() {
        let op = gemm(128, 512, 1024);
        for parts in [1u32, 2, 4, 8, 16] {
            let pieces = equal_split(&op, parts);
            let total_n: u64 = pieces
                .iter()
                .map(|p| match p {
                    LayerOp::Gemm { n, .. } => *n,
                    _ => panic!(),
                })
                .sum();
            assert_eq!(total_n, 1024, "parts={parts}");
            assert_eq!(pieces.len(), parts as usize);
        }
        let ar = LayerOp::AllReduce { bytes: 999, ranks: 4 };
        let pieces = equal_split(&ar, 8);
        let total: u64 = pieces
            .iter()
            .map(|p| match p {
                LayerOp::AllReduce { bytes, .. } => *bytes,
                _ => panic!(),
            })
            .sum();
        assert_eq!(total, 999);
    }

    #[test]
    fn equal_split_pieces_are_balanced() {
        let pieces = equal_split(&gemm(128, 512, 1000), 8);
        let ns: Vec<u64> = pieces
            .iter()
            .map(|p| match p {
                LayerOp::Gemm { n, .. } => *n,
                _ => panic!(),
            })
            .collect();
        let (min, max) = (ns.iter().min().unwrap(), ns.iter().max().unwrap());
        assert!(max - min <= 1, "pieces {ns:?} not balanced");
    }

    #[test]
    fn indivisible_ops_return_whole() {
        let ln = LayerOp::LayerNorm { rows: 128, hidden: 512 };
        assert_eq!(equal_split(&ln, 8), vec![ln]);
    }

    #[test]
    fn vertical_beats_horizontal_in_total_time() {
        // Fig. 9 as a decomposition-level property.
        let cm = CostModel::v100_node();
        let op = gemm(128, 7168, 7168);
        let sum = |axis| -> SimDuration {
            equal_split_axis(&op, 8, axis).iter().map(|p| cm.op_time(p)).sum()
        };
        assert!(sum(GemmSplitAxis::Vertical) < sum(GemmSplitAxis::Horizontal));
    }

    #[test]
    fn profile_is_monotone_and_fits_are_correct() {
        let cm = CostModel::v100_node();
        let op = gemm(128, 7168, 7168);
        let prof = profile_decomposition(&cm, &op, 8);
        assert_eq!(prof.piece_times.len(), 8);
        for w in prof.piece_times.windows(2) {
            assert!(w[0] <= w[1], "piece durations must grow with fraction");
        }
        // The full piece equals the whole op.
        assert_eq!(prof.piece_times[7], cm.op_time(&op));
        // largest_fitting picks the biggest piece under the window.
        let window = prof.piece_times[4]; // 5/8 piece duration
        assert_eq!(prof.largest_fitting(window), Some(5));
        assert_eq!(prof.largest_fitting(SimDuration::ZERO), None);
        assert_eq!(prof.largest_fitting(SimDuration::MAX), Some(7));
    }

    #[test]
    fn allreduce_profile_includes_latency_per_chunk() {
        let cm = CostModel::v100_node();
        let ar = LayerOp::AllReduce { bytes: 8 << 20, ranks: 4 };
        let prof = profile_decomposition(&cm, &ar, 8);
        let whole = cm.op_time(&ar);
        // 8 pieces each pay the base latency: summed pieces exceed the whole.
        let total: SimDuration = (0..8).map(|_| prof.piece_times[0]).sum();
        assert!(total > whole);
    }
}
