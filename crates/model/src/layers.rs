//! Building the kernel sequence of a transformer forward pass.
//!
//! [`layer_ops`] emits the per-device op list of one transformer block under
//! a given tensor-parallel degree, in execution order; [`model_ops`] chains
//! all layers plus the final norm and LM head. The sequences follow
//! Megatron-LM's partitioning (the paper's Intra-Op baseline): QKV and FC1
//! are column-parallel, the attention output projection and FC2 are
//! row-parallel, and each block synchronizes with **two all-reduces** —
//! after the attention projection and after FC2.

use crate::config::ModelConfig;
use crate::ops::{GemmKind, LayerOp};
use crate::workload::{BatchShape, Phase};

/// One op with its position in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedOp {
    /// Layer index (`u32::MAX` for the head/final ops).
    pub layer: u32,
    /// The op.
    pub op: LayerOp,
}

/// Marker layer index for post-block ops (final norm, LM head).
pub const HEAD_LAYER: u32 = u32::MAX;

/// Ops of one transformer block on one device, at tensor-parallel degree
/// `tp`. `tp = 1` yields the sequence a pipeline stage executes.
///
/// `tp` need not divide the head count: when it does not (the elastic
/// degraded mode after losing a device, e.g. 56 heads over 3 survivors),
/// shards are ceil-divided and the emitted sequence models the
/// **critical-path largest shard** — the rank holding `ceil(heads/tp)`
/// heads, which every all-reduce must wait for. For divisible degrees this
/// is byte-identical to the exact Megatron partitioning.
pub fn layer_ops(cfg: &ModelConfig, shape: BatchShape, tp: u32, layer: u32) -> Vec<PlacedOp> {
    assert!(tp >= 1, "tensor-parallel degree must be >= 1");
    assert!(
        tp <= cfg.heads,
        "{}: tp ({tp}) exceeds head count ({}) — some rank would hold no head",
        cfg.name,
        cfg.heads
    );
    let tp64 = tp as u64;
    let h = cfg.hidden as u64;
    let ffn = cfg.ffn_hidden() as u64;
    let rows = shape.rows();
    let heads_local = (cfg.heads as u64).div_ceil(tp64);
    let shard_h = heads_local * cfg.head_dim() as u64;
    let (q_len, kv_len) = match shape.phase {
        Phase::Prefill { seq_len } => (seq_len as u64, seq_len as u64),
        Phase::Decode { context } => (1, context as u64 + 1),
    };
    let dtype = cfg.dtype_bytes as u64;
    let ar_bytes = rows * h * dtype;

    let mut ops = Vec::with_capacity(12);
    let mut push = |op: LayerOp| ops.push(PlacedOp { layer, op });

    // -- attention half ------------------------------------------------------
    push(LayerOp::LayerNorm { rows, hidden: h });
    push(LayerOp::Gemm { m: rows, k: h, n: 3 * shard_h, kind: GemmKind::Qkv });
    push(LayerOp::Attention {
        batch: shape.batch as u64,
        heads: heads_local,
        q_len,
        kv_len,
        head_dim: cfg.head_dim() as u64,
    });
    push(LayerOp::Gemm { m: rows, k: shard_h, n: h, kind: GemmKind::AttnOut });
    if tp > 1 {
        push(LayerOp::AllReduce { bytes: ar_bytes, ranks: tp });
    }
    push(LayerOp::Residual { rows, hidden: h });

    // -- MLP half --------------------------------------------------------------
    push(LayerOp::LayerNorm { rows, hidden: h });
    push(LayerOp::Gemm { m: rows, k: h, n: ffn.div_ceil(tp64), kind: GemmKind::Fc1 });
    push(LayerOp::Gelu { rows, width: ffn.div_ceil(tp64) });
    push(LayerOp::Gemm { m: rows, k: ffn.div_ceil(tp64), n: h, kind: GemmKind::Fc2 });
    if tp > 1 {
        push(LayerOp::AllReduce { bytes: ar_bytes, ranks: tp });
    }
    push(LayerOp::Residual { rows, hidden: h });

    ops
}

/// Ops of the full model on one device at tensor-parallel degree `tp`:
/// `layers` blocks, final layer norm, and the (column-parallel) LM head.
pub fn model_ops(cfg: &ModelConfig, shape: BatchShape, tp: u32) -> Vec<PlacedOp> {
    let mut ops = Vec::with_capacity(cfg.layers as usize * 12 + 2);
    for layer in 0..cfg.layers {
        ops.extend(layer_ops(cfg, shape, tp, layer));
    }
    let h = cfg.hidden as u64;
    let rows = shape.rows();
    ops.push(PlacedOp { layer: HEAD_LAYER, op: LayerOp::LayerNorm { rows, hidden: h } });
    ops.push(PlacedOp {
        layer: HEAD_LAYER,
        op: LayerOp::Gemm {
            m: rows,
            k: h,
            n: (cfg.vocab as u64).div_ceil(tp as u64),
            kind: GemmKind::LmHead,
        },
    });
    ops
}

/// Ops of one *pipeline stage* covering layers `[lo, hi)` at `tp = 1`
/// (Inter-Op baseline). The final stage appends the head ops.
pub fn stage_ops(cfg: &ModelConfig, shape: BatchShape, lo: u32, hi: u32) -> Vec<PlacedOp> {
    assert!(lo < hi && hi <= cfg.layers, "invalid stage range [{lo},{hi}) of {}", cfg.layers);
    let mut ops = Vec::new();
    for layer in lo..hi {
        ops.extend(layer_ops(cfg, shape, 1, layer));
    }
    if hi == cfg.layers {
        let h = cfg.hidden as u64;
        let rows = shape.rows();
        ops.push(PlacedOp { layer: HEAD_LAYER, op: LayerOp::LayerNorm { rows, hidden: h } });
        ops.push(PlacedOp {
            layer: HEAD_LAYER,
            op: LayerOp::Gemm { m: rows, k: h, n: cfg.vocab as u64, kind: GemmKind::LmHead },
        });
    }
    ops
}

/// Bytes of the activation tensor handed between pipeline stages.
pub fn stage_boundary_bytes(cfg: &ModelConfig, shape: BatchShape) -> u64 {
    shape.rows() * cfg.hidden as u64 * cfg.dtype_bytes as u64
}

impl liger_gpu_sim::ToJson for PlacedOp {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("layer", &self.layer).field("op", &self.op);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::KernelClass;

    fn count_allreduces(ops: &[PlacedOp]) -> usize {
        ops.iter().filter(|p| matches!(p.op, LayerOp::AllReduce { .. })).count()
    }

    #[test]
    fn megatron_layer_has_two_allreduces() {
        let cfg = ModelConfig::opt_30b();
        let ops = layer_ops(&cfg, BatchShape::prefill(2, 64), 4, 0);
        assert_eq!(count_allreduces(&ops), 2, "two all-reduce synchronizations per layer (§4.1)");
    }

    #[test]
    fn single_device_layer_has_no_comm() {
        let cfg = ModelConfig::opt_30b();
        let ops = layer_ops(&cfg, BatchShape::prefill(2, 64), 1, 0);
        assert_eq!(count_allreduces(&ops), 0);
        assert!(ops.iter().all(|p| p.op.class() == KernelClass::Compute));
    }

    #[test]
    fn tp_divides_gemm_widths() {
        let cfg = ModelConfig::opt_30b();
        let full = layer_ops(&cfg, BatchShape::prefill(2, 64), 1, 0);
        let quarter = layer_ops(&cfg, BatchShape::prefill(2, 64), 4, 0);
        let qkv = |ops: &[PlacedOp]| {
            ops.iter()
                .find_map(|p| match p.op {
                    LayerOp::Gemm { n, kind: GemmKind::Qkv, .. } => Some(n),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(qkv(&full), 3 * 7168);
        assert_eq!(qkv(&quarter), 3 * 7168 / 4);
        // Row-parallel FC2 divides k instead of n.
        let fc2 = |ops: &[PlacedOp]| {
            ops.iter()
                .find_map(|p| match p.op {
                    LayerOp::Gemm { k, n, kind: GemmKind::Fc2, .. } => Some((k, n)),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(fc2(&full), (4 * 7168, 7168));
        assert_eq!(fc2(&quarter), (7168, 7168));
    }

    #[test]
    fn decode_uses_kv_cache_span() {
        let cfg = ModelConfig::opt_30b();
        let ops = layer_ops(&cfg, BatchShape::decode(32, 100), 4, 0);
        let attn = ops
            .iter()
            .find_map(|p| match p.op {
                LayerOp::Attention { q_len, kv_len, .. } => Some((q_len, kv_len)),
                _ => None,
            })
            .unwrap();
        assert_eq!(attn, (1, 101));
    }

    #[test]
    fn model_ops_cover_all_layers_plus_head() {
        let cfg = ModelConfig::tiny_test();
        let ops = model_ops(&cfg, BatchShape::prefill(2, 16), 2);
        let per_layer = layer_ops(&cfg, BatchShape::prefill(2, 16), 2, 0).len();
        assert_eq!(ops.len(), cfg.layers as usize * per_layer + 2);
        assert!(ops.iter().any(|p| p.layer == HEAD_LAYER));
        for l in 0..cfg.layers {
            assert!(ops.iter().any(|p| p.layer == l));
        }
    }

    #[test]
    fn stage_ops_partition_the_model() {
        let cfg = ModelConfig::tiny_test();
        let shape = BatchShape::prefill(2, 16);
        let s0 = stage_ops(&cfg, shape, 0, 2);
        let s1 = stage_ops(&cfg, shape, 2, 4);
        assert_eq!(count_allreduces(&s0), 0, "pipeline stages run tp=1");
        // Only the final stage carries the head.
        assert!(!s0.iter().any(|p| p.layer == HEAD_LAYER));
        assert!(s1.iter().any(|p| p.layer == HEAD_LAYER));
    }

    #[test]
    fn boundary_bytes() {
        let cfg = ModelConfig::opt_30b();
        assert_eq!(stage_boundary_bytes(&cfg, BatchShape::prefill(2, 64)), 128 * 7168 * 2);
        assert_eq!(stage_boundary_bytes(&cfg, BatchShape::decode(32, 50)), 32 * 7168 * 2);
    }

    #[test]
    fn uneven_tp_models_the_largest_shard() {
        // 8 heads over 3 survivors: the critical-path rank holds
        // ceil(8/3) = 3 heads, and every shard width follows it.
        let cfg = ModelConfig::tiny_test(); // 8 heads
        let hd = cfg.head_dim() as u64;
        let ops = layer_ops(&cfg, BatchShape::prefill(1, 8), 3, 0);
        let qkv_n = ops
            .iter()
            .find_map(|p| match p.op {
                LayerOp::Gemm { n, kind: GemmKind::Qkv, .. } => Some(n),
                _ => None,
            })
            .unwrap();
        assert_eq!(qkv_n, 3 * 3 * hd);
        let heads = ops
            .iter()
            .find_map(|p| match p.op {
                LayerOp::Attention { heads, .. } => Some(heads),
                _ => None,
            })
            .unwrap();
        assert_eq!(heads, 3);
        // An uneven shard is strictly wider than the even 4-way shard and
        // strictly narrower than the 2-way shard: capacity degrades
        // monotonically as survivors are lost.
        let even4 = layer_ops(&cfg, BatchShape::prefill(1, 8), 4, 0);
        let even2 = layer_ops(&cfg, BatchShape::prefill(1, 8), 2, 0);
        let width = |ops: &[PlacedOp]| {
            ops.iter()
                .find_map(|p| match p.op {
                    LayerOp::Gemm { n, kind: GemmKind::Qkv, .. } => Some(n),
                    _ => None,
                })
                .unwrap()
        };
        assert!(width(&even4) < qkv_n && qkv_n < width(&even2));
    }

    #[test]
    #[should_panic(expected = "exceeds head count")]
    fn tp_beyond_heads_panics() {
        let cfg = ModelConfig::tiny_test(); // 8 heads
        layer_ops(&cfg, BatchShape::prefill(1, 8), 9, 0);
    }

    #[test]
    #[should_panic(expected = "invalid stage range")]
    fn stage_range_is_checked() {
        let cfg = ModelConfig::tiny_test();
        stage_ops(&cfg, BatchShape::prefill(1, 8), 2, 9);
    }
}
