//! Property tests for the batching frontend: conservation and ordering over
//! arbitrary query streams.
//!
//! Runs on the internal [`liger_gpu_sim::testkit`] harness; rerun a failing
//! case with the `LIGER_PROP_SEED` it prints.

use liger_gpu_sim::testkit::{check, Gen};
use liger_gpu_sim::{SimDuration, SimTime};
use liger_serving::{Batcher, BatcherConfig, Query};

/// Up to 200 queries as (seq_len, inter-arrival gap in us).
fn gen_queries(g: &mut Gen) -> Vec<(u32, u64)> {
    g.vec_of(0, 200, |g| (g.u32_in(1, 512), g.u64_in(0, 10_000)))
}

/// Every offered query appears in exactly one emitted batch, in arrival
/// order, and no batch exceeds the configured size.
#[test]
fn batches_partition_the_query_stream() {
    check("batches_partition_the_query_stream", 64, |g| {
        let raw = gen_queries(g);
        let max_batch = g.u32_in(1, 12);
        let wait_us = g.u64_in(1, 50_000);
        let config = BatcherConfig { max_batch, max_wait: SimDuration::from_micros(wait_us) };
        let mut b = Batcher::new(config).unwrap();
        let mut t = 0u64;
        let mut emitted: Vec<u64> = Vec::new();
        let mut n = 0u64;
        for (seq, gap) in &raw {
            t += gap;
            let q = Query { id: n, seq_len: *seq, arrival: SimTime::from_micros(t) };
            n += 1;
            if let Some(batch) = b.offer(q) {
                assert!(batch.members.len() <= max_batch as usize);
                assert!(batch.request.shape.batch as usize == batch.members.len());
                emitted.extend(&batch.members);
            }
        }
        // Drain the tail through timeout flushes.
        while let Some(batch) = b.flush(SimTime::from_micros(t + wait_us)) {
            assert!(batch.members.len() <= max_batch as usize);
            emitted.extend(&batch.members);
        }
        assert_eq!(b.pending(), 0);
        let expect: Vec<u64> = (0..n).collect();
        assert_eq!(emitted, expect, "queries lost, duplicated, or reordered");
    });
}

/// A batch's padded sequence length is the max of its members' lengths.
#[test]
fn padding_is_exactly_the_member_max() {
    check("padding_is_exactly_the_member_max", 64, |g| {
        let seqs = g.vec_of(1, 8, |g| g.u32_in(1, 512));
        let config =
            BatcherConfig { max_batch: seqs.len() as u32, max_wait: SimDuration::from_millis(1) };
        let mut b = Batcher::new(config).unwrap();
        let mut batch = None;
        for (i, seq) in seqs.iter().enumerate() {
            batch = b.offer(Query { id: i as u64, seq_len: *seq, arrival: SimTime::ZERO });
        }
        let batch = batch.expect("final offer fills the batch");
        match batch.request.shape.phase {
            liger_model::Phase::Prefill { seq_len } => {
                assert_eq!(seq_len, *seqs.iter().max().unwrap());
            }
            _ => panic!("prefill expected"),
        }
        // Waste is in [0, 1) and zero iff all members share the max length.
        let max = *seqs.iter().max().unwrap();
        let waste = Batcher::padding_waste(max, &seqs);
        assert!((0.0..1.0).contains(&waste));
        assert_eq!(waste == 0.0, seqs.iter().all(|&s| s == max));
    });
}
