//! Property tests for the batching frontend: conservation and ordering over
//! arbitrary query streams.

use liger_gpu_sim::{SimDuration, SimTime};
use liger_serving::{Batcher, BatcherConfig, Query};
use proptest::prelude::*;

fn queries_strategy() -> impl Strategy<Value = Vec<(u32, u64)>> {
    // (seq_len, inter-arrival gap in us)
    prop::collection::vec((1u32..512, 0u64..10_000), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every offered query appears in exactly one emitted batch, in arrival
    /// order, and no batch exceeds the configured size.
    #[test]
    fn batches_partition_the_query_stream(raw in queries_strategy(), max_batch in 1u32..12, wait_us in 1u64..50_000) {
        let config = BatcherConfig { max_batch, max_wait: SimDuration::from_micros(wait_us) };
        let mut b = Batcher::new(config).unwrap();
        let mut t = 0u64;
        let mut emitted: Vec<u64> = Vec::new();
        let mut n = 0u64;
        for (seq, gap) in &raw {
            t += gap;
            let q = Query { id: n, seq_len: *seq, arrival: SimTime::from_micros(t) };
            n += 1;
            if let Some(batch) = b.offer(q) {
                prop_assert!(batch.members.len() <= max_batch as usize);
                prop_assert!(batch.request.shape.batch as usize == batch.members.len());
                emitted.extend(&batch.members);
            }
        }
        // Drain the tail through timeout flushes.
        while let Some(batch) = b.flush(SimTime::from_micros(t + wait_us)) {
            prop_assert!(batch.members.len() <= max_batch as usize);
            emitted.extend(&batch.members);
        }
        prop_assert_eq!(b.pending(), 0);
        let expect: Vec<u64> = (0..n).collect();
        prop_assert_eq!(emitted, expect, "queries lost, duplicated, or reordered");
    }

    /// A batch's padded sequence length is the max of its members' lengths.
    #[test]
    fn padding_is_exactly_the_member_max(seqs in prop::collection::vec(1u32..512, 1..8)) {
        let config = BatcherConfig { max_batch: seqs.len() as u32, max_wait: SimDuration::from_millis(1) };
        let mut b = Batcher::new(config).unwrap();
        let mut batch = None;
        for (i, seq) in seqs.iter().enumerate() {
            batch = b.offer(Query { id: i as u64, seq_len: *seq, arrival: SimTime::ZERO });
        }
        let batch = batch.expect("final offer fills the batch");
        match batch.request.shape.phase {
            liger_model::Phase::Prefill { seq_len } => {
                prop_assert_eq!(seq_len, *seqs.iter().max().unwrap());
            }
            _ => prop_assert!(false, "prefill expected"),
        }
        // Waste is in [0, 1) and zero iff all members share the max length.
        let max = *seqs.iter().max().unwrap();
        let waste = Batcher::padding_waste(max, &seqs);
        prop_assert!((0.0..1.0).contains(&waste));
        prop_assert_eq!(waste == 0.0, seqs.iter().all(|&s| s == max));
    }
}
