//! Cross-request prefix identity and the deterministic token oracle.
//!
//! The simulator never materialises real token ids, but prefix caching and
//! speculative decoding are *correctness*-sensitive mechanisms: sharing a
//! cached block must never change what a request would have generated, and
//! a rejected draft must leave no trace. To make that checkable, this
//! module defines a deterministic token oracle — every prompt and output
//! token is a pure function of the request's [`PrefixTag`], id, and
//! position. Requests in the same prefix class agree token-for-token over
//! the shared span (so cached blocks genuinely hold the adopter's content),
//! and outputs depend on nothing the cache or the speculative pipeline can
//! touch. The differential test serves the same trace with the mechanisms
//! on and off and demands byte-identical token streams.

use liger_gpu_sim::rng::Rng;
use liger_kvcache::mix64;
use liger_model::ModelConfig;

use crate::generation::GenerationJob;

/// Identifies the shared prompt prefix of a request: all requests with the
/// same `class` hold identical tokens for the first `shared_len` positions
/// (a system prompt, a few-shot template, ...), then diverge into
/// per-request content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixTag {
    /// Content class of the shared prefix; requests sharing a class share
    /// prompt tokens `0..shared_len`.
    pub class: u64,
    /// Length of the shared span in tokens (clamped to the prompt length).
    pub shared_len: u32,
}

impl PrefixTag {
    /// A request sharing nothing with anyone — the pre-caching behavior.
    pub const NONE: PrefixTag = PrefixTag { class: 0, shared_len: 0 };

    /// Tag for a request whose first `shared_len` prompt tokens come from
    /// shared-content class `class`.
    pub fn shared(class: u64, shared_len: u32) -> PrefixTag {
        PrefixTag { class, shared_len }
    }
}

/// The prompt token at `pos` for `job`, from the deterministic oracle:
/// positions inside the shared span draw from the class stream (identical
/// across every request in the class), positions beyond it from a
/// per-request stream no other request can collide with.
pub fn prompt_token(job: &GenerationJob, pos: u32) -> u64 {
    if pos < job.prefix.shared_len.min(job.prompt_len) {
        mix64(mix64(0x5a5a ^ job.prefix.class) ^ pos as u64)
    } else {
        mix64(mix64(0xa5a5 ^ job.id) ^ pos as u64)
    }
}

/// Output token `t` (0-based decode step) for `job`. A pure function of the
/// request identity alone, so prefix sharing and speculative rollback can
/// be checked to change *nothing* about what a request generates.
pub fn output_token(job: &GenerationJob, t: u32) -> u64 {
    mix64(mix64(0x0007_u64 ^ job.id) ^ t as u64)
}

/// Content digests of `job`'s *full* prompt blocks at `block_tokens` per
/// block — the keys the prefix cache chains over. A partial trailing block
/// is never published or adopted, so it gets no digest.
pub fn block_digests(job: &GenerationJob, block_tokens: u32) -> Vec<u64> {
    let full = job.prompt_len / block_tokens.max(1);
    (0..full)
        .map(|b| {
            let mut d = 0x_d16e_5700_u64 ^ b as u64;
            for pos in b * block_tokens..(b + 1) * block_tokens {
                d = mix64(d ^ prompt_token(job, pos));
            }
            d
        })
        .collect()
}

/// Speculative-decoding configuration for the continuous scheduler: the
/// draft model, the draft depth, and a seeded acceptance process standing
/// in for the real accept/reject sampling (which depends on token
/// distributions the simulator does not model).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecDecodeConfig {
    /// The draft model (see `liger_model::draft_model_for`), priced on one
    /// device per draft step.
    pub draft: ModelConfig,
    /// Tokens drafted ahead per round (`k`); the verify pass scores `k + 1`
    /// rows per sequence.
    pub draft_tokens: u32,
    /// Per-token acceptance probability in `[0, 1]`.
    pub acceptance: f64,
    /// Seed of the acceptance process; fixed seed, fixed outcome.
    pub seed: u64,
}

impl SpecDecodeConfig {
    /// Config drafting `draft_tokens` ahead with the standard draft of
    /// `target` and the given acceptance probability.
    pub fn for_target(
        target: &ModelConfig,
        draft_tokens: u32,
        acceptance: f64,
    ) -> SpecDecodeConfig {
        SpecDecodeConfig {
            draft: liger_model::draft_model_for(target),
            draft_tokens,
            acceptance,
            seed: 0x5bec,
        }
    }

    /// Rejects a degenerate config (zero draft depth, acceptance outside
    /// `[0, 1]`, or an invalid draft model).
    pub fn validate(&self) -> Result<(), String> {
        if self.draft_tokens == 0 {
            return Err("draft_tokens must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.acceptance) {
            return Err(format!("acceptance {} outside [0, 1]", self.acceptance));
        }
        self.draft.validate().map_err(|e| format!("draft model: {e}"))
    }

    /// Number of the `k` drafted tokens accepted for `job_id`'s draft round
    /// starting at decode step `step`: the leading run of Bernoulli
    /// successes (standard speculative decoding stops at the first
    /// rejection). Deterministic in `(seed, job_id, step)`.
    pub fn accepted(&self, job_id: u64, step: u32, k: u32) -> u32 {
        let mut rng = Rng::seed_from_u64(mix64(self.seed ^ mix64(job_id) ^ step as u64));
        let mut run = 0;
        for _ in 0..k {
            if rng.next_f64() < self.acceptance {
                run += 1;
            } else {
                break;
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::SimTime;

    fn job(id: u64, prompt_len: u32, prefix: PrefixTag) -> GenerationJob {
        GenerationJob { id, batch: 1, prompt_len, output_tokens: 8, arrival: SimTime::ZERO, prefix }
    }

    #[test]
    fn shared_span_agrees_across_the_class_and_diverges_after() {
        let a = job(1, 64, PrefixTag::shared(9, 32));
        let b = job(2, 64, PrefixTag::shared(9, 32));
        for pos in 0..32 {
            assert_eq!(prompt_token(&a, pos), prompt_token(&b, pos), "shared span at {pos}");
        }
        assert_ne!(prompt_token(&a, 32), prompt_token(&b, 32), "divergence after the span");
        let c = job(3, 64, PrefixTag::shared(10, 32));
        assert_ne!(prompt_token(&a, 0), prompt_token(&c, 0), "classes differ");
    }

    #[test]
    fn digests_match_exactly_over_shared_full_blocks() {
        let a = job(1, 72, PrefixTag::shared(4, 48));
        let b = job(2, 72, PrefixTag::shared(4, 48));
        let da = block_digests(&a, 16);
        let db = block_digests(&b, 16);
        assert_eq!(da.len(), 4, "72 tokens = 4 full blocks + a partial");
        assert_eq!(da[..3], db[..3], "48 shared tokens = 3 identical digests");
        assert_ne!(da[3], db[3], "block 3 crosses into per-request content");
    }

    #[test]
    fn outputs_are_a_pure_function_of_request_identity() {
        let with = job(5, 64, PrefixTag::shared(1, 48));
        let without = job(5, 64, PrefixTag::NONE);
        for t in 0..16 {
            assert_eq!(output_token(&with, t), output_token(&without, t));
        }
        assert_ne!(output_token(&with, 0), output_token(&job(6, 64, PrefixTag::NONE), 0));
    }

    #[test]
    fn acceptance_run_is_deterministic_and_tracks_probability() {
        let target = ModelConfig::tiny_test();
        let always = SpecDecodeConfig::for_target(&target, 4, 1.0);
        let never = SpecDecodeConfig::for_target(&target, 4, 0.0);
        always.validate().unwrap();
        assert_eq!(always.accepted(3, 0, 4), 4);
        assert_eq!(never.accepted(3, 0, 4), 0);
        let half = SpecDecodeConfig::for_target(&target, 4, 0.5);
        assert_eq!(half.accepted(3, 7, 4), half.accepted(3, 7, 4), "deterministic");
        let total: u32 = (0..200).map(|s| half.accepted(11, s, 4)).sum();
        assert!(total > 100 && total < 700, "mean acceptance in a plausible band: {total}");
    }

    #[test]
    fn config_validation_rejects_degenerates() {
        let target = ModelConfig::tiny_test();
        let mut cfg = SpecDecodeConfig::for_target(&target, 4, 0.7);
        cfg.draft_tokens = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SpecDecodeConfig::for_target(&target, 4, 0.7);
        cfg.acceptance = 1.5;
        assert!(cfg.validate().is_err());
    }
}
