//! Cluster front: N model replicas behind a deterministic router.
//!
//! Each replica is a full engine serving its share of the trace with
//! [`serve_continuous`](crate::scheduler::serve_continuous) on its own node (its own [`Simulation`], so replica
//! traces sanitize independently and the whole tier stays byte-identical
//! across event cores). The router assigns jobs to replicas **at arrival
//! order** with a pluggable [`RouterPolicy`]:
//!
//! * **Round-robin** — job *i* to replica *i mod N*.
//! * **Least-outstanding** — the replica with the fewest outstanding tokens
//!   (prompt + expected output, weighted by batch rows) at assignment time;
//!   ties break to the lowest replica index, so the choice is a pure
//!   function of the assignment history.
//! * **Prefix-affinity** — jobs carrying a shared-prefix class hash their
//!   class to a replica, so one replica's chain index (PR 7) serves the
//!   whole class; untagged jobs fall back to least-outstanding.
//!
//! Replica health feeds back from the existing watchdog: each replica runs
//! with its own [`HealthConfig`](crate::health::HealthConfig)-driven
//! monitor, and a replica whose report shows confirmed losses is marked
//! unhealthy. After the first wave, every routed job the replica failed to
//! complete — shed by admission, lost to an outage, or still queued when
//! the replica drained — **re-routes** to the healthy replicas in a second
//! wave (round-robin over the healthy set, preserving arrival order). The
//! report accounts for every job: completed, re-routed, or lost.
//!
//! Job ids are renumbered densely per replica (the continuous scheduler
//! indexes by id) and every result, output stream, completion and shed
//! record is remapped back to the global id before merging, so the
//! aggregate views read in the caller's id space.

use std::collections::BTreeMap;

use liger_gpu_sim::{CoreSelect, Simulation, Trace};
use liger_kvcache::mix64;
use liger_model::{CostModel, ModelConfig};

use crate::engine::InferenceEngine;
use crate::generation::{GenerationJob, GenerationMetrics, GenerationResult};
use crate::metrics::{MetricsSections, ServingMetrics};
use crate::prefix::PrefixTag;
use crate::request::Completion;
use crate::scheduler::{serve_continuous_on, ContinuousReport, SchedulerConfig};

/// Deterministic request-routing policy of the cluster front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Job *i* to replica *i mod N*.
    RoundRobin,
    /// The replica with the fewest outstanding tokens at assignment time
    /// (ties to the lowest index).
    LeastOutstanding,
    /// Shared-prefix classes hash to a home replica (so its chain index
    /// serves the class); untagged jobs use least-outstanding.
    PrefixAffinity,
}

impl RouterPolicy {
    /// Policy label for reports and tables.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastOutstanding => "least-outstanding",
            RouterPolicy::PrefixAffinity => "prefix-affinity",
        }
    }
}

/// Configuration of the cluster front.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of replicas.
    pub replicas: usize,
    /// Routing policy.
    pub policy: RouterPolicy,
    /// Per-replica continuous-batching configuration.
    pub scheduler: SchedulerConfig,
    /// Re-route jobs an unhealthy replica failed to complete in a second
    /// wave over the healthy replicas (on by default).
    pub reroute: bool,
}

impl ClusterConfig {
    /// A cluster of `replicas` replicas under `scheduler`, round-robin,
    /// with re-routing on.
    pub fn new(replicas: usize, scheduler: SchedulerConfig) -> ClusterConfig {
        ClusterConfig { replicas, policy: RouterPolicy::RoundRobin, scheduler, reroute: true }
    }

    /// Overrides the routing policy.
    pub fn with_policy(mut self, policy: RouterPolicy) -> ClusterConfig {
        self.policy = policy;
        self
    }

    /// Rejects degenerate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicas == 0 {
            return Err("cluster needs at least one replica".into());
        }
        self.scheduler.validate()
    }
}

/// One replica's view of the serve: what was routed to it and what its
/// engine reported, with all ids in the global space.
#[derive(Debug, Clone, Default)]
pub struct ReplicaSlot {
    /// Global job ids routed in the first wave, arrival order.
    pub routed: Vec<u64>,
    /// Global job ids accepted from unhealthy peers in the re-route wave.
    pub rerouted: Vec<u64>,
    /// Whether the replica finished with zero watchdog-confirmed losses.
    pub healthy: bool,
    /// Merged serving metrics of the replica (both waves, global ids).
    pub serving: ServingMetrics,
    /// Merged per-generation results of the replica (global ids).
    pub generation: GenerationMetrics,
}

/// Outcome of one cluster serve.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Per-replica accounting.
    pub replicas: Vec<ReplicaSlot>,
    /// Aggregate per-generation results across every replica (global ids).
    pub generation: GenerationMetrics,
    /// Aggregate serving metrics across every replica.
    pub serving: ServingMetrics,
    /// Every produced output stream, keyed by global job id.
    pub outputs: BTreeMap<u64, Vec<u64>>,
    /// Jobs that ran in the re-route wave.
    pub rerouted: u64,
    /// Global ids of jobs no replica completed (unaccounted work — the
    /// cluster tests assert this stays empty, or matches the shed count
    /// under total overload).
    pub lost: Vec<u64>,
    /// Captured traces in deterministic order (wave 1 replicas 0..N, then
    /// wave 2 replicas 0..N), when the factory built sims with trace
    /// capture on.
    pub traces: Vec<Trace>,
}

impl ClusterReport {
    /// Jobs completed across the cluster.
    pub fn completed(&self) -> usize {
        self.generation.completed()
    }
}

/// JSON view: the aggregate plus one `replica_<i>` section per replica, all
/// emitted through the shared [`MetricsSections`] helper so every section
/// carries the identical field set.
impl liger_gpu_sim::ToJson for ClusterReport {
    fn write_json(&self, out: &mut String) {
        let mut sections = MetricsSections::new();
        sections.push("aggregate", &self.serving);
        let labels: Vec<String> =
            (0..self.replicas.len()).map(|i| format!("replica_{i}")).collect();
        for (label, slot) in labels.iter().zip(&self.replicas) {
            sections.push(label.clone(), &slot.serving);
        }
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("completed", &(self.completed() as u64))
            .field("rerouted", &self.rerouted)
            .field("lost", &(self.lost.len() as u64))
            .field("metrics", &sections);
        obj.end();
    }
}

/// Routes `jobs` (arrival order) over `replicas` replicas by `policy`.
/// Returns the global job indices per replica. Pure function of the job
/// list — no simulation state involved — so routing is deterministic by
/// construction.
pub fn route_jobs(jobs: &[GenerationJob], replicas: usize, policy: RouterPolicy) -> Vec<Vec<u64>> {
    assert!(replicas >= 1, "routing needs at least one replica");
    let mut assignment: Vec<Vec<u64>> = vec![Vec::new(); replicas];
    // Outstanding prompt+output tokens per replica at assignment time.
    let mut outstanding: Vec<u64> = vec![0; replicas];
    let least = |outstanding: &[u64]| -> usize {
        let mut best = 0;
        for (i, &o) in outstanding.iter().enumerate() {
            if o < outstanding[best] {
                best = i;
            }
        }
        best
    };
    for (i, job) in jobs.iter().enumerate() {
        let r = match policy {
            RouterPolicy::RoundRobin => i % replicas,
            RouterPolicy::LeastOutstanding => least(&outstanding),
            RouterPolicy::PrefixAffinity => {
                if job.prefix != PrefixTag::NONE {
                    (mix64(job.prefix.class) % replicas as u64) as usize
                } else {
                    least(&outstanding)
                }
            }
        };
        assignment[r].push(job.id);
        outstanding[r] +=
            (job.prompt_len as u64 + job.output_tokens as u64) * job.batch.max(1) as u64;
    }
    assignment
}

/// Serves `jobs` over a cluster of replicas on the environment-selected
/// event core. `make_replica(replica, wave)` builds one replica's
/// simulation and engine — wave 0 is the initial dispatch, wave 1 the
/// re-route pass (fresh sim: the first one has run to completion).
pub fn serve_cluster<E: InferenceEngine>(
    jobs: Vec<GenerationJob>,
    model: &ModelConfig,
    cost: &CostModel,
    config: ClusterConfig,
    make_replica: impl FnMut(usize, usize) -> (Simulation, E),
) -> ClusterReport {
    serve_cluster_on(CoreSelect::from_env(), jobs, model, cost, config, make_replica)
}

/// [`serve_cluster`] on an explicit event core.
pub fn serve_cluster_on<E: InferenceEngine>(
    core: CoreSelect,
    jobs: Vec<GenerationJob>,
    model: &ModelConfig,
    cost: &CostModel,
    config: ClusterConfig,
    mut make_replica: impl FnMut(usize, usize) -> (Simulation, E),
) -> ClusterReport {
    config.validate().expect("invalid ClusterConfig");
    let by_id: BTreeMap<u64, GenerationJob> = jobs.iter().map(|j| (j.id, *j)).collect();
    let assignment = route_jobs(&jobs, config.replicas, config.policy);

    let mut report = ClusterReport {
        replicas: vec![ReplicaSlot::default(); config.replicas],
        ..ClusterReport::default()
    };

    // Wave 1: every replica serves its share.
    let mut unfinished: Vec<u64> = Vec::new();
    for (r, routed) in assignment.into_iter().enumerate() {
        report.replicas[r].routed = routed.clone();
        if routed.is_empty() {
            report.replicas[r].healthy = true;
            continue;
        }
        let (mut sim, mut engine) = make_replica(r, 0);
        let outcome = run_replica(
            core,
            &mut sim,
            &mut engine,
            &routed,
            &by_id,
            model,
            cost,
            config.scheduler.clone(),
        );
        if let Some(trace) = sim.take_trace() {
            report.traces.push(trace);
        }
        absorb(&mut report, r, outcome, &mut unfinished);
    }

    // Wave 2: re-route everything the unhealthy replicas dropped onto the
    // healthy set, round-robin in arrival order.
    if config.reroute && !unfinished.is_empty() {
        unfinished.sort_unstable_by_key(|id| (by_id[id].arrival, *id));
        let mut healthy: Vec<usize> =
            (0..config.replicas).filter(|&r| report.replicas[r].healthy).collect();
        if healthy.is_empty() {
            // Nothing is healthy: spread over everyone rather than dropping
            // the queue on the floor.
            healthy = (0..config.replicas).collect();
        }
        let mut rerouted: Vec<Vec<u64>> = vec![Vec::new(); healthy.len()];
        for (i, id) in unfinished.drain(..).enumerate() {
            rerouted[i % healthy.len()].push(id);
        }
        for (slot, ids) in healthy.into_iter().zip(rerouted) {
            if ids.is_empty() {
                continue;
            }
            report.replicas[slot].rerouted = ids.clone();
            report.rerouted += ids.len() as u64;
            let (mut sim, mut engine) = make_replica(slot, 1);
            let outcome = run_replica(
                core,
                &mut sim,
                &mut engine,
                &ids,
                &by_id,
                model,
                cost,
                config.scheduler.clone(),
            );
            if let Some(trace) = sim.take_trace() {
                report.traces.push(trace);
            }
            absorb(&mut report, slot, outcome, &mut unfinished);
        }
    }

    // Whatever is still unfinished after the re-route wave is lost (or was
    // legitimately shed for capacity — the caller checks shed records).
    unfinished.sort_unstable();
    report.lost = unfinished;
    report
}

/// One replica run remapped to global ids.
struct ReplicaOutcome {
    report: ContinuousReport,
    /// Global ids the replica did not complete.
    unfinished: Vec<u64>,
}

/// Serves `routed` global job ids on one replica: renumbers them densely,
/// runs [`serve_continuous_on`], and remaps every id in the report back to
/// the global space.
#[allow(clippy::too_many_arguments)]
fn run_replica<E: InferenceEngine>(
    core: CoreSelect,
    sim: &mut Simulation,
    engine: &mut E,
    routed: &[u64],
    by_id: &BTreeMap<u64, GenerationJob>,
    model: &ModelConfig,
    cost: &CostModel,
    scheduler: SchedulerConfig,
) -> ReplicaOutcome {
    // Dense local ids in arrival order (the scheduler requires both).
    let mut order: Vec<u64> = routed.to_vec();
    order.sort_unstable_by_key(|id| (by_id[id].arrival, *id));
    let local_jobs: Vec<GenerationJob> = order
        .iter()
        .enumerate()
        .map(|(local, id)| GenerationJob { id: local as u64, ..by_id[id] })
        .collect();
    let mut report = serve_continuous_on(core, sim, engine, local_jobs, model, cost, scheduler);

    // Remap back to global ids.
    let global = |local: u64| order[local as usize];
    let mut generation = GenerationMetrics::default();
    let mut completed = vec![false; order.len()];
    for r in report.generation.results() {
        completed[r.id as usize] = true;
        generation.record(GenerationResult { id: global(r.id), ..*r });
    }
    let mut serving = ServingMetrics::new();
    for c in report.serving.completions() {
        serving.record(Completion { id: global(c.id), ..*c });
    }
    // Counters carry no ids except shed records; remap those in place.
    let mut counters_only = report.serving.clone();
    counters_only_strip(&mut counters_only);
    serving.merge(&counters_only);
    for s in &report.serving.recovery().shed {
        let mut s = *s;
        s.id = global(s.id);
        serving.recovery_mut().shed.push(s);
    }
    report.generation = generation;
    let outputs: BTreeMap<u64, Vec<u64>> =
        std::mem::take(&mut report.outputs).into_iter().map(|(id, ts)| (global(id), ts)).collect();
    report.outputs = outputs;
    report.serving = serving;

    let unfinished: Vec<u64> =
        (0..order.len()).filter(|&i| !completed[i]).map(|i| order[i]).collect();
    ReplicaOutcome { report, unfinished }
}

/// Drops the id-bearing pieces (completions, shed records) from a metrics
/// clone so merging it only adds the scalar counters.
fn counters_only_strip(metrics: &mut ServingMetrics) {
    *metrics = {
        let mut m = ServingMetrics::new();
        m.faults_mut().merge(metrics.faults());
        let rec = m.recovery_mut();
        let o = metrics.recovery();
        rec.losses = o.losses;
        rec.detection_latency = o.detection_latency;
        rec.drain_time = o.drain_time;
        rec.replan_time = o.replan_time;
        rec.recompute_tokens = o.recompute_tokens;
        rec.timeline = o.timeline.clone();
        rec.flaps = o.flaps;
        rec.rejoins = o.rejoins;
        rec.re_expansions = o.re_expansions;
        m.batching_mut().merge(metrics.batching());
        m.prefix_mut().merge(metrics.prefix());
        m.spec_mut().merge(metrics.spec());
        m
    };
}

/// Folds one replica outcome into the cluster report.
fn absorb(
    report: &mut ClusterReport,
    r: usize,
    outcome: ReplicaOutcome,
    unfinished: &mut Vec<u64>,
) {
    let slot = &mut report.replicas[r];
    slot.healthy = outcome.report.serving.recovery().losses == 0;
    for res in outcome.report.generation.results() {
        slot.generation.record(*res);
        report.generation.record(*res);
    }
    slot.serving.merge(&outcome.report.serving);
    report.serving.merge(&outcome.report.serving);
    report.outputs.extend(outcome.report.outputs);
    unfinished.extend(outcome.unfinished);
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::SimTime;

    fn job(id: u64, arrive_us: u64, prompt: u32, out: u32, prefix: PrefixTag) -> GenerationJob {
        GenerationJob {
            id,
            batch: 1,
            prompt_len: prompt,
            output_tokens: out,
            arrival: SimTime::from_micros(arrive_us),
            prefix,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let jobs: Vec<GenerationJob> =
            (0..6).map(|i| job(i, i * 10, 32, 4, PrefixTag::NONE)).collect();
        let a = route_jobs(&jobs, 3, RouterPolicy::RoundRobin);
        assert_eq!(a, vec![vec![0, 3], vec![1, 4], vec![2, 5]]);
    }

    #[test]
    fn least_outstanding_balances_token_load() {
        // One huge job, then small ones: the small ones should pile onto
        // the other replica until loads even out.
        let mut jobs = vec![job(0, 0, 1000, 100, PrefixTag::NONE)];
        for i in 1..5 {
            jobs.push(job(i, i * 10, 10, 2, PrefixTag::NONE));
        }
        let a = route_jobs(&jobs, 2, RouterPolicy::LeastOutstanding);
        assert_eq!(a[0], vec![0], "the big job saturates replica 0");
        assert_eq!(a[1], vec![1, 2, 3, 4], "small jobs balance onto replica 1");
    }

    #[test]
    fn prefix_affinity_keeps_classes_together() {
        let jobs: Vec<GenerationJob> =
            (0..8).map(|i| job(i, i * 10, 64, 4, PrefixTag::shared(1 + i % 2, 32))).collect();
        let a = route_jobs(&jobs, 4, RouterPolicy::PrefixAffinity);
        // Every job of one class lands on one replica.
        for ids in &a {
            let classes: std::collections::BTreeSet<u64> =
                ids.iter().map(|&id| jobs[id as usize].prefix.class).collect();
            assert!(classes.len() <= 1, "replica mixes prefix classes: {ids:?}");
        }
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 8, "every job routed");
    }

    #[test]
    fn routing_is_deterministic() {
        let jobs: Vec<GenerationJob> =
            (0..32).map(|i| job(i, i * 7, 16 + (i as u32 % 5) * 8, 4, PrefixTag::NONE)).collect();
        for policy in
            [RouterPolicy::RoundRobin, RouterPolicy::LeastOutstanding, RouterPolicy::PrefixAffinity]
        {
            assert_eq!(
                route_jobs(&jobs, 3, policy),
                route_jobs(&jobs, 3, policy),
                "{} routing must be pure",
                policy.name()
            );
        }
    }

    #[test]
    fn cluster_config_validates() {
        let sched = SchedulerConfig::sized_for(&ModelConfig::tiny_test(), 2, 16 * (1 << 30));
        assert!(ClusterConfig::new(0, sched.clone()).validate().is_err());
        ClusterConfig::new(2, sched).validate().unwrap();
    }
}
