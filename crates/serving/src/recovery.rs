//! Elastic recovery from permanent device loss: the drain-and-replan
//! serving loop.
//!
//! The [`RecoveryRunner`] wraps any [`InferenceEngine`] with the full
//! failure-handling pipeline the paper's serving scenario needs when a GPU
//! drops out of the node for good:
//!
//! 1. **Detect** — a [`HealthMonitor`] heartbeats every device; a loss is
//!    acted on only once the watchdog *confirms* it (the simulator's
//!    [`Wake::DeviceDown`] oracle wake is recorded purely as ground truth
//!    for the detection-latency metric).
//! 2. **Drain** — the engine abandons every in-flight and queued request
//!    ([`InferenceEngine::on_device_loss`]) and rebuilds its placement over
//!    the survivors; the runner then waits for barrier events behind all
//!    outstanding survivor work so no stale kernel overlaps the replan.
//! 3. **Recover** — the KV cache shards lost with the dead device are
//!    rebuilt under the configured [`RecoveryPolicy`]: *recompute* replays
//!    the prefills on the survivors (priced through the roofline cost
//!    model, at the degraded parallelism degree), *replicate* restores a
//!    surviving copy over the interconnect.
//! 4. **Shed & resume** — on re-entry to serving the deferred backlog is
//!    trimmed to the admission watermark (oldest shed first, each with an
//!    explicit [`ShedReason`]); survivors is
//!    the new normal until the next loss.
//!
//! Every phase transition is timestamped into
//! [`ServingMetrics::recovery_timeline`]; the recovery counters record
//! detection latency, drain and replan time, replayed tokens, and every
//! shed request.

use std::collections::VecDeque;

use liger_gpu_sim::{
    CoreSelect, DeviceId, Driver, HostId, KernelSpec, SimDuration, SimTime, Simulation, StreamId,
    Wake,
};
use liger_model::{kv_recovery_plan, CostModel, LayerOp, ModelConfig, RecoveryPolicy};

use crate::admission::{AdmissionConfig, AdmissionController, ShedReason};
use crate::engine::{InferenceEngine, RUNNER_TOKEN_BASE};
use crate::health::{HealthConfig, HealthEvents, HealthMonitor};
use crate::metrics::ServingMetrics;
use crate::request::{Completion, Request};

/// Token base handed to the health monitor (bit 63 = runner namespace,
/// bit 59 = health sub-namespace; the monitor fills the low 49 bits).
const HEALTH_BASE: u64 = RUNNER_TOKEN_BASE | (1 << 59);

/// Drain-barrier completion token (one event per survivor stream).
const DRAIN_TOKEN: u64 = RUNNER_TOKEN_BASE | (1 << 56);

/// KV-recovery completion token.
const RECOVERED_TOKEN: u64 = RUNNER_TOKEN_BASE | (1 << 55);

/// Re-expansion completion token (the rejoined device is warm and the KV
/// migrate/recompute work has drained).
const EXPANDED_TOKEN: u64 = RUNNER_TOKEN_BASE | (1 << 53);

/// Engine streams the drain barrier covers (the Liger engine launches on
/// streams 0 and 1; probes ride elsewhere).
const BARRIER_STREAMS: usize = 2;

/// Parameters of the elastic-recovery pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Watchdog parameters (detection bound = `health.detection_bound()`).
    pub health: HealthConfig,
    /// How lost KV-cache shards are rebuilt.
    pub policy: RecoveryPolicy,
    /// Backlog bound applied when serving resumes on degraded capacity.
    pub admission: AdmissionConfig,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            health: HealthConfig::default(),
            policy: RecoveryPolicy::Replicate,
            admission: AdmissionConfig::default(),
        }
    }
}

/// Where the runner is in the recovery state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// Serving normally; no confirmed loss outstanding.
    Normal,
    /// Loss confirmed; waiting for survivor streams to drain.
    Draining,
    /// Replanned; KV recovery work is running on the survivors.
    Recovering,
    /// Serving again on reduced capacity.
    Degraded,
    /// A quarantined device rejoined; the engine has replanned onto the
    /// wider set and the warmup + KV migrate/recompute work is running.
    Expanding,
}

impl RecoveryPhase {
    /// Stable label (timeline, tables).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPhase::Normal => "normal",
            RecoveryPhase::Draining => "draining",
            RecoveryPhase::Recovering => "recovering",
            RecoveryPhase::Degraded => "degraded",
            RecoveryPhase::Expanding => "expanding",
        }
    }
}

/// A watchdog-confirmed status change queued behind an in-progress
/// recovery or expansion, in confirmation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PendingChange {
    Loss(DeviceId),
    Rejoin(DeviceId),
}

/// Serving driver with health monitoring, drain-and-replan device-loss
/// handling, KV recovery, and admission control. See the module docs for
/// the state machine.
pub struct RecoveryRunner<'a, E: InferenceEngine + ?Sized> {
    engine: &'a mut E,
    requests: Vec<Request>,
    model: &'a ModelConfig,
    cost: &'a CostModel,
    config: RecoveryConfig,
    admission: AdmissionController,
    metrics: ServingMetrics,
    monitor: Option<HealthMonitor>,
    phase: RecoveryPhase,
    /// Requests neither completed nor shed.
    outstanding: usize,
    /// Terminal (completed or shed) flags, indexed by request id.
    done: Vec<bool>,
    /// Arrivals deferred during recovery plus cancelled in-flight requests,
    /// in arrival order (front = oldest).
    deferred: VecDeque<u64>,
    /// Cancelled in-flight ids whose KV must be recovered.
    lost: Vec<u64>,
    /// Status changes confirmed while a recovery or expansion was already
    /// in progress, replayed strictly in confirmation order. Stale entries
    /// are never dropped: even if a lost device has since rejoined, the
    /// engine's in-flight work died with it and must still be replanned.
    pending_changes: VecDeque<PendingChange>,
    /// Oracle death instants from [`Wake::DeviceDown`], for the
    /// detection-latency metric only.
    ground_truth: Vec<(DeviceId, SimTime)>,
    survivors: Vec<DeviceId>,
    /// The serving world: devices the engine is currently planned over.
    /// Distinct from `Simulation::alive_devices` — a device whose outage
    /// window closed is sim-alive while it still sits in rejoin quarantine,
    /// and joins this set only on a watchdog-confirmed rejoin.
    world: Vec<DeviceId>,
    drain_pending: usize,
    drain_started: SimTime,
    recover_started: SimTime,
    expand_started: SimTime,
    /// World size at start; reaching it again on expansion restores
    /// [`RecoveryPhase::Normal`].
    full_world: usize,
}

impl<'a, E: InferenceEngine + ?Sized> RecoveryRunner<'a, E> {
    /// Creates a runner over `requests` (dense ids, sorted by arrival).
    pub fn new(
        engine: &'a mut E,
        requests: Vec<Request>,
        model: &'a ModelConfig,
        cost: &'a CostModel,
        config: RecoveryConfig,
    ) -> Self {
        config.health.validate().expect("invalid health config");
        let outstanding = requests.len();
        let done = vec![false; requests.len()];
        RecoveryRunner {
            engine,
            requests,
            model,
            cost,
            config,
            admission: AdmissionController::new(config.admission),
            metrics: ServingMetrics::new(),
            monitor: None,
            phase: RecoveryPhase::Normal,
            outstanding,
            done,
            deferred: VecDeque::new(),
            lost: Vec::new(),
            pending_changes: VecDeque::new(),
            ground_truth: Vec::new(),
            survivors: Vec::new(),
            world: Vec::new(),
            drain_pending: 0,
            drain_started: SimTime::ZERO,
            recover_started: SimTime::ZERO,
            expand_started: SimTime::ZERO,
            full_world: 0,
        }
    }

    /// The collected metrics (complete once the simulation has stopped).
    pub fn into_metrics(mut self) -> ServingMetrics {
        if let Some(m) = &self.monitor {
            let rec = self.metrics.recovery_mut();
            rec.flaps = m.flaps();
            rec.rejoins = m.rejoins();
        }
        self.metrics
    }

    /// Current state-machine phase.
    pub fn phase(&self) -> RecoveryPhase {
        self.phase
    }

    /// Live view of the metrics accumulated so far (health-monitor counters
    /// are only folded in by [`into_metrics`](Self::into_metrics)).
    pub fn metrics(&self) -> &ServingMetrics {
        &self.metrics
    }

    fn owns_health(&self, token: u64) -> bool {
        self.monitor.as_ref().is_some_and(|m| m.owns(token))
    }

    fn set_phase(&mut self, phase: RecoveryPhase, now: SimTime) {
        self.phase = phase;
        self.metrics.recovery_mut().timeline.push((phase.name(), now));
    }

    /// A watchdog-confirmed loss: record detection latency and either start
    /// a recovery or queue the loss behind the one in progress.
    fn confirm_loss(&mut self, dead: DeviceId, sim: &mut Simulation) {
        let now = sim.now();
        let rec = self.metrics.recovery_mut();
        rec.losses += 1;
        if let Some(&(_, death)) = self.ground_truth.iter().find(|&&(d, _)| d == dead) {
            rec.detection_latency = now.saturating_since(death);
        }
        match self.phase {
            RecoveryPhase::Normal | RecoveryPhase::Degraded => self.handle_loss(dead, sim),
            RecoveryPhase::Draining | RecoveryPhase::Recovering | RecoveryPhase::Expanding => {
                self.pending_changes.push_back(PendingChange::Loss(dead));
            }
        }
    }

    /// A watchdog-confirmed rejoin (the device answered probes through the
    /// full quarantine): either re-expand now or queue behind the change in
    /// progress. A device that has already died again is dropped here — the
    /// watchdog will confirm the fresh loss on its own.
    fn confirm_rejoin(&mut self, device: DeviceId, sim: &mut Simulation) {
        match self.phase {
            RecoveryPhase::Normal | RecoveryPhase::Degraded => {
                if sim.alive_devices().contains(&device) {
                    self.handle_rejoin(device, sim);
                }
            }
            RecoveryPhase::Draining | RecoveryPhase::Recovering | RecoveryPhase::Expanding => {
                self.pending_changes.push_back(PendingChange::Rejoin(device));
            }
        }
    }

    /// Replay the oldest queued status change, skipping rejoins whose
    /// device has died again in the meantime. Queued losses are never
    /// skipped: the engine's in-flight work died with the device even if
    /// it is alive again now.
    fn pop_pending(&mut self, sim: &mut Simulation) {
        while let Some(change) = self.pending_changes.pop_front() {
            match change {
                PendingChange::Loss(dead) => {
                    self.handle_loss(dead, sim);
                    return;
                }
                PendingChange::Rejoin(device) => {
                    if sim.alive_devices().contains(&device) {
                        self.handle_rejoin(device, sim);
                        return;
                    }
                }
            }
        }
    }

    /// Re-expansion: the engine replans onto the widened set, the cancelled
    /// work's KV is either migrated back or recomputed (whichever the cost
    /// model prices cheaper, per request), and the rejoined device reloads
    /// its weight shard before anything else lands on it.
    fn handle_rejoin(&mut self, rejoined: DeviceId, sim: &mut Simulation) {
        let now = sim.now();
        if self.world.contains(&rejoined) {
            return; // duplicate confirmation; already serving
        }
        self.set_phase(RecoveryPhase::Expanding, now);
        self.expand_started = now;
        // Widen by exactly the confirmed device: other sim-alive devices
        // may still be in quarantine and join only on their own rejoin.
        self.world.push(rejoined);
        self.world.sort_unstable_by_key(|d| d.0);
        // Plan only over sim-alive members: one may have died again with
        // its loss not yet confirmed, and work placed on it would vanish.
        let alive = sim.alive_devices();
        let devices: Vec<DeviceId> =
            self.world.iter().copied().filter(|d| alive.contains(d)).collect();
        let ways = devices.len() as u32;
        // KV for in-flight work currently lives on the narrower pre-rejoin
        // placement; those devices hold the copies a migrate would source.
        let holders = (devices.len() - 1).max(1) as u32;
        let mut cancelled = self.engine.on_device_rejoin(rejoined, &devices, sim);
        cancelled.sort_unstable();
        cancelled.retain(|&id| !self.done[id as usize]);
        for &id in cancelled.iter().rev() {
            self.deferred.push_front(id);
        }
        // Price each cancelled request's KV both ways and take the cheaper:
        // migrate the live shards onto the wider placement, or recompute
        // them there from the prompt.
        let mut migrate = SimDuration::ZERO;
        let mut recompute = SimDuration::ZERO;
        let mut tokens = 0u64;
        for &id in &cancelled {
            let shape = self.requests[id as usize].shape;
            let mig = kv_recovery_plan(
                self.model,
                self.cost,
                RecoveryPolicy::Replicate,
                ways,
                holders,
                shape.batch,
                shape.phase.kv_len(),
            );
            let rec = kv_recovery_plan(
                self.model,
                self.cost,
                RecoveryPolicy::Recompute,
                ways,
                ways,
                shape.batch,
                shape.phase.kv_len(),
            );
            if rec.duration < mig.duration {
                recompute += rec.duration;
                tokens += rec.recompute_tokens;
            } else {
                migrate += mig.duration;
            }
        }
        self.metrics.recovery_mut().recompute_tokens += tokens;
        let dev = HostId(rejoined.0);
        let stream = StreamId::new(rejoined, 0);
        // Warm the rejoined device first: its weight shard travels over the
        // interconnect before any KV or serving kernel may land on it.
        let warm = self
            .cost
            .op_time(&LayerOp::P2p { bytes: self.model.weight_bytes() / u64::from(ways.max(1)) });
        sim.launch(dev, stream, KernelSpec::comm("rejoin-warmup", warm));
        if migrate > SimDuration::ZERO {
            sim.launch(dev, stream, KernelSpec::comm("kv-expand-migrate", migrate));
        }
        if recompute > SimDuration::ZERO {
            sim.launch(dev, stream, KernelSpec::compute("kv-expand-recompute", recompute));
        }
        let ev = sim.record_event(dev, stream);
        sim.notify_on_event(ev, dev, EXPANDED_TOKEN);
    }

    /// The rejoined device is warm: re-admit what was shed for queue depth
    /// while degraded, resubmit the backlog, and return to full-capacity
    /// serving (or degraded, if other devices are still out).
    fn finish_expansion(&mut self, sim: &mut Simulation) {
        let now = sim.now();
        {
            let done = &self.done;
            let rec = self.metrics.recovery_mut();
            rec.replan_time += now.saturating_since(self.expand_started);
            rec.re_expansions += 1;
            // Capacity is back: un-shed queue-depth victims and fold them
            // into the backlog. KV-exhaustion sheds stay final.
            let mut readmitted = Vec::new();
            rec.shed.retain(|s| {
                if s.reason == ShedReason::QueueDepth && done[s.id as usize] {
                    readmitted.push(s.id);
                    false
                } else {
                    true
                }
            });
            for id in readmitted {
                self.done[id as usize] = false;
                self.outstanding += 1;
                self.deferred.push_back(id);
            }
        }
        // Re-admitted sheds are older than deferred arrivals; restore
        // arrival order before resubmitting.
        let mut backlog: Vec<u64> = std::mem::take(&mut self.deferred).into();
        backlog.sort_unstable();
        backlog.dedup();
        let all_back = self.world.len() == self.full_world;
        self.set_phase(if all_back { RecoveryPhase::Normal } else { RecoveryPhase::Degraded }, now);
        for id in backlog {
            if !self.done[id as usize] {
                self.engine.submit(self.requests[id as usize], sim);
            }
        }
        self.pop_pending(sim);
    }

    /// Drain-and-replan: the engine abandons its work and replans over the
    /// survivors; barrier events behind all remaining survivor work gate the
    /// transition to KV recovery.
    fn handle_loss(&mut self, dead: DeviceId, sim: &mut Simulation) {
        let now = sim.now();
        // Only serving-world members can be lost: a device that died again
        // while quarantining holds no serving state, and condemning the
        // only member (a false positive under congestion) is unactionable.
        if !self.world.contains(&dead) {
            return;
        }
        // Survivors must also be sim-alive: a world member that has died
        // again (its own loss not yet confirmed) cannot host drain-barrier
        // records — dead devices drop them, and the drain would never
        // complete. Its confirmation will run its own drain later.
        let alive = sim.alive_devices();
        let survivors: Vec<DeviceId> =
            self.world.iter().copied().filter(|&d| d != dead && alive.contains(&d)).collect();
        if survivors.is_empty() {
            return;
        }
        self.set_phase(RecoveryPhase::Draining, now);
        self.drain_started = now;
        self.survivors = survivors;
        self.world.retain(|&d| d != dead);
        let mut cancelled = self.engine.on_device_loss(dead, &self.survivors, sim);
        cancelled.sort_unstable();
        cancelled.retain(|&id| !self.done[id as usize]);
        // Cancelled in-flight requests predate every deferred arrival, so
        // prepending (in reverse) keeps the queue in arrival order.
        for &id in cancelled.iter().rev() {
            self.deferred.push_front(id);
        }
        self.lost = cancelled;
        // Barrier: one event per survivor engine stream, enqueued after any
        // still-running work, so every pre-loss record has fired before the
        // recovery kernels (and the resubmissions behind them) launch.
        self.drain_pending = 0;
        for &d in &self.survivors {
            for s in 0..BARRIER_STREAMS {
                let ev = sim.record_event(HostId(d.0), StreamId::new(d, s));
                sim.notify_on_event(ev, HostId(d.0), DRAIN_TOKEN);
                self.drain_pending += 1;
            }
        }
    }

    /// Survivor streams are empty: price the lost KV shards and launch the
    /// recovery work (or skip straight to degraded serving if nothing was
    /// in flight).
    fn begin_recovery(&mut self, sim: &mut Simulation) {
        let now = sim.now();
        self.metrics.recovery_mut().drain_time += now.saturating_since(self.drain_started);
        self.set_phase(RecoveryPhase::Recovering, now);
        self.recover_started = now;
        // KV was sharded over the pre-loss degree (survivors + the dead).
        let ways = self.survivors.len() as u32 + 1;
        let mut duration = SimDuration::ZERO;
        let mut tokens = 0u64;
        for &id in &self.lost {
            let shape = self.requests[id as usize].shape;
            let plan = kv_recovery_plan(
                self.model,
                self.cost,
                self.config.policy,
                ways,
                self.survivors.len() as u32,
                shape.batch,
                shape.phase.kv_len(),
            );
            duration += plan.duration;
            tokens += plan.recompute_tokens;
        }
        self.metrics.recovery_mut().recompute_tokens += tokens;
        self.lost.clear();
        if duration == SimDuration::ZERO {
            self.finish_recovery(sim);
            return;
        }
        let spec = match self.config.policy {
            RecoveryPolicy::Recompute => KernelSpec::compute("kv-recover-recompute", duration),
            RecoveryPolicy::Replicate => KernelSpec::comm("kv-recover-replicate", duration),
        };
        for &d in &self.survivors {
            sim.launch(HostId(d.0), StreamId::new(d, 0), spec.clone());
        }
        let d0 = self.survivors[0];
        let ev = sim.record_event(HostId(d0.0), StreamId::new(d0, 0));
        sim.notify_on_event(ev, HostId(d0.0), RECOVERED_TOKEN);
    }

    fn finish_recovery(&mut self, sim: &mut Simulation) {
        let now = sim.now();
        self.metrics.recovery_mut().replan_time += now.saturating_since(self.recover_started);
        self.enter_degraded(sim);
    }

    /// Back to serving: shed the backlog beyond the watermark (oldest
    /// first), resubmit the rest, then take on any loss that was confirmed
    /// while this recovery ran.
    fn enter_degraded(&mut self, sim: &mut Simulation) {
        let now = sim.now();
        self.set_phase(RecoveryPhase::Degraded, now);
        let shed = self.admission.shed_excess(&mut self.deferred, now);
        for s in &shed {
            let idx = s.id as usize;
            if !self.done[idx] {
                self.done[idx] = true;
                self.outstanding = self.outstanding.saturating_sub(1);
            }
        }
        self.metrics.recovery_mut().shed.extend(shed);
        while let Some(id) = self.deferred.pop_front() {
            if !self.done[id as usize] {
                self.engine.submit(self.requests[id as usize], sim);
            }
        }
        self.pop_pending(sim);
    }

    fn collect(&mut self, sim: &mut Simulation) {
        for (id, finished) in self.engine.drain_completions() {
            let idx = id as usize;
            if self.done[idx] {
                continue;
            }
            self.done[idx] = true;
            let arrival = self.requests[idx].arrival;
            self.metrics.record(Completion { id, arrival, finished });
            self.outstanding = self.outstanding.saturating_sub(1);
        }
        if self.outstanding == 0 {
            if let Some(m) = &mut self.monitor {
                m.stop();
            }
            sim.request_stop();
        }
    }
}

impl<E: InferenceEngine + ?Sized> Driver for RecoveryRunner<'_, E> {
    fn start(&mut self, sim: &mut Simulation) {
        assert!(
            // Ids must stay clear of the drain/recovered/health marker bits.
            self.requests.len() < (1u64 << 55) as usize,
            "request count overflows the recovery-runner token namespace"
        );
        self.full_world = sim.alive_devices().len();
        self.world = sim.alive_devices();
        let mut monitor = HealthMonitor::new(self.config.health, sim.alive_devices(), HEALTH_BASE);
        monitor.start(sim);
        self.monitor = Some(monitor);
        if self.requests.is_empty() {
            self.monitor.as_mut().expect("just set").stop();
            sim.request_stop();
            return;
        }
        for (i, r) in self.requests.iter().enumerate() {
            debug_assert_eq!(r.id as usize, i, "request ids must be dense arrival indices");
            debug_assert!(
                i == 0 || self.requests[i - 1].arrival <= r.arrival,
                "requests must be sorted by arrival"
            );
        }
        sim.set_timer(self.requests[0].arrival, RUNNER_TOKEN_BASE);
    }

    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
        // The monitor inspects every wake; confirmations come back here.
        let events = match &mut self.monitor {
            Some(m) => m.on_wake(&wake, sim),
            None => HealthEvents::default(),
        };
        for dead in events.lost {
            self.confirm_loss(dead, sim);
        }
        for device in events.rejoined {
            self.confirm_rejoin(device, sim);
        }
        match wake {
            // Oracle knowledge: logged for the detection-latency metric,
            // never acted on directly.
            Wake::DeviceDown { device, at } => {
                self.ground_truth.push((device, at));
            }
            Wake::Timer { token } if self.owns_health(token) => {}
            Wake::EventFired { token, .. } if self.owns_health(token) => {}
            Wake::EventFired { token, .. } if token == DRAIN_TOKEN => {
                self.drain_pending = self.drain_pending.saturating_sub(1);
                if self.drain_pending == 0 && self.phase == RecoveryPhase::Draining {
                    self.begin_recovery(sim);
                }
            }
            Wake::EventFired { token, .. } if token == RECOVERED_TOKEN => {
                if self.phase == RecoveryPhase::Recovering {
                    self.finish_recovery(sim);
                }
            }
            Wake::EventFired { token, .. } if token == EXPANDED_TOKEN => {
                if self.phase == RecoveryPhase::Expanding {
                    self.finish_expansion(sim);
                }
            }
            Wake::Timer { token } if token & RUNNER_TOKEN_BASE != 0 => {
                let id = (token & !RUNNER_TOKEN_BASE) as usize;
                if let Some(next) = self.requests.get(id + 1) {
                    sim.set_timer(next.arrival, RUNNER_TOKEN_BASE | next.id);
                }
                match self.phase {
                    RecoveryPhase::Normal | RecoveryPhase::Degraded => {
                        self.engine.submit(self.requests[id], sim);
                    }
                    // Mid-recovery and mid-expansion arrivals wait out the
                    // replan.
                    RecoveryPhase::Draining
                    | RecoveryPhase::Recovering
                    | RecoveryPhase::Expanding => {
                        self.deferred.push_back(id as u64);
                    }
                }
            }
            other => self.engine.on_wake(other, sim),
        }
        self.collect(sim);
    }
}

/// Serves `requests` with `engine` on `sim` under the elastic-recovery
/// pipeline; `model` and `cost` price the KV-recovery work. Returns the
/// metrics, including the recovery counters and phase timeline.
pub fn serve_with_recovery<E: InferenceEngine + ?Sized>(
    sim: &mut Simulation,
    engine: &mut E,
    requests: Vec<Request>,
    model: &ModelConfig,
    cost: &CostModel,
    config: RecoveryConfig,
) -> ServingMetrics {
    serve_with_recovery_on(CoreSelect::from_env(), sim, engine, requests, model, cost, config)
}

/// [`serve_with_recovery`] on an explicit event core. A parallel core gets
/// its lookahead derived from the host launch overhead and the cost model's
/// interconnect latency ([`core_lookahead`](crate::runner::core_lookahead)).
pub fn serve_with_recovery_on<E: InferenceEngine + ?Sized>(
    core: CoreSelect,
    sim: &mut Simulation,
    engine: &mut E,
    requests: Vec<Request>,
    model: &ModelConfig,
    cost: &CostModel,
    config: RecoveryConfig,
) -> ServingMetrics {
    let lookahead = crate::runner::core_lookahead(sim, cost);
    let mut runner = RecoveryRunner::new(engine, requests, model, cost, config);
    crate::runner::run_core(core, Some(lookahead), sim, &mut runner);
    runner.into_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::{DeviceSpec, EventId, FaultSpec, HostSpec};
    use liger_model::BatchShape;

    /// A round-robin one-kernel engine with honest device-loss support:
    /// abandons in-flight work, bumps its completion epoch so stale records
    /// are ignored, and reshards onto the survivors.
    struct ToyEngine {
        devices: Vec<DeviceId>,
        next: usize,
        epoch: u64,
        inflight: Vec<u64>,
        done: Vec<(u64, SimTime)>,
        pending: Vec<(EventId, u64)>,
    }

    impl ToyEngine {
        fn new(world: usize) -> ToyEngine {
            ToyEngine {
                devices: (0..world).map(DeviceId).collect(),
                next: 0,
                epoch: 0,
                inflight: Vec::new(),
                done: Vec::new(),
                pending: Vec::new(),
            }
        }
    }

    impl InferenceEngine for ToyEngine {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn submit(&mut self, request: Request, sim: &mut Simulation) {
            let d = self.devices[self.next % self.devices.len()];
            self.next += 1;
            let stream = StreamId::new(d, 0);
            sim.launch(
                HostId(d.0),
                stream,
                KernelSpec::compute("job", SimDuration::from_micros(40)).with_tag(request.id),
            );
            let ev = sim.record_event(HostId(d.0), stream);
            sim.notify_on_event(ev, HostId(d.0), (self.epoch << 32) | request.id);
            self.pending.push((ev, request.id));
            self.inflight.push(request.id);
        }
        fn on_wake(&mut self, wake: Wake, _: &mut Simulation) {
            if let Wake::EventFired { token, fired_at, .. } = wake {
                if token >> 32 != self.epoch {
                    return; // stale completion from before a replan
                }
                let id = token & 0xffff_ffff;
                self.inflight.retain(|&x| x != id);
                self.done.push((id, fired_at));
            }
        }
        fn drain_completions(&mut self) -> Vec<(u64, SimTime)> {
            std::mem::take(&mut self.done)
        }
        fn on_device_loss(
            &mut self,
            _dead: DeviceId,
            survivors: &[DeviceId],
            _sim: &mut Simulation,
        ) -> Vec<u64> {
            self.epoch += 1;
            self.devices = survivors.to_vec();
            self.next = 0;
            let mut ids = std::mem::take(&mut self.inflight);
            ids.sort_unstable();
            ids
        }
        fn on_device_rejoin(
            &mut self,
            _rejoined: DeviceId,
            devices: &[DeviceId],
            _sim: &mut Simulation,
        ) -> Vec<u64> {
            self.epoch += 1;
            self.devices = devices.to_vec();
            self.next = 0;
            let mut ids = std::mem::take(&mut self.inflight);
            ids.sort_unstable();
            ids
        }
    }

    fn sim(world: usize, faults: FaultSpec) -> Simulation {
        let mut b = Simulation::builder().devices(DeviceSpec::test_device(), world).faults(faults);
        for _ in 0..world {
            b = b.host(HostSpec::instant());
        }
        b.build().unwrap()
    }

    fn trace(n: usize, gap_us: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    i as u64,
                    BatchShape::prefill(1, 16),
                    SimTime::from_micros(gap_us * i as u64),
                )
            })
            .collect()
    }

    fn run(
        world: usize,
        faults: FaultSpec,
        requests: Vec<Request>,
        config: RecoveryConfig,
    ) -> ServingMetrics {
        let model = ModelConfig::opt_30b();
        let cost = CostModel::v100_node();
        let mut engine = ToyEngine::new(world);
        serve_with_recovery(&mut sim(world, faults), &mut engine, requests, &model, &cost, config)
    }

    #[test]
    fn healthy_run_completes_everything_with_an_empty_timeline() {
        let m = run(3, FaultSpec::new(1), trace(8, 50), RecoveryConfig::default());
        assert_eq!(m.completed(), 8);
        assert_eq!(m.recovery().losses, 0);
        assert!(m.recovery_timeline().is_empty());
        assert_eq!(m.recovery().shed_requests(), 0);
    }

    #[test]
    fn a_mid_trace_loss_recovers_and_completes_every_request() {
        let config = RecoveryConfig::default();
        let death = SimTime::from_micros(500);
        let faults = FaultSpec::new(1).device_down(DeviceId(2), death);
        let m = run(3, faults, trace(24, 60), config);
        assert_eq!(m.recovery().losses, 1, "exactly one confirmed loss");
        assert_eq!(m.completed(), 24, "replicate policy loses nothing");
        assert!(m.recovery().shed.is_empty());
        let labels: Vec<&str> = m.recovery_timeline().iter().map(|&(l, _)| l).collect();
        assert_eq!(labels, vec!["draining", "recovering", "degraded"]);
        assert!(
            m.recovery().detection_latency <= config.health.detection_bound(),
            "detection {} beyond bound {}",
            m.recovery().detection_latency,
            config.health.detection_bound()
        );
        assert!(m.recovery().replan_time > SimDuration::ZERO, "recovery work was priced");
    }

    #[test]
    fn recompute_policy_counts_replayed_tokens() {
        let config =
            RecoveryConfig { policy: RecoveryPolicy::Recompute, ..RecoveryConfig::default() };
        let faults = FaultSpec::new(1).device_down(DeviceId(1), SimTime::from_micros(500));
        let m = run(2, faults, trace(24, 60), config);
        assert_eq!(m.recovery().losses, 1);
        assert!(
            m.recovery().recompute_tokens > 0,
            "in-flight prefills replay their tokens on recovery"
        );
        assert_eq!(m.completed() + m.recovery().shed_requests() as usize, 24);
    }

    #[test]
    fn a_tight_watermark_sheds_oldest_first_with_reasons() {
        let config = RecoveryConfig {
            admission: AdmissionConfig { queue_watermark: 1 },
            ..RecoveryConfig::default()
        };
        // Arrivals keep pouring in during the recovery pause, so the
        // deferred queue overflows the watermark of 1.
        let faults = FaultSpec::new(1).device_down(DeviceId(2), SimTime::from_micros(300));
        let m = run(3, faults, trace(40, 20), config);
        assert_eq!(m.recovery().losses, 1);
        let shed = &m.recovery().shed;
        assert!(!shed.is_empty(), "overflowing backlog must shed");
        assert_eq!(m.completed() + shed.len(), 40, "every request completes or is shed");
        for s in shed {
            assert_eq!(s.reason.name(), "queue-depth");
        }
        // Oldest-first: every shed id is older than every id that still
        // completed after being deferred.
        let max_shed = shed.iter().map(|s| s.id).max().unwrap();
        for w in shed.windows(2) {
            assert!(w[0].id < w[1].id, "shed in arrival order");
        }
        assert!(max_shed < 40);
    }

    #[test]
    fn empty_trace_stops_immediately() {
        let m = run(2, FaultSpec::new(1), Vec::new(), RecoveryConfig::default());
        assert_eq!(m.completed(), 0);
    }

    #[test]
    fn a_windowed_outage_rejoins_and_re_expands_to_normal() {
        let faults = FaultSpec::new(1).device_outage(
            DeviceId(2),
            SimTime::from_micros(500),
            SimTime::from_micros(3000),
        );
        let m = run(3, faults, trace(40, 150), RecoveryConfig::default());
        assert_eq!(m.recovery().losses, 1, "the outage is confirmed as a loss");
        assert_eq!(m.recovery().rejoins, 1, "the rejoin clears quarantine once");
        assert_eq!(m.recovery().re_expansions, 1, "one re-expansion back to full world");
        assert_eq!(m.completed(), 40, "nothing is lost across the outage");
        let labels: Vec<&str> = m.recovery_timeline().iter().map(|&(l, _)| l).collect();
        assert_eq!(labels, vec!["draining", "recovering", "degraded", "expanding", "normal"]);
    }

    #[test]
    fn re_expansion_readmits_queue_depth_shed_requests() {
        let config = RecoveryConfig {
            admission: AdmissionConfig { queue_watermark: 1 },
            ..RecoveryConfig::default()
        };
        let faults = FaultSpec::new(1).device_outage(
            DeviceId(2),
            SimTime::from_micros(300),
            SimTime::from_micros(3000),
        );
        let m = run(3, faults, trace(60, 100), config);
        assert_eq!(m.recovery().re_expansions, 1);
        // The degraded window shed for queue depth, but the rejoin brought
        // the capacity back: every shed request was re-admitted and ran.
        assert_eq!(m.recovery().shed_requests(), 0, "queue-depth sheds were re-admitted");
        assert_eq!(m.completed(), 60);
    }

    #[test]
    fn a_flap_shorter_than_quarantine_is_damped() {
        // Up for only 200us between two outages: one healthy tick, then
        // silence again — never enough for the 3-tick quarantine.
        let faults = FaultSpec::new(1)
            .device_outage(DeviceId(1), SimTime::from_micros(500), SimTime::from_micros(1700))
            .device_down(DeviceId(1), SimTime::from_micros(1900));
        let m = run(2, faults, trace(30, 100), RecoveryConfig::default());
        assert_eq!(m.recovery().losses, 1, "the flap never cleared quarantine");
        assert_eq!(m.recovery().rejoins, 0);
        assert_eq!(m.recovery().re_expansions, 0);
        assert!(m.recovery().flaps >= 1, "the partial recovery is counted as a flap");
        assert_eq!(m.completed() + m.recovery().shed_requests() as usize, 30);
    }

    #[test]
    fn a_second_loss_during_drain_queues_and_both_replans_run() {
        // Device 2 dies at 500us; device 1 dies at 700us, confirmed while
        // the first loss is still draining/recovering. The queued loss must
        // replay afterwards without hanging or double-handling.
        let faults = FaultSpec::new(1)
            .device_down(DeviceId(2), SimTime::from_micros(500))
            .device_down(DeviceId(1), SimTime::from_micros(700));
        let m = run(3, faults, trace(30, 100), RecoveryConfig::default());
        assert_eq!(m.recovery().losses, 2, "both losses are confirmed");
        let labels: Vec<&str> = m.recovery_timeline().iter().map(|&(l, _)| l).collect();
        assert_eq!(
            labels.iter().filter(|&&l| l == "draining").count(),
            2,
            "each loss runs its own drain: {labels:?}"
        );
        assert_eq!(m.completed() + m.recovery().shed_requests() as usize, 30);
    }
}
