//! # liger-serving
//!
//! The serving layer of the Liger reproduction: batched requests, the
//! paper's workload generators (random prefill traces with sequence lengths
//! 16–128 and decode traces at batch 32), constant/Poisson arrival
//! processes, the latency/throughput metrics of §4.1, and an
//! engine-agnostic runner that serves a trace through any
//! [`InferenceEngine`] on the simulator.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod analysis;
pub mod arrival;
pub mod batcher;
pub mod cluster;
pub mod disagg;
pub mod engine;
pub mod generation;
pub mod health;
pub mod metrics;
pub mod prefix;
pub mod recovery;
pub mod request;
pub mod runner;
pub mod scheduler;

pub use admission::{AdmissionConfig, AdmissionController, ShedReason, ShedRecord};
pub use analysis::{dg1_wait, mg1_latency, mg1_wait, service_moments, utilization};
pub use arrival::{ArrivalProcess, DecodeTraceConfig, LognormalTraceConfig, PrefillTraceConfig};
pub use batcher::{
    serve_queries, serve_queries_on, serve_queries_with_retry, serve_queries_with_retry_on,
    Batcher, BatcherConfig, PackedBatch, Query, QueryRunner,
};
pub use cluster::{
    route_jobs, serve_cluster, serve_cluster_on, ClusterConfig, ClusterReport, ReplicaSlot,
    RouterPolicy,
};
pub use disagg::{serve_disaggregated, serve_disaggregated_on, DisaggConfig, DisaggReport};
pub use engine::{InferenceEngine, RUNNER_TOKEN_BASE};
pub use generation::{
    serve_generations, serve_generations_on, GenerationJob, GenerationMetrics, GenerationResult,
    GenerationRunner,
};
pub use health::{HealthConfig, HealthEvents, HealthMonitor};
pub use metrics::{
    BatchingCounters, FaultCounters, MetricsSections, PrefixCounters, RecoveryCounters,
    ServingMetrics, SpecCounters,
};
pub use prefix::{block_digests, output_token, prompt_token, PrefixTag, SpecDecodeConfig};
pub use recovery::{
    serve_with_recovery, serve_with_recovery_on, RecoveryConfig, RecoveryPhase, RecoveryRunner,
};
pub use request::{Completion, Request};
pub use runner::{
    core_lookahead, serve, serve_on, serve_with_policy, serve_with_policy_on, RetryPolicy,
    ServingRunner,
};
pub use scheduler::{
    serve_continuous, serve_continuous_on, ContinuousReport, ContinuousScheduler, SchedulerConfig,
};

pub use liger_kvcache::{BlockPool, BlockPoolConfig, OutOfBlocks};
