//! Serving metrics: the paper's latency and throughput definitions (§4.1).
//!
//! * **Latency** of a job = completion − arrival = pending time + CUDA
//!   execution time.
//! * **Throughput** = jobs completed per second of serving time.

use liger_gpu_sim::{SimDuration, SimTime};

use crate::admission::ShedRecord;
use crate::request::Completion;

/// Degraded-mode counters accumulated while serving under an active fault
/// schedule (all zero on healthy runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Requests resubmitted after a failed attempt (runner retry path).
    pub retries: u64,
    /// Requests whose latency crossed the policy timeout (accounting only;
    /// the attempt is not cancelled).
    pub timeouts: u64,
    /// Kernel failures observed ([`Wake::KernelFailed`] notifications).
    ///
    /// [`Wake::KernelFailed`]: liger_gpu_sim::Wake::KernelFailed
    pub kernel_failures: u64,
    /// Batches put back on the engine after a member kernel failed
    /// (batcher requeue path).
    pub requeues: u64,
    /// Scheduling rounds planned while a straggler window was active.
    pub degraded_rounds: u64,
}

/// Elastic-recovery counters accumulated by the recovery runner while
/// serving through a permanent device loss (all empty on healthy runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Confirmed permanent device losses.
    pub losses: u64,
    /// Watchdog confirmation delay of the most recent loss: confirmation
    /// instant minus the ground-truth death instant the simulator reported.
    pub detection_latency: SimDuration,
    /// Total time spent draining in-flight survivor work (all losses).
    pub drain_time: SimDuration,
    /// Total time spent replanning and recovering KV state (all losses).
    pub replan_time: SimDuration,
    /// Prefill tokens replayed to rebuild lost KV cache (recompute policy).
    pub recompute_tokens: u64,
    /// Every shed request, with its instant and reason.
    pub shed: Vec<ShedRecord>,
    /// Phase-transition log: `(phase label, instant)` per transition.
    pub timeline: Vec<(&'static str, SimTime)>,
    /// Partial recoveries the watchdog damped: a suspect device answered
    /// probes again but fell silent before clearing quarantine.
    pub flaps: u64,
    /// Watchdog-confirmed rejoins (full quarantine of healthy probes).
    pub rejoins: u64,
    /// Completed re-expansions back onto a rejoined device.
    pub re_expansions: u64,
}

impl RecoveryCounters {
    /// Number of shed requests.
    pub fn shed_requests(&self) -> u64 {
        self.shed.len() as u64
    }
}

/// Batching-efficiency counters: the padding waste the static batcher pays
/// (computed per-batch in `batcher.rs` but previously dropped) and the
/// paged-pool pressure events of the continuous scheduler. All zero on runs
/// that never batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchingCounters {
    /// Batches (or decode steps) dispatched.
    pub batches: u64,
    /// Tokens the dispatched shapes actually processed, padding included.
    pub padded_tokens: u64,
    /// Tokens the batched sequences really needed.
    pub real_tokens: u64,
    /// Sum of running-set occupancy samples (running / max_running), one
    /// per decode step; divide by `occupancy_samples` for the average.
    pub occupancy_sum: f64,
    /// Number of occupancy samples taken.
    pub occupancy_samples: u64,
    /// Sequences preempted (blocks evicted, prefill to be recomputed).
    pub preemptions: u64,
    /// KV blocks freed by preemption.
    pub evicted_blocks: u64,
    /// Typed `OutOfBlocks` failures the scheduler absorbed.
    pub out_of_blocks: u64,
}

impl BatchingCounters {
    /// Aggregate padding-waste ratio: the fraction of processed tokens that
    /// were padding, `(padded − real) / padded`. Zero when nothing batched.
    pub fn padding_waste(&self) -> f64 {
        if self.padded_tokens == 0 {
            return 0.0;
        }
        (self.padded_tokens - self.real_tokens) as f64 / self.padded_tokens as f64
    }

    /// Average running-set occupancy across decode steps (zero when no
    /// samples were taken).
    pub fn avg_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            return 0.0;
        }
        self.occupancy_sum / self.occupancy_samples as f64
    }

    /// Records one dispatched batch shape: `padded` tokens processed of
    /// which `real` were useful.
    pub fn record_batch(&mut self, padded: u64, real: u64) {
        debug_assert!(real <= padded, "real tokens cannot exceed the padded shape");
        self.batches += 1;
        self.padded_tokens += padded;
        self.real_tokens += real;
    }

    /// Records one running-set occupancy sample.
    pub fn record_occupancy(&mut self, occupancy: f64) {
        self.occupancy_sum += occupancy;
        self.occupancy_samples += 1;
    }
}

/// Cross-request prefix-cache counters. All zero on runs with the cache
/// off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCounters {
    /// Admissions that consulted the prefix index.
    pub lookups: u64,
    /// Admissions that adopted at least one cached block.
    pub hits: u64,
    /// Prompt tokens served from cached blocks instead of prefill.
    pub cached_tokens: u64,
    /// Prompt tokens that still had to be prefilled.
    pub novel_tokens: u64,
    /// Blocks newly published into the index.
    pub published_blocks: u64,
    /// Cold cached blocks evicted under watermark pressure.
    pub evicted_blocks: u64,
    /// Cached blocks dropped by the end-of-serve / device-loss flush.
    pub flushed_blocks: u64,
}

impl PrefixCounters {
    /// Fraction of all prompt tokens the cache served, `cached / (cached +
    /// novel)`. Zero before any admission.
    pub fn cached_fraction(&self) -> f64 {
        let total = self.cached_tokens + self.novel_tokens;
        if total == 0 {
            return 0.0;
        }
        self.cached_tokens as f64 / total as f64
    }
}

/// Speculative-decoding counters. All zero on runs with speculation off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecCounters {
    /// Draft-then-verify rounds run.
    pub rounds: u64,
    /// Tokens drafted ahead across all rounds.
    pub drafted: u64,
    /// Drafted tokens the verification pass accepted.
    pub accepted: u64,
    /// Drafted tokens rejected (their KV blocks rolled back).
    pub rejected: u64,
    /// KV blocks dropped from tables by rollback truncation.
    pub rollback_blocks: u64,
}

impl SpecCounters {
    /// Fraction of drafted tokens accepted. Zero before any round.
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted == 0 {
            return 0.0;
        }
        self.accepted as f64 / self.drafted as f64
    }
}

/// Aggregated results of one serving run.
#[derive(Debug, Clone, Default)]
pub struct ServingMetrics {
    completions: Vec<Completion>,
    faults: FaultCounters,
    recovery: RecoveryCounters,
    batching: BatchingCounters,
    prefix: PrefixCounters,
    spec: SpecCounters,
}

impl ServingMetrics {
    /// Empty metrics.
    pub fn new() -> ServingMetrics {
        ServingMetrics::default()
    }

    /// Records one completion.
    pub fn record(&mut self, c: Completion) {
        self.completions.push(c);
    }

    /// Number of completed jobs.
    pub fn completed(&self) -> usize {
        self.completions.len()
    }

    /// All completions (arrival order not guaranteed).
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Mean end-to-end latency.
    pub fn avg_latency(&self) -> SimDuration {
        if self.completions.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.completions.iter().map(|c| c.latency().as_nanos() as u128).sum();
        SimDuration::from_nanos((total / self.completions.len() as u128) as u64)
    }

    /// Latency percentile (`p` in `[0, 100]`), nearest-rank.
    pub fn latency_percentile(&self, p: f64) -> SimDuration {
        if self.completions.is_empty() {
            return SimDuration::ZERO;
        }
        let mut lats: Vec<SimDuration> = self.completions.iter().map(|c| c.latency()).collect();
        lats.sort_unstable();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * lats.len() as f64).ceil() as usize).clamp(1, lats.len());
        lats[rank - 1]
    }

    /// Throughput in jobs/second: completed jobs over the span from the
    /// first arrival to the last completion.
    pub fn throughput(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        let first = self.completions.iter().map(|c| c.arrival).min().unwrap_or(SimTime::ZERO);
        let last = self.completions.iter().map(|c| c.finished).max().unwrap_or(SimTime::ZERO);
        let span = last.saturating_since(first).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.completions.len() as f64 / span
    }

    /// Mean pending-free execution estimate is not recoverable from
    /// completions alone; instead expose max latency for saturation checks.
    pub fn max_latency(&self) -> SimDuration {
        self.completions.iter().map(|c| c.latency()).max().unwrap_or(SimDuration::ZERO)
    }

    /// SLO attainment: fraction of jobs whose end-to-end latency met
    /// `deadline` (the AlpaServe-style metric for latency-critical serving).
    pub fn slo_attainment(&self, deadline: SimDuration) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        let met = self.completions.iter().filter(|c| c.latency() <= deadline).count();
        met as f64 / self.completions.len() as f64
    }

    /// Goodput: jobs per second that met `deadline` (throughput × SLO
    /// attainment).
    pub fn goodput(&self, deadline: SimDuration) -> f64 {
        self.throughput() * self.slo_attainment(deadline)
    }

    /// Number of jobs that missed `deadline` (complement of
    /// [`slo_attainment`](Self::slo_attainment), as a count).
    pub fn slo_violations(&self, deadline: SimDuration) -> usize {
        self.completions.iter().filter(|c| c.latency() > deadline).count()
    }

    /// Degraded-mode counters (all zero on healthy runs).
    pub fn faults(&self) -> &FaultCounters {
        &self.faults
    }

    /// Mutable access for the serving loops accumulating fault reactions.
    pub fn faults_mut(&mut self) -> &mut FaultCounters {
        &mut self.faults
    }

    /// Elastic-recovery counters (all empty on healthy runs).
    pub fn recovery(&self) -> &RecoveryCounters {
        &self.recovery
    }

    /// Mutable access for the recovery runner.
    pub fn recovery_mut(&mut self) -> &mut RecoveryCounters {
        &mut self.recovery
    }

    /// The recovery phase-transition log: `(phase label, instant)` pairs in
    /// chronological order, empty when no device was ever lost.
    pub fn recovery_timeline(&self) -> &[(&'static str, SimTime)] {
        &self.recovery.timeline
    }

    /// Batching-efficiency counters (all zero on runs that never batch).
    pub fn batching(&self) -> &BatchingCounters {
        &self.batching
    }

    /// Mutable access for the batcher and the continuous scheduler.
    pub fn batching_mut(&mut self) -> &mut BatchingCounters {
        &mut self.batching
    }

    /// Prefix-cache counters (all zero with the cache off).
    pub fn prefix(&self) -> &PrefixCounters {
        &self.prefix
    }

    /// Mutable access for the continuous scheduler.
    pub fn prefix_mut(&mut self) -> &mut PrefixCounters {
        &mut self.prefix
    }

    /// Speculative-decoding counters (all zero with speculation off).
    pub fn spec(&self) -> &SpecCounters {
        &self.spec
    }

    /// Mutable access for the continuous scheduler.
    pub fn spec_mut(&mut self) -> &mut SpecCounters {
        &mut self.spec
    }

    /// Folds another run's metrics into this one — the cluster tier's
    /// aggregate view over per-replica metrics. Completions concatenate
    /// (remap ids before merging if the runs numbered jobs independently);
    /// counters add; the detection latency keeps the worst observed.
    pub fn merge(&mut self, other: &ServingMetrics) {
        self.completions.extend_from_slice(&other.completions);
        self.faults.merge(&other.faults);
        self.recovery.merge(&other.recovery);
        self.batching.merge(&other.batching);
        self.prefix.merge(&other.prefix);
        self.spec.merge(&other.spec);
    }
}

impl FaultCounters {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, o: &FaultCounters) {
        self.retries += o.retries;
        self.timeouts += o.timeouts;
        self.kernel_failures += o.kernel_failures;
        self.requeues += o.requeues;
        self.degraded_rounds += o.degraded_rounds;
    }
}

impl RecoveryCounters {
    /// Adds another run's counters into this one. Durations sum, the
    /// detection latency keeps the worst observed, and the shed/timeline
    /// logs concatenate.
    pub fn merge(&mut self, o: &RecoveryCounters) {
        self.losses += o.losses;
        self.detection_latency = self.detection_latency.max(o.detection_latency);
        self.drain_time += o.drain_time;
        self.replan_time += o.replan_time;
        self.recompute_tokens += o.recompute_tokens;
        self.shed.extend_from_slice(&o.shed);
        self.timeline.extend_from_slice(&o.timeline);
        self.flaps += o.flaps;
        self.rejoins += o.rejoins;
        self.re_expansions += o.re_expansions;
    }
}

impl BatchingCounters {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, o: &BatchingCounters) {
        self.batches += o.batches;
        self.padded_tokens += o.padded_tokens;
        self.real_tokens += o.real_tokens;
        self.occupancy_sum += o.occupancy_sum;
        self.occupancy_samples += o.occupancy_samples;
        self.preemptions += o.preemptions;
        self.evicted_blocks += o.evicted_blocks;
        self.out_of_blocks += o.out_of_blocks;
    }
}

impl PrefixCounters {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, o: &PrefixCounters) {
        self.lookups += o.lookups;
        self.hits += o.hits;
        self.cached_tokens += o.cached_tokens;
        self.novel_tokens += o.novel_tokens;
        self.published_blocks += o.published_blocks;
        self.evicted_blocks += o.evicted_blocks;
        self.flushed_blocks += o.flushed_blocks;
    }
}

impl SpecCounters {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, o: &SpecCounters) {
        self.rounds += o.rounds;
        self.drafted += o.drafted;
        self.accepted += o.accepted;
        self.rejected += o.rejected;
        self.rollback_blocks += o.rollback_blocks;
    }
}

/// Labeled [`ServingMetrics`] sections — an aggregate plus per-replica or
/// per-node views — rendered through the single `ServingMetrics` ToJson
/// path so every section carries the identical field set. The cluster and
/// disaggregated reports emit their JSON through this one helper instead of
/// copy-pasting counter blocks per section.
#[derive(Default)]
pub struct MetricsSections<'a> {
    sections: Vec<(String, &'a ServingMetrics)>,
}

impl<'a> MetricsSections<'a> {
    /// An empty section list.
    pub fn new() -> Self {
        MetricsSections { sections: Vec::new() }
    }

    /// Appends a labeled section; sections render in push order.
    pub fn push(&mut self, label: impl Into<String>, metrics: &'a ServingMetrics) -> &mut Self {
        self.sections.push((label.into(), metrics));
        self
    }
}

impl liger_gpu_sim::ToJson for MetricsSections<'_> {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        for (label, metrics) in &self.sections {
            obj.field(label, *metrics);
        }
        obj.end();
    }
}

/// Metrics serialize as a summary object (latencies in nanoseconds,
/// throughput in jobs/s) — the shape the results tooling consumes.
impl liger_gpu_sim::ToJson for ServingMetrics {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("completed", &self.completed())
            .field("avg_latency_ns", &self.avg_latency())
            .field("p50_latency_ns", &self.latency_percentile(50.0))
            .field("p99_latency_ns", &self.latency_percentile(99.0))
            .field("max_latency_ns", &self.max_latency())
            .field("throughput", &self.throughput())
            .field("faults", &self.faults)
            .field("recovery", &self.recovery)
            .field("batching", &self.batching)
            .field("prefix", &self.prefix)
            .field("spec", &self.spec);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for BatchingCounters {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("batches", &self.batches)
            .field("padded_tokens", &self.padded_tokens)
            .field("real_tokens", &self.real_tokens)
            .field("padding_waste", &self.padding_waste())
            .field("avg_occupancy", &self.avg_occupancy())
            .field("preemptions", &self.preemptions)
            .field("evicted_blocks", &self.evicted_blocks)
            .field("out_of_blocks", &self.out_of_blocks);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for PrefixCounters {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("lookups", &self.lookups)
            .field("hits", &self.hits)
            .field("cached_tokens", &self.cached_tokens)
            .field("novel_tokens", &self.novel_tokens)
            .field("cached_fraction", &self.cached_fraction())
            .field("published_blocks", &self.published_blocks)
            .field("evicted_blocks", &self.evicted_blocks)
            .field("flushed_blocks", &self.flushed_blocks);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for SpecCounters {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("rounds", &self.rounds)
            .field("drafted", &self.drafted)
            .field("accepted", &self.accepted)
            .field("rejected", &self.rejected)
            .field("acceptance_rate", &self.acceptance_rate())
            .field("rollback_blocks", &self.rollback_blocks);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for RecoveryCounters {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("losses", &self.losses)
            .field("detection_latency_ns", &self.detection_latency)
            .field("drain_time_ns", &self.drain_time)
            .field("replan_time_ns", &self.replan_time)
            .field("recompute_tokens", &self.recompute_tokens)
            .field("shed_requests", &self.shed_requests())
            .field("flaps", &self.flaps)
            .field("rejoins", &self.rejoins)
            .field("re_expansions", &self.re_expansions);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for FaultCounters {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("retries", &self.retries)
            .field("timeouts", &self.timeouts)
            .field("kernel_failures", &self.kernel_failures)
            .field("requeues", &self.requeues)
            .field("degraded_rounds", &self.degraded_rounds);
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64, arrive_ms: u64, finish_ms: u64) -> Completion {
        Completion {
            id,
            arrival: SimTime::from_millis(arrive_ms),
            finished: SimTime::from_millis(finish_ms),
        }
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServingMetrics::new();
        assert_eq!(m.completed(), 0);
        assert_eq!(m.avg_latency(), SimDuration::ZERO);
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.latency_percentile(99.0), SimDuration::ZERO);
        assert_eq!(m.max_latency(), SimDuration::ZERO);
    }

    #[test]
    fn average_latency() {
        let mut m = ServingMetrics::new();
        m.record(c(0, 0, 10)); // 10ms
        m.record(c(1, 5, 35)); // 30ms
        assert_eq!(m.avg_latency(), SimDuration::from_millis(20));
        assert_eq!(m.max_latency(), SimDuration::from_millis(30));
    }

    #[test]
    fn throughput_spans_first_arrival_to_last_finish() {
        let mut m = ServingMetrics::new();
        m.record(c(0, 0, 100));
        m.record(c(1, 50, 200));
        m.record(c(2, 100, 300));
        m.record(c(3, 150, 400));
        // 4 jobs over 400ms = 10 jobs/s.
        assert!((m.throughput() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut m = ServingMetrics::new();
        for i in 1..=100u64 {
            m.record(c(i, 0, i)); // latencies 1..=100 ms
        }
        assert_eq!(m.latency_percentile(50.0), SimDuration::from_millis(50));
        assert_eq!(m.latency_percentile(99.0), SimDuration::from_millis(99));
        assert_eq!(m.latency_percentile(100.0), SimDuration::from_millis(100));
        assert_eq!(m.latency_percentile(0.0), SimDuration::from_millis(1));
    }

    #[test]
    fn slo_attainment_and_goodput() {
        let mut m = ServingMetrics::new();
        m.record(c(0, 0, 10)); // 10ms
        m.record(c(1, 0, 20)); // 20ms
        m.record(c(2, 0, 100)); // 100ms
        m.record(c(3, 0, 200)); // 200ms -> horizon 200ms, thr = 20/s
        assert!((m.slo_attainment(SimDuration::from_millis(20)) - 0.5).abs() < 1e-12);
        assert!((m.slo_attainment(SimDuration::from_millis(1000)) - 1.0).abs() < 1e-12);
        assert_eq!(m.slo_attainment(SimDuration::ZERO), 0.0);
        assert!((m.goodput(SimDuration::from_millis(20)) - 10.0).abs() < 1e-9);
        assert_eq!(ServingMetrics::new().slo_attainment(SimDuration::MAX), 0.0);
    }

    #[test]
    fn slo_violations_complement_attainment() {
        let mut m = ServingMetrics::new();
        m.record(c(0, 0, 10));
        m.record(c(1, 0, 20));
        m.record(c(2, 0, 100));
        assert_eq!(m.slo_violations(SimDuration::from_millis(20)), 1);
        assert_eq!(m.slo_violations(SimDuration::ZERO), 3);
        assert_eq!(m.slo_violations(SimDuration::MAX), 0);
    }

    #[test]
    fn fault_counters_default_zero_and_accumulate() {
        let mut m = ServingMetrics::new();
        assert_eq!(*m.faults(), FaultCounters::default());
        m.faults_mut().retries += 2;
        m.faults_mut().kernel_failures += 1;
        assert_eq!(m.faults().retries, 2);
        assert_eq!(m.faults().kernel_failures, 1);
        use liger_gpu_sim::ToJson;
        assert!(m.to_json().contains("\"retries\":2"));
    }

    #[test]
    fn recovery_counters_default_empty_and_serialize() {
        let mut m = ServingMetrics::new();
        assert_eq!(*m.recovery(), RecoveryCounters::default());
        assert!(m.recovery_timeline().is_empty());
        m.recovery_mut().losses = 1;
        m.recovery_mut().detection_latency = SimDuration::from_micros(400);
        m.recovery_mut().shed.push(ShedRecord {
            id: 9,
            at: SimTime::from_micros(5),
            reason: crate::admission::ShedReason::QueueDepth,
        });
        m.recovery_mut().timeline.push(("draining", SimTime::from_micros(3)));
        m.recovery_mut().flaps = 3;
        m.recovery_mut().rejoins = 2;
        m.recovery_mut().re_expansions = 1;
        assert_eq!(m.recovery().shed_requests(), 1);
        assert_eq!(m.recovery_timeline(), &[("draining", SimTime::from_micros(3))]);
        use liger_gpu_sim::ToJson;
        let json = m.to_json();
        assert!(json.contains("\"losses\":1"));
        assert!(json.contains("\"shed_requests\":1"));
        assert!(json.contains("\"flaps\":3"));
        assert!(json.contains("\"rejoins\":2"));
        assert!(json.contains("\"re_expansions\":1"));
    }

    #[test]
    fn batching_counters_aggregate_and_serialize() {
        let mut m = ServingMetrics::new();
        assert_eq!(*m.batching(), BatchingCounters::default());
        assert_eq!(m.batching().padding_waste(), 0.0);
        assert_eq!(m.batching().avg_occupancy(), 0.0);
        m.batching_mut().record_batch(100, 75);
        m.batching_mut().record_batch(100, 25);
        m.batching_mut().record_occupancy(0.5);
        m.batching_mut().record_occupancy(1.0);
        m.batching_mut().preemptions += 1;
        m.batching_mut().evicted_blocks += 4;
        m.batching_mut().out_of_blocks += 2;
        assert_eq!(m.batching().batches, 2);
        assert!((m.batching().padding_waste() - 0.5).abs() < 1e-12);
        assert!((m.batching().avg_occupancy() - 0.75).abs() < 1e-12);
        use liger_gpu_sim::ToJson;
        let json = m.to_json();
        assert!(json.contains("\"padding_waste\":0.5"));
        assert!(json.contains("\"preemptions\":1"));
        assert!(json.contains("\"out_of_blocks\":2"));
    }

    #[test]
    fn prefix_and_spec_counters_aggregate_and_serialize() {
        let mut m = ServingMetrics::new();
        assert_eq!(*m.prefix(), PrefixCounters::default());
        assert_eq!(m.prefix().cached_fraction(), 0.0);
        assert_eq!(m.spec().acceptance_rate(), 0.0);
        m.prefix_mut().lookups += 2;
        m.prefix_mut().hits += 1;
        m.prefix_mut().cached_tokens += 48;
        m.prefix_mut().novel_tokens += 16;
        m.prefix_mut().published_blocks += 3;
        m.spec_mut().rounds += 1;
        m.spec_mut().drafted += 4;
        m.spec_mut().accepted += 3;
        m.spec_mut().rejected += 1;
        m.spec_mut().rollback_blocks += 1;
        assert!((m.prefix().cached_fraction() - 0.75).abs() < 1e-12);
        assert!((m.spec().acceptance_rate() - 0.75).abs() < 1e-12);
        use liger_gpu_sim::ToJson;
        let json = m.to_json();
        assert!(json.contains("\"cached_tokens\":48"));
        assert!(json.contains("\"published_blocks\":3"));
        assert!(json.contains("\"rollback_blocks\":1"));
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let mut m = ServingMetrics::new();
        m.record(c(0, 0, 7));
        assert_eq!(m.latency_percentile(-5.0), SimDuration::from_millis(7));
        assert_eq!(m.latency_percentile(200.0), SimDuration::from_millis(7));
    }
}
