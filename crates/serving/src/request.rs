//! Requests: the unit of serving.
//!
//! Following the paper's evaluation setup (§4.1), the serving system packs
//! user queries into fixed-size batches before handing them to the runtime;
//! each [`Request`] here is one such batched job. Latency is measured from
//! arrival to completion and therefore includes pending time; throughput is
//! jobs completed per second.

use liger_gpu_sim::SimTime;
use liger_model::BatchShape;

/// One batched inference job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Monotonically increasing id (also the arrival order).
    pub id: u64,
    /// Batch/sequence shape of the job.
    pub shape: BatchShape,
    /// Arrival instant.
    pub arrival: SimTime,
}

impl Request {
    /// Convenience constructor.
    pub fn new(id: u64, shape: BatchShape, arrival: SimTime) -> Request {
        Request { id, shape, arrival }
    }
}

/// A completed job: pairs the request with its completion instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// When it arrived.
    pub arrival: SimTime,
    /// When its last kernel finished on the GPUs.
    pub finished: SimTime,
}

impl Completion {
    /// End-to-end latency (pending + execution), the paper's latency metric.
    pub fn latency(&self) -> liger_gpu_sim::SimDuration {
        self.finished.saturating_since(self.arrival)
    }
}

impl liger_gpu_sim::ToJson for Request {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("id", &self.id).field("shape", &self.shape).field("arrival", &self.arrival);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for Completion {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("id", &self.id)
            .field("arrival", &self.arrival)
            .field("finished", &self.finished)
            .field("latency", &self.latency());
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger_gpu_sim::SimDuration;

    #[test]
    fn latency_includes_pending_time() {
        let c = Completion {
            id: 0,
            arrival: SimTime::from_micros(100),
            finished: SimTime::from_micros(350),
        };
        assert_eq!(c.latency(), SimDuration::from_micros(250));
    }

    #[test]
    fn request_construction() {
        let r = Request::new(7, BatchShape::prefill(2, 64), SimTime::from_millis(1));
        assert_eq!(r.id, 7);
        assert_eq!(r.shape.batch, 2);
    }
}
