//! Analytic queueing cross-checks.
//!
//! The Intra-Op baseline is *exactly* a FIFO single-server queue: batches
//! are served one at a time and the service time of a batch is its
//! iteration time (a deterministic function of its sequence length). That
//! makes classic queueing theory an independent oracle for the whole
//! simulation stack: under Poisson arrivals, the mean wait must follow the
//! Pollaczek–Khinchine formula
//!
//! ```text
//! W_q = λ·E[S²] / (2·(1 − ρ)),   ρ = λ·E[S]
//! ```
//!
//! and under constant (deterministic) arrivals below capacity the wait term
//! all but vanishes. The integration test `tests/queueing_validation.rs`
//! holds the simulator to these predictions.

use liger_model::{assemble, BatchShape, CostModel, ModelConfig};

/// First and second moments of the per-batch service time (seconds), over
/// a uniform sequence-length distribution `seq_min..=seq_max` — the
/// workload of the paper's §4.2 traces.
pub fn service_moments(
    cm: &CostModel,
    cfg: &ModelConfig,
    batch: u32,
    seq_min: u32,
    seq_max: u32,
    world: u32,
) -> (f64, f64) {
    assert!(seq_min >= 1 && seq_min <= seq_max, "bad sequence range");
    let mut mean = 0.0;
    let mut second = 0.0;
    let count = (seq_max - seq_min + 1) as f64;
    for seq in seq_min..=seq_max {
        let ops = assemble(cm, cfg, BatchShape::prefill(batch, seq), world);
        let s: f64 = ops.iter().map(|o| o.duration.as_secs_f64()).sum();
        mean += s / count;
        second += s * s / count;
    }
    (mean, second)
}

/// Server utilization `ρ = λ·E[S]`.
pub fn utilization(lambda: f64, mean_service: f64) -> f64 {
    lambda * mean_service
}

/// Mean queueing delay (seconds) of an M/G/1 queue (Pollaczek–Khinchine).
/// Returns `f64::INFINITY` at or beyond saturation.
pub fn mg1_wait(lambda: f64, mean_service: f64, second_moment: f64) -> f64 {
    let rho = utilization(lambda, mean_service);
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    lambda * second_moment / (2.0 * (1.0 - rho))
}

/// Mean end-to-end latency (seconds) of an M/G/1 queue: wait + service.
pub fn mg1_latency(lambda: f64, mean_service: f64, second_moment: f64) -> f64 {
    mg1_wait(lambda, mean_service, second_moment) + mean_service
}

/// Mean queueing delay (seconds) of a D/G/1 queue approximated by the
/// Krämer–Langenbach-Belz heuristic: constant arrivals remove the arrival
/// variability, leaving only the service-time variance term.
pub fn dg1_wait(lambda: f64, mean_service: f64, second_moment: f64) -> f64 {
    let rho = utilization(lambda, mean_service);
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    let var = (second_moment - mean_service * mean_service).max(0.0);
    let cs2 = var / (mean_service * mean_service);
    // G/G/1 Kingman with ca² = 0, scaled by the KLB correction for
    // deterministic arrivals.
    let kingman = rho / (1.0 - rho) * (cs2 / 2.0) * mean_service;
    let g = (-2.0 * (1.0 - rho) * (1.0 - cs2.min(1.0)).powi(2)
        / (3.0 * rho * (cs2 + 1.0).max(1e-9)))
    .exp();
    kingman * g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_are_positive_and_ordered() {
        let cm = CostModel::v100_node();
        let cfg = ModelConfig::tiny_test();
        let (mean, second) = service_moments(&cm, &cfg, 2, 16, 128, 2);
        assert!(mean > 0.0);
        assert!(second >= mean * mean, "E[S^2] >= E[S]^2 always");
        // A fixed-length workload has zero variance.
        let (m2, s2) = service_moments(&cm, &cfg, 2, 64, 64, 2);
        assert!((s2 - m2 * m2).abs() / (m2 * m2) < 1e-12);
    }

    #[test]
    fn longer_sequences_cost_more() {
        let cm = CostModel::v100_node();
        let cfg = ModelConfig::tiny_test();
        let (short, _) = service_moments(&cm, &cfg, 2, 16, 16, 2);
        let (long, _) = service_moments(&cm, &cfg, 2, 128, 128, 2);
        assert!(long > short);
    }

    #[test]
    fn pk_formula_basics() {
        // Deterministic service S=1s, lambda=0.5: rho=0.5,
        // Wq = 0.5*1/(2*0.5) = 0.5s.
        let w = mg1_wait(0.5, 1.0, 1.0);
        assert!((w - 0.5).abs() < 1e-12);
        assert_eq!(mg1_wait(1.0, 1.0, 1.0), f64::INFINITY);
        assert_eq!(mg1_wait(2.0, 1.0, 1.0), f64::INFINITY);
        assert!((mg1_latency(0.5, 1.0, 1.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn dg1_wait_vanishes_for_deterministic_service() {
        // Constant arrivals + constant service: no queueing below capacity.
        assert!(dg1_wait(0.9, 1.0, 1.0) < 1e-9);
        assert_eq!(dg1_wait(1.1, 1.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn poisson_waits_dominate_constant_arrival_waits() {
        // Same service distribution: removing arrival variability can only
        // shrink the queue.
        let (mean, second) = (0.04f64, 0.0018f64);
        for lambda in [5.0, 10.0, 20.0] {
            if utilization(lambda, mean) < 1.0 {
                assert!(dg1_wait(lambda, mean, second) <= mg1_wait(lambda, mean, second) + 1e-12);
            }
        }
    }
}
