//! The engine abstraction every parallelism strategy implements.
//!
//! An [`InferenceEngine`] runs *inside* a simulation, driven by the
//! [`ServingRunner`](crate::runner::ServingRunner): the runner delivers
//! arriving requests and routes simulator wakes; the engine launches kernels
//! and reports completed requests.

use liger_gpu_sim::{DeviceId, SimTime, Simulation, Wake};

use crate::request::Request;

/// Wake-token namespace split between the runner and engines: tokens with
/// the top bit set belong to the runner (arrival timers); everything below
/// is engine-private.
pub const RUNNER_TOKEN_BASE: u64 = 1 << 63;

/// A distributed inference engine (Intra-Op, Inter-Op, Inter-Th, or Liger).
pub trait InferenceEngine {
    /// Engine name for reports (e.g. `"Liger"`, `"Intra-Op"`).
    fn name(&self) -> &'static str;

    /// A new request arrived (called at its arrival instant, inside the
    /// simulation). The engine queues or launches it.
    fn submit(&mut self, request: Request, sim: &mut Simulation);

    /// A simulator wake addressed to the engine (token below
    /// [`RUNNER_TOKEN_BASE`]).
    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation);

    /// Requests that finished since the last drain: `(request id, GPU-side
    /// completion instant)`.
    fn drain_completions(&mut self) -> Vec<(u64, SimTime)>;

    /// A device was confirmed permanently lost (by the health watchdog, not
    /// an oracle). The engine must stop tracking every in-flight and queued
    /// request, rebuild its placement over `survivors`, and return the ids
    /// of the requests it abandoned — the caller resubmits them (subject to
    /// admission control). Engines without elastic-recovery support keep
    /// the default: change nothing, abandon nothing.
    fn on_device_loss(
        &mut self,
        dead: DeviceId,
        survivors: &[DeviceId],
        sim: &mut Simulation,
    ) -> Vec<u64> {
        let _ = (dead, survivors, sim);
        Vec::new()
    }

    /// A previously lost device was confirmed healthy again (it answered
    /// probes through the watchdog's quarantine period). The engine must
    /// replan over `devices` — the full post-rejoin set including
    /// `rejoined` — and, as with [`InferenceEngine::on_device_loss`],
    /// return the ids of the in-flight requests it abandoned for the
    /// caller to resubmit. Engines without elastic re-expansion keep the
    /// default: change nothing, abandon nothing.
    fn on_device_rejoin(
        &mut self,
        rejoined: DeviceId,
        devices: &[DeviceId],
        sim: &mut Simulation,
    ) -> Vec<u64> {
        let _ = (rejoined, devices, sim);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_namespace_leaves_room() {
        assert!(RUNNER_TOKEN_BASE > u32::MAX as u64);
        assert_eq!(RUNNER_TOKEN_BASE & (RUNNER_TOKEN_BASE - 1), 0, "base is a power of two");
    }
}
