//! The serving-system frontend: packing user queries into batches.
//!
//! The paper's system overview (Fig. 5) places Liger behind a serving layer
//! that, "after receiving requests and packing them as a batch", hands the
//! batch to the runtime. This module implements that layer: individual
//! queries arrive one by one; the batcher groups them — up to a maximum
//! batch size, holding a partial batch no longer than a configurable
//! timeout — and emits engine [`Request`]s. Queries in one batch share the
//! batch's padded sequence length (the longest member), which is the
//! padding waste real batched serving pays.

use std::collections::VecDeque;

use liger_gpu_sim::{SimDuration, SimTime};
use liger_model::BatchShape;

use crate::request::Request;

/// One user query (a single sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Query id (caller-assigned, dense).
    pub id: u64,
    /// Prompt length.
    pub seq_len: u32,
    /// Arrival instant.
    pub arrival: SimTime,
}

/// Batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Maximum queries per batch.
    pub max_batch: u32,
    /// Longest a partial batch may wait for more queries before it is
    /// flushed anyway.
    pub max_wait: SimDuration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { max_batch: 8, max_wait: SimDuration::from_millis(10) }
    }
}

impl BatcherConfig {
    /// Validates the policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be >= 1".into());
        }
        Ok(())
    }
}

/// A batch emitted by the batcher: the engine request plus the member
/// queries (for unbatching completions back to users).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBatch {
    /// The engine-facing request.
    pub request: Request,
    /// Ids of the member queries.
    pub members: Vec<u64>,
}

/// Packs queries into batches.
#[derive(Debug)]
pub struct Batcher {
    config: BatcherConfig,
    pending: VecDeque<Query>,
    next_request: u64,
}

impl Batcher {
    /// Creates a batcher.
    pub fn new(config: BatcherConfig) -> Result<Batcher, String> {
        config.validate()?;
        Ok(Batcher { config, pending: VecDeque::new(), next_request: 0 })
    }

    /// Queries currently held back.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Offers a query at its arrival instant; returns a batch when the
    /// arrival filled one.
    pub fn offer(&mut self, query: Query) -> Option<PackedBatch> {
        self.pending.push_back(query);
        if self.pending.len() >= self.config.max_batch as usize {
            return Some(self.flush(query.arrival).expect("pending is non-empty"));
        }
        None
    }

    /// The deadline by which the oldest pending query must be flushed, if
    /// any. The serving loop arms a timer for this instant.
    pub fn flush_deadline(&self) -> Option<SimTime> {
        self.pending.front().map(|q| q.arrival + self.config.max_wait)
    }

    /// Flushes the current partial batch (timeout path). Returns `None`
    /// when nothing is pending.
    pub fn flush(&mut self, now: SimTime) -> Option<PackedBatch> {
        if self.pending.is_empty() {
            return None;
        }
        let take = (self.config.max_batch as usize).min(self.pending.len());
        let members: Vec<Query> = self.pending.drain(..take).collect();
        let seq = members.iter().map(|q| q.seq_len).max().expect("non-empty batch");
        let id = self.next_request;
        self.next_request += 1;
        Some(PackedBatch {
            request: Request::new(id, BatchShape::prefill(take as u32, seq), now),
            members: members.iter().map(|q| q.id).collect(),
        })
    }

    /// Padding waste of a batch: padded tokens minus real tokens, as a
    /// fraction of the padded total.
    pub fn padding_waste(batch_seq: u32, member_lens: &[u32]) -> f64 {
        if member_lens.is_empty() || batch_seq == 0 {
            return 0.0;
        }
        let padded = batch_seq as u64 * member_lens.len() as u64;
        let real: u64 = member_lens.iter().map(|&l| l as u64).sum();
        (padded - real.min(padded)) as f64 / padded as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64, seq: u32, at_us: u64) -> Query {
        Query { id, seq_len: seq, arrival: SimTime::from_micros(at_us) }
    }

    #[test]
    fn fills_to_max_batch() {
        let mut b =
            Batcher::new(BatcherConfig { max_batch: 3, max_wait: SimDuration::from_millis(5) })
                .unwrap();
        assert!(b.offer(q(0, 16, 0)).is_none());
        assert!(b.offer(q(1, 64, 10)).is_none());
        let batch = b.offer(q(2, 32, 20)).expect("third query fills the batch");
        assert_eq!(batch.members, vec![0, 1, 2]);
        assert_eq!(batch.request.shape.batch, 3);
        // Padded to the longest member.
        assert!(matches!(batch.request.shape.phase, liger_model::Phase::Prefill { seq_len: 64 }));
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn timeout_flushes_partial_batches() {
        let mut b =
            Batcher::new(BatcherConfig { max_batch: 8, max_wait: SimDuration::from_millis(5) })
                .unwrap();
        b.offer(q(0, 40, 0));
        b.offer(q(1, 20, 1_000));
        assert_eq!(b.flush_deadline(), Some(SimTime::from_millis(5)));
        let batch = b.flush(SimTime::from_millis(5)).unwrap();
        assert_eq!(batch.request.shape.batch, 2);
        assert_eq!(batch.members, vec![0, 1]);
        assert_eq!(b.pending(), 0);
        assert!(b.flush(SimTime::from_millis(6)).is_none(), "nothing left to flush");
        assert_eq!(b.flush_deadline(), None);
    }

    #[test]
    fn request_ids_are_dense_and_increasing() {
        let mut b =
            Batcher::new(BatcherConfig { max_batch: 1, max_wait: SimDuration::ZERO }).unwrap();
        let r0 = b.offer(q(0, 16, 0)).unwrap().request.id;
        let r1 = b.offer(q(1, 16, 5)).unwrap().request.id;
        assert_eq!((r0, r1), (0, 1));
    }

    #[test]
    fn padding_waste_accounting() {
        assert_eq!(Batcher::padding_waste(64, &[64, 64]), 0.0);
        // 64-token pad over [16, 64]: (128-80)/128 = 0.375.
        assert!((Batcher::padding_waste(64, &[16, 64]) - 0.375).abs() < 1e-12);
        assert_eq!(Batcher::padding_waste(64, &[]), 0.0);
        assert_eq!(Batcher::padding_waste(0, &[1]), 0.0);
    }

    #[test]
    fn zero_max_batch_rejected() {
        assert!(Batcher::new(BatcherConfig { max_batch: 0, max_wait: SimDuration::ZERO }).is_err());
    }

    #[test]
    fn burst_larger_than_max_batch_splits() {
        let mut b =
            Batcher::new(BatcherConfig { max_batch: 4, max_wait: SimDuration::from_millis(1) })
                .unwrap();
        let mut emitted = Vec::new();
        for i in 0..10 {
            if let Some(batch) = b.offer(q(i, 16, 0)) {
                emitted.push(batch);
            }
        }
        assert_eq!(emitted.len(), 2, "two full batches emitted");
        assert_eq!(b.pending(), 2, "remainder awaits the timeout");
        let tail = b.flush(SimTime::from_millis(1)).unwrap();
        assert_eq!(tail.request.shape.batch, 2);
    }
}

// ---------------------------------------------------------------------------
// Query-level serving loop
// ---------------------------------------------------------------------------

use std::collections::HashMap;

use liger_gpu_sim::{CoreSelect, Driver, Simulation, Wake};

use crate::engine::{InferenceEngine, RUNNER_TOKEN_BASE};
use crate::metrics::ServingMetrics;
use crate::request::Completion;
use crate::runner::run_core;

/// Flush-timer token marker within the runner namespace.
const FLUSH_BIT: u64 = 1 << 62;

/// One dispatched batch awaiting completion.
#[derive(Debug, Clone)]
struct InFlightBatch {
    /// The engine-facing request (kept for requeue resubmission).
    request: Request,
    /// Member query ids.
    members: Vec<u64>,
    /// Requeues consumed so far.
    attempts: u32,
    /// A member kernel failed; requeue when the attempt drains.
    tainted: bool,
}

/// Serves individual queries through a [`Batcher`] and an engine: the
/// end-to-end frontend + runtime stack of the paper's Fig. 5. Latency is
/// measured per *query* (including time spent waiting in the batcher).
///
/// With a requeue budget (see [`serve_queries_with_retry`]), a batch whose
/// kernels were killed by the fault schedule is resubmitted whole once the
/// tainted attempt drains, up to `requeue_limit` times per batch.
pub struct QueryRunner<'a, E: InferenceEngine + ?Sized> {
    engine: &'a mut E,
    batcher: Batcher,
    queries: Vec<Query>,
    /// request id -> members + requeue state.
    in_flight: HashMap<u64, InFlightBatch>,
    metrics: ServingMetrics,
    outstanding: usize,
    flush_gen: u64,
    requeue_limit: u32,
}

impl<'a, E: InferenceEngine + ?Sized> QueryRunner<'a, E> {
    /// Creates a runner over `queries` (ids must be dense indices).
    pub fn new(
        engine: &'a mut E,
        config: BatcherConfig,
        queries: Vec<Query>,
    ) -> Result<Self, String> {
        let outstanding = queries.len();
        Ok(QueryRunner {
            engine,
            batcher: Batcher::new(config)?,
            queries,
            in_flight: HashMap::new(),
            metrics: ServingMetrics::new(),
            outstanding,
            flush_gen: 0,
            requeue_limit: 0,
        })
    }

    /// [`Self::new`] with up to `requeue_limit` resubmissions per batch on
    /// kernel failure.
    pub fn with_retry(
        engine: &'a mut E,
        config: BatcherConfig,
        queries: Vec<Query>,
        requeue_limit: u32,
    ) -> Result<Self, String> {
        let mut runner = QueryRunner::new(engine, config, queries)?;
        runner.requeue_limit = requeue_limit;
        Ok(runner)
    }

    /// Finished metrics (query-level).
    pub fn into_metrics(self) -> ServingMetrics {
        self.metrics
    }

    fn dispatch(&mut self, batch: PackedBatch, sim: &mut Simulation) {
        // The batch is padded to its longest member: account the waste the
        // per-batch `Batcher::padding_waste` math computes, instead of
        // dropping it on the floor.
        let padded_seq = batch.request.shape.phase.tokens() as u64;
        let real: u64 =
            batch.members.iter().map(|&q| self.queries[q as usize].seq_len as u64).sum();
        self.metrics.batching_mut().record_batch(padded_seq * batch.members.len() as u64, real);
        self.in_flight.insert(
            batch.request.id,
            InFlightBatch {
                request: batch.request,
                members: batch.members,
                attempts: 0,
                tainted: false,
            },
        );
        self.engine.submit(batch.request, sim);
    }

    fn arm_flush_timer(&mut self, sim: &mut Simulation) {
        if let Some(deadline) = self.batcher.flush_deadline() {
            self.flush_gen += 1;
            sim.set_timer(deadline, RUNNER_TOKEN_BASE | FLUSH_BIT | self.flush_gen);
        }
    }

    fn collect(&mut self, sim: &mut Simulation) {
        for (rid, finished) in self.engine.drain_completions() {
            let entry = self.in_flight.get_mut(&rid).expect("unknown request completed");
            if entry.tainted && entry.attempts < self.requeue_limit {
                // Put the whole batch back on the engine now that its
                // tainted attempt has drained.
                entry.tainted = false;
                entry.attempts += 1;
                let request = entry.request;
                self.metrics.faults_mut().requeues += 1;
                self.engine.submit(request, sim);
                continue;
            }
            let members = self.in_flight.remove(&rid).expect("entry vanished").members;
            for qid in members {
                self.metrics.record(Completion {
                    id: qid,
                    arrival: self.queries[qid as usize].arrival,
                    finished,
                });
                self.outstanding -= 1;
            }
        }
        if self.outstanding == 0 {
            sim.request_stop();
        }
    }
}

impl<E: InferenceEngine + ?Sized> Driver for QueryRunner<'_, E> {
    fn start(&mut self, sim: &mut Simulation) {
        if self.queries.is_empty() {
            sim.request_stop();
            return;
        }
        for (i, q) in self.queries.iter().enumerate() {
            debug_assert_eq!(q.id as usize, i, "query ids must be dense indices");
            sim.set_timer(q.arrival, RUNNER_TOKEN_BASE | q.id);
        }
    }

    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
        match wake {
            Wake::Timer { token } if token & RUNNER_TOKEN_BASE != 0 && token & FLUSH_BIT != 0 => {
                // Only the newest flush timer is authoritative.
                if token & !(RUNNER_TOKEN_BASE | FLUSH_BIT) == self.flush_gen {
                    if let Some(batch) = self.batcher.flush(sim.now()) {
                        self.dispatch(batch, sim);
                    }
                    self.arm_flush_timer(sim);
                }
            }
            Wake::Timer { token } if token & RUNNER_TOKEN_BASE != 0 => {
                let id = (token & !RUNNER_TOKEN_BASE) as usize;
                let was_empty = self.batcher.pending() == 0;
                if let Some(batch) = self.batcher.offer(self.queries[id]) {
                    self.dispatch(batch, sim);
                    self.arm_flush_timer(sim);
                } else if was_empty {
                    self.arm_flush_timer(sim);
                }
            }
            Wake::KernelFailed { tag, .. } => {
                if self.requeue_limit > 0 {
                    self.metrics.faults_mut().kernel_failures += 1;
                    if let Some(entry) = self.in_flight.get_mut(&tag) {
                        entry.tainted = true;
                    }
                }
                self.engine.on_wake(wake, sim);
            }
            other => self.engine.on_wake(other, sim),
        }
        self.collect(sim);
    }
}

/// Serves individual `queries` through the batcher + `engine`; returns
/// query-level metrics.
pub fn serve_queries<E: InferenceEngine + ?Sized>(
    sim: &mut Simulation,
    engine: &mut E,
    config: BatcherConfig,
    queries: Vec<Query>,
) -> ServingMetrics {
    serve_queries_on(CoreSelect::from_env(), sim, engine, config, queries)
}

/// [`serve_queries`] on an explicit event core.
pub fn serve_queries_on<E: InferenceEngine + ?Sized>(
    core: CoreSelect,
    sim: &mut Simulation,
    engine: &mut E,
    config: BatcherConfig,
    queries: Vec<Query>,
) -> ServingMetrics {
    let mut runner = QueryRunner::new(engine, config, queries).expect("valid batcher config");
    run_core(core, None, sim, &mut runner);
    runner.into_metrics()
}

/// [`serve_queries`] with requeue-on-kernel-failure: a batch whose kernels
/// the fault schedule killed is resubmitted whole (up to `requeue_limit`
/// times per batch) once the tainted attempt drains.
pub fn serve_queries_with_retry<E: InferenceEngine + ?Sized>(
    sim: &mut Simulation,
    engine: &mut E,
    config: BatcherConfig,
    queries: Vec<Query>,
    requeue_limit: u32,
) -> ServingMetrics {
    serve_queries_with_retry_on(CoreSelect::from_env(), sim, engine, config, queries, requeue_limit)
}

/// [`serve_queries_with_retry`] on an explicit event core.
pub fn serve_queries_with_retry_on<E: InferenceEngine + ?Sized>(
    core: CoreSelect,
    sim: &mut Simulation,
    engine: &mut E,
    config: BatcherConfig,
    queries: Vec<Query>,
    requeue_limit: u32,
) -> ServingMetrics {
    let mut runner =
        QueryRunner::with_retry(engine, config, queries, requeue_limit).expect("valid config");
    run_core(core, None, sim, &mut runner);
    runner.into_metrics()
}

#[cfg(test)]
mod runner_tests {
    use super::*;
    use crate::request::Request;
    use liger_gpu_sim::{DeviceId, DeviceSpec, HostId, HostSpec, KernelSpec, SimTime, StreamId};
    use liger_model::Phase;

    /// Engine taking 10us per batch regardless of size, recording shapes.
    struct RecordingEngine {
        done: Vec<(u64, SimTime)>,
        shapes: Vec<(u32, u32)>, // (batch, seq)
    }

    impl InferenceEngine for RecordingEngine {
        fn name(&self) -> &'static str {
            "recording"
        }
        fn submit(&mut self, request: Request, sim: &mut Simulation) {
            let seq = match request.shape.phase {
                Phase::Prefill { seq_len } => seq_len,
                Phase::Decode { context } => context,
            };
            self.shapes.push((request.shape.batch, seq));
            let stream = StreamId::new(DeviceId(0), 0);
            sim.launch(
                HostId(0),
                stream,
                KernelSpec::compute("b", liger_gpu_sim::SimDuration::from_micros(10)),
            );
            let ev = sim.record_event(HostId(0), stream);
            sim.notify_on_event(ev, HostId(0), request.id);
        }
        fn on_wake(&mut self, wake: Wake, _: &mut Simulation) {
            if let Wake::EventFired { token, fired_at, .. } = wake {
                self.done.push((token, fired_at));
            }
        }
        fn drain_completions(&mut self) -> Vec<(u64, SimTime)> {
            std::mem::take(&mut self.done)
        }
    }

    fn sim() -> Simulation {
        Simulation::builder()
            .device(DeviceSpec::test_device())
            .host(HostSpec::instant())
            .build()
            .unwrap()
    }

    fn queries(gaps_us: &[u64], seqs: &[u32]) -> Vec<Query> {
        let mut t = 0;
        gaps_us
            .iter()
            .zip(seqs)
            .enumerate()
            .map(|(i, (&gap, &seq))| {
                t += gap;
                Query { id: i as u64, seq_len: seq, arrival: SimTime::from_micros(t) }
            })
            .collect()
    }

    #[test]
    fn burst_is_packed_into_one_batch() {
        let mut e = RecordingEngine { done: vec![], shapes: vec![] };
        let qs = queries(&[0, 0, 0, 0], &[16, 64, 32, 48]);
        let cfg = BatcherConfig { max_batch: 4, max_wait: SimDuration::from_millis(1) };
        let m = serve_queries(&mut sim(), &mut e, cfg, qs);
        assert_eq!(m.completed(), 4);
        assert_eq!(e.shapes, vec![(4, 64)], "one padded batch of four");
    }

    #[test]
    fn timeout_flushes_sparse_arrivals() {
        let mut e = RecordingEngine { done: vec![], shapes: vec![] };
        // Two queries 100us apart, deadline 50us: two singleton batches.
        let qs = queries(&[0, 100], &[16, 32]);
        let cfg = BatcherConfig { max_batch: 8, max_wait: SimDuration::from_micros(50) };
        let m = serve_queries(&mut sim(), &mut e, cfg, qs);
        assert_eq!(m.completed(), 2);
        assert_eq!(e.shapes, vec![(1, 16), (1, 32)]);
        // Query latency includes the batcher wait: 50us + 10us service.
        assert_eq!(m.max_latency(), SimDuration::from_micros(60));
    }

    #[test]
    fn query_latency_includes_batching_delay() {
        let mut e = RecordingEngine { done: vec![], shapes: vec![] };
        let qs = queries(&[0, 10], &[16, 16]);
        let cfg = BatcherConfig { max_batch: 2, max_wait: SimDuration::from_millis(1) };
        let m = serve_queries(&mut sim(), &mut e, cfg, qs);
        let mut comps: Vec<_> = m.completions().to_vec();
        comps.sort_by_key(|c| c.id);
        // First query waited 10us for the second, then 10us of service.
        assert_eq!(comps[0].latency(), SimDuration::from_micros(20));
        assert_eq!(comps[1].latency(), SimDuration::from_micros(10));
    }

    #[test]
    fn empty_query_list_terminates() {
        let mut e = RecordingEngine { done: vec![], shapes: vec![] };
        let m = serve_queries(&mut sim(), &mut e, BatcherConfig::default(), vec![]);
        assert_eq!(m.completed(), 0);
    }

    use liger_gpu_sim::{FaultSpec, KernelFaultParams, SimDuration};

    /// Like [`RecordingEngine`] but tags kernels with the request id so the
    /// simulator's failure notifications map back to batches.
    struct TaggedEngine {
        done: Vec<(u64, SimTime)>,
    }

    impl InferenceEngine for TaggedEngine {
        fn name(&self) -> &'static str {
            "tagged"
        }
        fn submit(&mut self, request: Request, sim: &mut Simulation) {
            let stream = StreamId::new(DeviceId(0), 0);
            sim.launch(
                HostId(0),
                stream,
                KernelSpec::compute("b", SimDuration::from_micros(10)).with_tag(request.id),
            );
            let ev = sim.record_event(HostId(0), stream);
            sim.notify_on_event(ev, HostId(0), request.id);
        }
        fn on_wake(&mut self, wake: Wake, _: &mut Simulation) {
            if let Wake::EventFired { token, fired_at, .. } = wake {
                self.done.push((token, fired_at));
            }
        }
        fn drain_completions(&mut self) -> Vec<(u64, SimTime)> {
            std::mem::take(&mut self.done)
        }
    }

    fn faulty_sim(faults: FaultSpec) -> Simulation {
        Simulation::builder()
            .device(DeviceSpec::test_device())
            .host(HostSpec::instant())
            .faults(faults)
            .build()
            .unwrap()
    }

    #[test]
    fn failed_batch_is_requeued_whole() {
        // The batch's kernel dies at 5us (window [0, 1us), certain failure);
        // the requeue resubmits it at 5us and it completes clean at 15us.
        let faults = FaultSpec::new(5).kernel_failures(KernelFaultParams {
            prob: 1.0,
            fraction: 0.5,
            from: SimTime::ZERO,
            until: SimTime::from_micros(1),
        });
        let mut e = TaggedEngine { done: vec![] };
        let qs = queries(&[0, 0], &[16, 32]);
        let cfg = BatcherConfig { max_batch: 2, max_wait: SimDuration::from_millis(1) };
        let m = serve_queries_with_retry(&mut faulty_sim(faults), &mut e, cfg, qs, 3);
        assert_eq!(m.completed(), 2, "both members complete, none lost");
        assert_eq!(m.faults().requeues, 1);
        assert_eq!(m.faults().kernel_failures, 1);
        assert!(m.completions().iter().all(|c| c.finished == SimTime::from_micros(15)));
    }

    #[test]
    fn requeue_limit_bounds_resubmissions() {
        let faults = FaultSpec::new(5).kernel_failures(KernelFaultParams {
            prob: 1.0,
            fraction: 0.5,
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        let mut e = TaggedEngine { done: vec![] };
        let qs = queries(&[0, 0], &[16, 32]);
        let cfg = BatcherConfig { max_batch: 2, max_wait: SimDuration::from_millis(1) };
        let m = serve_queries_with_retry(&mut faulty_sim(faults), &mut e, cfg, qs, 2);
        assert_eq!(m.completed(), 2, "exhausted budget still completes the batch");
        assert_eq!(m.faults().requeues, 2);
        assert_eq!(m.faults().kernel_failures, 3, "initial attempt + two requeues");
    }

    #[test]
    fn zero_requeue_limit_matches_plain_serving() {
        let faults = FaultSpec::new(5).kernel_failures(KernelFaultParams {
            prob: 1.0,
            fraction: 0.5,
            from: SimTime::ZERO,
            until: SimTime::from_micros(1),
        });
        let mut e = TaggedEngine { done: vec![] };
        let qs = queries(&[0, 0], &[16, 32]);
        let cfg = BatcherConfig { max_batch: 2, max_wait: SimDuration::from_millis(1) };
        let m = serve_queries_with_retry(&mut faulty_sim(faults), &mut e, cfg, qs, 0);
        assert_eq!(m.completed(), 2, "no requeue: the tainted result is delivered");
        assert_eq!(m.faults().requeues, 0);
        assert!(m.completions().iter().all(|c| c.finished == SimTime::from_micros(5)));
    }
}

impl liger_gpu_sim::ToJson for Query {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("id", &self.id).field("seq_len", &self.seq_len).field("arrival", &self.arrival);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for BatcherConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("max_batch", &self.max_batch).field("max_wait", &self.max_wait);
        obj.end();
    }
}

impl liger_gpu_sim::ToJson for PackedBatch {
    fn write_json(&self, out: &mut String) {
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("request", &self.request).field("members", &self.members);
        obj.end();
    }
}
