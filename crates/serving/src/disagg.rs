//! Disaggregated serving: dedicated prefill workers, dedicated decode
//! workers, and a KV stream over the inter-node link between them.
//!
//! Colocated continuous batching interleaves prompt (prefill) phases with
//! decode steps on the same engine, so a burst of long prompts stalls
//! every running decode — the decode tail latency inherits the prompt
//! distribution. Disaggregation (DistServe/Splitwise-style) splits the
//! cluster: a **prefill node** runs only prompt phases; when a prompt's
//! KV is resident, its block table is streamed over the NIC (priced by
//! [`kv_stream_time`] against the cluster's [`NicLink`]) to a **decode
//! node**, which admits the shipped table directly into its own paged
//! pool and fused-decodes it with the rest of the running set. Decode
//! steps never wait behind a prefill, so decode p99 is governed by the
//! decode batch alone — the property the `ablation_disagg` benchmark
//! gates on.
//!
//! Memory stays fully tracked on both worker classes: the prefill pool
//! holds a prompt's blocks from admission until the stream *completes*
//! (streaming is backpressure — blocks in flight still occupy the source
//! pool), and the decode pool allocates the shipped table at admission
//! and frees it at retirement. Both traces run the thread/memory
//! sanitizer clean (TS-LEAK / TS-UAF / TS-DOUBLE-FREE), and the static
//! verifier's capacity rule covers both pools.
//!
//! The two workers run as two simulations sharing one time axis (both
//! start at t = 0; a job enters the decode worker at the instant its KV
//! stream finished on the prefill side). Each worker is a deterministic
//! [`Driver`] over its own engine, so the whole tier is byte-identical
//! across event cores.

use std::collections::{BTreeMap, HashMap, VecDeque};

use liger_collectives::{kv_stream_time, ClusterTopology, NicLink};
use liger_gpu_sim::{
    CoreSelect, DeviceId, Driver, HostId, KernelSpec, SimTime, Simulation, StreamId, Trace, Wake,
};
use liger_kvcache::BlockPool;
use liger_model::{BatchShape, CostModel, ModelConfig};

use crate::admission::{ShedReason, ShedRecord};
use crate::engine::{InferenceEngine, RUNNER_TOKEN_BASE};
use crate::generation::{GenerationJob, GenerationMetrics, GenerationResult};
use crate::metrics::{MetricsSections, ServingMetrics};
use crate::prefix::output_token;
use crate::request::{Completion, Request};
use crate::scheduler::SchedulerConfig;

/// KV-stream completion marker (bit 52 — below the continuous scheduler's
/// drain/recovery/health markers at bits 53..59, above any job id).
const STREAM_TOKEN: u64 = RUNNER_TOKEN_BASE | (1 << 52);

/// Stream index the KV stream kernel rides on (the engines launch on
/// streams 0 and 1; the NIC egress queue must not serialize behind them).
const NIC_STREAM: usize = 2;

/// Which worker class a simulation/engine pair backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisaggRole {
    /// Runs prompt phases only.
    Prefill,
    /// Admits shipped block tables and runs fused decode only.
    Decode,
}

impl DisaggRole {
    /// Stable label for reports.
    pub fn name(self) -> &'static str {
        match self {
            DisaggRole::Prefill => "prefill",
            DisaggRole::Decode => "decode",
        }
    }
}

/// Parameters of the disaggregated tier.
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Node geometry and NIC pricing.
    pub cluster: ClusterTopology,
    /// Node index hosting the prefill workers.
    pub prefill_node: usize,
    /// Node index hosting the decode workers.
    pub decode_node: usize,
    /// Pool geometry and admission bounds, applied to both worker classes
    /// (each node gets its own pool of this shape).
    pub scheduler: SchedulerConfig,
    /// NIC bandwidth degradation factor (`>= 1.0`; `1.0` = healthy). Models
    /// a `niclink` fault on the prefill→decode link: every KV stream is
    /// priced against the degraded link.
    pub nic_degrade: f64,
}

impl DisaggConfig {
    /// A two-node split over `cluster`: node 0 prefills, node 1 decodes.
    pub fn new(cluster: ClusterTopology, scheduler: SchedulerConfig) -> DisaggConfig {
        DisaggConfig { cluster, prefill_node: 0, decode_node: 1, scheduler, nic_degrade: 1.0 }
    }

    /// Degrades the inter-node link by `factor` (`>= 1.0`).
    pub fn with_nic_degrade(mut self, factor: f64) -> DisaggConfig {
        self.nic_degrade = factor;
        self
    }

    /// Rejects degenerate parameters.
    pub fn validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        self.scheduler.validate()?;
        if self.prefill_node == self.decode_node {
            return Err("prefill and decode must run on distinct nodes".into());
        }
        if self.prefill_node >= self.cluster.nodes || self.decode_node >= self.cluster.nodes {
            return Err("disagg node index out of range".into());
        }
        if self.nic_degrade < 1.0 || self.nic_degrade.is_nan() {
            return Err("nic_degrade must be >= 1.0".into());
        }
        Ok(())
    }

    /// The NIC link every KV stream is priced against (degraded when a
    /// `niclink` fault is configured).
    pub fn effective_nic(&self) -> NicLink {
        if self.nic_degrade > 1.0 {
            self.cluster.nic.degraded(self.nic_degrade)
        } else {
            self.cluster.nic.clone()
        }
    }

    /// Devices of the prefill node in cluster-global numbering (fault
    /// addressing; each worker's own simulation numbers devices locally).
    pub fn prefill_devices(&self) -> Vec<DeviceId> {
        self.cluster.devices_of(self.prefill_node).map(DeviceId).collect()
    }

    /// Devices of the decode node in cluster-global numbering.
    pub fn decode_devices(&self) -> Vec<DeviceId> {
        self.cluster.devices_of(self.decode_node).map(DeviceId).collect()
    }

    /// One node's devices in that node's own simulation: every worker runs
    /// in its own sim, so device ids are node-local `0..devices_per_node`.
    pub fn node_devices(&self) -> Vec<DeviceId> {
        (0..self.cluster.devices_per_node).map(DeviceId).collect()
    }
}

/// Outcome of one disaggregated serve.
#[derive(Debug, Clone, Default)]
pub struct DisaggReport {
    /// Per-generation results: arrival and first token on the prefill
    /// node's clock, completion on the decode node's.
    pub generation: GenerationMetrics,
    /// Prefill-node serving counters (prompt completions count here for
    /// single-token jobs that never ship).
    pub prefill: ServingMetrics,
    /// Decode-node serving counters (full-generation completions).
    pub decode: ServingMetrics,
    /// Both nodes merged.
    pub serving: ServingMetrics,
    /// Every produced output token per job id (token 0 from the prefill
    /// worker, the rest from decode) — byte-compared against the colocated
    /// scheduler's streams by the differential tests.
    pub outputs: BTreeMap<u64, Vec<u64>>,
    /// KV blocks shipped prefill → decode.
    pub streamed_blocks: u64,
    /// Bytes shipped prefill → decode (full KV: per-device block bytes ×
    /// prefill world).
    pub streamed_bytes: u64,
    /// Captured traces, `[prefill, decode]`, when the factory enabled
    /// trace capture.
    pub traces: Vec<Trace>,
}

impl DisaggReport {
    /// Jobs completed across both worker classes.
    pub fn completed(&self) -> usize {
        self.generation.completed()
    }
}

/// JSON view: one section per worker class plus the merged aggregate, all
/// through the shared [`MetricsSections`] helper.
impl liger_gpu_sim::ToJson for DisaggReport {
    fn write_json(&self, out: &mut String) {
        let mut sections = MetricsSections::new();
        sections.push("aggregate", &self.serving);
        sections.push("prefill_node", &self.prefill);
        sections.push("decode_node", &self.decode);
        let mut obj = liger_gpu_sim::json::JsonObject::begin(out);
        obj.field("completed", &self.completed())
            .field("streamed_blocks", &self.streamed_blocks)
            .field("streamed_bytes", &self.streamed_bytes)
            .field("metrics", &sections);
        obj.end();
    }
}

/// Serves `jobs` disaggregated on the environment-selected event core.
/// `make_worker(role, devices)` builds each worker's simulation and engine
/// over that node's devices.
pub fn serve_disaggregated<E: InferenceEngine>(
    jobs: Vec<GenerationJob>,
    model: &ModelConfig,
    cost: &CostModel,
    config: DisaggConfig,
    make_worker: impl FnMut(DisaggRole, &[DeviceId]) -> (Simulation, E),
) -> DisaggReport {
    serve_disaggregated_on(CoreSelect::from_env(), jobs, model, cost, config, make_worker)
}

/// [`serve_disaggregated`] on an explicit event core.
pub fn serve_disaggregated_on<E: InferenceEngine>(
    core: CoreSelect,
    jobs: Vec<GenerationJob>,
    model: &ModelConfig,
    cost: &CostModel,
    config: DisaggConfig,
    mut make_worker: impl FnMut(DisaggRole, &[DeviceId]) -> (Simulation, E),
) -> DisaggReport {
    config.validate().expect("invalid DisaggConfig");
    assert!(jobs.len() < (1u64 << 52) as usize, "job count overflows the stream token namespace");
    debug_assert_eq!(
        config.scheduler.pool.block_bytes,
        liger_model::kv_block_bytes(
            model,
            config.cluster.devices_per_node as u32,
            config.scheduler.pool.block_tokens
        ),
        "pool geometry must match the model's KV sizing on one node"
    );
    let mut report = DisaggReport::default();

    // -- prefill wave --------------------------------------------------------
    let node_devices = config.node_devices();
    let (mut sim_p, mut engine_p) = make_worker(DisaggRole::Prefill, &node_devices);
    let lookahead = crate::runner::core_lookahead(&sim_p, cost);
    let mut prefill = PrefillWorker::new(&mut engine_p, &jobs, &config, &node_devices);
    crate::runner::run_core(core, Some(lookahead), &mut sim_p, &mut prefill);
    let PrefillOutcome {
        kv_ready,
        first_token,
        serving: prefill_metrics,
        generation: prefill_generation,
        outputs: prefill_outputs,
        streamed_blocks,
        streamed_bytes,
    } = prefill.into_outcome();
    if let Some(trace) = sim_p.take_trace() {
        report.traces.push(trace);
    }

    // -- decode wave ---------------------------------------------------------
    let (mut sim_d, mut engine_d) = make_worker(DisaggRole::Decode, &node_devices);
    let lookahead = crate::runner::core_lookahead(&sim_d, cost);
    let mut decode = DecodeWorker::new(&mut engine_d, &jobs, &config, &node_devices, kv_ready);
    crate::runner::run_core(core, Some(lookahead), &mut sim_d, &mut decode);
    let DecodeOutcome {
        serving: decode_metrics,
        generation: decode_generation,
        outputs: decode_outputs,
    } = decode.into_outcome(&first_token);
    if let Some(trace) = sim_d.take_trace() {
        report.traces.push(trace);
    }

    // -- merge ---------------------------------------------------------------
    for r in prefill_generation.results() {
        report.generation.record(*r);
    }
    for r in decode_generation.results() {
        report.generation.record(*r);
    }
    report.outputs = prefill_outputs;
    for (id, mut tail) in decode_outputs {
        report.outputs.entry(id).or_default().append(&mut tail);
    }
    report.serving.merge(&prefill_metrics);
    report.serving.merge(&decode_metrics);
    report.prefill = prefill_metrics;
    report.decode = decode_metrics;
    report.streamed_blocks = streamed_blocks;
    report.streamed_bytes = streamed_bytes;
    report
}

/// What the prefill wave hands the decode wave.
struct PrefillOutcome {
    /// Stream-arrival instant per job that shipped.
    kv_ready: BTreeMap<u64, SimTime>,
    /// First-token instant per job (prefill completion).
    first_token: HashMap<u64, SimTime>,
    serving: ServingMetrics,
    /// Single-token jobs finish entirely on the prefill node.
    generation: GenerationMetrics,
    outputs: BTreeMap<u64, Vec<u64>>,
    streamed_blocks: u64,
    streamed_bytes: u64,
}

/// The prefill worker: prompt phases only, then a NIC stream per prompt.
struct PrefillWorker<'a, E: InferenceEngine + ?Sized> {
    engine: &'a mut E,
    jobs: &'a [GenerationJob],
    pool: BlockPool,
    nic: NicLink,
    /// NIC egress device (the node's first device: one NIC per node, so
    /// streams serialize on its queue).
    egress: DeviceId,
    /// Full-KV scale factor: per-device block bytes × prefill world.
    world: u64,
    max_running: usize,
    token_budget: u64,

    waiting: VecDeque<u64>,
    inflight: HashMap<u64, u64>,
    tokens_inflight: u64,
    streaming: usize,
    next_request: u64,
    outstanding: usize,

    kv_ready: BTreeMap<u64, SimTime>,
    first_token: HashMap<u64, SimTime>,
    serving: ServingMetrics,
    generation: GenerationMetrics,
    outputs: BTreeMap<u64, Vec<u64>>,
    streamed_blocks: u64,
    streamed_bytes: u64,
}

impl<'a, E: InferenceEngine + ?Sized> PrefillWorker<'a, E> {
    fn new(
        engine: &'a mut E,
        jobs: &'a [GenerationJob],
        config: &DisaggConfig,
        devices: &[DeviceId],
    ) -> Self {
        PrefillWorker {
            engine,
            jobs,
            pool: BlockPool::new(config.scheduler.pool, devices.to_vec()),
            nic: config.effective_nic(),
            egress: devices[0],
            world: devices.len() as u64,
            max_running: config.scheduler.max_running,
            token_budget: config.scheduler.prefill_token_budget,
            waiting: VecDeque::new(),
            inflight: HashMap::new(),
            tokens_inflight: 0,
            streaming: 0,
            next_request: 0,
            outstanding: jobs.len(),
            kv_ready: BTreeMap::new(),
            first_token: HashMap::new(),
            serving: ServingMetrics::new(),
            generation: GenerationMetrics::default(),
            outputs: BTreeMap::new(),
            streamed_blocks: 0,
            streamed_bytes: 0,
        }
    }

    fn into_outcome(self) -> PrefillOutcome {
        PrefillOutcome {
            kv_ready: self.kv_ready,
            first_token: self.first_token,
            serving: self.serving,
            generation: self.generation,
            outputs: self.outputs,
            streamed_blocks: self.streamed_blocks,
            streamed_bytes: self.streamed_bytes,
        }
    }

    fn shed(&mut self, id: u64, now: SimTime) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.serving.recovery_mut().shed.push(ShedRecord {
            id,
            at: now,
            reason: ShedReason::KvExhausted,
        });
    }

    /// FCFS admission under the running bound, the token budget, and the
    /// pool watermark.
    fn admit(&mut self, sim: &mut Simulation) {
        while let Some(&id) = self.waiting.front() {
            if self.inflight.len() + self.streaming >= self.max_running {
                return;
            }
            if self.pool.above_watermark() {
                return;
            }
            let job = self.jobs[id as usize];
            let (prompt, rows) = (job.prompt_len, job.batch);
            if self.pool.blocks_for(prompt) * rows as u64 > self.pool.capacity_blocks() {
                self.waiting.pop_front();
                self.shed(id, sim.now());
                continue;
            }
            let prefill_tokens = prompt as u64 * rows as u64;
            if self.tokens_inflight > 0 && self.tokens_inflight + prefill_tokens > self.token_budget
            {
                return;
            }
            match self.pool.grow(sim, id, prompt, rows) {
                Ok(_) => {
                    self.waiting.pop_front();
                    let rid = self.next_request;
                    self.next_request += 1;
                    self.inflight.insert(rid, id);
                    self.tokens_inflight += prefill_tokens;
                    let shape = BatchShape::prefill(rows, prompt);
                    self.engine.submit(Request::new(rid, shape, sim.now()), sim);
                }
                Err(_) if self.inflight.is_empty() && self.streaming == 0 => {
                    self.serving.batching_mut().out_of_blocks += 1;
                    self.waiting.pop_front();
                    self.pool.release(sim, id);
                    self.shed(id, sim.now());
                }
                Err(_) => {
                    self.serving.batching_mut().out_of_blocks += 1;
                    return;
                }
            }
        }
    }

    /// A prompt's KV is resident: either the job is done (single-token
    /// generations never ship) or its blocks stream out over the NIC.
    fn prefill_done(&mut self, id: u64, finished: SimTime, sim: &mut Simulation) {
        let job = self.jobs[id as usize];
        self.first_token.insert(id, finished);
        self.outputs.entry(id).or_default().push(output_token(&job, 0));
        if job.output_tokens <= 1 {
            self.pool.release(sim, id);
            self.outstanding = self.outstanding.saturating_sub(1);
            self.generation.record(GenerationResult {
                id,
                arrival: job.arrival,
                first_token: finished,
                finished,
                tokens: job.output_tokens,
                batch: job.batch,
            });
            self.serving.record(Completion { id, arrival: job.arrival, finished });
            return;
        }
        // Ship the block table: one comm kernel on the NIC egress queue,
        // priced against the (possibly degraded) inter-node link. The
        // blocks stay allocated until the stream completes — in-flight KV
        // still occupies the source pool.
        let blocks = self.pool.blocks_for(job.prompt_len) * job.batch as u64;
        let bytes = blocks * self.pool.config().block_bytes * self.world;
        self.streamed_blocks += blocks;
        self.streamed_bytes += bytes;
        self.streaming += 1;
        let host = HostId(self.egress.0);
        let stream = StreamId::new(self.egress, NIC_STREAM);
        let spec = KernelSpec::comm("kv-stream", kv_stream_time(bytes, &self.nic)).with_tag(id);
        sim.launch(host, stream, spec);
        let ev = sim.record_event(host, stream);
        sim.notify_on_event(ev, host, STREAM_TOKEN | id);
    }

    fn collect(&mut self, sim: &mut Simulation) {
        for (rid, finished) in self.engine.drain_completions() {
            if let Some(id) = self.inflight.remove(&rid) {
                let job = self.jobs[id as usize];
                let tokens = job.prompt_len as u64 * job.batch as u64;
                self.tokens_inflight = self.tokens_inflight.saturating_sub(tokens);
                self.prefill_done(id, finished, sim);
            }
        }
        if self.outstanding == 0 {
            debug_assert!(self.pool.is_empty(), "prefill ended with live KV blocks");
            sim.request_stop();
        } else {
            self.admit(sim);
        }
    }
}

impl<E: InferenceEngine + ?Sized> Driver for PrefillWorker<'_, E> {
    fn start(&mut self, sim: &mut Simulation) {
        if self.jobs.is_empty() {
            sim.request_stop();
            return;
        }
        for (i, job) in self.jobs.iter().enumerate() {
            debug_assert_eq!(job.id as usize, i, "job ids must be dense indices");
            sim.set_timer(job.arrival, RUNNER_TOKEN_BASE | job.id);
        }
    }

    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
        match wake {
            Wake::EventFired { token, fired_at, .. } if token & STREAM_TOKEN == STREAM_TOKEN => {
                let id = token & !STREAM_TOKEN;
                self.pool.release(sim, id);
                self.streaming -= 1;
                self.outstanding = self.outstanding.saturating_sub(1);
                self.kv_ready.insert(id, fired_at);
            }
            Wake::Timer { token } if token & RUNNER_TOKEN_BASE != 0 => {
                self.waiting.push_back(token & !RUNNER_TOKEN_BASE);
            }
            other => self.engine.on_wake(other, sim),
        }
        self.collect(sim);
    }
}

/// What the decode wave reports.
struct DecodeOutcome {
    serving: ServingMetrics,
    generation: GenerationMetrics,
    outputs: BTreeMap<u64, Vec<u64>>,
}

#[derive(Debug)]
struct DecodeSeq {
    job: GenerationJob,
    /// Completed steps; the prefill node already produced step 0's token,
    /// so sequences enter at 1.
    steps_done: u32,
}

/// The decode worker: admits shipped block tables, fused-decodes the
/// running set, one step in flight at a time.
struct DecodeWorker<'a, E: InferenceEngine + ?Sized> {
    engine: &'a mut E,
    pool: BlockPool,
    max_running: usize,

    /// Stream arrivals, `(kv-ready instant, job)` — timers set at start.
    arrivals: Vec<(SimTime, GenerationJob)>,
    states: HashMap<u64, DecodeSeq>,
    waiting: VecDeque<u64>,
    running: Vec<u64>,
    decode_inflight: Option<(u64, Vec<u64>)>,
    next_request: u64,
    outstanding: usize,

    serving: ServingMetrics,
    generation: GenerationMetrics,
    outputs: BTreeMap<u64, Vec<u64>>,
    /// Completion instants in job-id order (ordered so the final report is
    /// identical across event cores and hash seeds).
    finished_at: BTreeMap<u64, SimTime>,
}

impl<'a, E: InferenceEngine + ?Sized> DecodeWorker<'a, E> {
    fn new(
        engine: &'a mut E,
        jobs: &[GenerationJob],
        config: &DisaggConfig,
        devices: &[DeviceId],
        kv_ready: BTreeMap<u64, SimTime>,
    ) -> Self {
        let arrivals: Vec<(SimTime, GenerationJob)> =
            kv_ready.into_iter().map(|(id, at)| (at, jobs[id as usize])).collect();
        let outstanding = arrivals.len();
        DecodeWorker {
            engine,
            pool: BlockPool::new(config.scheduler.pool, devices.to_vec()),
            max_running: config.scheduler.max_running,
            arrivals,
            states: HashMap::new(),
            waiting: VecDeque::new(),
            running: Vec::new(),
            decode_inflight: None,
            next_request: 0,
            outstanding,
            serving: ServingMetrics::new(),
            generation: GenerationMetrics::default(),
            outputs: BTreeMap::new(),
            finished_at: BTreeMap::new(),
        }
    }

    /// Finalizes the report, stitching each result's first-token instant
    /// from the prefill wave.
    fn into_outcome(mut self, first_token: &HashMap<u64, SimTime>) -> DecodeOutcome {
        let finished = std::mem::take(&mut self.finished_at);
        for (id, done) in finished {
            let job = self.states.remove(&id).expect("finished sequence kept state").job;
            let first = first_token.get(&id).copied().unwrap_or(done);
            self.generation.record(GenerationResult {
                id,
                arrival: job.arrival,
                first_token: first,
                finished: done,
                tokens: job.output_tokens,
                batch: job.batch,
            });
            self.serving.record(Completion { id, arrival: job.arrival, finished: done });
        }
        DecodeOutcome { serving: self.serving, generation: self.generation, outputs: self.outputs }
    }

    fn shed(&mut self, id: u64, now: SimTime) {
        self.states.remove(&id);
        self.outstanding = self.outstanding.saturating_sub(1);
        self.serving.recovery_mut().shed.push(ShedRecord {
            id,
            at: now,
            reason: ShedReason::KvExhausted,
        });
    }

    /// Admits a shipped block table: the prompt's blocks materialize in
    /// the decode pool (the stream delivered their contents) and the
    /// sequence joins the running set — no prefill pass.
    fn admit(&mut self, sim: &mut Simulation) {
        while let Some(&id) = self.waiting.front() {
            if self.running.len() >= self.max_running {
                return;
            }
            if self.pool.above_watermark() {
                return;
            }
            let job = self.states[&id].job;
            let (prompt, rows) = (job.prompt_len, job.batch);
            let final_tokens = prompt + job.output_tokens.max(1) - 1;
            if self.pool.blocks_for(final_tokens) * rows as u64 > self.pool.capacity_blocks() {
                self.waiting.pop_front();
                self.pool.release(sim, id);
                self.shed(id, sim.now());
                continue;
            }
            match self.pool.grow(sim, id, prompt, rows) {
                Ok(_) => {
                    self.waiting.pop_front();
                    self.running.push(id);
                }
                Err(_) if self.running.is_empty() => {
                    self.serving.batching_mut().out_of_blocks += 1;
                    self.waiting.pop_front();
                    self.pool.release(sim, id);
                    self.shed(id, sim.now());
                }
                Err(_) => {
                    self.serving.batching_mut().out_of_blocks += 1;
                    return;
                }
            }
        }
    }

    /// Forms and submits the next fused decode step over the running set.
    /// A member the pool cannot grow sheds (re-prefilling on the decode
    /// node is impossible by construction — it has no prompt path).
    fn form_decode_step(&mut self, sim: &mut Simulation) {
        let mut members: Vec<u64> = Vec::with_capacity(self.running.len());
        let mut i = 0;
        while i < self.running.len() {
            let id = self.running[i];
            let (tokens, rows) = {
                let s = &self.states[&id];
                (s.job.prompt_len + s.steps_done, s.job.batch)
            };
            match self.pool.grow(sim, id, tokens, rows) {
                Ok(_) => {
                    members.push(id);
                    i += 1;
                }
                Err(_) => {
                    self.serving.batching_mut().out_of_blocks += 1;
                    // Shed the youngest — it re-queued most recently and
                    // frees the most headroom per completed token lost.
                    let victim = self.running.pop().expect("running set is non-empty here");
                    members.retain(|&m| m != victim);
                    self.pool.release(sim, victim);
                    self.shed(victim, sim.now());
                }
            }
        }
        if members.is_empty() {
            return;
        }
        let mut total_rows = 0u32;
        let mut max_context = 0u32;
        let mut real_tokens = 0u64;
        for &id in &members {
            let s = &self.states[&id];
            let context = s.job.prompt_len + s.steps_done - 1;
            total_rows += s.job.batch;
            max_context = max_context.max(context);
            real_tokens += (context as u64 + 1) * s.job.batch as u64;
        }
        let padded = (max_context as u64 + 1) * total_rows as u64;
        self.serving.batching_mut().record_batch(padded, real_tokens);
        self.serving
            .batching_mut()
            .record_occupancy(members.len() as f64 / self.max_running as f64);
        let rid = self.next_request;
        self.next_request += 1;
        let shape = BatchShape::decode(total_rows, max_context);
        self.decode_inflight = Some((rid, members));
        self.engine.submit(Request::new(rid, shape, sim.now()), sim);
    }

    fn collect(&mut self, sim: &mut Simulation) {
        for (rid, finished) in self.engine.drain_completions() {
            if self.decode_inflight.as_ref().is_some_and(|&(d, _)| d == rid) {
                let (_, members) = self.decode_inflight.take().expect("checked above");
                for id in members {
                    let done_now = {
                        let s = self.states.get_mut(&id).expect("decode member has state");
                        let token = output_token(&s.job, s.steps_done);
                        self.outputs.entry(id).or_default().push(token);
                        s.steps_done += 1;
                        s.steps_done >= s.job.output_tokens
                    };
                    if done_now {
                        self.running.retain(|&r| r != id);
                        self.pool.release(sim, id);
                        self.finished_at.insert(id, finished);
                        self.outstanding = self.outstanding.saturating_sub(1);
                    }
                }
            }
        }
        if self.outstanding == 0 {
            debug_assert!(self.pool.is_empty(), "decode ended with live KV blocks");
            sim.request_stop();
        } else {
            self.admit(sim);
            if self.decode_inflight.is_none() {
                self.form_decode_step(sim);
            }
        }
    }
}

impl<E: InferenceEngine + ?Sized> Driver for DecodeWorker<'_, E> {
    fn start(&mut self, sim: &mut Simulation) {
        if self.arrivals.is_empty() {
            sim.request_stop();
            return;
        }
        for (at, job) in std::mem::take(&mut self.arrivals) {
            self.states.insert(job.id, DecodeSeq { job, steps_done: 1 });
            sim.set_timer(at, RUNNER_TOKEN_BASE | job.id);
        }
    }

    fn on_wake(&mut self, wake: Wake, sim: &mut Simulation) {
        match wake {
            Wake::Timer { token } if token & RUNNER_TOKEN_BASE != 0 => {
                self.waiting.push_back(token & !RUNNER_TOKEN_BASE);
            }
            other => self.engine.on_wake(other, sim),
        }
        self.collect(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> DisaggConfig {
        let cluster = ClusterTopology::test_cluster(2, 2);
        let sched = SchedulerConfig::sized_for(&ModelConfig::tiny_test(), 2, 16 * (1 << 30));
        DisaggConfig::new(cluster, sched)
    }

    #[test]
    fn config_validates() {
        test_config().validate().unwrap();
        let mut same_node = test_config();
        same_node.decode_node = same_node.prefill_node;
        assert!(same_node.validate().is_err());
        let mut bad_factor = test_config();
        bad_factor.nic_degrade = 0.5;
        assert!(bad_factor.validate().is_err());
    }

    #[test]
    fn node_device_split_is_disjoint() {
        let cfg = test_config();
        let p = cfg.prefill_devices();
        let d = cfg.decode_devices();
        assert_eq!(p, vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(d, vec![DeviceId(2), DeviceId(3)]);
    }

    #[test]
    fn degraded_nic_slows_streams() {
        let healthy = test_config();
        let degraded = test_config().with_nic_degrade(4.0);
        let bytes = 1 << 20;
        assert!(
            kv_stream_time(bytes, &degraded.effective_nic())
                > kv_stream_time(bytes, &healthy.effective_nic())
        );
        // Latency is unchanged; only bandwidth degrades.
        assert_eq!(healthy.effective_nic().latency, degraded.effective_nic().latency);
    }
}
